"""Setup shim.

The metadata lives in pyproject.toml; this file exists so that editable
installs work in offline environments whose pip lacks the ``wheel``
package required by the PEP 517 editable path (``pip install -e .
--no-build-isolation --no-use-pep517``, or plain ``pip install -e .``
where wheel is available).
"""

from setuptools import setup

setup()
