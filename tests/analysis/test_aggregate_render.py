"""Tests for profile aggregation and text rendering."""

import pytest

from repro.analysis import (
    context_shares,
    frame_shares,
    render_cct,
    render_crosstalk,
    render_stage_profile,
    render_stitched_profile,
    top_paths,
)
from repro.analysis.aggregate import subtree_share
from repro.core.cct import CallingContextTree
from repro.core.context import TransactionContext
from repro.core.crosstalk import CrosstalkRecorder
from repro.core.profiler import LOCAL, StageRuntime
from repro.core.stitch import stitch_profiles


def ctxt(*elements):
    return TransactionContext(elements)


def make_stage():
    stage = StageRuntime("web")
    stage.cct_for(LOCAL).record_sample(("main", "accept"), 10.0)
    flow = stage.cct_for(ctxt("listener", "push"))
    flow.record_sample(("main", "worker", "process"), 60.0)
    flow.record_sample(("main", "worker", "sendfile"), 30.0)
    return stage


def test_context_shares_sum_to_100():
    stage = make_stage()
    shares = context_shares(stage)
    assert sum(shares.values()) == pytest.approx(100.0)
    assert shares[LOCAL] == pytest.approx(10.0)
    assert shares[ctxt("listener", "push")] == pytest.approx(90.0)


def test_context_shares_empty_stage():
    assert context_shares(StageRuntime("x")) == {}


def test_frame_shares():
    cct = CallingContextTree()
    cct.record_sample(("a", "b"), 3.0)
    cct.record_sample(("a",), 1.0)
    shares = frame_shares(cct)
    assert shares["b"] == pytest.approx(75.0)
    assert shares["a"] == pytest.approx(25.0)


def test_frame_shares_with_external_total():
    cct = CallingContextTree()
    cct.record_sample(("a",), 10.0)
    assert frame_shares(cct, total=100.0)["a"] == pytest.approx(10.0)


def test_top_paths_ordering():
    cct = CallingContextTree()
    cct.record_sample(("x",), 1.0)
    cct.record_sample(("y",), 5.0)
    cct.record_sample(("z",), 3.0)
    paths = top_paths(cct, count=2)
    assert paths == [(("y",), 5.0), (("z",), 3.0)]


def test_subtree_share():
    stage = make_stage()
    share = subtree_share(stage, ctxt("listener", "push"), ("main", "worker"))
    assert share == pytest.approx(90.0)
    assert subtree_share(stage, ctxt("nope"), ("main",)) == 0.0


def test_diff_profiles_sorted_by_delta():
    from repro.analysis import diff_profiles

    before = StageRuntime("web")
    before.cct_for(ctxt("hot")).record_sample(("p",), 80.0)
    before.cct_for(ctxt("cold")).record_sample(("p",), 20.0)
    after = StageRuntime("web")
    after.cct_for(ctxt("hot")).record_sample(("p",), 30.0)
    after.cct_for(ctxt("cold")).record_sample(("p",), 20.0)
    after.cct_for(ctxt("new")).record_sample(("p",), 50.0)

    rows = diff_profiles(before, after)
    by_ctxt = {row[0]: row for row in rows}
    assert by_ctxt[ctxt("hot")][3] == pytest.approx(-50.0)
    assert by_ctxt[ctxt("new")][1] == 0.0
    assert by_ctxt[ctxt("new")][3] == pytest.approx(50.0)
    # Largest absolute delta first.
    assert abs(rows[0][3]) >= abs(rows[-1][3])


def test_render_cct_shows_percentages():
    cct = CallingContextTree()
    cct.record_sample(("main", "handle"), 80.0)
    cct.record_sample(("main", "accept"), 20.0)
    text = render_cct(cct)
    assert "main" in text
    assert "handle" in text
    assert "80.0%" in text


def test_render_cct_elides_small_subtrees():
    cct = CallingContextTree()
    cct.record_sample(("big",), 99.9)
    cct.record_sample(("tiny",), 0.1)
    text = render_cct(cct, min_share=1.0)
    assert "tiny" not in text


def test_render_cct_empty():
    assert "no samples" in render_cct(CallingContextTree())


def test_render_stage_profile_contains_contexts():
    stage = make_stage()
    text = render_stage_profile(stage)
    assert "listener --> push" in text
    assert "<local>" in text
    assert "90.0% of stage" in text


def test_render_stage_profile_empty():
    assert "(empty profile)" in render_stage_profile(StageRuntime("empty"))


def test_render_stitched_profile():
    stage = make_stage()
    profile = stitch_profiles([stage])
    text = render_stitched_profile(profile)
    assert "## stage web" in text
    assert "listener --> push" in text


def test_render_flow_graph():
    from repro.analysis import render_flow_graph
    from repro.core.context import SynopsisRef
    from repro.core.stitch import flow_graph

    web = StageRuntime("web")
    db = StageRuntime("db")
    syn = web.synopses.synopsis(ctxt("main", "send"))
    db.cct_for(ctxt(SynopsisRef("web", syn))).record_sample(("svc",), 1.0)
    text = render_flow_graph(flow_graph([web, db]))
    assert "web [main --> send]" in text
    assert "==request==> db" in text


def test_render_flow_graph_empty():
    from repro.analysis import render_flow_graph

    assert "no cross-stage flow" in render_flow_graph([])


def test_render_crosstalk_table():
    recorder = CrosstalkRecorder()
    recorder.record("BuyConfirm", "AdminConfirm", 0.0685)
    text = render_crosstalk(recorder)
    assert "BuyConfirm" in text
    assert "68.50" in text


def test_render_crosstalk_empty():
    assert "no crosstalk" in render_crosstalk(CrosstalkRecorder())
