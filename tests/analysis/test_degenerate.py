"""Degenerate profiles through every analysis entry point.

The analysis layer is the last stop before a human: whatever a fault
run, an evicted live collector, or an empty dump set produced, it must
render a truthful report — never a ZeroDivisionError.  These tests push
the four degenerate shapes (empty, single-node, all-unresolved,
zero-weight) through aggregation, text rendering, dot export, CSV
export, and the diff engine.
"""

import pytest

from repro.analysis import (
    context_shares,
    diff_stitched,
    frame_shares,
    render_cct,
    render_diff,
    render_html_report,
    render_stage_profile,
    render_stitched_profile,
    top_paths,
)
from repro.analysis.aggregate import subtree_share
from repro.analysis.dot import stage_profile_dot
from repro.analysis.export import export_stage_profile
from repro.core.cct import CallingContextTree
from repro.core.context import TransactionContext, UnresolvedRef
from repro.core.profiler import StageRuntime
from repro.core.stitch import StitchedProfile, stitch_profiles


def ctxt(*elements):
    return TransactionContext(elements)


# ----------------------------------------------------------------------
# empty
# ----------------------------------------------------------------------

def test_empty_stage_every_entry_point(tmp_path):
    stage = StageRuntime("empty")
    assert "(empty profile)" in render_stage_profile(stage)
    assert context_shares(stage) == {}
    assert subtree_share(stage, ctxt("x"), ("main",)) == 0.0
    dot = stage_profile_dot(stage)
    assert dot.startswith("digraph")
    assert "(empty profile)" in dot
    export_stage_profile(stage, str(tmp_path / "empty.csv"))
    assert (tmp_path / "empty.csv").read_text().count("\n") == 1  # header only


def test_empty_cct_entry_points():
    cct = CallingContextTree()
    assert "no samples" in render_cct(cct)
    assert frame_shares(cct) == {}
    assert top_paths(cct) == []


def test_empty_stitch_is_valid_and_incomplete():
    profile = stitch_profiles([], strict=False)
    assert profile.entries == {}
    assert profile.completeness == 0.0
    text = render_stitched_profile(profile)
    assert "(empty profile)" in text
    assert profile.total_weight() == 0.0


def test_empty_diff_is_quiet():
    diff = diff_stitched(stitch_profiles([]), stitch_profiles([]))
    assert diff.rows == []
    assert diff.gate() == []
    level, reasons = diff.confidence()
    assert level == "low"
    assert any("empty" in reason for reason in reasons)
    text = render_diff(diff)
    assert "both profiles are empty" in text
    # The HTML report must survive the same degenerate input.
    html = render_html_report(diff)
    assert "<html" in html and "</html>" in html


# ----------------------------------------------------------------------
# single node
# ----------------------------------------------------------------------

def test_single_node_profile(tmp_path):
    stage = StageRuntime("one")
    stage.cct_for(ctxt("only")).record_sample(("main",), 5.0)
    assert "100.0%" in render_stage_profile(stage)
    assert context_shares(stage)[ctxt("only")] == pytest.approx(100.0)
    dot = stage_profile_dot(stage)
    assert "main" in dot
    profile = stitch_profiles([stage])
    assert profile.completeness == 1.0
    diff = diff_stitched(profile, profile)
    assert diff.total_delta == 0.0
    assert diff.gate() == []


# ----------------------------------------------------------------------
# all-unresolved contexts
# ----------------------------------------------------------------------

def _unresolved_profile():
    profile = StitchedProfile()
    context = ctxt(UnresolvedRef("gone", 17), "handler")
    cct = CallingContextTree()
    cct.record_sample(("svc",), 4.0)
    profile.add("db", context, cct)
    return profile


def test_all_unresolved_renders_and_diffs():
    profile = _unresolved_profile()
    text = render_stitched_profile(profile)
    assert "unresolved" in text
    diff = diff_stitched(profile, _unresolved_profile())
    level, reasons = diff.confidence()
    assert level == "low"
    assert any("unresolved" in reason for reason in reasons)
    # Identical unresolved profiles still align: UnresolvedRef is a
    # value object, so the self-diff is all-zero.
    assert diff.total_delta == 0.0
    assert diff.gate() == []


# ----------------------------------------------------------------------
# zero-weight CCTs
# ----------------------------------------------------------------------

def _zero_weight_stage():
    stage = StageRuntime("zero")
    stage.cct_for(ctxt("path")).record_sample(("main", "f"), 0.0)
    return stage


def test_zero_weight_stage_entry_points(tmp_path):
    stage = _zero_weight_stage()
    assert stage.total_weight() == 0.0
    assert "no samples" in render_stage_profile(stage)
    shares = context_shares(stage)
    assert shares[ctxt("path")] == 0.0
    assert subtree_share(stage, ctxt("path"), ("main",)) == 0.0
    dot = stage_profile_dot(stage)
    assert dot.startswith("digraph") and dot.endswith("}")
    export_stage_profile(stage, str(tmp_path / "zero.csv"))


def test_zero_weight_cct_shares():
    cct = CallingContextTree()
    cct.record_sample(("a",), 0.0)
    # Whether the zero-weight frame survives aggregation or not, no
    # share may be non-zero and nothing may divide by zero.
    assert all(value == 0.0 for value in frame_shares(cct).values())
    assert "no samples" in render_cct(cct)


def test_zero_weight_diff():
    profile = stitch_profiles([_zero_weight_stage()])
    diff = diff_stitched(profile, profile)
    assert diff.total_before == 0.0
    assert diff.gate() == []
    render_diff(diff)
    render_html_report(diff)
