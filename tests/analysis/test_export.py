"""Tests for TSV export of profiles and series."""

import io

import pytest

from repro.analysis import (
    export_crosstalk,
    export_series,
    export_stage_profile,
    write_rows,
)
from repro.core.context import TransactionContext
from repro.core.crosstalk import CrosstalkRecorder
from repro.core.profiler import StageRuntime


def ctxt(*elements):
    return TransactionContext(elements)


def test_write_rows_to_stream():
    buffer = io.StringIO()
    write_rows(buffer, ["a", "b"], [[1, 2], [3, 4]])
    assert buffer.getvalue() == "a\tb\n1\t2\n3\t4\n"


def test_write_rows_to_file(tmp_path):
    path = tmp_path / "out.tsv"
    write_rows(str(path), ["x"], [[42]])
    assert path.read_text() == "x\n42\n"


def test_export_stage_profile():
    stage = StageRuntime("web")
    stage.cct_for(ctxt("flow")).record_sample(("main", "work"), 75.0)
    stage.cct_for(ctxt("flow")).record_sample(("main",), 25.0)
    buffer = io.StringIO()
    export_stage_profile(stage, buffer)
    lines = buffer.getvalue().splitlines()
    assert lines[0] == "context\tcall_path\tsamples\tshare_pct"
    assert "main > work" in lines[1]
    assert "75.0000" in lines[1]


def test_export_stage_profile_empty():
    buffer = io.StringIO()
    export_stage_profile(StageRuntime("empty"), buffer)
    assert len(buffer.getvalue().splitlines()) == 1  # header only


def test_export_crosstalk():
    recorder = CrosstalkRecorder()
    recorder.record("B", "A", 0.010)
    buffer = io.StringIO()
    export_crosstalk(recorder, buffer)
    lines = buffer.getvalue().splitlines()
    assert lines[0].startswith("waiting\tholding")
    assert "10.0000" in lines[1]


def test_export_series_aligns_on_x():
    buffer = io.StringIO()
    export_series(
        buffer,
        "clients",
        {"orig": {50: 400, 100: 800}, "cached": {100: 850, 200: 1700}},
    )
    lines = buffer.getvalue().splitlines()
    assert lines[0] == "clients\torig\tcached"
    assert lines[1] == "50\t400\t"
    assert lines[2] == "100\t800\t850"
    assert lines[3] == "200\t\t1700"
