"""Tests for graphviz export."""

import pytest

from repro.analysis.dot import flow_graph_dot, stage_profile_dot
from repro.core.context import SynopsisRef, TransactionContext
from repro.core.profiler import LOCAL, StageRuntime
from repro.core.stitch import flow_graph


def ctxt(*elements):
    return TransactionContext(elements)


def make_stage():
    stage = StageRuntime("web")
    stage.cct_for(LOCAL).record_sample(("main", "accept"), 10.0)
    flow = stage.cct_for(ctxt("listener", "push"))
    flow.record_sample(("main", "worker", "process"), 90.0)
    return stage


def test_stage_profile_dot_structure():
    dot = stage_profile_dot(make_stage())
    assert dot.startswith("digraph")
    assert dot.rstrip().endswith("}")
    assert "subgraph cluster_ctx0" in dot
    assert "listener -> push" in dot
    assert "worker" in dot
    # Edges between call-path nodes.
    assert "->" in dot


def test_stage_profile_dot_percentages():
    dot = stage_profile_dot(make_stage())
    assert "90.0%" in dot
    assert "10.0%" in dot


def test_stage_profile_dot_elides_small():
    stage = make_stage()
    stage.cct_for(ctxt("tiny")).record_sample(("x",), 0.01)
    dot = stage_profile_dot(stage, min_share=1.0)
    assert "tiny" not in dot


def test_stage_profile_dot_empty_stage():
    dot = stage_profile_dot(StageRuntime("empty"))
    assert dot.startswith("digraph")
    assert "cluster" not in dot


def test_dot_quotes_special_characters():
    stage = StageRuntime("s")
    stage.cct_for(LOCAL).record_sample(('say_"hi"',), 1.0)
    dot = stage_profile_dot(stage)
    assert r"\"hi\"" in dot


def test_flow_graph_dot():
    web = StageRuntime("web")
    db = StageRuntime("db")
    syn = web.synopses.synopsis(ctxt("main", "send"))
    db.cct_for(ctxt(SynopsisRef("web", syn))).record_sample(("svc",), 1.0)
    dot = flow_graph_dot(flow_graph([web, db]))
    assert "style=dashed" in dot
    assert "label=request" in dot
    assert "web" in dot and "db" in dot


def test_flow_graph_dot_empty():
    dot = flow_graph_dot([])
    assert dot.startswith("digraph")
    assert "->" not in dot
