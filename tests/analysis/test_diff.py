"""Golden tests for the differential profiling engine (``repro diff``).

Two seeded TPC-W runs — identical except for an injected slowdown of
the BestSellers query plan in the second — are diffed; the engine must
attribute the regression to exactly the mysql contexts that execute
BestSellers, with the injected ratio, and a self-diff of the identical
seed must be all-zero (the property the CI gate rests on).
"""

import json

import pytest

import repro.apps.tpcw.model as tpcw_model
from repro.analysis import (
    diff_runs,
    render_diff,
    render_gate,
    render_html_report,
)
from repro.analysis.htmlreport import sparkline_svg, trend_section
from repro.apps.tpcw import TpcwSystem
from repro.core.persist import load_run

SLOWDOWN = 1.6
CLIENTS = 10
SEED = 42
DURATION = 5.0


def _run_tpcw(outdir, profile_format, slow=False):
    original = tpcw_model.DB_CPU_COST["BestSellers"]
    if slow:
        tpcw_model.DB_CPU_COST["BestSellers"] = original * SLOWDOWN
    try:
        system = TpcwSystem(clients=CLIENTS, seed=SEED)
        system.run(duration=DURATION)
        system.save_profiles(str(outdir), profile_format=profile_format)
    finally:
        tpcw_model.DB_CPU_COST["BestSellers"] = original


@pytest.fixture(scope="module")
def run_pair(tmp_path_factory):
    root = tmp_path_factory.mktemp("diffruns")
    before_dir = root / "before"
    after_dir = root / "after"
    _run_tpcw(before_dir, "v2")
    _run_tpcw(after_dir, "v2", slow=True)
    return load_run(str(before_dir)), load_run(str(after_dir))


@pytest.fixture(scope="module")
def golden_diff(run_pair):
    before, after = run_pair
    return diff_runs(before, after)


def test_loader_kinds_align(run_pair, tmp_path):
    before, _ = run_pair
    assert before.kind == "dumps"
    assert len(before.stages) == 3
    assert before.profile.completeness == 1.0
    # v1 dumps of the same run load to the same stitched weights.
    v1_dir = tmp_path / "v1"
    _run_tpcw(v1_dir, "v1")
    v1 = load_run(str(v1_dir))
    assert v1.profile.total_weight() == pytest.approx(
        before.profile.total_weight()
    )


def test_slowdown_attributed_to_bestsellers_contexts(golden_diff):
    top = golden_diff.top_regressions(10)
    assert top, "injected slowdown produced no regressions"
    worst = top[0]
    assert worst.stage == "mysql"
    assert "BestSellers" in worst.label
    assert worst.ratio == pytest.approx(SLOWDOWN, rel=0.01)
    # The injected stage explains essentially all of the growth.
    bestsellers_growth = sum(
        golden_diff.growth_share(row)
        for row in top
        if "BestSellers" in row.label
    )
    assert bestsellers_growth > 99.0


def test_untouched_stages_are_flat(golden_diff):
    by_stage = {row[0]: row[3] for row in golden_diff.stage_rows()}
    assert by_stage["mysql"] > 0
    # Tomcat and squid weights are servlet/proxy CPU, untouched by the
    # DB plan cost; they move by at most rounding noise.
    assert abs(by_stage["tomcat"]) < 0.01
    assert abs(by_stage["squid"]) < 0.01


def test_confidence_high_on_lossless_pair(golden_diff):
    level, reasons = golden_diff.confidence()
    assert level == "high"
    assert reasons == []


def test_gate_fails_on_injected_regression(golden_diff):
    violations = golden_diff.gate(threshold_pct=25.0, min_share_pct=1.0)
    assert violations
    assert all(v.row.delta > 0 for v in violations)
    assert any("BestSellers" in v.row.label for v in violations)
    assert "FAIL" in render_gate(golden_diff, violations)


def test_self_diff_is_exactly_zero(run_pair):
    before, _ = run_pair
    again = load_run(str(before.source))
    diff = diff_runs(before, again)
    assert diff.total_delta == 0.0
    assert all(row.delta == 0.0 for row in diff.rows)
    assert diff.appeared() == [] and diff.vanished() == []
    assert diff.gate() == []
    assert "OK" in render_gate(diff, diff.gate())


def test_text_report_golden(golden_diff):
    text = render_diff(golden_diff, top=5)
    assert "=== differential transactional profile ===" in text
    assert "confidence: high" in text
    assert "BestSellers" in text
    assert "1.60x" in text
    assert "per-stage:" in text
    assert "mysql" in text


def test_json_document_golden(golden_diff):
    doc = golden_diff.to_dict(top=5)
    # Round-trips through the JSON encoder (no raw contexts leaked).
    encoded = json.loads(json.dumps(doc))
    assert encoded["confidence"]["level"] == "high"
    assert encoded["total"]["delta"] == pytest.approx(
        golden_diff.total_delta
    )
    worst = encoded["regressions"][0]
    assert worst["stage"] == "mysql"
    assert "BestSellers" in worst["context"]
    assert worst["ratio"] == pytest.approx(SLOWDOWN, rel=0.01)
    assert worst["growth_share_pct"] > 90.0
    stages = {row["stage"] for row in encoded["stages"]}
    assert stages == {"mysql", "squid", "tomcat"}


def test_ranking_is_deterministic(golden_diff, run_pair):
    before, after = run_pair
    again = diff_runs(before, after)
    first = [(r.stage, r.label, r.delta) for r in golden_diff.rows]
    second = [(r.stage, r.label, r.delta) for r in again.rows]
    assert first == second


def test_html_report_self_contained(golden_diff):
    html_doc = render_html_report(golden_diff, top=5)
    for marker in ("http://", "https://", "src=", "@import", "url("):
        assert marker not in html_doc
    assert html_doc.startswith("<!DOCTYPE html>")
    assert "flamepair" in html_doc
    assert "BestSellers" in html_doc
    assert "<svg" in html_doc
    # Byte-stable for identical inputs.
    assert html_doc == render_html_report(golden_diff, top=5)


def test_html_trend_sparklines(golden_diff):
    history = {
        "series": [
            {"label": "r1", "metrics": {"eps": 100.0, "p99": 4.0}},
            {"label": "r2", "metrics": {"eps": 130.0, "p99": 3.5}},
        ]
    }
    html_doc = render_html_report(golden_diff, history=history)
    assert "polyline" in html_doc
    assert "eps" in html_doc
    # Degenerate histories degrade to a notice, not a crash.
    assert "No trend history" in trend_section(None)
    assert "No trend history" in trend_section({"series": []})
    assert sparkline_svg([1.0]) == ""
    assert "polyline" in sparkline_svg([1.0, 1.0])  # flat line, no /0


def test_partial_stitch_lowers_confidence(run_pair, tmp_path):
    before, _ = run_pair
    # Drop the squid dump: tomcat's cross-tier references can't resolve.
    import glob
    import os

    kept = [
        path
        for path in sorted(glob.glob(os.path.join(str(before.source), "*")))
        if "squid" not in os.path.basename(path)
    ]
    partial = load_run(kept)
    assert partial.profile.completeness < 1.0
    diff = diff_runs(before, partial)
    level, reasons = diff.confidence()
    assert level == "low"
    assert any("partial" in reason for reason in reasons)


def test_cross_format_spool_vs_live_self_diff(tmp_path):
    """One sharded run, persisted both ways, self-diffs to zero.

    The run writes live checkpoints *and* a post-mortem spool; loading
    each through ``load_run`` must align perfectly — the property that
    lets ``repro diff`` compare any two persistence formats.
    """
    from repro.cli import main

    spool = tmp_path / "spool"
    live = tmp_path / "live"
    assert (
        main(
            [
                "tpcw",
                "--clients", "8",
                "--duration", "5",
                "--warmup", "1",
                "--shards", "2",
                "--spool", str(spool),
                "--profile-format", "v2",
                "--live-dir", str(live),
                "--live-interval", "2",
            ]
        )
        == 0
    )
    from_spool = load_run(str(spool))
    from_live = load_run(str(live))
    assert from_spool.kind == "spool"
    assert from_live.kind == "live"
    diff = diff_runs(from_spool, from_live)
    assert diff.total_delta == 0.0
    assert all(row.delta == 0.0 for row in diff.rows)
    assert diff.gate() == []


def test_appeared_and_vanished_sections():
    from repro.analysis import diff_stitched
    from repro.core.cct import CallingContextTree
    from repro.core.context import TransactionContext
    from repro.core.stitch import StitchedProfile

    def profile_with(*names):
        profile = StitchedProfile()
        for name, weight in names:
            cct = CallingContextTree()
            cct.record_sample(("f",), weight)
            profile.add("web", TransactionContext((name,)), cct)
        return profile

    diff = diff_stitched(
        profile_with(("old", 5.0), ("both", 1.0)),
        profile_with(("both", 1.0), ("new", 7.0)),
    )
    assert [row.label for row in diff.appeared()] == ["new"]
    assert [row.label for row in diff.vanished()] == ["old"]
    # An appeared context with material weight trips the gate.
    violations = diff.gate(threshold_pct=25.0, min_share_pct=1.0)
    assert any(
        "appeared" in violation.reason for violation in violations
    )
    text = render_diff(diff)
    assert "appeared (1):" in text
    assert "vanished (1):" in text
