"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_table3_runs(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "ap_queue_push" in out
    assert "emulate only" in out


def test_apache_runs(capsys):
    assert main(["apache", "--seconds", "0.5", "--clients", "2", "--objects", "50"]) == 0
    out = capsys.readouterr().out
    assert "lock classifications" in out
    assert "fd_queue" not in out  # name is httpd.one_big_mutex
    assert "one_big_mutex" in out


def test_squid_runs(capsys):
    assert main(["squid", "--seconds", "0.5", "--clients", "2", "--objects", "50"]) == 0
    out = capsys.readouterr().out
    assert "transactional profile of stage squid" in out


def test_haboob_runs(capsys):
    assert main(["haboob", "--seconds", "0.5", "--clients", "2", "--objects", "50"]) == 0
    out = capsys.readouterr().out
    assert "transactional profile of stage haboob" in out


def test_dot_output(tmp_path, capsys):
    path = tmp_path / "profile.dot"
    assert (
        main(
            [
                "apache",
                "--seconds",
                "0.5",
                "--clients",
                "2",
                "--objects",
                "50",
                "--dot",
                str(path),
            ]
        )
        == 0
    )
    content = path.read_text()
    assert content.startswith("digraph")
    assert "ap_queue_push" in content


def test_tpcw_mix_option(capsys):
    assert (
        main(
            [
                "tpcw",
                "--clients",
                "10",
                "--duration",
                "10",
                "--warmup",
                "2",
                "--mix",
                "ordering",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "interactions/min" in out


def test_tpcw_runs(capsys):
    assert (
        main(["tpcw", "--clients", "10", "--duration", "10", "--warmup", "2"]) == 0
    )
    out = capsys.readouterr().out
    assert "interactions/min" in out
    assert "MySQL CPU %" in out


def test_tpcw_save_profiles_and_stitch(tmp_path, capsys):
    assert (
        main(
            [
                "tpcw",
                "--clients",
                "10",
                "--duration",
                "10",
                "--warmup",
                "2",
                "--save-profiles",
                str(tmp_path),
            ]
        )
        == 0
    )
    capsys.readouterr()
    paths = [
        str(tmp_path / f"{name}.profile.json")
        for name in ("squid", "tomcat", "mysql")
    ]
    assert main(["stitch"] + paths) == 0
    out = capsys.readouterr().out
    assert "end-to-end transactional profile" in out
    assert "## stage mysql" in out
    assert "==request==>" in out
