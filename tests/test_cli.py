"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_table3_runs(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "ap_queue_push" in out
    assert "emulate only" in out


def test_apache_runs(capsys):
    assert main(["apache", "--seconds", "0.5", "--clients", "2", "--objects", "50"]) == 0
    out = capsys.readouterr().out
    assert "lock classifications" in out
    assert "fd_queue" not in out  # name is httpd.one_big_mutex
    assert "one_big_mutex" in out


def test_squid_runs(capsys):
    assert main(["squid", "--seconds", "0.5", "--clients", "2", "--objects", "50"]) == 0
    out = capsys.readouterr().out
    assert "transactional profile of stage squid" in out


def test_haboob_runs(capsys):
    assert main(["haboob", "--seconds", "0.5", "--clients", "2", "--objects", "50"]) == 0
    out = capsys.readouterr().out
    assert "transactional profile of stage haboob" in out


def test_dot_output(tmp_path, capsys):
    path = tmp_path / "profile.dot"
    assert (
        main(
            [
                "apache",
                "--seconds",
                "0.5",
                "--clients",
                "2",
                "--objects",
                "50",
                "--dot",
                str(path),
            ]
        )
        == 0
    )
    content = path.read_text()
    assert content.startswith("digraph")
    assert "ap_queue_push" in content


def test_tpcw_mix_option(capsys):
    assert (
        main(
            [
                "tpcw",
                "--clients",
                "10",
                "--duration",
                "10",
                "--warmup",
                "2",
                "--mix",
                "ordering",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "interactions/min" in out


def test_tpcw_runs(capsys):
    assert (
        main(["tpcw", "--clients", "10", "--duration", "10", "--warmup", "2"]) == 0
    )
    out = capsys.readouterr().out
    assert "interactions/min" in out
    assert "MySQL CPU %" in out


def test_tpcw_save_profiles_and_stitch(tmp_path, capsys):
    assert (
        main(
            [
                "tpcw",
                "--clients",
                "10",
                "--duration",
                "10",
                "--warmup",
                "2",
                "--save-profiles",
                str(tmp_path),
            ]
        )
        == 0
    )
    capsys.readouterr()
    paths = [
        str(tmp_path / f"{name}.profile.json")
        for name in ("squid", "tomcat", "mysql")
    ]
    assert main(["stitch"] + paths) == 0
    out = capsys.readouterr().out
    assert "end-to-end transactional profile" in out
    assert "## stage mysql" in out
    assert "==request==>" in out
    assert "completeness 100.00%" in out


def _seeded_tpcw_profiles(directory, clients="8", duration="5"):
    assert (
        main(
            [
                "tpcw",
                "--clients",
                clients,
                "--duration",
                duration,
                "--warmup",
                "1",
                "--save-profiles",
                str(directory),
            ]
        )
        == 0
    )


def test_diff_self_is_clean(tmp_path, capsys):
    a = tmp_path / "a"
    b = tmp_path / "b"
    _seeded_tpcw_profiles(a)
    _seeded_tpcw_profiles(b)
    capsys.readouterr()
    assert main(["diff", str(a), str(b), "--gate"]) == 0
    out = capsys.readouterr().out
    assert "differential transactional profile" in out
    assert "confidence: high" in out
    assert "no regressions." in out
    assert "diff-gate: OK" in out


def test_diff_detects_injected_regression(tmp_path, capsys, monkeypatch):
    import repro.apps.tpcw.model as tpcw_model

    a = tmp_path / "a"
    b = tmp_path / "b"
    _seeded_tpcw_profiles(a)
    monkeypatch.setitem(
        tpcw_model.DB_CPU_COST,
        "BestSellers",
        tpcw_model.DB_CPU_COST["BestSellers"] * 1.6,
    )
    _seeded_tpcw_profiles(b)
    capsys.readouterr()
    # The gate turns the regression into a non-zero exit for CI.
    assert main(["diff", str(a), str(b), "--gate", "--top", "5"]) == 1
    out = capsys.readouterr().out
    assert "BestSellers" in out
    assert "diff-gate: FAIL" in out

    # JSON mode emits the machine-readable document instead.
    assert main(["diff", str(a), str(b), "--json"]) == 0
    import json

    doc = json.loads(capsys.readouterr().out)
    assert doc["regressions"][0]["stage"] == "mysql"
    assert "BestSellers" in doc["regressions"][0]["context"]


def test_diff_html_report(tmp_path, capsys):
    a = tmp_path / "a"
    _seeded_tpcw_profiles(a, clients="5", duration="3")
    capsys.readouterr()
    report = tmp_path / "report.html"
    assert main(["diff", str(a), str(a), "--html", str(report)]) == 0
    content = report.read_text()
    assert content.startswith("<!DOCTYPE html>")
    for marker in ("http://", "https://", "src=", "@import", "url("):
        assert marker not in content


def test_diff_rejects_missing_source(tmp_path, capsys):
    missing = tmp_path / "nope"
    assert main(["diff", str(missing), str(missing)]) == 2
    assert "error:" in capsys.readouterr().err
