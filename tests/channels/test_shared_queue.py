"""Tests for the VM-backed shared queue: Apache's fd_queue in simulation."""

import pytest

from repro.channels import SharedMemoryRegion, SharedQueue
from repro.core.context import TransactionContext
from repro.core.flow import FLOW
from repro.core.profiler import ProfilerMode, StageRuntime
from repro.sim import CPU, CurrentThread, Delay, Kernel
from repro.sim.process import frame
from repro.vm.emulator import DIRECT, EMULATE


def setup(mode=ProfilerMode.WHODUNIT):
    kernel = Kernel()
    cpu = CPU(kernel, name="httpd-cpu")
    stage = StageRuntime("httpd", mode=mode)
    region = SharedMemoryRegion(cpu)
    queue = SharedQueue(region, capacity=8)
    return kernel, cpu, stage, region, queue


def test_push_pop_transfers_values():
    kernel, cpu, stage, region, queue = setup()
    got = []

    def listener():
        thread = yield CurrentThread()
        with frame(thread, "listener_main"):
            yield from queue.push(thread, 1111, 2222)

    def worker():
        thread = yield CurrentThread()
        with frame(thread, "worker_main"):
            sd, p = yield from queue.pop(thread)
            got.append((sd, p))

    kernel.spawn(listener(), stage=stage)
    kernel.spawn(worker(), stage=stage)
    kernel.run()
    assert got == [(1111, 2222)]
    assert queue.pushes == 1 and queue.pops == 1


def test_worker_blocks_until_push():
    kernel, cpu, stage, region, queue = setup()
    times = []

    def worker():
        thread = yield CurrentThread()
        yield from queue.pop(thread)
        times.append(kernel.now)

    def listener():
        thread = yield CurrentThread()
        yield Delay(1.0)
        yield from queue.push(thread, 1, 2)

    kernel.spawn(worker(), stage=stage)
    kernel.spawn(listener(), stage=stage)
    kernel.run()
    assert len(times) == 1
    assert times[0] >= 1.0


def test_worker_inherits_producer_context():
    kernel, cpu, stage, region, queue = setup()
    contexts = []

    def listener():
        thread = yield CurrentThread()
        with frame(thread, "main"):
            with frame(thread, "listener_thread"):
                with frame(thread, "ap_queue_push"):
                    yield from queue.push(thread, 7, 8)

    def worker():
        thread = yield CurrentThread()
        with frame(thread, "main"):
            with frame(thread, "worker_thread"):
                yield from queue.pop(thread)
                contexts.append(thread.tran_ctxt)

    kernel.spawn(listener(), stage=stage)
    kernel.spawn(worker(), stage=stage)
    kernel.run()
    # §3.5: the worker's context is the listener's context at the
    # produce point — its call path through ap_queue_push.
    assert contexts == [
        TransactionContext(("main", "listener_thread", "ap_queue_push"))
    ]
    assert region.detector.roles.for_lock(queue.mutex).classification == FLOW


def test_profiling_off_runs_native_and_tracks_nothing():
    kernel, cpu, stage, region, queue = setup(mode=ProfilerMode.OFF)
    got = []

    def listener():
        thread = yield CurrentThread()
        yield from queue.push(thread, 5, 6)

    def worker():
        thread = yield CurrentThread()
        got.append((yield from queue.pop(thread)))
        got.append(thread.tran_ctxt)

    kernel.spawn(listener(), stage=stage)
    kernel.spawn(worker(), stage=stage)
    kernel.run()
    assert got == [(5, 6), None]
    assert region.detector.consume_events == []
    assert not region.emulator.is_translated(queue.layout.push_program)


def test_emulation_costs_more_time_than_native():
    def run_once(mode):
        kernel, cpu, stage, region, queue = setup(mode=mode)
        end = {}

        def listener():
            thread = yield CurrentThread()
            for i in range(10):
                yield from queue.push(thread, i, i)

        def worker():
            thread = yield CurrentThread()
            for _ in range(10):
                yield from queue.pop(thread)
            end["t"] = kernel.now

        kernel.spawn(listener(), stage=stage)
        kernel.spawn(worker(), stage=stage)
        kernel.run()
        return end["t"]

    native = run_once(ProfilerMode.OFF)
    emulated = run_once(ProfilerMode.WHODUNIT)
    assert emulated > native * 10


def test_queue_overflow_raises():
    kernel, cpu, stage, region, queue = setup()

    def listener():
        thread = yield CurrentThread()
        for i in range(9):  # capacity is 8
            yield from queue.push(thread, i, i)

    kernel.spawn(listener(), stage=stage)
    with pytest.raises(OverflowError):
        kernel.run()


def test_many_workers_fifo_blocking():
    kernel, cpu, stage, region, queue = setup()
    got = []

    def worker(tag):
        thread = yield CurrentThread()
        sd, p = yield from queue.pop(thread)
        got.append((tag, sd))

    def listener():
        thread = yield CurrentThread()
        yield Delay(0.1)
        for i in range(3):
            yield from queue.push(thread, i, i)

    for tag in range(3):
        kernel.spawn(worker(tag), stage=stage)
    kernel.spawn(listener(), stage=stage)
    kernel.run()
    # Each push wakes one blocked worker, which immediately pops the
    # single queued element — FIFO handoff, in worker arrival order.
    assert sorted(got) == [(0, 0), (1, 1), (2, 2)]
    assert len(got) == 3
