"""Two shared queues in one process: per-lock isolation of flows."""

import pytest

from repro.channels import SharedMemoryRegion, SharedQueue
from repro.core.context import TransactionContext
from repro.core.flow import FLOW
from repro.core.profiler import ProfilerMode, StageRuntime
from repro.sim import CPU, CurrentThread, Delay, Kernel
from repro.sim.process import frame


def ctxt(*elements):
    return TransactionContext(elements)


def test_two_queues_keep_separate_flows():
    """A process with two independent shared queues (one region, two

    locks): each consumer inherits the context of its own queue's
    producer, and the detector classifies both locks independently.
    """
    kernel = Kernel()
    cpu = CPU(kernel)
    stage = StageRuntime("srv", mode=ProfilerMode.WHODUNIT)
    region = SharedMemoryRegion(cpu)
    queue_a = SharedQueue(region, name="qa")
    queue_b = SharedQueue(region, name="qb")
    results = {}

    def producer(queue, tag, sd):
        def body():
            thread = yield CurrentThread()
            with frame(thread, "main"):
                with frame(thread, tag):
                    yield from queue.push(thread, sd, sd)

        return body

    def consumer(queue, tag):
        def body():
            thread = yield CurrentThread()
            with frame(thread, "main"):
                sd, _ = yield from queue.pop(thread)
                results[tag] = (sd, thread.tran_ctxt)

        return body

    kernel.spawn(producer(queue_a, "produce_a", 101)(), stage=stage)
    kernel.spawn(producer(queue_b, "produce_b", 202)(), stage=stage)
    kernel.spawn(consumer(queue_a, "a")(), stage=stage)
    kernel.spawn(consumer(queue_b, "b")(), stage=stage)
    kernel.run(until=1.0)

    assert results["a"][0] == 101
    assert results["b"][0] == 202
    assert results["a"][1] == ctxt("main", "produce_a")
    assert results["b"][1] == ctxt("main", "produce_b")
    detector = region.detector
    assert detector.roles.for_lock(queue_a.mutex).classification == FLOW
    assert detector.roles.for_lock(queue_b.mutex).classification == FLOW
    # Roles never leak across locks.
    assert (
        detector.roles.for_lock(queue_a.mutex).producers
        != detector.roles.for_lock(queue_b.mutex).producers
    )


def test_same_thread_producing_one_queue_consuming_another_is_flow():
    """A pipeline thread popping from one queue and pushing to the next

    must NOT trigger the allocator classification: the roles are on
    different locks."""
    kernel = Kernel()
    cpu = CPU(kernel)
    stage = StageRuntime("srv", mode=ProfilerMode.WHODUNIT)
    region = SharedMemoryRegion(cpu)
    first = SharedQueue(region, name="first")
    second = SharedQueue(region, name="second")
    out = {}

    def source():
        thread = yield CurrentThread()
        with frame(thread, "source"):
            yield from first.push(thread, 7, 7)

    def middle():
        thread = yield CurrentThread()
        with frame(thread, "middle"):
            sd, p = yield from first.pop(thread)
            yield from second.push(thread, sd, p)

    def sink():
        thread = yield CurrentThread()
        with frame(thread, "sink"):
            sd, _ = yield from second.pop(thread)
            out["sd"] = sd
            out["ctxt"] = thread.tran_ctxt

    kernel.spawn(source(), stage=stage)
    kernel.spawn(middle(), stage=stage)
    kernel.spawn(sink(), stage=stage)
    kernel.run(until=1.0)

    assert out["sd"] == 7
    detector = region.detector
    assert not detector.roles.for_lock(first.mutex).is_no_flow
    assert not detector.roles.for_lock(second.mutex).is_no_flow
    # The sink's inherited context chains through the middle thread: the
    # middle thread adopted the source's context before pushing, so its
    # push context starts with the source's context elements.
    assert out["ctxt"] is not None
    assert out["ctxt"].elements[0] == "source"
