"""Edge cases for RPC wrappers and stage runtime context switching."""

import pytest

from repro.channels import Connection
from repro.channels.rpc import call, recv_request, send_response
from repro.core.context import SynopsisRef, TransactionContext
from repro.core.profiler import ProfilerMode, StageRuntime
from repro.sim import CurrentThread, Kernel
from repro.sim.process import frame


def test_nested_rpc_chain_preserves_caller_context():
    """A -> B -> C: when B's call to C returns, B is back on the context

    it had when it issued the request, even though serving C's response
    happened after B processed other work."""
    kernel = Kernel()
    ab = Connection(kernel)
    bc = Connection(kernel)
    a_stage = StageRuntime("a")
    b_stage = StageRuntime("b")
    c_stage = StageRuntime("c")
    log = {}

    def a():
        thread = yield CurrentThread()
        with frame(thread, "main_a"):
            yield from call(thread, ab.to_server, ab.to_client, "q", 10)
            log["a_ctxt_after"] = thread.tran_ctxt

    def b():
        thread = yield CurrentThread()
        thread.daemon = True
        with frame(thread, "main_b"):
            request = yield from recv_request(thread, ab.to_server)
            log["b_ctxt_serving"] = thread.tran_ctxt
            with frame(thread, "forward"):
                yield from call(thread, bc.to_server, bc.to_client, "q2", 10)
            log["b_ctxt_after_nested"] = thread.tran_ctxt
            yield from send_response(thread, ab.to_client, request, "r", 10)

    def c():
        thread = yield CurrentThread()
        thread.daemon = True
        request = yield from recv_request(thread, bc.to_server)
        log["c_ctxt"] = thread.tran_ctxt
        with frame(thread, "svc"):
            yield from send_response(thread, bc.to_client, request, "r2", 10)

    kernel.spawn(a(), stage=a_stage)
    kernel.spawn(b(), stage=b_stage)
    kernel.spawn(c(), stage=c_stage)
    kernel.run(until=1.0)

    # B served under A's synopsis...
    assert isinstance(log["b_ctxt_serving"].elements[0], SynopsisRef)
    assert log["b_ctxt_serving"].elements[0].origin == "a"
    # ...C under B's (which chains back to A when resolved)...
    assert log["c_ctxt"].elements[0].origin == "b"
    # ...and after the nested call B returned to the serving context.
    assert log["b_ctxt_after_nested"] == log["b_ctxt_serving"]
    # A never inherited anything.
    assert log["a_ctxt_after"] is None

    from repro.core.stitch import resolve_context

    stages = {"a": a_stage, "b": b_stage, "c": c_stage}
    resolved = resolve_context(log["c_ctxt"], stages)
    assert resolved.elements[0] == "main_a"
    assert "forward" in resolved.elements


def test_concurrent_outstanding_requests_switch_back_correctly():
    """A caller with two in-flight requests on different connections

    ends up back on the right context for each response."""
    kernel = Kernel()
    conn1 = Connection(kernel)
    conn2 = Connection(kernel)
    caller = StageRuntime("caller")
    server_stage = StageRuntime("server")
    log = {}

    def echo_server(conn, delay_name):
        def body():
            thread = yield CurrentThread()
            thread.daemon = True
            request = yield from recv_request(thread, conn.to_server)
            yield from send_response(thread, conn.to_client, request, "r", 10)

        return body

    def client():
        thread = yield CurrentThread()
        from repro.channels.rpc import recv_response, send_request

        with frame(thread, "main"):
            thread.tran_ctxt = TransactionContext(("tx1",))
            with frame(thread, "path1"):
                yield from send_request(thread, conn1.to_server, "q1", 10)
            thread.tran_ctxt = TransactionContext(("tx2",))
            with frame(thread, "path2"):
                yield from send_request(thread, conn2.to_server, "q2", 10)
            # Responses arrive; receive in reverse order.
            yield from recv_response(thread, conn2.to_client)
            log["after_resp2"] = thread.tran_ctxt
            yield from recv_response(thread, conn1.to_client)
            log["after_resp1"] = thread.tran_ctxt

    kernel.spawn(echo_server(conn1, "s1")(), stage=server_stage)
    kernel.spawn(echo_server(conn2, "s2")(), stage=server_stage)
    kernel.spawn(client(), stage=caller)
    kernel.run(until=1.0)
    assert log["after_resp2"] == TransactionContext(("tx2",))
    assert log["after_resp1"] == TransactionContext(("tx1",))
