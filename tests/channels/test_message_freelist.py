"""Regression tests for the Message shell freelist.

``Message.acquire`` / ``Message.release`` recycle message shells on the
RPC hot path.  The contract under test: release is refcount-vetoed (a
shell any other holder can still see is never pooled), reuse is
field-clean, and acquire validates its arguments exactly like the
constructor even when serving from the pool.
"""

import pytest

from repro.channels import message as message_mod
from repro.channels.message import Message


@pytest.fixture(autouse=True)
def _clean_freelist():
    """Isolate each test from shells pooled by earlier tests/workloads."""
    message_mod._freelist.clear()
    yield
    message_mod._freelist.clear()


def test_release_then_acquire_reuses_the_shell_field_clean():
    first = Message.acquire(
        {"op": "get"}, size=128, origin="client", synopsis=0xDEAD, last=False
    )
    # Call release outside the assert: pytest's assertion rewriting
    # holds a bound-method reference during `assert x.release()`, which
    # would (correctly) trip the refcount veto we rely on here.
    released = first.release()
    assert released is True
    assert len(message_mod._freelist) == 1
    # The released shell was scrubbed: a stale handle cannot read the
    # old payload, and nothing leaks into the next transaction.
    assert first.payload is None
    assert first.size == 0
    assert first.origin is None
    assert first.synopsis is None
    assert first.last is True

    second = Message.acquire("reply", size=7, origin="server", synopsis=3)
    assert second is first, "acquire should serve the pooled shell"
    assert second.payload == "reply"
    assert second.size == 7
    assert second.origin == "server"
    assert second.synopsis == 3
    assert second.last is True
    assert message_mod._freelist == []


def test_surviving_handle_vetoes_release():
    shell = Message.acquire("in-flight", size=10)
    duplicate = shell  # an endpoint buffer still holding the message
    released = shell.release()
    assert released is False
    assert message_mod._freelist == []
    # The vetoed shell is untouched — the other holder keeps observing
    # the message exactly as sent.
    assert duplicate.payload == "in-flight"
    assert duplicate.size == 10


def test_double_release_never_pools_twice():
    shell = Message.acquire("x")
    first = shell.release()
    assert first is True
    # Second release: the freelist itself holds a reference now, so the
    # refcount veto fires and the shell cannot enter the pool twice.
    second = shell.release()
    assert second is False
    assert len(message_mod._freelist) == 1


def test_acquire_validates_size_even_from_the_pool():
    shell = Message.acquire("x")
    shell.release()
    assert message_mod._freelist, "precondition: pool is non-empty"
    with pytest.raises(ValueError):
        Message.acquire("y", size=-1)
    with pytest.raises(ValueError):
        Message("y", size=-1)


def test_two_live_messages_never_share_a_shell():
    a = Message.acquire("a")
    b = Message.acquire("b")
    assert a is not b
    a.release()  # vetoed or not, `b` must be unaffected
    assert b.payload == "b"
    c = Message.acquire("c")
    assert c is not b
    assert b.payload == "b"
