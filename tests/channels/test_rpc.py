"""Tests for the RPC wrappers: synopsis piggy-backing across stages."""

import pytest

from repro.channels import Connection
from repro.channels.rpc import (
    call,
    recv_request,
    recv_response,
    send_request,
    send_response,
    serve_one,
)
from repro.core.context import SynopsisRef, TransactionContext
from repro.core.profiler import LOCAL, ProfilerMode, StageRuntime
from repro.core.stitch import stitch_profiles
from repro.sim import CurrentThread, Kernel
from repro.sim.process import frame


def two_stage_setup(caller_mode=ProfilerMode.WHODUNIT, callee_mode=ProfilerMode.WHODUNIT):
    kernel = Kernel()
    conn = Connection(kernel)
    web = StageRuntime("web", mode=caller_mode)
    db = StageRuntime("db", mode=callee_mode)
    return kernel, conn, web, db


def test_request_carries_synopsis_and_response_round_trips():
    kernel, conn, web, db = two_stage_setup()
    log = {}

    def client():
        thread = yield CurrentThread()
        with frame(thread, "main"):
            with frame(thread, "foo"):
                response = yield from call(
                    thread, conn.to_server, conn.to_client, "query", 100
                )
                log["response"] = response
                log["ctxt_after"] = thread.tran_ctxt

    def server():
        thread = yield CurrentThread()
        thread.daemon = True
        request = yield from recv_request(thread, conn.to_server)
        log["server_ctxt"] = thread.tran_ctxt
        with frame(thread, "svc_run"):
            yield from send_response(
                thread, conn.to_client, request, "rows", 1000
            )

    kernel.spawn(client(), name="client", stage=web)
    kernel.spawn(server(), name="server", stage=db)
    kernel.run()

    # The server adopted a synopsis reference naming the web stage.
    ref = log["server_ctxt"].elements[0]
    assert isinstance(ref, SynopsisRef)
    assert ref.origin == "web"
    assert web.synopses.resolve(ref.value) == TransactionContext(("main", "foo"))
    # The caller recognised its own prefix and restored its context.
    assert log["ctxt_after"] is None  # original context was None
    composite = log["response"].synopsis
    assert web.synopses.is_own_prefix(composite)


def test_byte_accounting_request_and_response():
    kernel, conn, web, db = two_stage_setup()

    def client():
        thread = yield CurrentThread()
        yield from call(thread, conn.to_server, conn.to_client, "q", 100)

    def server():
        thread = yield CurrentThread()
        thread.daemon = True
        request = yield from recv_request(thread, conn.to_server)
        yield from send_response(thread, conn.to_client, request, "r", 900)

    kernel.spawn(client(), stage=web)
    kernel.spawn(server(), stage=db)
    kernel.run()
    assert web.comm_data_bytes == 100
    assert web.comm_context_bytes == 4  # request synopsis
    assert db.comm_data_bytes == 900
    assert db.comm_context_bytes == 9  # composite response synopsis


def test_untracked_stage_piggybacks_nothing():
    kernel, conn, web, db = two_stage_setup(caller_mode=ProfilerMode.CSPROF)
    log = {}

    def client():
        thread = yield CurrentThread()
        message = yield from send_request(thread, conn.to_server, "q", 10)
        log["msg"] = message

    def server():
        thread = yield CurrentThread()
        thread.daemon = True
        yield from recv_request(thread, conn.to_server)
        log["server_ctxt"] = thread.tran_ctxt

    kernel.spawn(client(), stage=web)
    kernel.spawn(server(), stage=db)
    kernel.run()
    assert log["msg"].synopsis is None
    assert log["server_ctxt"] is None
    assert web.comm_context_bytes == 0


def test_stageless_threads_can_use_wrappers():
    kernel = Kernel()
    conn = Connection(kernel)
    log = {}

    def client():
        thread = yield CurrentThread()
        yield from send_request(thread, conn.to_server, "q", 10)

    def server():
        thread = yield CurrentThread()
        thread.daemon = True
        msg = yield from recv_request(thread, conn.to_server)
        log["msg"] = msg

    kernel.spawn(client())
    kernel.spawn(server())
    kernel.run()
    assert log["msg"].origin is None


def test_serve_one_helper():
    kernel, conn, web, db = two_stage_setup()
    log = {}

    def client():
        thread = yield CurrentThread()
        with frame(thread, "main"):
            response = yield from call(
                thread, conn.to_server, conn.to_client, "ping", 4
            )
            log["reply"] = response.payload

    def handler(request):
        return (request.payload + "-pong", 8)
        yield  # pragma: no cover

    def server():
        thread = yield CurrentThread()
        thread.daemon = True
        with frame(thread, "svc_run"):
            yield from serve_one(thread, conn.to_server, conn.to_client, handler)

    kernel.spawn(client(), stage=web)
    kernel.spawn(server(), stage=db)
    kernel.run()
    assert log["reply"] == "ping-pong"


def test_two_transaction_paths_create_two_callee_contexts():
    """§5's foo/bar example: the callee's profile is kept separately per

    caller context, and stitching reproduces Fig 7's two trees.
    """
    kernel, conn, web, db = two_stage_setup()
    from repro.core.profiler import work
    from repro.sim import CPU

    cpu = CPU(kernel, name="db-cpu")

    def client():
        thread = yield CurrentThread()
        with frame(thread, "main_caller"):
            for proc in ["foo", "bar"]:
                with frame(thread, proc):
                    with frame(thread, "rpc_call"):
                        yield from call(
                            thread, conn.to_server, conn.to_client, proc, 10
                        )

    def server():
        thread = yield CurrentThread()
        thread.daemon = True
        with frame(thread, "main_callee"):
            with frame(thread, "svc_run"):
                for _ in range(2):
                    request = yield from recv_request(thread, conn.to_server)
                    with frame(thread, "callee_rpc_svc"):
                        yield from work(thread, cpu, 0.01)
                    yield from send_response(
                        thread, conn.to_client, request, "ok", 10
                    )

    kernel.spawn(client(), stage=web)
    kernel.spawn(server(), stage=db)
    kernel.run()

    profile = stitch_profiles([web, db])
    db_contexts = profile.contexts_of("db")
    assert len(db_contexts) == 2
    foo_ctxt = TransactionContext(("main_caller", "foo", "rpc_call"))
    bar_ctxt = TransactionContext(("main_caller", "bar", "rpc_call"))
    assert set(db_contexts) == {foo_ctxt, bar_ctxt}
    path = ("main_callee", "svc_run", "callee_rpc_svc")
    assert profile.cct("db", foo_ctxt).weight_of(path) > 0
    assert profile.cct("db", bar_ctxt).weight_of(path) > 0
