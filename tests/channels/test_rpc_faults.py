"""The hardened synopsis protocol under a lossy transport.

Covers the recv timeout, foreign/stale/malformed response validation,
retry recovery under message drop, and retry-budget exhaustion.
"""

import pytest

from repro.channels import Connection, Message, Recv, Send, TIMED_OUT
from repro.channels.rpc import (
    RetryPolicy,
    RpcTimeout,
    call,
    recv_request,
    recv_response,
    send_response,
)
from repro.core.context import TransactionContext
from repro.core.profiler import ProfilerMode, StageRuntime
from repro.core.synopsis import CompositeSynopsis
from repro.faults import install_faults
from repro.sim import CurrentThread, Delay, Kernel
from repro.sim.process import frame


def test_retry_policy_validation_and_backoff():
    policy = RetryPolicy(timeout=0.1, retries=2, backoff=2.0, max_timeout=0.3)
    assert policy.timeout_for(0) == pytest.approx(0.1)
    assert policy.timeout_for(1) == pytest.approx(0.2)
    assert policy.timeout_for(2) == pytest.approx(0.3)  # capped
    with pytest.raises(ValueError):
        RetryPolicy(timeout=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(timeout=1.0, max_timeout=0.5)


def test_recv_timeout_returns_sentinel():
    kernel = Kernel()
    conn = Connection(kernel)
    log = {}

    def client():
        yield CurrentThread()
        log["got"] = yield Recv(conn.to_client, timeout=0.5)
        log["at"] = kernel.now

    kernel.spawn(client())
    kernel.run()
    assert log["got"] is TIMED_OUT
    assert log["at"] == pytest.approx(0.5)


def test_recv_timer_cancelled_on_delivery():
    kernel = Kernel()
    conn = Connection(kernel)
    log = {}

    def client():
        yield CurrentThread()
        log["got"] = yield Recv(conn.to_client, timeout=5.0)

    def sender():
        yield Delay(0.1)
        yield Send(conn.to_client, Message("data", 4))

    kernel.spawn(client())
    kernel.spawn(sender())
    end = kernel.run()
    assert log["got"].payload == "data"
    # The cancelled timeout timer does not stretch the run to t=5.
    assert end == pytest.approx(0.1)


def test_call_with_retry_recovers_from_dropped_request():
    """The first copy of the request is dropped; the retransmit gets
    through and the caller adopts the response for the original
    request synopsis — one transaction, stitched normally."""
    kernel = Kernel()
    faults = install_faults(kernel, "drop=1.0,match=to_server")
    conn = Connection(kernel)
    web = StageRuntime("web", mode=ProfilerMode.WHODUNIT)
    db = StageRuntime("db", mode=ProfilerMode.WHODUNIT)
    log = {}

    # Drop exactly the first send on the request channel (the endpoint
    # captured its fault state at construction; swap in a deterministic
    # one-shot stand-in with the same deliveries() contract).
    class DropOnce:
        def __init__(self, injector):
            self.injector = injector
            self.dropped_once = False

        def deliveries(self, message):
            self.injector.messages_seen += 1
            if not self.dropped_once:
                self.dropped_once = True
                self.injector.dropped += 1
                return []
            return [0.0]

    conn.to_server._faults = DropOnce(faults)

    def client():
        thread = yield CurrentThread()
        with frame(thread, "main"):
            response = yield from call(
                thread,
                conn.to_server,
                conn.to_client,
                "query",
                100,
                retry=RetryPolicy(timeout=0.25, retries=3),
            )
        log["response"] = response

    def server():
        thread = yield CurrentThread()
        thread.daemon = True
        while True:
            request = yield from recv_request(thread, conn.to_server)
            with frame(thread, "svc"):
                yield from send_response(
                    thread, conn.to_client, request, "rows", 10
                )

    kernel.spawn(client(), stage=web)
    kernel.spawn(server(), stage=db)
    kernel.run()

    assert log["response"].payload == "rows"
    assert web.retransmits == 1
    assert web.abandoned_requests == 0
    assert faults.dropped == 1
    # The retransmit reused the request synopsis: nothing dangles.
    assert not web._sent_requests


def test_call_exhausting_retries_raises_and_abandons():
    kernel = Kernel()
    install_faults(kernel, "drop=1.0,match=to_server")
    conn = Connection(kernel)
    web = StageRuntime("web", mode=ProfilerMode.WHODUNIT)
    log = {}

    def client():
        thread = yield CurrentThread()
        with frame(thread, "main"):
            try:
                yield from call(
                    thread,
                    conn.to_server,
                    conn.to_client,
                    "query",
                    100,
                    retry=RetryPolicy(timeout=0.1, retries=2, backoff=2.0),
                )
            except RpcTimeout as exc:
                log["error"] = exc

    kernel.spawn(client(), stage=web)
    kernel.run()

    error = log["error"]
    assert error.attempts == 3
    # 0.1 + 0.2 + 0.4 of capped exponential backoff.
    assert error.waited == pytest.approx(0.7)
    assert web.retransmits == 2
    assert web.abandoned_requests == 1
    assert not web._sent_requests  # bookkeeping released


def test_foreign_response_counted_not_adopted():
    """A composite whose prefix this stage never allocated is a protocol
    violation; with an expected synopsis the caller keeps waiting."""
    kernel = Kernel()
    conn = Connection(kernel)
    web = StageRuntime("web", mode=ProfilerMode.WHODUNIT)
    other = StageRuntime("other", mode=ProfilerMode.WHODUNIT)
    foreign_prefix = other.synopses.synopsis(TransactionContext(("elsewhere",)))
    log = {}

    def client():
        thread = yield CurrentThread()
        with frame(thread, "main"):
            expected = web.send_request(thread)
            log["got"] = yield from recv_response(
                thread, conn.to_client, expected=expected, timeout=1.0
            )

    def sender():
        yield Delay(0.1)
        yield Send(
            conn.to_client,
            Message("foreign", 4, origin="other",
                    synopsis=CompositeSynopsis(foreign_prefix, 1)),
        )

    kernel.spawn(client(), stage=web)
    kernel.spawn(sender())
    kernel.run()

    assert log["got"] is TIMED_OUT  # discarded, then the budget expired
    assert web.protocol_violations == {"foreign-response": 1}


def test_stale_own_response_discarded_then_fresh_adopted():
    """A response to an *earlier* request (own prefix, wrong synopsis)
    is discarded; the matching response is then adopted."""
    kernel = Kernel()
    conn = Connection(kernel)
    web = StageRuntime("web", mode=ProfilerMode.WHODUNIT)
    db = StageRuntime("db", mode=ProfilerMode.WHODUNIT)
    log = {}

    def client():
        thread = yield CurrentThread()
        with frame(thread, "old"):
            stale_synopsis = web.send_request(thread)
        with frame(thread, "new"):
            expected = web.send_request(thread)
            log["stale"] = stale_synopsis
            log["expected"] = expected
            message = yield from recv_response(
                thread, conn.to_client, expected=expected, timeout=1.0
            )
            log["got"] = message

    def sender():
        yield Delay(0.1)
        # The stale response lands first...
        yield Send(
            conn.to_client,
            Message("stale", 4, origin="db",
                    synopsis=db.synopses.make_response(
                        log["stale"], TransactionContext(("svc",)))),
        )
        yield Delay(0.1)
        # ...then the one the caller is waiting for.
        yield Send(
            conn.to_client,
            Message("fresh", 4, origin="db",
                    synopsis=db.synopses.make_response(
                        log["expected"], TransactionContext(("svc",)))),
        )

    kernel.spawn(client(), stage=web)
    kernel.spawn(sender())
    kernel.run()

    assert log["got"].payload == "fresh"
    assert web.protocol_violations == {"stale-response": 1}


def test_malformed_response_counted():
    """A bare int where a composite belongs is flagged, not adopted."""
    kernel = Kernel()
    conn = Connection(kernel)
    web = StageRuntime("web", mode=ProfilerMode.WHODUNIT)
    log = {}

    def client():
        thread = yield CurrentThread()
        with frame(thread, "main"):
            log["got"] = yield from recv_response(thread, conn.to_client)

    def sender():
        yield Delay(0.1)
        yield Send(conn.to_client, Message("junk", 4, origin="x", synopsis=12345))

    kernel.spawn(client(), stage=web)
    kernel.spawn(sender())
    kernel.run()

    assert log["got"].payload == "junk"
    assert web.protocol_violations == {"malformed-response": 1}


def test_duplicate_response_discarded_as_stale():
    """dup=1.0 on the response channel: the second copy of the adopted
    response must not corrupt the next call's context."""
    kernel = Kernel()
    install_faults(kernel, "dup=1.0,match=to_client")
    # With 5ms propagation each way, q0's duplicate (extra delay in
    # [0, 10ms)) always lands while the caller is waiting for q1.
    conn = Connection(kernel, latency=0.005)
    web = StageRuntime("web", mode=ProfilerMode.WHODUNIT)
    db = StageRuntime("db", mode=ProfilerMode.WHODUNIT)
    log = {"replies": []}

    def client():
        thread = yield CurrentThread()
        with frame(thread, "main"):
            for i in range(2):
                with frame(thread, f"step{i}"):
                    response = yield from call(
                        thread,
                        conn.to_server,
                        conn.to_client,
                        f"q{i}",
                        10,
                        retry=RetryPolicy(timeout=0.5, retries=1),
                    )
                    log["replies"].append(response.payload)

    def server():
        thread = yield CurrentThread()
        thread.daemon = True
        while True:
            request = yield from recv_request(thread, conn.to_server)
            with frame(thread, "svc"):
                yield from send_response(
                    thread, conn.to_client, request, request.payload + "-ok", 10
                )

    kernel.spawn(client(), stage=web)
    kernel.spawn(server(), stage=db)
    kernel.run()

    assert log["replies"] == ["q0-ok", "q1-ok"]
    # The duplicate of q0's response arrived while waiting for q1's and
    # was discarded as stale (own prefix, wrong request synopsis).
    assert web.protocol_violations.get("stale-response", 0) >= 1
    assert not web._sent_requests


def test_dead_receiver_does_not_swallow_delivery():
    """A message delivered to a crashed thread's endpoint goes to the
    next live receiver (or the buffer), never into the void."""
    kernel = Kernel()
    conn = Connection(kernel)
    log = {}

    def doomed():
        yield Recv(conn.to_client)

    def survivor():
        yield Delay(0.0)
        log["got"] = yield Recv(conn.to_client)

    doomed_thread = kernel.spawn(doomed())

    def killer_then_send():
        yield Delay(0.1)
        doomed_thread.finish(None)
        yield Send(conn.to_client, Message("payload", 7))

    kernel.spawn(survivor())
    kernel.spawn(killer_then_send())
    kernel.run()
    assert log["got"].payload == "payload"
