"""Tests for simulated sockets: endpoints, connections, listeners."""

import pytest

from repro.channels import Accept, Connection, Endpoint, Listener, Message, Recv, Send
from repro.sim import Delay, Kernel


def test_send_then_recv_same_time_with_zero_latency():
    kernel = Kernel()
    endpoint = Endpoint(kernel)
    got = []

    def sender():
        yield Send(endpoint, Message("hello", 10))

    def receiver():
        msg = yield Recv(endpoint)
        got.append((msg.payload, kernel.now))

    kernel.spawn(sender())
    kernel.spawn(receiver())
    kernel.run()
    assert got == [("hello", 0.0)]


def test_latency_delays_delivery():
    kernel = Kernel()
    endpoint = Endpoint(kernel, latency=0.5)
    got = []

    def sender():
        yield Send(endpoint, Message("x"))

    def receiver():
        msg = yield Recv(endpoint)
        got.append(kernel.now)

    kernel.spawn(receiver())
    kernel.spawn(sender())
    kernel.run()
    assert got == [0.5]


def test_recv_blocks_until_data():
    kernel = Kernel()
    endpoint = Endpoint(kernel)
    got = []

    def receiver():
        msg = yield Recv(endpoint)
        got.append((msg.payload, kernel.now))

    def sender():
        yield Delay(2.0)
        yield Send(endpoint, Message("late"))

    kernel.spawn(receiver())
    kernel.spawn(sender())
    kernel.run()
    assert got == [("late", 2.0)]


def test_messages_preserve_fifo_order():
    kernel = Kernel()
    endpoint = Endpoint(kernel)
    got = []

    def sender():
        for i in range(5):
            yield Send(endpoint, Message(i))

    def receiver():
        for _ in range(5):
            msg = yield Recv(endpoint)
            got.append(msg.payload)

    kernel.spawn(sender())
    kernel.spawn(receiver())
    kernel.run()
    assert got == [0, 1, 2, 3, 4]


def test_multiple_receivers_served_fifo():
    kernel = Kernel()
    endpoint = Endpoint(kernel)
    got = []

    def receiver(tag):
        msg = yield Recv(endpoint)
        got.append((tag, msg.payload))

    def sender():
        yield Delay(1.0)
        yield Send(endpoint, Message("a"))
        yield Send(endpoint, Message("b"))

    kernel.spawn(receiver("r1"))
    kernel.spawn(receiver("r2"))
    kernel.spawn(sender())
    kernel.run()
    assert got == [("r1", "a"), ("r2", "b")]


def test_observers_fire_on_buffered_data():
    kernel = Kernel()
    endpoint = Endpoint(kernel)
    fired = []
    endpoint.observers.append(lambda ep: fired.append(ep.readable))

    def sender():
        yield Send(endpoint, Message("x"))

    kernel.spawn(sender())
    kernel.run()
    assert fired == [True]
    assert endpoint.try_recv().payload == "x"
    assert endpoint.try_recv() is None


def test_observer_not_fired_when_receiver_waiting():
    kernel = Kernel()
    endpoint = Endpoint(kernel)
    fired = []
    endpoint.observers.append(lambda ep: fired.append(1))

    def receiver():
        yield Recv(endpoint)

    def sender():
        yield Delay(1.0)
        yield Send(endpoint, Message("x"))

    kernel.spawn(receiver())
    kernel.spawn(sender())
    kernel.run()
    assert fired == []


def test_bandwidth_limits_delivery_time():
    kernel = Kernel()
    endpoint = Endpoint(kernel, latency=0.1, bandwidth=1_000_000)  # 1 MB/s
    got = []

    def sender():
        yield Send(endpoint, Message("big", 500_000))  # 0.5s transmit

    def receiver():
        yield Recv(endpoint)
        got.append(kernel.now)

    kernel.spawn(sender())
    kernel.spawn(receiver())
    kernel.run()
    assert got == [pytest.approx(0.6)]


def test_bandwidth_serialises_back_to_back_sends():
    kernel = Kernel()
    endpoint = Endpoint(kernel, bandwidth=1_000_000)
    got = []

    def sender():
        yield Send(endpoint, Message("a", 1_000_000))  # 1s
        yield Send(endpoint, Message("b", 1_000_000))  # queued behind a

    def receiver():
        for _ in range(2):
            msg = yield Recv(endpoint)
            got.append((msg.payload, kernel.now))

    kernel.spawn(sender())
    kernel.spawn(receiver())
    kernel.run()
    assert got[0] == ("a", pytest.approx(1.0))
    assert got[1] == ("b", pytest.approx(2.0))


def test_invalid_bandwidth_rejected():
    with pytest.raises(ValueError):
        Endpoint(Kernel(), bandwidth=0)


def test_byte_accounting():
    kernel = Kernel()
    endpoint = Endpoint(kernel)

    def sender():
        yield Send(endpoint, Message("a", 100))
        yield Send(endpoint, Message("b", 50))

    kernel.spawn(sender())
    kernel.run()
    assert endpoint.delivered_messages == 2
    assert endpoint.delivered_bytes == 150


def test_listener_accept_before_connect():
    kernel = Kernel()
    listener = Listener(kernel)
    got = []

    def server():
        conn = yield Accept(listener)
        got.append(conn.conn_id)

    def client():
        yield Delay(1.0)
        listener.connect()

    kernel.spawn(server())
    kernel.spawn(client())
    kernel.run()
    assert len(got) == 1
    assert listener.accepted_count == 1


def test_listener_backlog_and_observers():
    kernel = Kernel()
    listener = Listener(kernel)
    fired = []
    listener.observers.append(lambda lst: fired.append(1))
    conn = listener.connect()
    assert listener.readable
    assert fired == [1]
    assert listener.try_accept() is conn
    assert listener.try_accept() is None


def test_connection_endpoints_are_independent():
    kernel = Kernel()
    conn = Connection(kernel)
    got = []

    def client():
        yield Send(conn.to_server, Message("req"))
        resp = yield Recv(conn.to_client)
        got.append(resp.payload)

    def server():
        req = yield Recv(conn.to_server)
        yield Send(conn.to_client, Message(req.payload + "-resp"))

    kernel.spawn(client())
    kernel.spawn(server())
    kernel.run()
    assert got == ["req-resp"]


def test_message_negative_size_rejected():
    with pytest.raises(ValueError):
        Message("x", -1)


def test_message_context_bytes():
    from repro.core.synopsis import CompositeSynopsis

    assert Message("x", 10).context_bytes() == 0
    assert Message("x", 10, synopsis=7).context_bytes() == 4
    assert Message("x", 10, synopsis=CompositeSynopsis(1, 2)).context_bytes() == 9
