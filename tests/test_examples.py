"""The example scripts must stay runnable — they are documentation."""

import importlib.util
import json
import pathlib

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "end-to-end transactional profile" in out
    assert "main_caller --> bar --> rpc_call" in out
    assert "callee" in out


def test_apache_example_runs(capsys):
    load_example("apache_shared_memory").main()
    out = capsys.readouterr().out
    assert "flow" in out
    assert "no-flow-allocator" in out
    assert "ap_queue_push" in out
    assert "emulate" in out.lower()


def test_squid_example_runs(capsys):
    load_example("squid_event_profile").main()
    out = capsys.readouterr().out
    assert "cache-hit path" in out
    assert "commHandleWrite" in out


def test_haboob_example_runs(capsys):
    load_example("haboob_seda").main()
    out = capsys.readouterr().out
    assert "WriteStage via cache-hit path" in out


def test_replay_example_runs(capsys):
    load_example("replay_access_log").main()
    out = capsys.readouterr().out
    assert "loaded" in out
    assert "cache hit ratio" in out
    assert "transactional profile of stage squid" in out


def test_quickstart_writes_perfetto_trace(capsys, tmp_path):
    trace = tmp_path / "quickstart_trace.json"
    load_example("quickstart").main(str(trace))
    out = capsys.readouterr().out
    assert "Perfetto-loadable trace" in out
    data = json.loads(trace.read_text())
    events = data["traceEvents"]
    assert events, "trace must contain events"
    # Perfetto requirements: every event has a phase/name/ts.
    assert all("ph" in e and "name" in e and "ts" in e for e in events)
    assert any(e.get("cat") == "channel.send" for e in events)
    # Telemetry must be torn down afterwards (no leak into later tests).
    from repro import telemetry

    assert telemetry.active() is None


def test_tpcw_example_importable():
    # The full TPC-W example takes ~30s; just verify it loads and its
    # pieces exist (the integration suite covers the system itself).
    module = load_example("tpcw_bookstore")
    assert callable(module.profile_run)
    assert callable(module.optimised_runs)
    assert callable(module.telemetry_run)


def test_tpcw_example_telemetry_run(capsys, tmp_path):
    trace = tmp_path / "tpcw_trace.json"
    metrics = tmp_path / "tpcw_metrics.prom"
    load_example("tpcw_bookstore").telemetry_run(
        str(trace), clients=6, duration=2.0, warmup=0.5,
        metrics_out=str(metrics),
    )
    out = capsys.readouterr().out
    assert "Perfetto-loadable trace" in out
    assert "live telemetry summary" in out
    data = json.loads(trace.read_text())
    assert any(
        e.get("cat") == "transaction.hop" for e in data["traceEvents"]
    )
    text = metrics.read_text()
    assert "# TYPE repro_sim_events_fired_total counter" in text
    from repro import telemetry

    assert telemetry.active() is None
