"""Tests for benchmarks/trend.py (pairwise deltas, gates, history)."""

import importlib.util
import json
import os

import pytest


@pytest.fixture(scope="module")
def trend():
    path = os.path.join(
        os.path.dirname(__file__), os.pardir, "benchmarks", "trend.py"
    )
    spec = importlib.util.spec_from_file_location("trend", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write(path, doc):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle)
    return str(path)


def test_pairwise_gate(trend, tmp_path, capsys):
    old = _write(tmp_path / "old.json", {"hot": {"eps": 100.0}})
    new = _write(tmp_path / "new.json", {"hot": {"eps": 60.0}})
    assert trend.main(["trend", old, new, "--gate", "hot.eps:0.5"]) == 0
    assert trend.main(["trend", old, new, "--gate", "hot.eps:0.7"]) == 1
    capsys.readouterr()


def test_history_emitter(trend, tmp_path, capsys):
    snaps = [
        _write(tmp_path / f"s{i}.json", {"hot": {"eps": value, "tag": "x"}})
        for i, value in enumerate((100.0, 120.0, 115.0))
    ]
    out = tmp_path / "history.json"
    assert trend.main(["trend", "--history", str(out)] + snaps) == 0
    capsys.readouterr()
    doc = json.loads(out.read_text())
    assert [entry["label"] for entry in doc["series"]] == ["s0", "s1", "s2"]
    # Non-numeric leaves are dropped; sparklines can't draw strings.
    assert all("tag" not in entry["metrics"] for entry in doc["series"])
    assert [entry["metrics"]["hot.eps"] for entry in doc["series"]] == [
        100.0,
        120.0,
        115.0,
    ]
    # The HTML report consumes this document directly.
    from repro.analysis.htmlreport import trend_section

    section = trend_section(doc)
    assert "polyline" in section
    assert "hot.eps" in section


def test_history_requires_output_and_inputs(trend, capsys):
    assert trend.main(["trend", "--history"]) == 2
    assert trend.main(["trend", "--history", "out.json"]) == 2
    capsys.readouterr()
