"""Unit tests for the TPC-W servlets and their caching rules."""

import pytest

from repro.apps.tpcw.model import INTERACTIONS, TpcwModel
from repro.apps.tpcw.servlets import (
    RESULT_CACHE_TTL,
    BestSellersServlet,
    SearchResultServlet,
    TpcwServlet,
    build_servlets,
)
from repro.sim import Rng


@pytest.fixture
def model():
    return TpcwModel(Rng(2))


def test_build_servlets_covers_all_interactions(model):
    servlets = build_servlets(model)
    assert set(servlets) == set(INTERACTIONS)
    assert isinstance(servlets["BestSellers"], BestSellersServlet)
    assert isinstance(servlets["SearchResult"], SearchResultServlet)
    assert type(servlets["Home"]) is TpcwServlet


def test_only_the_two_paper_servlets_are_cacheable(model):
    servlets = build_servlets(model)
    cacheable = {name for name, s in servlets.items() if s.cacheable}
    assert cacheable == {"BestSellers", "SearchResult"}


def test_bestsellers_cached_per_subject_for_30s(model):
    servlet = build_servlets(model)["BestSellers"]
    assert servlet.cache_key(3) == ("BestSellers", 3)
    assert servlet.cache_key(3) != servlet.cache_key(4)
    assert servlet.cache_ttl_for(3) == RESULT_CACHE_TTL == 30.0


def test_searchresult_ttl_depends_on_search_type(model):
    """Clause 6.3.3.1: subject searches 30s; title/author forever."""
    servlet = build_servlets(model)["SearchResult"]
    assert servlet.cache_ttl_for(("subject", 5)) == RESULT_CACHE_TTL
    assert servlet.cache_ttl_for(("title", 123)) is None
    assert servlet.cache_ttl_for(("author", 9)) is None


def test_page_sizes_positive(model):
    for servlet in build_servlets(model).values():
        assert servlet.page_bytes > 0
