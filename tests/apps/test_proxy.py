"""Integration tests: the Squid-like proxy under a web workload (§8.2)."""

import pytest

from repro.apps.proxy import LruCache, OriginServer, SquidProxy
from repro.core.context import TransactionContext
from repro.core.profiler import ProfilerMode
from repro.sim import Kernel, Rng
from repro.workloads import HttpClientPool, WebTrace


def ctxt(*elements):
    return TransactionContext(elements)


HIT_WRITE = ctxt("httpAccept", "clientReadRequest", "commHandleWrite")
MISS_WRITE = ctxt("httpAccept", "clientReadRequest", "httpReadReply", "commHandleWrite")
READ_REPLY = ctxt("httpAccept", "clientReadRequest", "httpReadReply")


# ----------------------------------------------------------------------
# LruCache unit tests
# ----------------------------------------------------------------------
def test_cache_hit_miss_counting():
    cache = LruCache(1000)
    assert cache.lookup("a") is None
    cache.insert("a", "va", 100)
    assert cache.lookup("a") == ("va", 100)
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_ratio == 0.5


def test_cache_lru_eviction():
    cache = LruCache(250)
    cache.insert("a", 1, 100)
    cache.insert("b", 2, 100)
    cache.lookup("a")  # refresh a
    cache.insert("c", 3, 100)  # evicts b
    assert "a" in cache and "c" in cache and "b" not in cache
    assert cache.evictions == 1
    assert cache.used_bytes == 200


def test_cache_oversized_object_not_cached():
    cache = LruCache(100)
    cache.insert("big", 1, 200)
    assert "big" not in cache
    assert len(cache) == 0


def test_cache_reinsert_updates_size():
    cache = LruCache(300)
    cache.insert("a", 1, 100)
    cache.insert("a", 2, 200)
    assert cache.used_bytes == 200
    assert cache.lookup("a") == (2, 200)


def test_cache_invalidate():
    cache = LruCache(100)
    cache.insert("a", 1, 50)
    assert cache.invalidate("a")
    assert not cache.invalidate("a")
    assert cache.used_bytes == 0


def test_cache_validation():
    with pytest.raises(ValueError):
        LruCache(0)
    with pytest.raises(ValueError):
        LruCache(10).insert("a", 1, -5)


# ----------------------------------------------------------------------
# Full proxy integration
# ----------------------------------------------------------------------
def run_squid(mode=ProfilerMode.WHODUNIT, clients=4, seconds=2.0, seed=11,
              objects=150):
    kernel = Kernel()
    trace = WebTrace(Rng(seed), objects=objects, requests_per_connection_mean=4.0)
    origin = OriginServer(kernel, size_of=lambda key: trace.size_of(key[1]))
    origin.start()
    squid = SquidProxy(kernel, origin.listener, mode=mode)
    squid.start()
    pool = HttpClientPool(kernel, squid.listener, trace, clients=clients)
    pool.start()
    kernel.run(until=seconds)
    return squid, origin, pool


def test_proxy_serves_requests():
    squid, origin, pool = run_squid()
    assert squid.responses_sent > 50
    assert pool.log.count() > 50
    assert squid.bytes_to_clients > 0


def test_cache_hits_and_misses_both_occur():
    squid, origin, pool = run_squid()
    assert squid.cache.hits > 0
    assert squid.cache.misses > 0
    # Zipf popularity makes the hit ratio substantial.
    assert squid.cache.hit_ratio > 0.4
    # Misses were fetched from the origin.
    assert origin.requests_served == squid.cache.misses


def test_commhandlewrite_appears_in_two_contexts():
    """Fig 9's headline: hit and miss writes are distinct contexts."""
    squid, _, _ = run_squid()
    labels = set(squid.stage.ccts.keys())
    assert HIT_WRITE in labels
    assert MISS_WRITE in labels
    hit_weight = squid.stage.ccts[HIT_WRITE].total_weight()
    miss_weight = squid.stage.ccts[MISS_WRITE].total_weight()
    assert hit_weight > 0 and miss_weight > 0


def test_read_reply_context_excludes_connect_after_warmup():
    """With persistent origin connections, httpReadReply mostly runs

    directly under clientReadRequest (commConnectHandle is tiny)."""
    squid, _, _ = run_squid(seconds=3.0)
    labels = squid.stage.ccts
    assert READ_REPLY in labels
    connect_ctxt = ctxt("httpAccept", "clientReadRequest", "commConnectHandle")
    total = squid.stage.total_weight()
    connect_weight = sum(
        cct.total_weight()
        for label, cct in labels.items()
        if "commConnectHandle" in label.elements
    )
    assert connect_weight / total < 0.1
    assert labels[READ_REPLY].total_weight() > connect_weight


def test_sample_paths_run_through_comm_poll():
    squid, _, _ = run_squid()
    cct = squid.stage.ccts[HIT_WRITE]
    flat = cct.flatten()
    assert any(path[0] == "comm_poll" for path in flat)


def test_persistent_connections_reuse_origin_pool():
    squid, origin, _ = run_squid(seconds=3.0)
    # Far fewer origin connections than origin requests.
    assert origin.listener.accepted_count < origin.requests_served


def test_profiling_off_still_serves():
    squid, _, pool = run_squid(mode=ProfilerMode.OFF)
    assert squid.responses_sent > 50
    assert squid.stage.ccts == {}


def test_whodunit_overhead_on_squid_is_modest():
    baseline, _, _ = run_squid(mode=ProfilerMode.OFF, seconds=2.0)
    profiled, _, _ = run_squid(mode=ProfilerMode.WHODUNIT, seconds=2.0)
    # §9.3: ~5.5% throughput cost; allow a loose band.
    assert profiled.bytes_to_clients > baseline.bytes_to_clients * 0.8
    assert profiled.bytes_to_clients <= baseline.bytes_to_clients * 1.02
