"""Tests for the MySQL-like engine: locking, crosstalk, stats counter."""

import pytest

from repro.apps.db import Database, DatabaseServer, INNODB, MYISAM, QueryPlan, Table
from repro.channels.rpc import call
from repro.core.context import TransactionContext
from repro.core.flow import NO_FLOW_STATEFUL
from repro.core.profiler import ProfilerMode, StageRuntime
from repro.sim import CurrentThread, Delay, Kernel
from repro.sim.process import frame


def ctxt(*elements):
    return TransactionContext(elements)


def make_db(**kwargs):
    kernel = Kernel()
    db = Database(kernel, **kwargs)
    db.add_table(Table("item", rows=1000, engine=MYISAM))
    db.add_table(Table("orders", rows=5000, engine=MYISAM))
    return kernel, db


def run_query(kernel, db, plan, tx=None, delay=0.0, done=None):
    def runner():
        thread = yield CurrentThread()
        if tx is not None:
            thread.tran_ctxt = tx
        if delay:
            yield Delay(delay)
        yield from db.execute(thread, plan)
        if done is not None:
            done.append(kernel.now)

    kernel.spawn(runner(), stage=db.stage)


def test_read_query_executes():
    kernel, db = make_db()
    done = []
    run_query(kernel, db, QueryPlan("q", reads=("item",), cpu_cost=0.01), done=done)
    kernel.run()
    assert db.queries_executed == 1
    assert done and done[0] >= 0.01


def test_myisam_readers_do_not_block_each_other():
    kernel, db = make_db()
    done = []
    plan = QueryPlan("read", reads=("item",), cpu_cost=0.0)

    def reader():
        thread = yield CurrentThread()
        yield from db.execute(thread, plan)
        done.append(kernel.now)

    # Two pure readers with zero cost complete immediately (no blocking;
    # the 2x parse cost is the only serialised part on one CPU).
    kernel.spawn(reader(), stage=db.stage)
    kernel.spawn(reader(), stage=db.stage)
    kernel.run()
    assert len(done) == 2


def test_myisam_readers_stream_past_queued_writer():
    """MyISAM table locks are reader-priority: a later reader overtakes

    the queued writer (the starvation the InnoDB conversion fixes)."""
    kernel, db = make_db()
    events = []
    heavy_read = QueryPlan("bestsellers", reads=("item",), cpu_cost=0.2)
    write = QueryPlan("admin", writes=(("item", 7),), cpu_cost=0.05)

    def reader(tag, delay):
        thread = yield CurrentThread()
        thread.tran_ctxt = ctxt(tag)
        yield Delay(delay)
        yield from db.execute(thread, heavy_read)
        events.append((tag, kernel.now))

    def writer():
        thread = yield CurrentThread()
        thread.tran_ctxt = ctxt("AdminConfirm")
        yield Delay(0.05)
        yield from db.execute(thread, write)
        events.append(("AdminConfirm", kernel.now))

    kernel.spawn(reader("BestSellers", 0.0), stage=db.stage)
    kernel.spawn(writer(), stage=db.stage)
    kernel.spawn(reader("Search", 0.1), stage=db.stage)  # bypasses the writer
    kernel.run()
    order = [tag for tag, _ in events]
    assert order == ["BestSellers", "Search", "AdminConfirm"]


def test_myisam_starvation_limit_eventually_blocks_new_readers():
    from repro.apps.db.locks import WRITER_STARVATION_LIMIT

    kernel, db = make_db()
    events = []
    long_read = QueryPlan("read", reads=("item",), cpu_cost=3.0)
    write = QueryPlan("admin", writes=(("item", 1),), cpu_cost=0.01)

    def reader(tag, delay):
        thread = yield CurrentThread()
        yield Delay(delay)
        yield from db.execute(thread, long_read)
        events.append((tag, kernel.now))

    def writer():
        thread = yield CurrentThread()
        yield Delay(0.05)
        yield from db.execute(thread, write)
        events.append(("writer", kernel.now))

    # A stream of overlapping long readers; without the limit the writer
    # would wait for all of them.
    kernel.spawn(reader("r0", 0.0), stage=db.stage)
    kernel.spawn(writer(), stage=db.stage)
    for i in range(1, 6):
        kernel.spawn(reader(f"r{i}", i * 2.0), stage=db.stage)
    kernel.run()
    writer_done = dict((tag, t) for tag, t in events)["writer"]
    last_reader = max(t for tag, t in events if tag != "writer")
    assert writer_done < last_reader  # the writer did not wait for all
    table_lock = db.table("item").table_lock
    assert table_lock.writer_starvation_limit == WRITER_STARVATION_LIMIT


def test_crosstalk_attributes_writer_wait_to_reader_context():
    def type_of(c):
        return c.elements[0] if len(c) else None

    kernel = Kernel()
    db = Database(kernel, type_of=type_of)
    db.add_table(Table("item", engine=MYISAM))
    heavy_read = QueryPlan("bestsellers", reads=("item",), cpu_cost=0.2)
    write = QueryPlan("admin", writes=(("item", 1),), cpu_cost=0.01)

    run_query(kernel, db, heavy_read, tx=ctxt("BestSellers"))
    run_query(kernel, db, write, tx=ctxt("AdminConfirm"), delay=0.05)
    kernel.run()
    wait = db.crosstalk.mean_wait("AdminConfirm", "BestSellers")
    assert wait > 0.1  # waited for the reader's CPU burst under lock


def test_innodb_writer_does_not_block_readers():
    kernel = Kernel()
    db = Database(kernel)
    db.add_table(Table("item", engine=INNODB))
    events = []
    read = QueryPlan("read", reads=("item",), cpu_cost=0.0)
    write = QueryPlan("write", writes=(("item", 3),), cpu_cost=0.5)

    def writer():
        thread = yield CurrentThread()
        yield from db.execute(thread, write)
        events.append(("w", kernel.now))

    def reader():
        thread = yield CurrentThread()
        yield Delay(0.01)
        yield from db.execute(thread, read)
        events.append(("r", kernel.now))

    kernel.spawn(writer(), stage=db.stage)
    kernel.spawn(reader(), stage=db.stage)
    kernel.run()
    # The reader finishes long before the writer's CPU burst ends...
    # except both share one CPU; the reader's work is parse-only and the
    # CPU is FCFS per slice, so the reader still finishes first.
    assert events[0][0] == "r"


def test_innodb_row_locks_are_per_row():
    kernel = Kernel()
    db = Database(kernel)
    table = db.add_table(Table("item", engine=INNODB))
    done = []
    w1 = QueryPlan("w1", writes=(("item", 1),), cpu_cost=0.1)
    w2 = QueryPlan("w2", writes=(("item", 2),), cpu_cost=0.1)

    def writer(plan):
        thread = yield CurrentThread()
        yield from db.execute(thread, plan)
        done.append(kernel.now)

    kernel.spawn(writer(w1), stage=db.stage)
    kernel.spawn(writer(w2), stage=db.stage)
    kernel.run()
    # Different rows: no lock conflict; the round-robin CPU interleaves
    # the two bursts and both finish around 0.2s with no lock waits.
    assert len(done) == 2
    assert all(t == pytest.approx(0.2, abs=0.02) for t in done)
    assert table.row_lock(1).wait_count == 0
    assert table.row_lock(2).wait_count == 0


def test_convert_table_engine():
    table = Table("item", engine=MYISAM)
    assert table.read_locks() == [table.table_lock]
    table.convert(INNODB)
    assert table.read_locks() == []
    assert len(table.write_locks([5, 5, 6])) == 2
    with pytest.raises(ValueError):
        table.convert("isam")


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        Table("x", engine="heap")


def test_stats_counter_classified_no_flow_stateful():
    """§8.1: Whodunit detects MySQL's shared counter and correctly

    deduces it does not constitute transaction flow."""
    kernel, db = make_db()
    threshold = db.region.detector.stateful_threshold
    plan = QueryPlan("tiny", reads=("item",), cpu_cost=1e-6)
    for i in range(threshold):
        run_query(kernel, db, plan, delay=i * 0.001)
    kernel.run()
    classification = db.region.detector.roles.for_lock(db.stats_mutex).classification
    assert classification == NO_FLOW_STATEFUL
    assert db.region.detector.flow_edges() == []
    assert db.stats_counter.value(db.region.machine.memory) == threshold


def test_database_server_round_trip_propagates_context():
    kernel = Kernel()
    db = Database(kernel)
    db.add_table(Table("item", engine=MYISAM))
    server = DatabaseServer(db, latency=0.0)
    server.start()
    web = StageRuntime("tomcat", mode=ProfilerMode.WHODUNIT)
    plan = QueryPlan("q", reads=("item",), cpu_cost=0.01, response_bytes=500)
    log = {}

    def client():
        thread = yield CurrentThread()
        connection = server.listener.connect()
        with frame(thread, "servlet"):
            with frame(thread, "BestSellers"):
                response = yield from call(
                    thread, connection.to_server, connection.to_client, plan, 200
                )
                log["response"] = response.payload

    kernel.spawn(client(), stage=web)
    kernel.run(until=1.0)
    assert log["response"] == ("rows", "q")
    # The db profile has a CCT labeled with the servlet's synopsis; the
    # heavy frames sit under mysql_execute_command.
    from repro.core.stitch import stitch_profiles

    profile = stitch_profiles([web, db.stage])
    db_contexts = profile.contexts_of("mysql")
    assert ctxt("servlet", "BestSellers") in db_contexts
    cct = profile.cct("mysql", ctxt("servlet", "BestSellers"))
    flat = cct.by_frame()
    assert flat.get("do_select", 0) > 0
