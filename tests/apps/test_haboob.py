"""Integration tests: the Haboob-like SEDA server (§8.3)."""

import pytest

from repro.apps.haboob import HaboobConfig, HaboobServer
from repro.core.context import TransactionContext
from repro.core.profiler import ProfilerMode
from repro.sim import Kernel, Rng
from repro.workloads import HttpClientPool, WebTrace


def ctxt(*elements):
    return TransactionContext(elements)


HIT_WRITE = ctxt(
    "ListenStage", "HttpServer", "ReadStage", "HttpRecv", "CacheStage", "WriteStage"
)
MISS_WRITE = ctxt(
    "ListenStage",
    "HttpServer",
    "ReadStage",
    "HttpRecv",
    "CacheStage",
    "MissStage",
    "FileIOStage",
    "WriteStage",
)


def run_haboob(mode=ProfilerMode.WHODUNIT, clients=4, seconds=2.0, seed=23):
    kernel = Kernel()
    trace = WebTrace(Rng(seed), objects=150, requests_per_connection_mean=4.0)
    server = HaboobServer(kernel, trace, mode=mode)
    server.start()
    pool = HttpClientPool(kernel, server.listener, trace, clients=clients)
    pool.start()
    kernel.run(until=seconds)
    return server, pool


def test_serves_requests():
    server, pool = run_haboob()
    assert server.responses_sent > 40
    assert pool.log.count() > 40
    assert server.page_cache.hits > 0
    assert server.page_cache.misses > 0


def test_write_stage_has_hit_and_miss_contexts():
    """Fig 10: WriteStage appears once per path, hit and miss."""
    server, _ = run_haboob()
    labels = server.stage_runtime.ccts
    assert HIT_WRITE in labels
    assert MISS_WRITE in labels
    assert labels[HIT_WRITE].total_weight() > 0
    assert labels[MISS_WRITE].total_weight() > 0


def test_write_stage_dominates_profile():
    """Fig 10: the WriteStage carries most of Haboob's CPU."""
    server, _ = run_haboob(seconds=3.0)
    runtime = server.stage_runtime
    total = runtime.total_weight()
    write_weight = sum(
        cct.total_weight()
        for label, cct in runtime.ccts.items()
        if label.elements and label.elements[-1] == "WriteStage"
    )
    assert write_weight / total > 0.5


def test_stage_contexts_form_the_fig10_graph():
    server, _ = run_haboob()
    labels = set(server.stage_runtime.ccts.keys())
    # Each prefix of the pipeline is a context of the stage at its end.
    assert ctxt("ListenStage") in labels
    assert ctxt("ListenStage", "HttpServer") in labels
    assert ctxt("ListenStage", "HttpServer", "ReadStage") in labels
    miss_prefix = ctxt(
        "ListenStage", "HttpServer", "ReadStage", "HttpRecv", "CacheStage", "MissStage"
    )
    assert miss_prefix in labels


def test_persistent_connection_prunes_loop():
    """Re-entering ReadStage after WriteStage prunes, so no context

    grows beyond the two canonical paths."""
    server, _ = run_haboob(seconds=3.0)
    for label in server.stage_runtime.ccts:
        elements = list(label.elements)
        assert len(elements) == len(set(elements)), f"loop in {label!r}"
        assert len(elements) <= len(MISS_WRITE.elements)


def test_profiling_off_serves_identically():
    server, _ = run_haboob(mode=ProfilerMode.OFF)
    assert server.responses_sent > 40
    assert server.stage_runtime.ccts == {}


def test_whodunit_overhead_on_haboob_is_modest():
    baseline, _ = run_haboob(mode=ProfilerMode.OFF)
    profiled, _ = run_haboob(mode=ProfilerMode.WHODUNIT)
    # §9.3: ~4.2% throughput cost; allow a loose band.
    assert profiled.bytes_sent > baseline.bytes_sent * 0.8
    assert profiled.bytes_sent <= baseline.bytes_sent * 1.02
