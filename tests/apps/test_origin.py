"""Tests for the chunk-streaming origin server."""

import pytest

from repro.apps.proxy.origin import CHUNK_BYTES, OriginServer
from repro.channels import Message, Recv, Send
from repro.sim import CurrentThread, Kernel


def fetch(kernel, origin, key, chunks_out):
    def client():
        yield CurrentThread()
        connection = origin.listener.connect()
        yield Send(connection.to_server, Message(key, 100))
        while True:
            chunk = yield Recv(connection.to_client)
            chunks_out.append(chunk)
            if chunk.last:
                return

    kernel.spawn(client())


def test_small_object_single_chunk():
    kernel = Kernel()
    origin = OriginServer(kernel, size_of=lambda key: 1000, latency=0.0)
    origin.start()
    chunks = []
    fetch(kernel, origin, "obj", chunks)
    kernel.run(until=1.0)
    assert len(chunks) == 1
    assert chunks[0].size == 1000
    assert chunks[0].last


def test_large_object_streams_chunks():
    kernel = Kernel()
    size = int(CHUNK_BYTES * 2.5)
    origin = OriginServer(kernel, size_of=lambda key: size, latency=0.0)
    origin.start()
    chunks = []
    fetch(kernel, origin, "big", chunks)
    kernel.run(until=1.0)
    assert len(chunks) == 3
    assert sum(c.size for c in chunks) == size
    assert [c.last for c in chunks] == [False, False, True]
    assert origin.requests_served == 1


def test_zero_size_object():
    kernel = Kernel()
    origin = OriginServer(kernel, size_of=lambda key: 0, latency=0.0)
    origin.start()
    chunks = []
    fetch(kernel, origin, "empty", chunks)
    kernel.run(until=1.0)
    assert len(chunks) == 1
    assert chunks[0].size == 0
    assert chunks[0].last


def test_multiple_requests_on_one_connection():
    kernel = Kernel()
    origin = OriginServer(kernel, size_of=lambda key: 500, latency=0.0)
    origin.start()
    got = []

    def client():
        yield CurrentThread()
        connection = origin.listener.connect()
        for i in range(3):
            yield Send(connection.to_server, Message(("GET", i), 100))
            chunk = yield Recv(connection.to_client)
            got.append(chunk.payload)

    kernel.spawn(client())
    kernel.run(until=1.0)
    assert got == [("GET", 0), ("GET", 1), ("GET", 2)]
    assert origin.requests_served == 3
