"""Tests for the TPC-W model: parameters, plans, lock footprints."""

import pytest

from repro.apps.tpcw.model import (
    BROWSING_MIX,
    DB_CPU_COST,
    INTERACTIONS,
    NUM_ITEMS,
    NUM_SUBJECTS,
    SCAN_FRACTION,
    UPDATE_COST,
    TpcwModel,
)
from repro.sim import Rng


@pytest.fixture
def model():
    return TpcwModel(Rng(9))


def test_param_generation_in_range(model):
    for _ in range(200):
        assert 0 <= model.subject() < NUM_SUBJECTS
        assert 0 <= model.item_id() < NUM_ITEMS
    kind, term = model.search_param()
    assert kind in ("subject", "title", "author")


def test_param_for_every_interaction(model):
    for interaction in INTERACTIONS:
        model.param_for(interaction)  # must not raise


def test_plans_exist_for_every_interaction(model):
    for interaction in INTERACTIONS:
        plans = model.query_plans(interaction, model.param_for(interaction))
        assert plans, interaction
        total = sum(plan.cpu_cost for plan in plans)
        assert total == pytest.approx(DB_CPU_COST[interaction], rel=1e-6)


def test_heavy_queries_split_scan_and_sort(model):
    plans = model.query_plans("BestSellers", 3)
    assert [p.name for p in plans] == ["BestSellers.scan", "BestSellers.sort"]
    scan, sort = plans
    assert scan.reads == ("item", "orders")
    assert sort.reads == ()  # sort holds no table locks
    assert scan.cpu_cost == pytest.approx(
        DB_CPU_COST["BestSellers"] * SCAN_FRACTION
    )


def test_admin_confirm_updates_item_rows(model):
    plans = model.query_plans("AdminConfirm", 77)
    names = [p.name for p in plans]
    assert names == [
        "AdminConfirm.scan",
        "AdminConfirm.sort",
        "AdminConfirm.update",
        "AdminConfirm.related",
    ]
    update = plans[2]
    assert update.writes == (("item", 77),)
    assert update.cpu_cost == UPDATE_COST
    related = plans[3]
    assert all(table == "item" for table, _ in related.writes)


def test_buy_confirm_writes_stock_and_order(model):
    plans = model.query_plans("BuyConfirm", 5)
    update = plans[1]
    tables = {table for table, _ in update.writes}
    assert tables == {"item", "orders"}


def test_read_only_interactions_write_nothing(model):
    for interaction in ("Home", "ProductDetail", "SearchRequest", "BestSellers"):
        for plan in model.query_plans(interaction, model.param_for(interaction)):
            assert plan.writes == (), interaction


def test_mix_and_cost_tables_consistent():
    assert set(BROWSING_MIX) == set(INTERACTIONS)
    assert set(DB_CPU_COST) == set(INTERACTIONS)
    assert sum(BROWSING_MIX.values()) == pytest.approx(100.0)
    # The Table 1 calibration: share ∝ weight × cost; BestSellers and
    # SearchResult must dominate.
    shares = {
        name: BROWSING_MIX[name] * DB_CPU_COST[name] for name in INTERACTIONS
    }
    total = sum(shares.values())
    assert shares["BestSellers"] / total == pytest.approx(0.515, abs=0.05)
    assert shares["SearchResult"] / total == pytest.approx(0.433, abs=0.05)


def test_all_three_mixes_are_valid():
    from repro.apps.tpcw.model import MIXES

    assert set(MIXES) == {"browsing", "shopping", "ordering"}
    for name, mix in MIXES.items():
        assert set(mix) == set(INTERACTIONS), name
        assert sum(mix.values()) == pytest.approx(100.0), name


def test_ordering_mix_is_write_heavy():
    from repro.apps.tpcw.model import BROWSING_MIX, ORDERING_MIX

    writers = ("BuyConfirm", "CustomerRegistration", "BuyRequest")
    browsing = sum(BROWSING_MIX[w] for w in writers)
    ordering = sum(ORDERING_MIX[w] for w in writers)
    assert ordering > 10 * browsing


def test_model_is_deterministic():
    a = TpcwModel(Rng(4))
    b = TpcwModel(Rng(4))
    assert [a.param_for("ProductDetail") for _ in range(20)] == [
        b.param_for("ProductDetail") for _ in range(20)
    ]
