"""Integration tests: the Apache-like server under a web workload.

These validate §8.1's claims: transaction flow through the shared queue
is detected, the listener's context labels the workers' profiles, and
the synchronized allocator is classified no-flow.
"""

import pytest

from repro.apps.httpd import HttpdConfig, HttpdServer
from repro.core.context import TransactionContext
from repro.core.flow import FLOW, NO_FLOW_ALLOCATOR
from repro.core.profiler import LOCAL, ProfilerMode
from repro.sim import Kernel, Rng
from repro.workloads import HttpClientPool, WebTrace

LISTENER_PUSH_CTXT = TransactionContext(
    ("main", "listener_thread", "ap_queue_push")
)


def run_httpd(mode=ProfilerMode.WHODUNIT, clients=4, seconds=2.0, seed=7,
              config=None):
    kernel = Kernel()
    trace = WebTrace(Rng(seed), objects=200, requests_per_connection_mean=3.0)
    server = HttpdServer(kernel, trace, mode=mode, config=config)
    server.start()
    pool = HttpClientPool(kernel, server.listener_socket, trace, clients=clients)
    pool.start()
    kernel.run(until=seconds)
    return server, pool


def test_serves_requests_and_bytes():
    server, pool = run_httpd()
    assert server.requests_served > 50
    # At the horizon cut a response may still be in flight.
    assert 0 <= server.bytes_sent - pool.bytes_received <= 512 * 1024
    assert server.connections_accepted > 10


def test_flow_detected_on_fd_queue():
    server, _ = run_httpd()
    roles = server.region.detector.roles.for_lock(server.queue.mutex)
    assert roles.classification == FLOW
    listener_tid = server.threads[0].tid
    assert listener_tid in roles.producers
    worker_tids = {t.tid for t in server.threads[1:]}
    assert roles.consumers & worker_tids
    assert not roles.consumers & {listener_tid}


def test_allocator_classified_no_flow():
    server, _ = run_httpd()
    roles = server.region.detector.roles.for_lock(server.alloc_mutex)
    assert roles.classification == NO_FLOW_ALLOCATOR
    # After classification, allocator critical sections run natively.
    from repro.vm.emulator import DIRECT

    assert server.region.detector.mode_for(server.alloc_mutex) == DIRECT


def test_worker_profile_labeled_with_listener_context():
    """Fig 8: worker samples are annotated with the listener's context."""
    server, _ = run_httpd()
    stage = server.stage
    assert LISTENER_PUSH_CTXT in stage.ccts
    flow_cct = stage.ccts[LISTENER_PUSH_CTXT]
    # The bulk of worker CPU (ap_process_connection subtree) lands here.
    path = ("main", "worker_thread", "ap_process_connection")
    assert flow_cct.inclusive_weight_of(path) > 0
    sendfile = path + ("sendfile",)
    assert flow_cct.weight_of(sendfile) > 0


def test_listener_samples_in_local_cct():
    server, _ = run_httpd()
    local = server.stage.ccts[LOCAL]
    accept_path = ("main", "listener_thread", "apr_socket_accept")
    assert local.weight_of(accept_path) > 0


def test_worker_share_dominates_listener_share():
    """Fig 8's triangles: ~2.4% under the listener subtree vs ~22.7%

    under ap_process_connection per worker — in aggregate the flow CCT
    dominates the stage profile.
    """
    server, _ = run_httpd(seconds=3.0)
    stage = server.stage
    total = stage.total_weight()
    flow_weight = stage.ccts[LISTENER_PUSH_CTXT].total_weight()
    local_weight = stage.ccts[LOCAL].total_weight()
    assert flow_weight / total > 0.5
    assert local_weight / total < 0.4


def test_profiling_off_serves_identically_but_tracks_nothing():
    server, _ = run_httpd(mode=ProfilerMode.OFF)
    assert server.requests_served > 50
    assert server.stage.ccts == {}
    assert server.region.detector.consume_events == []


def test_whodunit_overhead_is_small():
    baseline, _ = run_httpd(mode=ProfilerMode.OFF, seconds=2.0)
    profiled, _ = run_httpd(mode=ProfilerMode.WHODUNIT, seconds=2.0)
    # §9.2: Whodunit costs a few percent of throughput, not more.
    assert profiled.bytes_sent > baseline.bytes_sent * 0.85
    assert profiled.bytes_sent <= baseline.bytes_sent


def test_no_allocator_config():
    config = HttpdConfig(use_allocator=False)
    server, _ = run_httpd(config=config)
    assert server.requests_served > 0
    roles = server.region.detector.roles.for_lock(server.alloc_mutex)
    assert roles.cs_executions == 0
