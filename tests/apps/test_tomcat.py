"""Tests for the servlet container: dispatch, caching, db pooling."""

import pytest

from repro.apps.db import Database, DatabaseServer, QueryPlan, Table
from repro.apps.tomcat import Servlet, ServletCache, TomcatServer
from repro.channels.rpc import call
from repro.core.profiler import ProfilerMode, work
from repro.sim import CurrentThread, Delay, Kernel
from repro.sim.process import frame


class EchoServlet(Servlet):
    name = "Echo"

    def run(self, container, thread, param):
        yield from work(thread, container.cpu, 1e-4)
        return ("echo", param), 1000


class CacheableServlet(Servlet):
    name = "Cacheable"
    cacheable = True
    cache_ttl = 10.0

    def __init__(self):
        self.executions = 0

    def run(self, container, thread, param):
        self.executions += 1
        yield from work(thread, container.cpu, 1e-3)
        return ("fresh", param), 2000


def make_tomcat(kernel, caching=False, with_db=False, **kwargs):
    db = None
    db_listener = None
    if with_db:
        db = Database(kernel)
        db.add_table(Table("item"))
        server = DatabaseServer(db, latency=0.0)
        server.start()
        db_listener = server.listener
    servlets = {"Echo": EchoServlet(), "Cacheable": CacheableServlet()}
    tomcat = TomcatServer(
        kernel,
        servlets,
        db_listener=db_listener,
        db_connections=2,
        caching=caching,
        listen_latency=0.0,
        **kwargs,
    )
    tomcat.start()
    return tomcat, db


def send_and_wait(kernel, tomcat, payload, out):
    def client():
        thread = yield CurrentThread()
        connection = tomcat.listener.connect()
        response = yield from call(
            thread, connection.to_server, connection.to_client, payload, 100
        )
        out.append(response)

    kernel.spawn(client())


def test_dispatch_to_servlet():
    kernel = Kernel()
    tomcat, _ = make_tomcat(kernel)
    out = []
    send_and_wait(kernel, tomcat, ("TPCW", "Echo", 7), out)
    kernel.run(until=1.0)
    assert out[0].payload == ("echo", 7)
    assert out[0].size == 1000
    assert tomcat.requests_served == 1


def test_unknown_servlet_yields_404():
    kernel = Kernel()
    tomcat, _ = make_tomcat(kernel)
    out = []
    send_and_wait(kernel, tomcat, ("TPCW", "Ghost", None), out)
    kernel.run(until=1.0)
    assert out[0].payload == ("404", "Ghost")


def test_static_image_serving():
    kernel = Kernel()
    tomcat, _ = make_tomcat(kernel, static_size_of=lambda key: 4321)
    out = []
    send_and_wait(kernel, tomcat, ("IMG", 42), out)
    kernel.run(until=1.0)
    assert out[0].payload == ("IMG", 42)
    assert out[0].size == 4321


def test_caching_skips_execution_within_ttl():
    kernel = Kernel()
    tomcat, _ = make_tomcat(kernel, caching=True)
    servlet = tomcat.servlets["Cacheable"]
    out = []
    send_and_wait(kernel, tomcat, ("TPCW", "Cacheable", "k"), out)
    kernel.run(until=1.0)
    send_and_wait(kernel, tomcat, ("TPCW", "Cacheable", "k"), out)
    kernel.run(until=2.0)
    assert servlet.executions == 1
    assert tomcat.cache.hits == 1
    assert out[1].size == 2000  # cached size preserved


def test_cache_expires_after_ttl():
    kernel = Kernel()
    tomcat, _ = make_tomcat(kernel, caching=True)
    servlet = tomcat.servlets["Cacheable"]
    out = []
    send_and_wait(kernel, tomcat, ("TPCW", "Cacheable", "k"), out)
    kernel.run(until=1.0)

    def later():
        yield Delay(11.0)  # beyond the 10s TTL

    kernel.spawn(later())
    kernel.run(until=12.0)
    send_and_wait(kernel, tomcat, ("TPCW", "Cacheable", "k"), out)
    kernel.run(until=13.0)
    assert servlet.executions == 2


def test_caching_disabled_always_executes():
    kernel = Kernel()
    tomcat, _ = make_tomcat(kernel, caching=False)
    servlet = tomcat.servlets["Cacheable"]
    out = []
    for _ in range(3):
        send_and_wait(kernel, tomcat, ("TPCW", "Cacheable", "k"), out)
    kernel.run(until=2.0)
    assert servlet.executions == 3
    assert tomcat.cache.hits == 0


def test_distinct_cache_keys_per_param():
    kernel = Kernel()
    tomcat, _ = make_tomcat(kernel, caching=True)
    servlet = tomcat.servlets["Cacheable"]
    out = []
    send_and_wait(kernel, tomcat, ("TPCW", "Cacheable", "a"), out)
    send_and_wait(kernel, tomcat, ("TPCW", "Cacheable", "b"), out)
    kernel.run(until=1.0)
    assert servlet.executions == 2


def test_servlet_cache_unit():
    kernel = Kernel()
    cache = ServletCache(kernel)
    cache.insert("k", "v", 10, ttl=None)
    assert cache.lookup("k") == ("v", 10)
    assert cache.hits == 1
    assert len(cache) == 1
    assert cache.lookup("missing") is None
    assert cache.misses == 1


class DbServlet(Servlet):
    name = "DbServlet"

    def run(self, container, thread, param):
        plan = QueryPlan("q", reads=("item",), cpu_cost=1e-3)
        yield from container.query(thread, plan)
        return ("done", param), 500


def test_query_through_connection_pool():
    kernel = Kernel()
    tomcat, db = make_tomcat(kernel, with_db=True)
    tomcat.servlets["DbServlet"] = DbServlet()
    out = []
    for i in range(4):
        send_and_wait(kernel, tomcat, ("TPCW", "DbServlet", i), out)
    kernel.run(until=2.0)
    assert len(out) == 4
    assert db.queries_executed == 4
    assert tomcat.db_calls == 4
    assert tomcat.db_pool.available == 2  # all returned


def test_query_without_db_raises():
    kernel = Kernel()
    tomcat, _ = make_tomcat(kernel, with_db=False)
    tomcat.servlets["DbServlet"] = DbServlet()
    out = []
    send_and_wait(kernel, tomcat, ("TPCW", "DbServlet", 1), out)
    with pytest.raises(RuntimeError):
        kernel.run(until=1.0)
