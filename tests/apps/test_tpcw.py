"""Integration tests for the three-tier TPC-W system (§8.4).

Short simulations (tens of virtual seconds) validating the structural
claims; the full Table 1 / Fig 11 / Fig 12 reproductions live in
``benchmarks/``.
"""

import pytest

from repro.apps.db.locks import INNODB
from repro.apps.tpcw import (
    BROWSING_MIX,
    DB_CPU_COST,
    INTERACTIONS,
    TpcwSystem,
)
from repro.core.profiler import ProfilerMode


@pytest.fixture(scope="module")
def busy_system():
    # Long enough that the rare writing interactions (BuyConfirm 0.69%,
    # AdminConfirm 0.09%) appear and contend at least a few times.
    system = TpcwSystem(clients=80, seed=7)
    results = system.run(duration=180.0, warmup=20.0)
    return system, results


def test_mix_weights_sum_to_100():
    assert sum(BROWSING_MIX.values()) == pytest.approx(100.0)
    assert set(BROWSING_MIX) == set(INTERACTIONS)
    assert set(DB_CPU_COST) == set(INTERACTIONS)


def test_all_tiers_serve_requests(busy_system):
    system, results = busy_system
    assert results.log.count() > 300
    assert system.squid.responses_sent > results.log.count()
    assert system.tomcat.requests_served > results.log.count()
    assert system.db.queries_executed > 100


def test_mix_frequencies_roughly_match(busy_system):
    system, results = busy_system
    total = results.log.count()
    home_share = results.log.count("Home") / total
    assert home_share == pytest.approx(0.29, abs=0.06)
    detail_share = results.log.count("ProductDetail") / total
    assert detail_share == pytest.approx(0.21, abs=0.06)


def test_static_images_cached_at_squid(busy_system):
    system, _ = busy_system
    assert system.squid.cache.hits > 0
    # Dynamic pages are never cached at the proxy.
    assert all(key[0] == "IMG" for key in system.squid.cache._entries)


def test_separate_db_context_per_interaction(busy_system):
    """§8.4: Whodunit extends a separate transaction context from Tomcat

    to MySQL for each interaction."""
    system, results = busy_system
    shares = results.db_cpu_share()
    assert "<other>" not in shares or shares.get("<other>", 0) < 1.0
    # The heavy hitters of Table 1 dominate.
    assert shares["BestSellers"] > 35
    assert shares["SearchResult"] > 30
    assert shares["BestSellers"] + shares["SearchResult"] > 80


def test_db_profile_labels_resolve_through_both_hops(busy_system):
    system, _ = busy_system
    from repro.core.stitch import resolve_context

    stages = {
        "squid": system.squid.stage,
        "tomcat": system.tomcat.stage,
        "mysql": system.db.stage,
    }
    for label in system.db.stage.ccts:
        resolved = resolve_context(label, stages)
        # Fully resolved: no synopsis refs remain, and the squid event
        # handlers appear at the front.
        assert all(isinstance(e, str) for e in resolved.elements)
        if len(resolved) > 0:
            assert resolved.elements[0] == "httpAccept"


def test_crosstalk_attributed_to_interactions(busy_system):
    system, results = busy_system
    waits = results.crosstalk_wait_ms()
    # Writers wait far longer than the common read-only interactions.
    writer_wait = max(
        waits.get("BuyConfirm", 0.0), waits.get("AdminConfirm", 0.0)
    )
    assert writer_wait > waits.get("Home", 0.0)
    assert writer_wait > 1.0


def test_context_bytes_are_tiny_fraction_of_data(busy_system):
    """§9.1: ~1% communication overhead."""
    system, results = busy_system
    comm = results.comm_overhead()
    assert comm["context_bytes"] > 0
    assert comm["context_bytes"] < 0.02 * comm["data_bytes"]


def test_caching_raises_throughput():
    base = TpcwSystem(clients=200, seed=5).run(duration=60, warmup=20)
    cached = TpcwSystem(clients=200, seed=5, caching=True).run(duration=60, warmup=20)
    assert cached.throughput_tpm() > base.throughput_tpm() * 1.2


def test_innodb_reduces_adminconfirm_response():
    base = TpcwSystem(clients=200, seed=8).run(duration=120, warmup=20)
    inno = TpcwSystem(clients=200, seed=8, item_engine=INNODB).run(
        duration=120, warmup=20
    )
    if base.log.count("AdminConfirm") and inno.log.count("AdminConfirm"):
        assert inno.mean_response("AdminConfirm") < base.mean_response(
            "AdminConfirm"
        )


def test_shopping_mix_changes_load_shape():
    browsing = TpcwSystem(clients=60, seed=6, mix="browsing").run(40, 10)
    ordering = TpcwSystem(clients=60, seed=6, mix="ordering").run(40, 10)
    # The ordering mix issues far more buy-path interactions...
    assert ordering.log.count("BuyConfirm") > 4 * max(
        browsing.log.count("BuyConfirm"), 1
    )
    # ...and far fewer heavy BestSellers queries, so the database CPU
    # distribution shifts away from BestSellers/SearchResult dominance.
    b_shares = browsing.db_cpu_share()
    o_shares = ordering.db_cpu_share()
    assert o_shares.get("BestSellers", 0) < b_shares.get("BestSellers", 100)


def test_unknown_mix_rejected():
    with pytest.raises(ValueError):
        TpcwSystem(clients=5, mix="mixed-up")


def test_profiler_off_runs_and_tracks_nothing():
    system = TpcwSystem(clients=30, seed=9, profiler_mode=ProfilerMode.OFF)
    results = system.run(duration=30, warmup=10)
    assert results.log.count() > 50
    assert system.db.stage.ccts == {}
    assert results.db_cpu_share() == {}


def test_whodunit_overhead_small_vs_off():
    off = TpcwSystem(clients=150, seed=4, profiler_mode=ProfilerMode.OFF).run(
        duration=60, warmup=20
    )
    on = TpcwSystem(clients=150, seed=4, profiler_mode=ProfilerMode.WHODUNIT).run(
        duration=60, warmup=20
    )
    assert on.throughput_tpm() > off.throughput_tpm() * 0.9


def test_gprof_costs_more_than_whodunit():
    whodunit = TpcwSystem(
        clients=250, seed=4, profiler_mode=ProfilerMode.WHODUNIT
    ).run(duration=60, warmup=20)
    gprof = TpcwSystem(clients=250, seed=4, profiler_mode=ProfilerMode.GPROF).run(
        duration=60, warmup=20
    )
    assert gprof.throughput_tpm() < whodunit.throughput_tpm() * 0.92
