"""Tests for operands, instructions, and the assembler."""

import pytest

from repro.vm import (
    Add,
    Assembler,
    Cmp,
    Imm,
    Jmp,
    Jz,
    Label,
    Lea,
    Mem,
    Mov,
    Nop,
    Reg,
)
from repro.vm.assembler import AssemblyError


def test_reg_bounds():
    Reg(0)
    Reg(15)
    with pytest.raises(ValueError):
        Reg(16)
    with pytest.raises(ValueError):
        Reg(-1)


def test_reg_equality():
    assert Reg(3) == Reg(3)
    assert Reg(3) != Reg(4)
    assert hash(Reg(3)) == hash(Reg(3))


def test_imm_equality():
    assert Imm(5) == Imm(5)
    assert Imm(5) != Imm(6)


def test_mem_address_registers():
    m = Mem(8, base=Reg(1), index=Reg(2), scale=4)
    assert m.address_registers() == [Reg(1), Reg(2)]
    assert Mem(8).address_registers() == []


def test_mem_scale_validation():
    with pytest.raises(ValueError):
        Mem(0, scale=0)


def test_mov_operand_validation():
    with pytest.raises(TypeError):
        Mov(Imm(1), Reg(0))  # immediate destination
    with pytest.raises(TypeError):
        Mov(Reg(0), "garbage")


def test_lea_operand_validation():
    with pytest.raises(TypeError):
        Lea(Mem(0), Mem(0))
    with pytest.raises(TypeError):
        Lea(Reg(0), Reg(1))


def test_branch_target_must_be_string():
    with pytest.raises(TypeError):
        Jmp(42)


def test_assembler_builds_program_with_labels():
    asm = Assembler("p")
    asm.emit(
        Nop(),
        Label("loop"),
        Add(Reg(0), Imm(1)),
        Cmp(Reg(0), Imm(3)),
        Jz("end"),
        Jmp("loop"),
        Label("end"),
    )
    program = asm.build()
    assert len(program) == 5  # labels are not instructions
    assert program.labels == {"loop": 1, "end": 5}


def test_duplicate_label_rejected():
    asm = Assembler("p")
    asm.emit(Label("x"))
    with pytest.raises(AssemblyError):
        asm.emit(Label("x"))


def test_undefined_branch_target_rejected_at_build():
    asm = Assembler("p")
    asm.emit(Jmp("nowhere"))
    with pytest.raises(AssemblyError):
        asm.build()


def test_emit_rejects_non_instructions():
    asm = Assembler("p")
    with pytest.raises(TypeError):
        asm.emit("mov r0, r1")


def test_program_ids_unique():
    a = Assembler("a").emit(Nop()).build()
    b = Assembler("b").emit(Nop()).build()
    assert a.program_id != b.program_id


def test_listing_contains_labels_and_instructions():
    asm = Assembler("demo")
    asm.emit(Label("start"), Mov(Reg(0), Imm(1)), Jmp("start"))
    listing = asm.build().listing()
    assert "start:" in listing
    assert "mov" in listing
    assert "demo" in listing
