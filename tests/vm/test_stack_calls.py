"""Tests for PUSH/POP/CALL/RET and context flow through the stack."""

import pytest

from repro.core.context import TransactionContext
from repro.core.flow import FLOW, FlowDetector
from repro.vm import (
    SP,
    Add,
    Assembler,
    Call,
    Emulator,
    Imm,
    Jmp,
    Label,
    Machine,
    Mem,
    Mov,
    Pop,
    Push,
    Reg,
    Ret,
    VMError,
)

R0, R1, R2 = Reg(0), Reg(1), Reg(2)
STACK_TOP = 0x800


def run(instructions, machine=None, thread="t"):
    machine = machine or Machine()
    machine.registers(thread).write(SP.index, STACK_TOP)
    program = Assembler("test").emit(*instructions).build()
    Emulator().run(program, machine, thread)
    return machine


def test_push_pop_round_trip():
    machine = run(
        [
            Mov(R0, Imm(42)),
            Push(R0),
            Mov(R0, Imm(0)),
            Pop(R1),
        ]
    )
    regs = machine.registers("t")
    assert regs.read(1) == 42
    assert regs.read(SP.index) == STACK_TOP  # balanced


def test_push_pop_lifo_order():
    machine = run(
        [
            Push(Imm(1)),
            Push(Imm(2)),
            Pop(R0),
            Pop(R1),
        ]
    )
    regs = machine.registers("t")
    assert regs.read(0) == 2
    assert regs.read(1) == 1


def test_call_and_ret():
    machine = run(
        [
            Mov(R0, Imm(5)),
            Call("double"),
            Call("double"),
            Jmp("end"),
            Label("double"),
            Add(R0, R0),
            Ret(),
            Label("end"),
        ]
    )
    assert machine.registers("t").read(0) == 20


def test_nested_calls():
    machine = run(
        [
            Call("outer"),
            Jmp("end"),
            Label("outer"),
            Call("inner"),
            Add(R0, Imm(1)),
            Ret(),
            Label("inner"),
            Mov(R0, Imm(10)),
            Ret(),
            Label("end"),
        ]
    )
    assert machine.registers("t").read(0) == 11


def test_stack_overflow_detected():
    machine = Machine()
    machine.registers("t").write(SP.index, 1)
    program = Assembler("p").emit(Push(Imm(1)), Push(Imm(2))).build()
    with pytest.raises(VMError):
        Emulator().run(program, machine, "t")


def test_ret_to_garbage_detected():
    machine = Machine()
    machine.registers("t").write(SP.index, 100)
    machine.memory.store(100, 9999)
    program = Assembler("p").emit(Ret()).build()
    with pytest.raises(VMError):
        Emulator().run(program, machine, "t")


# ----------------------------------------------------------------------
# Context flow through the stack (the §3.3.1 stack-local pattern)
# ----------------------------------------------------------------------
def ctxt(*elements):
    return TransactionContext(elements)


def test_consume_through_stack_local():
    """Producer stores into shared memory; consumer copies the value to

    a stack local (PUSH/POP) and uses it after the critical section —
    the exact Fig 1 pattern with ``*sd``/``*p`` out-parameters.
    """
    machine = Machine()
    emulator = Emulator()
    detector = FlowDetector()
    shared = machine.memory.alloc(1)
    machine.registers("cons").write(SP.index, STACK_TOP)
    machine.registers("prod").write(SP.index, STACK_TOP - 64)

    produce = Assembler("produce").emit(Mov(Mem(shared), R0)).build()
    consume = (
        Assembler("consume")
        .emit(
            Mov(R1, Mem(shared)),  # read shared value
            Push(R1),              # spill to a stack local
            Pop(R2),               # ... restore into the return register
        )
        .build()
    )
    use = Assembler("use").emit(Mov(R1, Mem(0, base=R2))).build()

    machine.registers("prod").load_arguments(777)
    cs = detector.enter_cs("lock", "prod", ctxt("producer"))
    emulator.run(produce, machine, "prod", hooks=cs)
    detector.exit_cs(cs)

    cs = detector.enter_cs("lock", "cons", ctxt())
    emulator.run(consume, machine, "cons", hooks=cs)
    window = detector.exit_cs(cs)
    emulator.run(use, machine, "cons", hooks=window)

    assert window.consumed
    assert window.consumed[0].context == ctxt("producer")
    assert detector.roles.for_lock("lock").classification == FLOW
    assert machine.registers("cons").read(2) == 777


def test_call_return_address_is_invalid_context():
    """The pushed return address is a computed value: consuming it must

    never be inferred as transaction flow."""
    machine = Machine()
    emulator = Emulator()
    detector = FlowDetector()
    machine.registers("t").write(SP.index, STACK_TOP)
    program = (
        Assembler("p")
        .emit(Call("f"), Jmp("end"), Label("f"), Ret(), Label("end"))
        .build()
    )
    cs = detector.enter_cs("lock", "t", ctxt("x"))
    emulator.run(program, machine, "t", hooks=cs)
    detector.exit_cs(cs)
    assert detector.consume_events == []
    roles = detector.roles.for_lock("lock")
    assert roles.producers == set()
