"""Tests for memory, register files, and location descriptors."""

import pytest

from repro.vm import Machine, Memory, RegisterFile, VMError
from repro.vm.machine import mem_loc, reg_loc


def test_memory_load_store():
    memory = Memory()
    memory.store(100, 42)
    assert memory.load(100) == 42


def test_uninitialised_memory_reads_zero():
    assert Memory().load(12345) == 0


def test_negative_address_rejected():
    memory = Memory()
    with pytest.raises(VMError):
        memory.load(-1)
    with pytest.raises(VMError):
        memory.store(-1, 0)


def test_alloc_returns_disjoint_regions():
    memory = Memory()
    a = memory.alloc(10)
    b = memory.alloc(10)
    assert b >= a + 10


def test_alloc_alignment():
    memory = Memory()
    memory.alloc(3)
    aligned = memory.alloc(4, align=8)
    assert aligned % 8 == 0


def test_alloc_rejects_nonpositive():
    with pytest.raises(VMError):
        Memory().alloc(0)


def test_register_file_read_write():
    regs = RegisterFile("t1")
    regs.write(3, 99)
    assert regs.read(3) == 99
    assert regs.read(0) == 0


def test_load_arguments():
    regs = RegisterFile("t1")
    regs.load_arguments(10, 20, 30)
    assert regs.dump()[:3] == (10, 20, 30)


def test_load_too_many_arguments():
    with pytest.raises(VMError):
        RegisterFile("t").load_arguments(*range(17))


def test_machine_register_files_per_thread():
    machine = Machine()
    machine.registers("a").write(0, 1)
    machine.registers("b").write(0, 2)
    assert machine.registers("a").read(0) == 1
    assert machine.registers("b").read(0) == 2
    assert machine.registers("a") is machine.registers("a")


def test_location_descriptors():
    assert mem_loc(5) == ("mem", 5)
    assert reg_loc("t1", 3) == ("reg", "t1", 3)
    assert mem_loc(5) != reg_loc("t", 5)


def test_snapshot():
    memory = Memory()
    memory.store(1, 10)
    memory.store(2, 20)
    assert memory.snapshot() == {1: 10, 2: 20}
