"""Tests for the emulator: semantics, hooks, translation cache, costs."""

import pytest
from hypothesis import given, strategies as st

from repro.vm import (
    Add,
    Assembler,
    Cmp,
    CostModel,
    Dec,
    EmulationHooks,
    Emulator,
    Imm,
    Inc,
    Jge,
    Jl,
    Jmp,
    Jnz,
    Jz,
    Label,
    Lea,
    Machine,
    Mem,
    Mov,
    Mul,
    Nop,
    Reg,
    Sub,
    VMError,
    Xor,
)
from repro.vm.machine import mem_loc, reg_loc

R0, R1, R2 = Reg(0), Reg(1), Reg(2)


def run(instructions, machine=None, thread="t", mode="emulate", hooks=None):
    machine = machine or Machine()
    program = Assembler("test").emit(*instructions).build()
    emulator = Emulator()
    result = emulator.run(program, machine, thread, mode=mode, hooks=hooks)
    return machine, result


class RecordingHooks(EmulationHooks):
    def __init__(self):
        self.reads = []
        self.movs = []
        self.invalid_writes = []

    def read(self, loc):
        self.reads.append(loc)

    def mov(self, dst, src):
        self.movs.append((dst, src))

    def write_invalid(self, dst):
        self.invalid_writes.append(dst)


# ----------------------------------------------------------------------
# Functional semantics
# ----------------------------------------------------------------------
def test_mov_imm_to_reg():
    machine, _ = run([Mov(R0, Imm(7))])
    assert machine.registers("t").read(0) == 7


def test_mov_reg_to_mem_and_back():
    machine = Machine()
    run([Mov(R0, Imm(9)), Mov(Mem(100), R0), Mov(R1, Mem(100))], machine)
    assert machine.memory.load(100) == 9
    assert machine.registers("t").read(1) == 9


def test_mem_addressing_base_index_scale():
    machine = Machine()
    machine.registers("t").write(1, 10)  # base
    machine.registers("t").write(2, 3)   # index
    machine.memory.store(10 + 5 + 3 * 2, 77)
    run([Mov(R0, Mem(5, base=R1, index=R2, scale=2))], machine)
    assert machine.registers("t").read(0) == 77


def test_arithmetic_operations():
    machine, _ = run(
        [
            Mov(R0, Imm(10)),
            Add(R0, Imm(5)),   # 15
            Sub(R0, Imm(3)),   # 12
            Mul(R0, Imm(2)),   # 24
            Xor(R0, Imm(1)),   # 25
        ]
    )
    assert machine.registers("t").read(0) == 25


def test_inc_dec_memory():
    machine = Machine()
    machine.memory.store(50, 10)
    run([Inc(Mem(50)), Inc(Mem(50)), Dec(Mem(50))], machine)
    assert machine.memory.load(50) == 11


def test_lea_computes_address_without_loading():
    machine = Machine()
    machine.registers("t").write(1, 100)
    machine.memory.store(108, 999)  # must NOT be loaded
    run([Lea(R0, Mem(8, base=R1))], machine)
    assert machine.registers("t").read(0) == 108


def test_cmp_and_conditional_jumps():
    # Loop: r0 counts 0..4
    machine, result = run(
        [
            Mov(R0, Imm(0)),
            Label("loop"),
            Add(R0, Imm(1)),
            Cmp(R0, Imm(5)),
            Jl("loop"),
        ]
    )
    assert machine.registers("t").read(0) == 5


def test_jz_jnz():
    machine, _ = run(
        [
            Mov(R0, Imm(3)),
            Cmp(R0, Imm(3)),
            Jz("equal"),
            Mov(R1, Imm(111)),
            Label("equal"),
            Cmp(R0, Imm(4)),
            Jnz("done"),
            Mov(R2, Imm(222)),
            Label("done"),
        ]
    )
    regs = machine.registers("t")
    assert regs.read(1) == 0    # skipped by jz
    assert regs.read(2) == 0    # skipped by jnz


def test_jge():
    machine, _ = run(
        [
            Mov(R0, Imm(5)),
            Cmp(R0, Imm(5)),
            Jge("skip"),
            Mov(R1, Imm(1)),
            Label("skip"),
        ]
    )
    assert machine.registers("t").read(1) == 0


def test_infinite_loop_raises():
    with pytest.raises(VMError):
        run([Label("x"), Jmp("x")])


def test_direct_and_emulated_execution_agree():
    instructions = [
        Mov(R0, Imm(6)),
        Mov(Mem(10), R0),
        Add(Mem(10), Imm(4)),
        Mov(R1, Mem(10)),
    ]
    m1, _ = run(instructions, mode="direct")
    m2, _ = run(instructions, mode="emulate")
    assert m1.memory.load(10) == m2.memory.load(10) == 10
    assert m1.registers("t").dump() == m2.registers("t").dump()


# ----------------------------------------------------------------------
# Hooks
# ----------------------------------------------------------------------
def test_mov_reg_to_mem_fires_mov_hook():
    hooks = RecordingHooks()
    run([Mov(Mem(100), R0)], hooks=hooks)
    assert hooks.movs == [(mem_loc(100), reg_loc("t", 0))]


def test_mov_imm_fires_write_invalid():
    hooks = RecordingHooks()
    run([Mov(Mem(100), Imm(0))], hooks=hooks)
    assert hooks.invalid_writes == [mem_loc(100)]
    assert hooks.movs == []


def test_arith_fires_write_invalid_and_reads():
    hooks = RecordingHooks()
    run([Inc(Mem(50))], hooks=hooks)
    assert hooks.invalid_writes == [mem_loc(50)]
    assert mem_loc(50) in hooks.reads


def test_address_base_register_read_is_reported():
    """Dereferencing a pointer register is a use of the pointer."""
    hooks = RecordingHooks()
    machine = Machine()
    machine.registers("t").write(0, 100)
    run([Mov(R1, Mem(0, base=R0))], machine, hooks=hooks)
    assert reg_loc("t", 0) in hooks.reads


def test_lea_reports_invalid_write_not_mov():
    hooks = RecordingHooks()
    run([Lea(R0, Mem(4, base=R1))], hooks=hooks)
    assert hooks.invalid_writes == [reg_loc("t", 0)]
    assert hooks.movs == []
    assert reg_loc("t", 1) in hooks.reads


def test_cmp_fires_reads_only():
    hooks = RecordingHooks()
    run([Cmp(R0, Mem(5))], hooks=hooks)
    assert hooks.invalid_writes == []
    assert hooks.movs == []
    assert reg_loc("t", 0) in hooks.reads
    assert mem_loc(5) in hooks.reads


def test_direct_mode_fires_no_hooks():
    hooks = RecordingHooks()
    run([Mov(Mem(100), R0), Inc(Mem(100))], mode="direct", hooks=hooks)
    assert hooks.reads == []
    assert hooks.movs == []
    assert hooks.invalid_writes == []


# ----------------------------------------------------------------------
# Costs and the translation cache (Table 3 mechanics)
# ----------------------------------------------------------------------
def test_emulation_costs_translation_on_first_run_only():
    program = Assembler("p").emit(*[Nop() for _ in range(10)]).build()
    machine = Machine()
    emulator = Emulator()
    first = emulator.run(program, machine, "t")
    second = emulator.run(program, machine, "t")
    assert first.translated
    assert not second.translated
    assert first.cycles > second.cycles
    model = emulator.cost_model
    assert first.cycles == pytest.approx(
        second.cycles + model.translation_cost(program)
    )


def test_direct_mode_does_not_consume_translation_cache():
    program = Assembler("p").emit(Nop()).build()
    machine = Machine()
    emulator = Emulator()
    emulator.run(program, machine, "t", mode="direct")
    assert not emulator.is_translated(program)


def test_direct_cost_far_below_emulation_cost():
    instructions = [Mov(Mem(1), Imm(1)) for _ in range(10)]
    program = Assembler("p").emit(*instructions).build()
    machine = Machine()
    emulator = Emulator()
    direct = emulator.run(program, machine, "t", mode="direct")
    emulator.invalidate_cache()
    emulated = emulator.run(program, machine, "t")  # includes translation
    cached = emulator.run(program, machine, "t")
    assert direct.cycles < cached.cycles / 20
    assert cached.cycles < emulated.cycles


def test_invalidate_cache_forces_retranslation():
    program = Assembler("p").emit(Nop()).build()
    machine = Machine()
    emulator = Emulator()
    emulator.run(program, machine, "t")
    emulator.invalidate_cache()
    assert emulator.run(program, machine, "t").translated


def test_cost_counts_executed_not_static_instructions():
    # Loop body executes 5 times: emulation cost scales with steps.
    instructions = [
        Mov(R0, Imm(0)),
        Label("loop"),
        Add(R0, Imm(1)),
        Cmp(R0, Imm(5)),
        Jl("loop"),
    ]
    program = Assembler("p").emit(*instructions).build()
    machine = Machine()
    emulator = Emulator()
    result = emulator.run(program, machine, "t")
    assert result.steps == 1 + 3 * 5
    expected = (
        emulator.cost_model.translation_cost(program)
        + result.steps * emulator.cost_model.emulate_per_instruction
    )
    assert result.cycles == pytest.approx(expected)


def test_memory_operands_cost_more_direct():
    model = CostModel()
    assert model.direct_cost(Mov(Mem(0), Imm(1))) > model.direct_cost(
        Mov(R0, Imm(1))
    )


def test_unknown_mode_rejected():
    program = Assembler("p").emit(Nop()).build()
    with pytest.raises(ValueError):
        Emulator().run(program, Machine(), "t", mode="native")


# ----------------------------------------------------------------------
# Property-based: emulate vs direct equivalence on random straightline code
# ----------------------------------------------------------------------
@st.composite
def straightline_program(draw):
    ops = []
    for _ in range(draw(st.integers(1, 20))):
        kind = draw(st.sampled_from(["mov_imm", "mov_rr", "mov_rm", "mov_mr", "add", "inc"]))
        r1 = Reg(draw(st.integers(0, 3)))
        r2 = Reg(draw(st.integers(0, 3)))
        addr = draw(st.integers(0, 7))
        if kind == "mov_imm":
            ops.append(Mov(r1, Imm(draw(st.integers(-100, 100)))))
        elif kind == "mov_rr":
            ops.append(Mov(r1, r2))
        elif kind == "mov_rm":
            ops.append(Mov(r1, Mem(addr)))
        elif kind == "mov_mr":
            ops.append(Mov(Mem(addr), r1))
        elif kind == "add":
            ops.append(Add(r1, r2))
        else:
            ops.append(Inc(Mem(addr)))
    return ops


@given(straightline_program())
def test_modes_equivalent_on_random_programs(ops):
    program = Assembler("rand").emit(*ops).build()
    m1, m2 = Machine(), Machine()
    Emulator().run(program, m1, "t", mode="direct")
    Emulator().run(program, m2, "t", mode="emulate")
    assert m1.memory.snapshot() == m2.memory.snapshot()
    assert m1.registers("t").dump() == m2.registers("t").dump()
