"""Functional tests for the critical-section programs of §3's figures."""

import pytest

from repro.vm import Emulator, Machine
from repro.vm.programs import (
    NULL,
    BoundedQueue,
    FreeListAllocator,
    LinkedQueue,
    SharedCounter,
    SlotShuffleQueue,
)


@pytest.fixture
def machine():
    return Machine()


@pytest.fixture
def emulator():
    return Emulator()


def call(emulator, machine, thread, program, *args):
    machine.registers(thread).load_arguments(*args)
    emulator.run(program, machine, thread)
    return machine.registers(thread)


# ----------------------------------------------------------------------
# BoundedQueue (Fig 1)
# ----------------------------------------------------------------------
def test_queue_push_stores_element(machine, emulator):
    q = BoundedQueue(machine.memory)
    call(emulator, machine, "listener", q.push_program, 111, 222)
    assert q.length(machine.memory) == 1
    assert machine.memory.load(q.data_addr) == 111
    assert machine.memory.load(q.data_addr + 1) == 222


def test_queue_pop_returns_pushed_values(machine, emulator):
    q = BoundedQueue(machine.memory)
    call(emulator, machine, "listener", q.push_program, 111, 222)
    regs = call(emulator, machine, "worker", q.pop_program)
    assert regs.read(0) == 111
    assert regs.read(1) == 222
    assert q.length(machine.memory) == 0


def test_queue_lifo_order_as_in_apache(machine, emulator):
    q = BoundedQueue(machine.memory)
    call(emulator, machine, "l", q.push_program, 1, 10)
    call(emulator, machine, "l", q.push_program, 2, 20)
    regs = call(emulator, machine, "w", q.pop_program)
    assert (regs.read(0), regs.read(1)) == (2, 20)
    regs = call(emulator, machine, "w", q.pop_program)
    assert (regs.read(0), regs.read(1)) == (1, 10)


def test_queue_multiple_pushes_grow_nelts(machine, emulator):
    q = BoundedQueue(machine.memory)
    for i in range(5):
        call(emulator, machine, "l", q.push_program, i, i)
    assert q.length(machine.memory) == 5


# ----------------------------------------------------------------------
# SharedCounter (Fig 2)
# ----------------------------------------------------------------------
def test_counter_increments(machine, emulator):
    counter = SharedCounter(machine.memory)
    for thread in ["t1", "t2", "t1"]:
        call(emulator, machine, thread, counter.increment_program)
    assert counter.value(machine.memory) == 3


# ----------------------------------------------------------------------
# FreeListAllocator (Fig 3)
# ----------------------------------------------------------------------
def test_alloc_returns_blocks_then_empties(machine, emulator):
    allocator = FreeListAllocator(machine.memory, blocks=3)
    got = set()
    for _ in range(3):
        regs = call(emulator, machine, "t", allocator.alloc_program)
        got.add(regs.read(0))
    assert got == set(allocator.block_addrs)
    regs = call(emulator, machine, "t", allocator.alloc_program)
    assert regs.read(0) == NULL


def test_free_returns_block_to_head(machine, emulator):
    allocator = FreeListAllocator(machine.memory, blocks=2)
    regs = call(emulator, machine, "t", allocator.alloc_program)
    block = regs.read(0)
    call(emulator, machine, "t", allocator.free_program, block)
    assert allocator.head(machine.memory) == block


def test_alloc_free_cycle_is_stable(machine, emulator):
    allocator = FreeListAllocator(machine.memory, blocks=4)
    for _ in range(20):
        regs = call(emulator, machine, "t", allocator.alloc_program)
        block = regs.read(0)
        assert block != NULL
        call(emulator, machine, "t", allocator.free_program, block)


# ----------------------------------------------------------------------
# LinkedQueue (sys/queue.h style, §3.3.2)
# ----------------------------------------------------------------------
def test_linked_queue_fifo(machine, emulator):
    q = LinkedQueue(machine.memory)
    e1 = machine.memory.alloc(2)
    e2 = machine.memory.alloc(2)
    call(emulator, machine, "p", q.enqueue_program, e1)
    call(emulator, machine, "p", q.enqueue_program, e2)
    assert call(emulator, machine, "c", q.dequeue_program).read(0) == e1
    assert call(emulator, machine, "c", q.dequeue_program).read(0) == e2


def test_linked_queue_empty_dequeue_returns_null(machine, emulator):
    q = LinkedQueue(machine.memory)
    assert call(emulator, machine, "c", q.dequeue_program).read(0) == NULL


def test_linked_queue_drain_resets_head_and_tail(machine, emulator):
    q = LinkedQueue(machine.memory)
    e1 = machine.memory.alloc(2)
    call(emulator, machine, "p", q.enqueue_program, e1)
    call(emulator, machine, "c", q.dequeue_program)
    assert machine.memory.load(q.head_addr) == NULL
    assert machine.memory.load(q.tail_addr) == NULL
    # And the queue is reusable afterwards.
    e2 = machine.memory.alloc(2)
    call(emulator, machine, "p", q.enqueue_program, e2)
    assert call(emulator, machine, "c", q.dequeue_program).read(0) == e2


def test_dequeue_clears_next_pointer_sanity(machine, emulator):
    q = LinkedQueue(machine.memory)
    e1 = machine.memory.alloc(2)
    e2 = machine.memory.alloc(2)
    call(emulator, machine, "p", q.enqueue_program, e1)
    call(emulator, machine, "p", q.enqueue_program, e2)
    call(emulator, machine, "c", q.dequeue_program)
    assert machine.memory.load(e1) == NULL  # elem->next wiped


# ----------------------------------------------------------------------
# SlotShuffleQueue (element relocation, §3.2)
# ----------------------------------------------------------------------
def test_slot_store_shuffle_load(machine, emulator):
    q = SlotShuffleQueue(machine.memory)
    call(emulator, machine, "p", q.store_program, 777, 2)
    call(emulator, machine, "x", q.shuffle_program, 2, 5)
    regs = machine.registers("c")
    regs.load_arguments(0, 5)
    emulator.run(q.load_program, machine, "c")
    assert regs.read(0) == 777
    # Old slot cleared:
    assert machine.memory.load(q.slots_addr + 2) == NULL
