"""Functional + flow tests for the doubly-linked TAILQ (§3.3.2)."""

import pytest

from repro.core.context import TransactionContext
from repro.core.flow import FLOW, FlowDetector
from repro.vm import Emulator, Machine
from repro.vm.programs import NULL, TailQueue


def ctxt(*elements):
    return TransactionContext(elements)


@pytest.fixture
def setup():
    machine = Machine()
    return machine, Emulator(), TailQueue(machine.memory)


def call(emulator, machine, thread, program, *args):
    machine.registers(thread).load_arguments(*args)
    emulator.run(program, machine, thread)
    return machine.registers(thread)


# ----------------------------------------------------------------------
# Functional
# ----------------------------------------------------------------------
def test_insert_remove_fifo(setup):
    machine, emulator, q = setup
    elems = [machine.memory.alloc(3) for _ in range(3)]
    for elem in elems:
        call(emulator, machine, "p", q.insert_program, elem)
    for expected in elems:
        regs = call(emulator, machine, "c", q.remove_program)
        assert regs.read(0) == expected
    assert q.head(machine.memory) == NULL
    assert q.tail(machine.memory) == NULL


def test_remove_from_empty_returns_null(setup):
    machine, emulator, q = setup
    assert call(emulator, machine, "c", q.remove_program).read(0) == NULL


def test_prev_pointers_maintained(setup):
    machine, emulator, q = setup
    e1 = machine.memory.alloc(3)
    e2 = machine.memory.alloc(3)
    call(emulator, machine, "p", q.insert_program, e1)
    call(emulator, machine, "p", q.insert_program, e2)
    assert machine.memory.load(e2 + TailQueue.PREV) == e1
    assert machine.memory.load(e1 + TailQueue.NEXT) == e2
    call(emulator, machine, "c", q.remove_program)
    # e2 is now head with no prev; e1's links were sanity-cleared.
    assert machine.memory.load(e2 + TailQueue.PREV) == NULL
    assert machine.memory.load(e1 + TailQueue.NEXT) == NULL


def test_queue_reusable_after_drain(setup):
    machine, emulator, q = setup
    e = machine.memory.alloc(3)
    for _ in range(5):
        call(emulator, machine, "p", q.insert_program, e)
        assert call(emulator, machine, "c", q.remove_program).read(0) == e


# ----------------------------------------------------------------------
# Flow detection (the §3.3.2 validation)
# ----------------------------------------------------------------------
class Harness:
    def __init__(self):
        self.machine = Machine()
        self.emulator = Emulator()
        self.detector = FlowDetector()
        self.queue = TailQueue(self.machine.memory)
        self.lock = "tailq"

    def insert(self, thread, context, elem):
        self.machine.registers(thread).load_arguments(elem)
        cs = self.detector.enter_cs(self.lock, thread, context)
        self.emulator.run(self.queue.insert_program, self.machine, thread, hooks=cs)
        self.detector.exit_cs(cs)

    def remove(self, thread):
        cs = self.detector.enter_cs(self.lock, thread, ctxt())
        self.emulator.run(self.queue.remove_program, self.machine, thread, hooks=cs)
        window = self.detector.exit_cs(cs)
        self.emulator.run(self.queue.use_program, self.machine, thread, hooks=window)
        return window.consumed


def test_flow_detected_through_tailq():
    h = Harness()
    e1 = h.machine.memory.alloc(3)
    h.insert("prod", ctxt("tx1"), e1)
    consumed = h.remove("cons")
    assert consumed
    assert consumed[0].context == ctxt("tx1")
    assert h.detector.roles.for_lock(h.lock).classification == FLOW


def test_flow_preserves_order_across_multiple_elements():
    h = Harness()
    elems = [h.machine.memory.alloc(3) for _ in range(3)]
    for i, elem in enumerate(elems):
        h.insert("prod", ctxt("tx", str(i)), elem)
    for i in range(3):
        consumed = h.remove("cons")
        assert consumed[0].context == ctxt("tx", str(i))


def test_empty_removal_consumes_nothing():
    h = Harness()
    e1 = h.machine.memory.alloc(3)
    h.insert("prod", ctxt("tx"), e1)
    assert h.remove("cons1")
    # Second consumer sees the NULL head (invalid context): no flow.
    assert h.remove("cons2") == []
    roles = h.detector.roles.for_lock(h.lock)
    assert "cons2" not in roles.consumers


def test_producer_reading_cleared_links_is_not_consumer():
    h = Harness()
    e1 = h.machine.memory.alloc(3)
    h.insert("prod", ctxt("a"), e1)
    h.remove("cons")
    # The producer re-inserts the same element whose links the consumer
    # NULLed — reading those invalid-context words must not make the
    # producer a consumer (the §3.3.2 sanity-check argument).
    h.insert("prod", ctxt("b"), e1)
    roles = h.detector.roles.for_lock(h.lock)
    assert "prod" not in roles.consumers
    assert roles.classification == FLOW
