"""§4.1's DNS server example: hit and miss transactions get separate
contexts.

"Consider an event-driven DNS server.  Two different transactions are
possible in this application: one corresponding to a cache hit and the
other corresponding to a cache miss.  Typically, cache hit and cache
miss events are handled by different event handlers.  So, two different
transaction contexts will be established for this application."
"""

import pytest

from repro.core.context import TransactionContext
from repro.core.profiler import OverheadModel, ProfilerMode, StageRuntime, work
from repro.events import Event, EventLoop
from repro.sim import CPU, Kernel, Rng

ZERO = OverheadModel(0.0, 0.0, 0.0, 0.0, 0.0)


def ctxt(*elements):
    return TransactionContext(elements)


class DnsServer:
    """A toy event-driven resolver with an answer cache."""

    def __init__(self, kernel, loop, cpu):
        self.kernel = kernel
        self.loop = loop
        self.cpu = cpu
        self.cache = {}
        self.answered = []

    def query(self, name):
        self.loop.event_add(Event("recv_query", self.recv_query, payload=name))

    def recv_query(self, loop, event):
        name = event.payload
        yield from work(loop.thread, self.cpu, 10e-6)
        if name in self.cache:
            loop.event_add(Event("cache_hit", self.cache_hit, payload=name))
        else:
            loop.event_add(Event("cache_miss", self.cache_miss, payload=name))

    def cache_hit(self, loop, event):
        yield from work(loop.thread, self.cpu, 5e-6)
        self.answered.append((event.payload, "hit"))

    def cache_miss(self, loop, event):
        # Recursive resolution: ask upstream, wait via a timer event.
        yield from work(loop.thread, self.cpu, 30e-6)
        loop.event_add_timer(
            Event("upstream_reply", self.upstream_reply, payload=event.payload),
            delay=0.02,
        )

    def upstream_reply(self, loop, event):
        yield from work(loop.thread, self.cpu, 15e-6)
        self.cache[event.payload] = "1.2.3.4"
        self.answered.append((event.payload, "miss"))


@pytest.fixture
def dns():
    kernel = Kernel()
    stage = StageRuntime("named", mode=ProfilerMode.WHODUNIT, overhead=ZERO)
    loop = EventLoop(kernel, name="named")
    kernel.spawn(loop.run(), stage=stage)
    cpu = CPU(kernel, name="dns-cpu")
    server = DnsServer(kernel, loop, cpu)
    return kernel, stage, server


def test_hit_and_miss_establish_distinct_contexts(dns):
    kernel, stage, server = dns
    server.query("example.com")  # miss
    kernel.run(until=0.1)
    server.query("example.com")  # hit now
    kernel.run(until=0.2)

    labels = set(stage.ccts.keys())
    assert ctxt("recv_query", "cache_hit") in labels
    assert ctxt("recv_query", "cache_miss") in labels
    assert ctxt("recv_query", "cache_miss", "upstream_reply") in labels
    assert server.answered == [("example.com", "miss"), ("example.com", "hit")]


def test_timer_event_inherits_registration_context(dns):
    kernel, stage, server = dns
    server.query("slow.example")
    kernel.run(until=0.1)
    # The upstream reply's samples sit under the miss context chain.
    miss_chain = ctxt("recv_query", "cache_miss", "upstream_reply")
    assert stage.ccts[miss_chain].total_weight() > 0


def test_negative_timer_rejected(dns):
    kernel, stage, server = dns
    loop = server.loop
    with pytest.raises(ValueError):
        loop.event_add_timer(Event("x", server.cache_hit), delay=-1.0)


def test_many_queries_hit_ratio_grows(dns):
    kernel, stage, server = dns
    rng = Rng(5)
    names = [f"host{i}.example" for i in range(10)]
    for i in range(50):
        server.query(rng.choice(names))
        kernel.run(until=kernel.now + 0.05)
    hits = sum(1 for _, kind in server.answered if kind == "hit")
    misses = sum(1 for _, kind in server.answered if kind == "miss")
    assert misses >= 10  # each distinct name misses once
    assert hits > 20
    # CPU-weighted: miss path costs more per query, so the miss context
    # holds a disproportionate share (what the profile is for).
    hit_w = stage.ccts[ctxt("recv_query", "cache_hit")].total_weight()
    miss_w = (
        stage.ccts[ctxt("recv_query", "cache_miss")].total_weight()
        + stage.ccts[ctxt("recv_query", "cache_miss", "upstream_reply")].total_weight()
    )
    assert miss_w / misses > hit_w / hits
