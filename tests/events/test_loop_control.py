"""Edge cases of event-loop control: stop, park, re-entry."""

import pytest

from repro.channels import Endpoint, Message
from repro.core.profiler import ProfilerMode, StageRuntime
from repro.events import Event, EventLoop
from repro.sim import Delay, Kernel


def make_loop(kernel):
    stage = StageRuntime("ev", mode=ProfilerMode.OFF)
    loop = EventLoop(kernel)
    thread = kernel.spawn(loop.run(), stage=stage)
    return loop, thread


def test_stop_wakes_a_parked_loop():
    kernel = Kernel()
    loop, thread = make_loop(kernel)

    def stopper():
        yield Delay(1.0)
        loop.stop()

    kernel.spawn(stopper())
    kernel.run(until=2.0)
    assert not thread.alive  # the loop exited cleanly


def test_events_added_after_stop_never_run():
    kernel = Kernel()
    loop, thread = make_loop(kernel)
    ran = []

    def handler(lp, ev):
        ran.append(1)
        return
        yield  # pragma: no cover

    def stopper():
        yield Delay(0.5)
        loop.stop()
        loop.event_add(Event("late", handler))

    kernel.spawn(stopper())
    kernel.run(until=2.0)
    assert ran == []


def test_stop_inside_handler_halts_after_current_event():
    kernel = Kernel()
    loop, thread = make_loop(kernel)
    ran = []

    def first(lp, ev):
        ran.append("first")
        lp.stop()
        lp.event_add(Event("second", second))
        return
        yield  # pragma: no cover

    def second(lp, ev):
        ran.append("second")
        return
        yield  # pragma: no cover

    loop.event_add(Event("first", first))
    kernel.run(until=1.0)
    assert ran == ["first"]
    assert not thread.alive


def test_loop_processes_events_in_fifo_order():
    kernel = Kernel()
    loop, thread = make_loop(kernel)
    order = []

    def handler(tag):
        def run(lp, ev):
            order.append(tag)
            if tag == "c":
                lp.stop()
            return
            yield  # pragma: no cover

        return run

    for tag in ["a", "b", "c"]:
        loop.event_add(Event(tag, handler(tag)))
    kernel.run(until=1.0)
    assert order == ["a", "b", "c"]


def test_handler_yields_are_allowed():
    kernel = Kernel()
    loop, thread = make_loop(kernel)
    times = []

    def slow(lp, ev):
        times.append(kernel.now)
        yield Delay(0.5)
        times.append(kernel.now)
        lp.stop()

    loop.event_add(Event("slow", slow))
    kernel.run(until=1.0)
    assert times == [0.0, 0.5]


def test_stop_unregisters_pending_watches():
    """A loop stopped while watching never-readable endpoints must
    detach its observers, or the endpoints pin the dead loop (and its
    captured events) for as long as they live."""
    kernel = Kernel()
    loop, thread = make_loop(kernel)
    endpoint = Endpoint(kernel, name="idle")

    def handler(lp, ev):
        return
        yield  # pragma: no cover

    for index in range(5):
        loop.event_add(Event(f"read{index}", handler, waitable=endpoint))
    assert len(endpoint.observers) == 5

    def stopper():
        yield Delay(1.0)
        loop.stop()

    kernel.spawn(stopper())
    kernel.run(until=2.0)
    assert endpoint.observers == []
    assert loop._watches == []
    # Watches registered after stop are dropped, not leaked.
    loop.event_add(Event("late", handler, waitable=endpoint))
    assert endpoint.observers == []


def test_fired_watch_cleans_up_its_bookkeeping():
    kernel = Kernel()
    loop, thread = make_loop(kernel)
    endpoint = Endpoint(kernel, latency=0.5, name="slow")
    ran = []

    def handler(lp, ev):
        ran.append(ev.name)
        return
        yield  # pragma: no cover

    loop.event_add(Event("read", handler, waitable=endpoint))
    assert len(endpoint.observers) == 1
    endpoint.send(Message("data", size=10))
    kernel.run(until=1.0)
    assert ran == ["read"]
    assert endpoint.observers == []
    assert loop._watches == []
