"""Tests for the event loop's transaction-context tracking (Fig 4)."""

import pytest

from repro.channels import Endpoint, Listener, Message, Send
from repro.core.context import TransactionContext
from repro.core.profiler import OverheadModel, ProfilerMode, StageRuntime, work

ZERO = OverheadModel(0.0, 0.0, 0.0, 0.0)
from repro.events import Event, EventLoop
from repro.sim import CPU, Delay, Kernel


def ctxt(*elements):
    return TransactionContext(elements)


def make_loop(kernel, **kwargs):
    stage = StageRuntime("evsrv", mode=ProfilerMode.WHODUNIT, overhead=ZERO)
    loop = EventLoop(kernel, **kwargs)
    thread = kernel.spawn(loop.run(), name="loop", stage=stage)
    return loop, stage, thread


def test_initial_event_context_is_empty():
    kernel = Kernel()
    loop, stage, _ = make_loop(kernel)
    seen = {}

    def handler(lp, ev):
        seen["ctxt"] = lp.curr_tran_ctxt
        lp.stop()
        return
        yield  # pragma: no cover

    loop.event_add(Event("accept_handler", handler))
    kernel.run()
    assert seen["ctxt"] == ctxt("accept_handler")


def test_context_chains_through_continuations():
    kernel = Kernel()
    loop, stage, _ = make_loop(kernel)
    contexts = []

    def accept_handler(lp, ev):
        contexts.append(lp.curr_tran_ctxt)
        lp.event_add(Event("read_handler", read_handler))
        return
        yield  # pragma: no cover

    def read_handler(lp, ev):
        contexts.append(lp.curr_tran_ctxt)
        lp.event_add(Event("write_handler", write_handler))
        return
        yield  # pragma: no cover

    def write_handler(lp, ev):
        contexts.append(lp.curr_tran_ctxt)
        lp.stop()
        return
        yield  # pragma: no cover

    loop.event_add(Event("accept_handler", accept_handler))
    kernel.run()
    assert contexts == [
        ctxt("accept_handler"),
        ctxt("accept_handler", "read_handler"),
        ctxt("accept_handler", "read_handler", "write_handler"),
    ]


def test_consecutive_same_handler_collapses():
    """A read handler scheduled repeatedly appears once in the context."""
    kernel = Kernel()
    loop, stage, _ = make_loop(kernel)
    contexts = []
    remaining = [3]

    def read_handler(lp, ev):
        contexts.append(lp.curr_tran_ctxt)
        remaining[0] -= 1
        if remaining[0] > 0:
            lp.event_add(Event("read_handler", read_handler))
        else:
            lp.stop()
        return
        yield  # pragma: no cover

    def accept_handler(lp, ev):
        lp.event_add(Event("read_handler", read_handler))
        return
        yield  # pragma: no cover

    loop.event_add(Event("accept_handler", accept_handler))
    kernel.run()
    assert contexts == [ctxt("accept_handler", "read_handler")] * 3


def test_persistent_connection_loop_pruned():
    """[accept, read, write] + read prunes back to [accept, read]."""
    kernel = Kernel()
    loop, stage, _ = make_loop(kernel)
    contexts = []
    requests = [2]

    def accept_handler(lp, ev):
        lp.event_add(Event("read_handler", read_handler))
        return
        yield  # pragma: no cover

    def read_handler(lp, ev):
        contexts.append(lp.curr_tran_ctxt)
        lp.event_add(Event("write_handler", write_handler))
        return
        yield  # pragma: no cover

    def write_handler(lp, ev):
        contexts.append(lp.curr_tran_ctxt)
        requests[0] -= 1
        if requests[0] > 0:
            lp.event_add(Event("read_handler", read_handler))
        else:
            lp.stop()
        return
        yield  # pragma: no cover

    loop.event_add(Event("accept_handler", accept_handler))
    kernel.run()
    assert contexts == [
        ctxt("accept_handler", "read_handler"),
        ctxt("accept_handler", "read_handler", "write_handler"),
        ctxt("accept_handler", "read_handler"),
        ctxt("accept_handler", "read_handler", "write_handler"),
    ]


def test_prune_disabled_grows_context():
    kernel = Kernel()
    loop, stage, _ = make_loop(kernel, prune_loops=False)
    contexts = []

    def a(lp, ev):
        lp.event_add(Event("b", b))
        return
        yield  # pragma: no cover

    def b(lp, ev):
        contexts.append(lp.curr_tran_ctxt)
        if len(contexts) < 2:
            lp.event_add(Event("a", a2))
        else:
            lp.stop()
        return
        yield  # pragma: no cover

    def a2(lp, ev):
        lp.event_add(Event("b", b))
        return
        yield  # pragma: no cover

    loop.event_add(Event("a", a))
    kernel.run()
    assert contexts[1].elements == ("a", "b", "a", "b")


def test_waitable_event_fires_when_data_arrives():
    kernel = Kernel()
    loop, stage, _ = make_loop(kernel)
    endpoint = Endpoint(kernel)
    got = []

    def on_readable(lp, ev):
        got.append((ev.waitable.try_recv().payload, kernel.now))
        lp.stop()
        return
        yield  # pragma: no cover

    loop.event_add(Event("read_handler", on_readable, waitable=endpoint))

    def sender():
        yield Delay(2.0)
        yield Send(endpoint, Message("data"))

    kernel.spawn(sender())
    kernel.run()
    assert got == [("data", 2.0)]


def test_waitable_already_readable_fires_immediately():
    kernel = Kernel()
    loop, stage, _ = make_loop(kernel)
    endpoint = Endpoint(kernel)
    endpoint.send(Message("early"))
    got = []

    def on_readable(lp, ev):
        got.append(ev.waitable.try_recv().payload)
        lp.stop()
        return
        yield  # pragma: no cover

    loop.event_add(Event("h", on_readable, waitable=endpoint))
    kernel.run()
    assert got == ["early"]


def test_listener_as_waitable():
    kernel = Kernel()
    loop, stage, _ = make_loop(kernel)
    listener = Listener(kernel)
    got = []

    def on_connect(lp, ev):
        got.append(ev.waitable.try_accept() is not None)
        lp.stop()
        return
        yield  # pragma: no cover

    loop.event_add(Event("httpAccept", on_connect, waitable=listener))

    def client():
        yield Delay(1.0)
        listener.connect()

    kernel.spawn(client())
    kernel.run()
    assert got == [True]


def test_samples_annotated_with_event_context():
    kernel = Kernel()
    cpu = CPU(kernel)
    loop, stage, thread = make_loop(kernel)

    def accept_handler(lp, ev):
        t = lp_thread()
        yield from work(t, cpu, 0.1)
        lp.event_add(Event("read_handler", read_handler))

    def read_handler(lp, ev):
        t = lp_thread()
        yield from work(t, cpu, 0.3)
        lp.stop()

    def lp_thread():
        return thread

    loop.event_add(Event("accept_handler", accept_handler))
    kernel.run()

    accept_cct = stage.ccts[ctxt("accept_handler")]
    read_cct = stage.ccts[ctxt("accept_handler", "read_handler")]
    hz = stage.sampling_hz
    assert accept_cct.total_weight() == pytest.approx(0.1 * hz)
    assert read_cct.total_weight() == pytest.approx(0.3 * hz)
    # Sample call paths run through the loop frame and the handler frame.
    assert accept_cct.weight_of(("event_loop", "accept_handler")) > 0


def test_handler_exception_resets_context_state():
    kernel = Kernel()
    loop, stage, thread = make_loop(kernel)

    def bad_handler(lp, ev):
        raise ValueError("handler bug")
        yield  # pragma: no cover

    loop.event_add(Event("bad", bad_handler))
    with pytest.raises(ValueError):
        kernel.run()
    assert loop.curr_tran_ctxt == TransactionContext.empty()


def test_dispatch_counter():
    kernel = Kernel()
    loop, stage, _ = make_loop(kernel)

    def h(lp, ev):
        if lp.dispatched >= 3:
            lp.stop()
        else:
            lp.event_add(Event("h", h))
        return
        yield  # pragma: no cover

    loop.event_add(Event("h", h))
    kernel.run()
    assert loop.dispatched == 3
