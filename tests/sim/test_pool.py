"""Tests for the blocking resource pool."""

import pytest

from repro.sim import CurrentThread, Delay, Kernel
from repro.sim.pool import Get, ResourcePool


def test_get_returns_items_fifo():
    kernel = Kernel()
    pool = ResourcePool(kernel, ["a", "b"])
    got = []

    def worker():
        item = yield Get(pool)
        got.append(item)

    kernel.spawn(worker())
    kernel.spawn(worker())
    kernel.run()
    assert got == ["a", "b"]
    assert pool.available == 0
    assert pool.checkouts == 2


def test_get_blocks_until_put():
    kernel = Kernel()
    pool = ResourcePool(kernel, [])
    got = []

    def worker():
        item = yield Get(pool)
        got.append((item, kernel.now))

    def producer():
        yield Delay(1.0)
        pool.put("x")

    kernel.spawn(worker())
    kernel.spawn(producer())
    kernel.run()
    assert got == [("x", 1.0)]
    assert pool.total_wait_events == 1


def test_put_hands_directly_to_waiter():
    kernel = Kernel()
    pool = ResourcePool(kernel, ["only"])
    order = []

    def worker(tag, hold):
        item = yield Get(pool)
        order.append((tag, kernel.now))
        yield Delay(hold)
        pool.put(item)

    kernel.spawn(worker("first", 1.0))
    kernel.spawn(worker("second", 1.0))
    kernel.spawn(worker("third", 1.0))
    kernel.run()
    assert order == [("first", 0.0), ("second", 1.0), ("third", 2.0)]


def test_put_without_waiters_buffers():
    kernel = Kernel()
    pool = ResourcePool(kernel)
    pool.put("z")
    assert pool.available == 1
