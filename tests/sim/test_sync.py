"""Tests for mutexes (shared/exclusive, FIFO, wait hooks) and conditions."""

import pytest

from repro.sim import (
    Acquire,
    Condition,
    Delay,
    Kernel,
    Mutex,
    Notify,
    NotifyAll,
    Release,
    Wait,
)


def test_uncontended_acquire_is_immediate():
    kernel = Kernel()
    mutex = Mutex("m")
    log = []

    def worker():
        yield Acquire(mutex)
        log.append(kernel.now)
        yield Release(mutex)

    kernel.spawn(worker())
    kernel.run()
    assert log == [0.0]
    assert not mutex.holders


def test_exclusive_mutex_serializes_critical_sections():
    kernel = Kernel()
    mutex = Mutex("m")
    log = []

    def worker(tag, hold):
        yield Acquire(mutex)
        log.append((tag, "in", kernel.now))
        yield Delay(hold)
        log.append((tag, "out", kernel.now))
        yield Release(mutex)

    kernel.spawn(worker("a", 2.0))
    kernel.spawn(worker("b", 1.0))
    kernel.run()
    assert log == [
        ("a", "in", 0.0),
        ("a", "out", 2.0),
        ("b", "in", 2.0),
        ("b", "out", 3.0),
    ]


def test_fifo_ordering_of_waiters():
    kernel = Kernel()
    mutex = Mutex("m")
    order = []

    def worker(tag, start):
        yield Delay(start)
        yield Acquire(mutex)
        order.append(tag)
        yield Delay(1.0)
        yield Release(mutex)

    for i, tag in enumerate(["w0", "w1", "w2", "w3"]):
        kernel.spawn(worker(tag, i * 0.1))
    kernel.run()
    assert order == ["w0", "w1", "w2", "w3"]


def test_shared_holders_overlap():
    kernel = Kernel()
    mutex = Mutex("table")
    concurrent = []

    def reader(start):
        yield Delay(start)
        yield Acquire(mutex, shared=True)
        concurrent.append(len(mutex.holders))
        yield Delay(1.0)
        yield Release(mutex)

    kernel.spawn(reader(0.0))
    kernel.spawn(reader(0.1))
    kernel.run()
    assert max(concurrent) == 2


def test_writer_excludes_readers():
    kernel = Kernel()
    mutex = Mutex("table")
    log = []

    def writer():
        yield Acquire(mutex)
        yield Delay(2.0)
        log.append(("writer-out", kernel.now))
        yield Release(mutex)

    def reader():
        yield Delay(0.5)
        yield Acquire(mutex, shared=True)
        log.append(("reader-in", kernel.now))
        yield Release(mutex)

    kernel.spawn(writer())
    kernel.spawn(reader())
    kernel.run()
    assert log == [("writer-out", 2.0), ("reader-in", 2.0)]


def test_pending_writer_blocks_new_readers():
    """FIFO fairness: a queued writer prevents reader starvation."""
    kernel = Kernel()
    mutex = Mutex("table")
    log = []

    def reader(tag, start, hold):
        yield Delay(start)
        yield Acquire(mutex, shared=True)
        log.append((tag, kernel.now))
        yield Delay(hold)
        yield Release(mutex)

    def writer(start):
        yield Delay(start)
        yield Acquire(mutex)
        log.append(("writer", kernel.now))
        yield Delay(1.0)
        yield Release(mutex)

    kernel.spawn(reader("r1", 0.0, 2.0))
    kernel.spawn(writer(0.5))
    kernel.spawn(reader("r2", 1.0, 1.0))  # arrives while writer queued
    kernel.run()
    assert log == [("r1", 0.0), ("writer", 2.0), ("r2", 3.0)]


def test_wait_time_observer_reports_holder_snapshot():
    kernel = Kernel()
    mutex = Mutex("m")
    reports = []

    def observer(mtx, waiter, holders, mode, wait_time):
        reports.append(
            (waiter.name, [h.name for h, _ in holders], mode, wait_time)
        )

    mutex.observers.append(observer)

    def holder():
        yield Acquire(mutex)
        yield Delay(3.0)
        yield Release(mutex)

    def waiter():
        yield Delay(1.0)
        yield Acquire(mutex)
        yield Release(mutex)

    kernel.spawn(holder(), name="holder")
    kernel.spawn(waiter(), name="waiter")
    kernel.run()
    assert reports == [("waiter", ["holder"], "exclusive", 2.0)]


def test_observer_not_called_for_uncontended_acquire():
    kernel = Kernel()
    mutex = Mutex("m")
    reports = []
    mutex.observers.append(lambda *args: reports.append(args))

    def worker():
        yield Acquire(mutex)
        yield Release(mutex)

    kernel.spawn(worker())
    kernel.run()
    assert reports == []


def test_holder_snapshot_carries_transaction_context():
    kernel = Kernel()
    mutex = Mutex("m")
    contexts = []

    def observer(mtx, waiter, holders, mode, wait_time):
        contexts.extend(ctxt for _, ctxt in holders)

    mutex.observers.append(observer)

    def holder():
        yield Acquire(mutex)
        yield Delay(1.0)
        yield Release(mutex)

    def waiter():
        yield Delay(0.5)
        yield Acquire(mutex)
        yield Release(mutex)

    holder_thread = kernel.spawn(holder())
    holder_thread.tran_ctxt = ("BestSellers",)
    kernel.spawn(waiter())
    kernel.run()
    assert contexts == [("BestSellers",)]


def test_double_release_raises():
    kernel = Kernel()
    mutex = Mutex("m")

    def worker():
        yield Acquire(mutex)
        yield Release(mutex)
        yield Release(mutex)

    kernel.spawn(worker())
    with pytest.raises(RuntimeError):
        kernel.run()


def test_reacquire_while_held_raises():
    kernel = Kernel()
    mutex = Mutex("m")

    def worker():
        yield Acquire(mutex)
        yield Acquire(mutex)

    kernel.spawn(worker())
    with pytest.raises(RuntimeError):
        kernel.run()


def test_wait_statistics_accumulate():
    kernel = Kernel()
    mutex = Mutex("m")

    def worker(start):
        yield Delay(start)
        yield Acquire(mutex)
        yield Delay(1.0)
        yield Release(mutex)

    for i in range(3):
        kernel.spawn(worker(0.0))
    kernel.run()
    # Second waits 1s, third waits 2s.
    assert mutex.wait_count == 2
    assert mutex.total_wait_time == pytest.approx(3.0)
    assert mutex.acquire_count == 3


def test_condition_wait_notify_handoff():
    kernel = Kernel()
    mutex = Mutex("m")
    cond = Condition(mutex, "item-ready")
    log = []

    def consumer():
        yield Acquire(mutex)
        while not items:
            yield Wait(cond)
        log.append(("consumed", items.pop(), kernel.now))
        yield Release(mutex)

    def producer():
        yield Delay(2.0)
        yield Acquire(mutex)
        items.append("x")
        yield Notify(cond)
        yield Release(mutex)

    items = []
    kernel.spawn(consumer())
    kernel.spawn(producer())
    kernel.run()
    assert log == [("consumed", "x", 2.0)]


def test_notify_without_mutex_held_raises():
    kernel = Kernel()
    mutex = Mutex("m")
    cond = Condition(mutex)

    def worker():
        yield Notify(cond)

    kernel.spawn(worker())
    with pytest.raises(RuntimeError):
        kernel.run()


def test_notify_all_wakes_every_waiter():
    kernel = Kernel()
    mutex = Mutex("m")
    cond = Condition(mutex)
    woken = []

    def waiter(tag):
        yield Acquire(mutex)
        yield Wait(cond)
        woken.append(tag)
        yield Release(mutex)

    def broadcaster():
        yield Delay(1.0)
        yield Acquire(mutex)
        yield NotifyAll(cond)
        yield Release(mutex)

    for tag in ["a", "b", "c"]:
        kernel.spawn(waiter(tag))
    kernel.spawn(broadcaster())
    kernel.run()
    assert sorted(woken) == ["a", "b", "c"]


def test_notify_with_no_waiters_is_noop():
    kernel = Kernel()
    mutex = Mutex("m")
    cond = Condition(mutex)
    done = []

    def worker():
        yield Acquire(mutex)
        yield Notify(cond)
        yield Release(mutex)
        done.append(True)

    kernel.spawn(worker())
    kernel.run()
    assert done == [True]


def test_mesa_semantics_waiter_recontends_for_mutex():
    """After notify, the waiter must re-acquire before proceeding."""
    kernel = Kernel()
    mutex = Mutex("m")
    cond = Condition(mutex)
    log = []

    def waiter():
        yield Acquire(mutex)
        yield Wait(cond)
        log.append(("waiter-resumed", kernel.now))
        yield Release(mutex)

    def notifier():
        yield Delay(1.0)
        yield Acquire(mutex)
        yield Notify(cond)
        yield Delay(2.0)  # keep holding: waiter cannot resume yet
        yield Release(mutex)

    kernel.spawn(waiter())
    kernel.spawn(notifier())
    kernel.run()
    assert log == [("waiter-resumed", 3.0)]


def test_holder_snapshot_order_is_deterministic():
    """The snapshot handed to wait observers must be ordered by tid,
    not by set iteration: set order follows per-process object hashes,
    and profile dumps built from crosstalk events must be
    byte-identical across processes."""
    kernel = Kernel()
    mutex = Mutex("m")
    snapshots = []
    mutex.observers.append(
        lambda m, waiter, holders, mode, wait: snapshots.append(holders)
    )

    def reader(hold):
        yield Acquire(mutex, shared=True)
        yield Delay(hold)
        yield Release(mutex)

    def writer():
        yield Delay(0.5)  # let every reader in first
        yield Acquire(mutex)
        yield Release(mutex)

    readers = [kernel.spawn(reader(2.0)) for _ in range(8)]
    kernel.spawn(writer())
    kernel.run()
    (holders,) = [s for s in snapshots if s]
    tids = [thread.tid for thread, _ in holders]
    assert tids == sorted(tids)
    assert {thread.tid for thread, _ in holders} == {t.tid for t in readers}
