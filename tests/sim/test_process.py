"""Tests for SimThread internals: frames, CurrentThread, error handling."""

import pytest

from repro.sim import CurrentThread, Delay, Kernel
from repro.sim.process import frame


def test_current_thread_returns_own_thread():
    kernel = Kernel()
    seen = []

    def worker():
        thread = yield CurrentThread()
        seen.append(thread)

    spawned = kernel.spawn(worker(), name="me")
    kernel.run()
    assert seen == [spawned]


def test_push_pop_frame_tracks_call_path():
    kernel = Kernel()
    paths = []

    def worker():
        thread = yield CurrentThread()
        thread.push_frame("a")
        thread.push_frame("b")
        paths.append(thread.call_path())
        thread.pop_frame("b")
        paths.append(thread.call_path())
        thread.pop_frame("a")

    kernel.spawn(worker())
    kernel.run()
    assert paths == [("a", "b"), ("a",)]


def test_pop_frame_mismatch_raises():
    kernel = Kernel()

    def worker():
        thread = yield CurrentThread()
        thread.push_frame("a")
        thread.pop_frame("b")

    kernel.spawn(worker())
    with pytest.raises(RuntimeError):
        kernel.run()


def test_frame_context_manager_survives_yields():
    kernel = Kernel()
    paths = []

    def worker():
        thread = yield CurrentThread()
        with frame(thread, "outer"):
            yield Delay(1.0)
            with frame(thread, "inner"):
                paths.append(thread.call_path())
                yield Delay(1.0)
            paths.append(thread.call_path())
        paths.append(thread.call_path())

    kernel.spawn(worker())
    kernel.run()
    assert paths == [("outer", "inner"), ("outer",), ()]


def test_frame_exits_cleanly_on_exception():
    kernel = Kernel()

    def worker():
        thread = yield CurrentThread()
        with frame(thread, "f"):
            raise ValueError("inside frame")

    kernel.spawn(worker())
    with pytest.raises(ValueError):
        kernel.run()


def test_thread_failure_records_exception():
    kernel = Kernel()

    def worker():
        yield Delay(0.1)
        raise KeyError("dead")

    thread = kernel.spawn(worker())
    with pytest.raises(KeyError):
        kernel.run()
    assert not thread.alive
    assert isinstance(thread.failure, KeyError)


def test_throw_in_delivers_exception_to_yield_point():
    kernel = Kernel()
    caught = []

    def worker():
        try:
            yield Delay(100.0)
        except TimeoutError:
            caught.append("timeout")

    thread = kernel.spawn(worker())
    kernel.schedule(1.0, kernel.throw_in, thread, TimeoutError())
    kernel.run()
    assert caught == ["timeout"]
    assert not thread.alive


def test_throw_in_unhandled_marks_failure():
    kernel = Kernel()

    def worker():
        yield Delay(100.0)

    thread = kernel.spawn(worker())
    kernel.schedule(1.0, kernel.throw_in, thread, TimeoutError("t"))
    kernel.run()
    assert not thread.alive
    assert isinstance(thread.failure, TimeoutError)


def test_step_on_dead_thread_is_noop():
    kernel = Kernel()

    def worker():
        return None
        yield  # pragma: no cover

    thread = kernel.spawn(worker())
    kernel.run()
    thread.step(None)  # no crash
    thread.throw(ValueError())  # no crash
