"""Property-based tests of simulation-kernel invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import (
    Acquire,
    CPU,
    Delay,
    Kernel,
    Mutex,
    Release,
    UseCPU,
)

actions = st.lists(
    st.tuples(
        st.sampled_from(["delay", "cpu", "lock"]),
        st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
    ),
    min_size=1,
    max_size=8,
)
workloads = st.lists(actions, min_size=1, max_size=6)


def build_worker(kernel, cpu, mutex, script, trace):
    def worker():
        for kind, amount in script:
            trace.append(kernel.now)
            if kind == "delay":
                yield Delay(amount)
            elif kind == "cpu":
                yield UseCPU(cpu, amount)
            else:
                yield Acquire(mutex)
                yield Delay(amount)
                yield Release(mutex)
        return "done"

    return worker


@settings(max_examples=50, deadline=None)
@given(workloads)
def test_all_threads_complete_and_clock_is_monotone(scripts):
    kernel = Kernel()
    cpu = CPU(kernel)
    mutex = Mutex("m")
    traces = []
    threads = []
    for script in scripts:
        trace = []
        traces.append(trace)
        threads.append(
            kernel.spawn(build_worker(kernel, cpu, mutex, script, trace)())
        )
    kernel.run()
    assert all(not t.alive for t in threads)
    assert all(t.result == "done" for t in threads)
    for trace in traces:
        assert all(b >= a for a, b in zip(trace, trace[1:]))
    # Nothing is left holding the lock.
    assert not mutex.holders


@settings(max_examples=50, deadline=None)
@given(workloads)
def test_cpu_busy_time_conserves_demand(scripts):
    kernel = Kernel()
    cpu = CPU(kernel)
    mutex = Mutex("m")
    for script in scripts:
        kernel.spawn(build_worker(kernel, cpu, mutex, script, [])())
    kernel.run()
    expected = sum(
        amount for script in scripts for kind, amount in script if kind == "cpu"
    )
    assert cpu.busy_time == pytest.approx(expected, abs=1e-9)
    assert cpu.total_demand == pytest.approx(expected, abs=1e-9)
    # The clock can never end before the busiest resource finished.
    assert kernel.now >= cpu.busy_time - 1e-9


@settings(max_examples=30, deadline=None)
@given(workloads)
def test_lock_wait_time_is_consistent(scripts):
    kernel = Kernel()
    cpu = CPU(kernel)
    mutex = Mutex("m")
    observed = []
    mutex.observers.append(
        lambda m, w, holders, mode, wait: observed.append(wait)
    )
    for script in scripts:
        kernel.spawn(build_worker(kernel, cpu, mutex, script, [])())
    kernel.run()
    assert mutex.wait_count == len(observed)
    assert mutex.total_wait_time == pytest.approx(sum(observed), abs=1e-9)
    assert all(w >= 0 for w in observed)
