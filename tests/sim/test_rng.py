"""Tests for seeded random streams and workload distributions."""

import pytest

from repro.sim import Rng


def test_same_seed_same_sequence():
    a = Rng(7)
    b = Rng(7)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_diverge():
    a = Rng(1)
    b = Rng(2)
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_streams_are_independent_and_deterministic():
    master = Rng(42)
    s1 = master.stream("clients")
    s2 = master.stream("sizes")
    s1_again = Rng(42).stream("clients")
    assert [s1.random() for _ in range(5)] == [s1_again.random() for _ in range(5)]
    assert s1.seed != s2.seed


def test_zipf_table_is_monotone_cumulative():
    rng = Rng(0)
    table = rng.zipf_table(100, alpha=1.0)
    assert len(table) == 100
    assert all(b >= a for a, b in zip(table, table[1:]))
    assert table[-1] == pytest.approx(1.0)


def test_zipf_pick_favours_low_ranks():
    rng = Rng(3)
    table = rng.zipf_table(1000, alpha=1.0)
    picks = [rng.zipf_pick(table) for _ in range(5000)]
    top10 = sum(1 for p in picks if p < 10)
    assert top10 > 0.3 * len(picks)  # zipf(1): top-10 of 1000 ≈ 39%


def test_zipf_pick_within_bounds():
    rng = Rng(5)
    table = rng.zipf_table(50)
    assert all(0 <= rng.zipf_pick(table) < 50 for _ in range(1000))


def test_bounded_pareto_within_bounds():
    rng = Rng(9)
    samples = [rng.bounded_pareto(1.2, 100.0, 1e6) for _ in range(2000)]
    assert all(100.0 <= s <= 1e6 for s in samples)


def test_bounded_pareto_is_heavy_tailed():
    rng = Rng(11)
    samples = sorted(rng.bounded_pareto(1.2, 100.0, 1e6) for _ in range(5000))
    median = samples[len(samples) // 2]
    mean = sum(samples) / len(samples)
    assert mean > 2 * median  # heavy tail pulls the mean up


def test_weighted_pick_respects_weights():
    rng = Rng(13)
    items = [("a", 0.9), ("b", 0.1)]
    picks = [rng.weighted_pick(items) for _ in range(2000)]
    assert picks.count("a") > picks.count("b") * 4


def test_weighted_pick_single_item():
    rng = Rng(1)
    assert rng.weighted_pick([("only", 1.0)]) == "only"


def test_expovariate_positive():
    rng = Rng(17)
    assert all(rng.expovariate(1.0) > 0 for _ in range(100))
