"""Tests for the FCFS disk model."""

import pytest

from repro.sim import CurrentThread, Delay, Kernel
from repro.sim.disk import Disk, ReadDisk


def test_single_read_takes_position_plus_transfer():
    kernel = Kernel()
    disk = Disk(kernel, positioning_time=0.008, transfer_rate=1e6)
    done = []

    def reader():
        yield ReadDisk(disk, 1_000_000)
        done.append(kernel.now)

    kernel.spawn(reader())
    kernel.run()
    assert done == [pytest.approx(0.008 + 1.0)]
    assert disk.reads_served == 1
    assert disk.bytes_read == 1_000_000


def test_reads_queue_fcfs():
    kernel = Kernel()
    disk = Disk(kernel, positioning_time=0.01, transfer_rate=1e9)
    done = []

    def reader(tag):
        yield ReadDisk(disk, 0)
        done.append((tag, kernel.now))

    for tag in range(3):
        kernel.spawn(reader(tag))
    kernel.run()
    times = [t for _, t in done]
    assert times == [
        pytest.approx(0.01),
        pytest.approx(0.02),
        pytest.approx(0.03),
    ]


def test_queue_length_and_utilization():
    kernel = Kernel()
    disk = Disk(kernel, positioning_time=0.5, transfer_rate=1e9)
    lengths = []

    def reader():
        yield ReadDisk(disk, 0)

    def probe():
        yield Delay(0.25)
        lengths.append(disk.queue_length)

    kernel.spawn(reader())
    kernel.spawn(reader())
    kernel.spawn(probe())
    kernel.run(until=2.0)
    assert lengths == [1]
    assert disk.utilization() == pytest.approx(0.5)


def test_invalid_parameters_rejected():
    kernel = Kernel()
    with pytest.raises(ValueError):
        Disk(kernel, positioning_time=-1)
    with pytest.raises(ValueError):
        Disk(kernel, transfer_rate=0)
    disk = Disk(kernel)

    def reader():
        yield ReadDisk(disk, -5)

    kernel.spawn(reader())
    with pytest.raises(ValueError):
        kernel.run()


def test_disk_idle_after_queue_drains():
    kernel = Kernel()
    disk = Disk(kernel, positioning_time=0.01, transfer_rate=1e9)

    def reader():
        yield ReadDisk(disk, 100)
        yield Delay(1.0)
        yield ReadDisk(disk, 100)

    kernel.spawn(reader())
    kernel.run()
    assert disk.reads_served == 2
    assert not disk._busy
