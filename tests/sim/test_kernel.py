"""Unit tests for the simulation kernel: clock, scheduling, threads."""

import pytest

from repro.sim import Delay, Exit, Join, Kernel, Spawn
from repro.sim.kernel import Deadlock, SimulationError


def test_clock_starts_at_zero():
    kernel = Kernel()
    assert kernel.now == 0.0


def test_schedule_runs_callbacks_in_time_order():
    kernel = Kernel()
    seen = []
    kernel.schedule(2.0, seen.append, "b")
    kernel.schedule(1.0, seen.append, "a")
    kernel.schedule(3.0, seen.append, "c")
    kernel.run()
    assert seen == ["a", "b", "c"]


def test_same_time_events_run_in_fifo_order():
    kernel = Kernel()
    seen = []
    for tag in range(5):
        kernel.schedule(1.0, seen.append, tag)
    kernel.run()
    assert seen == [0, 1, 2, 3, 4]


def test_clock_advances_to_event_time():
    kernel = Kernel()
    times = []
    kernel.schedule(1.5, lambda: times.append(kernel.now))
    kernel.schedule(4.25, lambda: times.append(kernel.now))
    kernel.run()
    assert times == [1.5, 4.25]


def test_negative_delay_rejected():
    kernel = Kernel()
    with pytest.raises(ValueError):
        kernel.schedule(-1.0, lambda: None)


def test_cancelled_event_does_not_run():
    kernel = Kernel()
    seen = []
    event = kernel.schedule(1.0, seen.append, "x")
    event.cancel()
    kernel.run()
    assert seen == []


def test_run_until_stops_clock_at_horizon():
    kernel = Kernel()
    seen = []
    kernel.schedule(5.0, seen.append, "late")
    end = kernel.run(until=2.0)
    assert end == 2.0
    assert kernel.now == 2.0
    assert seen == []
    # A later run picks the event back up.
    kernel.run(until=10.0)
    assert seen == ["late"]


def test_run_until_with_empty_queue_advances_clock():
    kernel = Kernel()
    assert kernel.run(until=7.0) == 7.0


def test_stop_halts_the_loop():
    kernel = Kernel()
    seen = []
    kernel.schedule(1.0, kernel.stop)
    kernel.schedule(2.0, seen.append, "never")
    kernel.run()
    assert seen == []
    assert kernel.now == 1.0


def test_events_scheduled_during_run_execute():
    kernel = Kernel()
    seen = []

    def first():
        kernel.schedule(1.0, seen.append, "second")

    kernel.schedule(1.0, first)
    kernel.run()
    assert seen == ["second"]
    assert kernel.now == 2.0


def test_spawn_runs_generator_to_completion():
    kernel = Kernel()
    seen = []

    def worker():
        seen.append(kernel.now)
        yield Delay(3.0)
        seen.append(kernel.now)

    kernel.spawn(worker())
    kernel.run()
    assert seen == [0.0, 3.0]


def test_thread_return_value_via_join():
    kernel = Kernel()
    results = []

    def child():
        yield Delay(1.0)
        return 42

    def parent():
        thread = yield Spawn(child())
        value = yield Join(thread)
        results.append(value)

    kernel.spawn(parent())
    kernel.run()
    assert results == [42]


def test_join_on_finished_thread_returns_immediately():
    kernel = Kernel()
    results = []

    def child():
        return "done"
        yield  # pragma: no cover

    def parent(target):
        value = yield Join(target)
        results.append((kernel.now, value))

    child_thread = kernel.spawn(child())
    kernel.run()
    kernel.spawn(parent(child_thread))
    kernel.run()
    assert results == [(0.0, "done")]


def test_exit_terminates_thread_early():
    kernel = Kernel()
    seen = []

    def worker():
        seen.append("before")
        yield Exit()
        seen.append("after")  # pragma: no cover

    kernel.spawn(worker())
    kernel.run()
    assert seen == ["before"]


def test_yield_from_subroutine_composes():
    kernel = Kernel()
    seen = []

    def helper():
        yield Delay(1.0)
        return "sub"

    def worker():
        value = yield from helper()
        seen.append((kernel.now, value))

    kernel.spawn(worker())
    kernel.run()
    assert seen == [(1.0, "sub")]


def test_yielding_garbage_raises_type_error():
    kernel = Kernel()

    def worker():
        yield "not a syscall"

    kernel.spawn(worker())
    with pytest.raises(TypeError):
        kernel.run()


def test_thread_exception_propagates_to_joiner():
    kernel = Kernel()
    caught = []

    def child():
        yield Delay(1.0)
        raise ValueError("boom")

    def parent():
        thread = yield Spawn(child())
        try:
            yield Join(thread)
        except ValueError as exc:
            caught.append(str(exc))

    kernel.spawn(parent())
    with pytest.raises(ValueError):
        kernel.run()
    kernel.run()
    assert caught == ["boom"]


def test_deadlock_detected_on_unbounded_run():
    # Two threads joining each other can never finish.
    kernel = Kernel()
    holder = {}

    def a():
        yield Join(holder["b"])

    def b():
        yield Delay(0.1)
        yield Join(holder["a"])

    holder["a"] = kernel.spawn(a())
    holder["b"] = kernel.spawn(b())
    with pytest.raises(Deadlock):
        kernel.run()


def test_daemon_threads_do_not_trigger_deadlock():
    kernel = Kernel()
    holder = {}

    def server():
        yield Join(holder["never"])

    def never():
        yield Delay(1e12)

    holder["never"] = kernel.spawn(never())
    holder["never"].daemon = True
    thread = kernel.spawn(server())
    thread.daemon = True
    kernel.run(until=1.0)
    assert kernel.now == 1.0


def test_live_threads_listing():
    kernel = Kernel()

    def quick():
        yield Delay(1.0)

    def slow():
        yield Delay(5.0)

    kernel.spawn(quick(), name="quick")
    kernel.spawn(slow(), name="slow")
    kernel.run(until=2.0)
    names = [t.name for t in kernel.live_threads]
    assert names == ["slow"]


def test_livelock_detection():
    from repro.sim.kernel import SimulationError

    kernel = Kernel(livelock_limit=100)

    def spin():
        kernel.call_soon(spin)

    kernel.call_soon(spin)
    with pytest.raises(SimulationError, match="livelock"):
        kernel.run()


def test_same_time_batches_below_limit_are_fine():
    kernel = Kernel(livelock_limit=100)
    seen = []
    for i in range(90):
        kernel.schedule(1.0, seen.append, i)
    kernel.run()
    assert len(seen) == 90


def test_livelock_counter_resets_when_clock_advances():
    from repro.sim.kernel import SimulationError

    kernel = Kernel(livelock_limit=100)
    seen = []
    for t in range(5):
        for i in range(80):  # 80 < 100 at each timestamp
            kernel.schedule(float(t), seen.append, (t, i))
    kernel.run()
    assert len(seen) == 400


def test_pending_events_counts_uncancelled():
    kernel = Kernel()
    kernel.schedule(1.0, lambda: None)
    event = kernel.schedule(2.0, lambda: None)
    event.cancel()
    assert kernel.pending_events() == 1


def test_finished_threads_are_reaped():
    """10k short-lived threads must not accumulate in the registry."""
    kernel = Kernel()
    done = []

    def short_lived(index):
        yield Delay(0.001)
        done.append(index)

    for index in range(10_000):
        kernel.schedule(index * 0.01, kernel.spawn, short_lived(index))
    kernel.run()
    assert len(done) == 10_000
    assert len(kernel._threads) == 0
    assert kernel.live_threads == []


def test_reaped_registry_still_detects_deadlock():
    """Reaping finished threads must not blind the deadlock check."""
    kernel = Kernel()
    holder = {}

    def finishes():
        yield Delay(0.1)

    def a():
        yield Join(holder["b"])

    def b():
        yield Delay(0.2)
        yield Join(holder["a"])

    kernel.spawn(finishes())
    holder["a"] = kernel.spawn(a())
    holder["b"] = kernel.spawn(b())
    with pytest.raises(Deadlock):
        kernel.run()


def test_join_works_after_target_reaped():
    kernel = Kernel()
    results = []

    def child():
        yield Delay(1.0)
        return "done"

    def parent(target):
        value = yield Join(target)
        results.append(value)

    target = kernel.spawn(child())
    kernel.run()
    assert len(kernel._threads) == 0  # child reaped
    kernel.spawn(parent(target))
    kernel.run()
    assert results == ["done"]


def test_cancelled_events_are_purged_lazily():
    kernel = Kernel()
    events = [kernel.schedule(1.0 + i, lambda: None) for i in range(1000)]
    keep = events[:50]
    for event in events[50:]:
        event.cancel()
    # The wheel was rebuilt without the dead weight once cancelled
    # entries dominated it.
    assert sum(len(bucket) for bucket in kernel._wheel.values()) < 200
    assert kernel.pending_events() == 50
    assert all(not e.cancelled for e in keep)
    kernel.run()
    assert kernel.pending_events() == 0


def test_cancel_after_run_is_harmless():
    kernel = Kernel()
    seen = []
    event = kernel.schedule(1.0, seen.append, "x")
    kernel.run()
    event.cancel()  # already executed; must not corrupt the counter
    assert seen == ["x"]
    assert kernel.pending_events() == 0
    kernel.schedule(1.0, seen.append, "y")
    assert kernel.pending_events() == 1
