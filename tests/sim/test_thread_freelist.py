"""Regression tests for the kernel's SimThread shell freelist.

The hot-path work recycles dead thread shells through
``Kernel._thread_freelist`` (see ``kernel.spawn`` / ``kernel.reap``).
These tests pin the safety contract: reuse is field-clean, a shell with
any surviving outside handle is never reused (refcount veto), failed
threads are never pooled, and two live threads can never share a
recycled instance.
"""

import pytest

from repro.sim import CurrentThread, Delay, Kernel


def _churn(kernel, results, payload):
    """A short-lived worker that dirties every recyclable field."""

    def worker():
        thread = yield CurrentThread()
        thread.push_frame("handler")
        thread.push_frame(payload)
        thread.tran_ctxt = ("ctx", payload)
        yield Delay(0.0)
        thread.pop_frame(payload)
        thread.pop_frame("handler")
        results.append(payload)
        return payload

    return kernel.spawn(worker(), name=f"churn-{payload}")


def test_finished_shell_is_recycled_field_clean():
    kernel = Kernel()
    results = []
    # Spawn without keeping a handle so the shell is actually poolable.
    _churn(kernel, results, "first")
    kernel.run()
    assert results == ["first"]
    freelist = kernel._thread_freelist
    assert freelist, "cleanly finished thread should be pooled"
    # Hold only the id (an int), never a reference: a reference would
    # (correctly) veto the reuse we are trying to observe.  The id stays
    # valid because the shell object is alive in the freelist until the
    # moment spawn() re-arms it.
    shell_ids = [id(shell) for shell in freelist]

    seen = []

    def fresh():
        thread = yield CurrentThread()
        seen.append(thread)
        yield Delay(0.0)

    reused = kernel.spawn(fresh(), name="fresh")
    assert id(reused) in shell_ids, "spawn should re-arm the pooled shell"
    # Field-clean: nothing from the first life leaks into the second.
    assert reused.alive is True
    assert reused.result is None
    assert reused.failure is None
    assert reused.daemon is False
    assert reused.call_stack == []
    assert reused.joiners == []
    assert reused.tran_ctxt is None
    assert reused.name == "fresh"
    kernel.run()
    assert seen == [reused]


def test_held_handle_vetoes_reuse():
    kernel = Kernel()
    results = []
    held = _churn(kernel, results, "held")
    kernel.run()
    assert held.alive is False
    assert held.result == "held"
    assert held in kernel._thread_freelist

    def fresh():
        yield Delay(0.0)

    replacement = kernel.spawn(fresh())
    # Our `held` reference made the refcount veto fire: the new thread
    # is a fresh allocation and the dead handle still reads as dead.
    assert replacement is not held
    assert held.alive is False
    assert held.result == "held"
    kernel.run()


def test_failed_threads_are_never_pooled():
    kernel = Kernel()

    def crasher():
        yield Delay(0.0)
        raise RuntimeError("boom")

    doomed = kernel.spawn(crasher())
    with pytest.raises(RuntimeError):
        kernel.run()
    assert doomed.failure is not None
    assert doomed.alive is False
    assert doomed not in kernel._thread_freelist


def test_live_threads_never_share_a_recycled_shell():
    kernel = Kernel()
    results = []
    # Fill the freelist with several shells first.
    for i in range(5):
        _churn(kernel, results, f"gen-{i}")
    kernel.run()
    assert len(kernel._thread_freelist) >= 2

    def sleeper():
        yield Delay(10.0)

    live = [kernel.spawn(sleeper(), name=f"live-{i}") for i in range(4)]
    # All four are alive simultaneously: distinct objects, distinct tids.
    assert len({id(t) for t in live}) == 4
    assert len({t.tid for t in live}) == 4
    assert all(t.alive for t in live)
    kernel.run()
