"""Tests for the contended CPU resource."""

import pytest

from repro.sim import CPU, Delay, Kernel, UseCPU


def test_single_demand_takes_service_time():
    kernel = Kernel()
    cpu = CPU(kernel, cores=1)
    done = []

    def worker():
        yield UseCPU(cpu, 0.5)
        done.append(kernel.now)

    kernel.spawn(worker())
    kernel.run()
    assert done == [0.5]


def test_fcfs_queueing_on_one_core():
    kernel = Kernel()
    cpu = CPU(kernel, cores=1, quantum=None)
    done = []

    def worker(tag, demand):
        yield UseCPU(cpu, demand)
        done.append((tag, kernel.now))

    kernel.spawn(worker("a", 1.0))
    kernel.spawn(worker("b", 2.0))
    kernel.spawn(worker("c", 0.5))
    kernel.run()
    assert done == [("a", 1.0), ("b", 3.0), ("c", 3.5)]


def test_round_robin_lets_short_job_finish_early():
    kernel = Kernel()
    cpu = CPU(kernel, cores=1, quantum=0.01)
    done = []

    def worker(tag, demand):
        yield UseCPU(cpu, demand)
        done.append((tag, kernel.now))

    kernel.spawn(worker("long", 1.0))
    kernel.spawn(worker("short", 0.02))
    kernel.run()
    # Under RR the short job finishes far before the long one, instead
    # of waiting a full second behind it.
    tags = [tag for tag, _ in done]
    assert tags == ["short", "long"]
    short_end = dict(done)["short"]
    assert short_end < 0.1
    assert dict(done)["long"] == pytest.approx(1.02, abs=0.02)


def test_uncontended_job_completes_exactly_on_time():
    kernel = Kernel()
    cpu = CPU(kernel, cores=1, quantum=1e-3)
    done = []

    def worker():
        yield UseCPU(cpu, 0.5)
        done.append(kernel.now)

    kernel.spawn(worker())
    kernel.run()
    assert done == [0.5]  # exact: single extended slice, no drift


def test_preemption_accounts_partial_busy_time():
    kernel = Kernel()
    cpu = CPU(kernel, cores=1, quantum=0.01)
    done = []

    def long_job():
        yield UseCPU(cpu, 1.0)
        done.append(("long", kernel.now))

    def late_arrival():
        yield Delay(0.25)
        yield UseCPU(cpu, 0.01)
        done.append(("late", kernel.now))

    kernel.spawn(long_job())
    kernel.spawn(late_arrival())
    kernel.run()
    # The long job's extended slice is preempted at 0.25; the late job
    # gets a quantum soon after.
    late_end = dict(done)["late"]
    assert late_end == pytest.approx(0.27, abs=0.02)
    assert dict(done)["long"] == pytest.approx(1.01, abs=0.02)
    assert cpu.busy_time == pytest.approx(1.01, abs=1e-6)


def test_two_cores_serve_in_parallel():
    kernel = Kernel()
    cpu = CPU(kernel, cores=2, quantum=None)
    done = []

    def worker(tag):
        yield UseCPU(cpu, 1.0)
        done.append((tag, kernel.now))

    kernel.spawn(worker("a"))
    kernel.spawn(worker("b"))
    kernel.spawn(worker("c"))
    kernel.run()
    assert done == [("a", 1.0), ("b", 1.0), ("c", 2.0)]


def test_zero_demand_completes_immediately():
    kernel = Kernel()
    cpu = CPU(kernel)
    done = []

    def worker():
        yield UseCPU(cpu, 0.0)
        done.append(kernel.now)

    kernel.spawn(worker())
    kernel.run()
    assert done == [0.0]


def test_negative_demand_rejected():
    kernel = Kernel()
    cpu = CPU(kernel)

    def worker():
        yield UseCPU(cpu, -1.0)

    kernel.spawn(worker())
    with pytest.raises(ValueError):
        kernel.run()


def test_utilization_tracks_busy_fraction():
    kernel = Kernel()
    cpu = CPU(kernel, cores=1)

    def worker():
        yield UseCPU(cpu, 2.0)

    kernel.spawn(worker())
    kernel.run(until=4.0)
    assert cpu.utilization() == pytest.approx(0.5)


def test_queue_length_during_contention():
    kernel = Kernel()
    cpu = CPU(kernel, cores=1)
    lengths = []

    def worker():
        yield UseCPU(cpu, 1.0)

    def probe():
        yield Delay(0.5)
        lengths.append(cpu.queue_length)

    for _ in range(3):
        kernel.spawn(worker())
    kernel.spawn(probe())
    kernel.run()
    assert lengths == [2]


def test_cycles_conversion_uses_clock():
    kernel = Kernel()
    cpu = CPU(kernel, clock_hz=2.4e9)
    assert cpu.seconds_for_cycles(2.4e9) == pytest.approx(1.0)
    assert cpu.seconds_for_cycles(132) == pytest.approx(132 / 2.4e9)


def test_stage_on_cpu_hook_receives_attribution():
    class FakeStage:
        def __init__(self):
            self.records = []

        def on_cpu(self, thread, amount):
            self.records.append((thread.name, amount))

        def on_call(self, thread):
            pass

    kernel = Kernel()
    cpu = CPU(kernel)
    stage = FakeStage()

    def worker():
        yield UseCPU(cpu, 0.25)
        yield UseCPU(cpu, 0.75)

    kernel.spawn(worker(), name="w", stage=stage)
    kernel.run()
    assert stage.records == [("w", 0.25), ("w", 0.75)]


def test_total_demand_accumulates():
    kernel = Kernel()
    cpu = CPU(kernel)

    def worker():
        yield UseCPU(cpu, 0.5)
        yield UseCPU(cpu, 0.5)

    kernel.spawn(worker())
    kernel.run()
    assert cpu.total_demand == pytest.approx(1.0)
    assert cpu.busy_time == pytest.approx(1.0)
