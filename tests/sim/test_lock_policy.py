"""Tests for reader-priority locking and the writer-starvation limit."""

import pytest

from repro.sim import Acquire, Delay, Kernel, Mutex, Release
from repro.sim.sync import READER_PRIORITY


def spawn_reader(kernel, mutex, log, tag, start, hold):
    def reader():
        yield Delay(start)
        yield Acquire(mutex, shared=True)
        yield Delay(hold)
        log.append((tag, kernel.now))
        yield Release(mutex)

    kernel.spawn(reader())


def spawn_writer(kernel, mutex, log, tag, start, hold=0.1):
    def writer():
        yield Delay(start)
        yield Acquire(mutex)
        yield Delay(hold)
        log.append((tag, kernel.now))
        yield Release(mutex)

    kernel.spawn(writer())


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        Mutex("m", policy="elevator")


def test_reader_priority_new_readers_bypass_queued_writer():
    kernel = Kernel()
    mutex = Mutex("t", policy=READER_PRIORITY)
    log = []
    spawn_reader(kernel, mutex, log, "r1", 0.0, 1.0)
    spawn_writer(kernel, mutex, log, "w", 0.5)
    spawn_reader(kernel, mutex, log, "r2", 0.6, 1.0)  # bypasses w
    kernel.run()
    assert [tag for tag, _ in log] == ["r1", "r2", "w"]


def test_fifo_policy_blocks_new_readers_behind_writer():
    kernel = Kernel()
    mutex = Mutex("t")  # default fifo
    log = []
    spawn_reader(kernel, mutex, log, "r1", 0.0, 1.0)
    spawn_writer(kernel, mutex, log, "w", 0.5)
    spawn_reader(kernel, mutex, log, "r2", 0.6, 1.0)
    kernel.run()
    assert [tag for tag, _ in log] == ["r1", "w", "r2"]


def test_reader_priority_queued_readers_skip_writer_on_wake():
    """Readers that blocked behind a writer-held lock are granted past a

    queued writer when the readers' turn comes."""
    kernel = Kernel()
    mutex = Mutex("t", policy=READER_PRIORITY)
    log = []
    spawn_writer(kernel, mutex, log, "w1", 0.0, 1.0)  # holds first
    spawn_reader(kernel, mutex, log, "r1", 0.1, 1.0)  # queued
    spawn_writer(kernel, mutex, log, "w2", 0.2)       # queued
    spawn_reader(kernel, mutex, log, "r2", 0.3, 1.0)  # queued after w2
    kernel.run()
    # After w1 releases, r1 is head; r2 skips past w2 and joins r1.
    assert [tag for tag, _ in log] == ["w1", "r1", "r2", "w2"]


def test_starvation_limit_stops_reader_bypass():
    kernel = Kernel()
    mutex = Mutex("t", policy=READER_PRIORITY, writer_starvation_limit=2.0)
    log = []
    # Overlapping readers would starve the writer forever without the
    # limit; with limit 2.0 the writer gets in once readers drain.
    for i in range(6):
        spawn_reader(kernel, mutex, log, f"r{i}", i * 1.0, 1.5)
    spawn_writer(kernel, mutex, log, "w", 0.5)
    kernel.run()
    writer_time = dict(log)["w"]
    assert writer_time < max(t for tag, t in log if tag != "w")


def test_unbounded_starvation_without_limit():
    kernel = Kernel()
    mutex = Mutex("t", policy=READER_PRIORITY)
    log = []
    for i in range(6):
        spawn_reader(kernel, mutex, log, f"r{i}", i * 1.0, 1.5)
    spawn_writer(kernel, mutex, log, "w", 0.5)
    kernel.run()
    # The writer waits for the entire read stream to drain.
    writer_time = dict(log)["w"]
    assert writer_time > max(t for tag, t in log if tag != "w")
