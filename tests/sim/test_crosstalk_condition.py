"""Regression: contended Condition wakeups are visible to crosstalk (§6).

The post-``Wait`` mutex reacquisition used to bypass the ``Acquire``
observer path — ``_Reacquire`` was an unrelated syscall class, so
``Mutex._grant_waiter``'s ``isinstance`` check never fired
``mutex.observers`` for it.  Lock waits flowing through condition
variables (the Apache-like server's shared connection queue) were
therefore invisible to crosstalk, the paper's §6 measurement point.
"""

from repro.core.context import TransactionContext
from repro.core.crosstalk import CrosstalkRecorder
from repro.sim import (
    Acquire,
    Condition,
    CurrentThread,
    Delay,
    Kernel,
    Mutex,
    Notify,
    Release,
    Wait,
)


def _contended_wakeup(kernel, mutex, cond, consumer_ctxt=None, producer_ctxt=None):
    """Consumer waits on ``cond``; producer notifies while holding the

    mutex for 0.5s, so the consumer's reacquisition is contended."""

    def consumer():
        thread = yield CurrentThread()
        thread.tran_ctxt = consumer_ctxt
        yield Acquire(mutex)
        yield Wait(cond)
        yield Release(mutex)

    def producer():
        thread = yield CurrentThread()
        thread.tran_ctxt = producer_ctxt
        yield Delay(1.0)
        yield Acquire(mutex)  # uncontended: the consumer released in Wait
        yield Notify(cond)  # the consumer's reacquire now blocks on us
        yield Delay(0.5)  # hold the lock while it waits
        yield Release(mutex)

    kernel.spawn(consumer(), name="consumer")
    kernel.spawn(producer(), name="producer")
    kernel.run()


def test_condition_reacquire_fires_mutex_observers():
    kernel = Kernel()
    mutex = Mutex("queue_lock")
    cond = Condition(mutex, "nonempty")
    events = []
    mutex.observers.append(
        lambda m, waiter, holders, mode, wait: events.append(
            (waiter.name, [holder.name for holder, _ in holders], mode, wait)
        )
    )
    _contended_wakeup(kernel, mutex, cond)
    assert events == [("consumer", ["producer"], "exclusive", 0.5)]


def test_condition_crosstalk_reaches_recorder():
    """End to end: the wait shows up in a CrosstalkRecorder, attributed

    to the notifier's transaction type."""
    kernel = Kernel()
    mutex = Mutex("queue_lock")
    cond = Condition(mutex, "nonempty")
    recorder = CrosstalkRecorder()
    recorder.observe(mutex)
    waiter_ctxt = TransactionContext(("GET /idle",))
    holder_ctxt = TransactionContext(("POST /upload",))
    _contended_wakeup(
        kernel, mutex, cond, consumer_ctxt=waiter_ctxt, producer_ctxt=holder_ctxt
    )
    assert recorder.mean_wait(waiter_ctxt, holder_ctxt) == 0.5
    assert recorder.total_wait_of(waiter_ctxt) == 0.5
    assert recorder.events == [(waiter_ctxt, holder_ctxt, 0.5)]
