"""Timer-wheel semantics: cancellation, ordering, counters.

The kernel's event queue is a hashed wheel (dict buckets keyed by exact
timestamp plus a heap of distinct times) rather than a heap of event
objects.  These tests pin the observable semantics the rewrite must
preserve: FIFO order within a timestamp, zero-delay interleaving with
``call_soon``, O(1) cancellation that never corrupts the pending-event
counter, and livelock accounting that does not leak across segmented
``run(until=...)`` calls.
"""

import pytest

from repro.sim import Kernel


def test_non_finite_delays_rejected():
    kernel = Kernel()
    with pytest.raises(ValueError, match="finite"):
        kernel.schedule(float("nan"), lambda: None)
    with pytest.raises(ValueError, match="finite"):
        kernel.schedule(float("inf"), lambda: None)
    # -inf trips the schedule-into-the-past check instead.
    with pytest.raises(ValueError):
        kernel.schedule(float("-inf"), lambda: None)
    assert kernel.pending_events() == 0


def test_cancel_after_fire_is_idempotent():
    kernel = Kernel()
    seen = []
    event = kernel.schedule(1.0, seen.append, "x")
    kernel.run()
    event.cancel()
    event.cancel()
    assert seen == ["x"]
    assert kernel.pending_events() == 0


def test_cancel_twice_counts_once():
    kernel = Kernel()
    kernel.schedule(1.0, lambda: None)
    event = kernel.schedule(2.0, lambda: None)
    event.cancel()
    event.cancel()
    assert kernel.pending_events() == 1
    kernel.run()
    assert kernel.pending_events() == 0


def test_zero_delay_schedule_and_call_soon_interleave_fifo():
    kernel = Kernel()
    seen = []
    kernel.schedule(0.0, seen.append, "a")
    kernel.call_soon(seen.append, "b")
    kernel.schedule(0.0, seen.append, "c")
    kernel.run()
    assert seen == ["a", "b", "c"]


def test_events_scheduled_mid_batch_fire_after_the_batch():
    """New work at the current timestamp runs after the in-flight batch,

    exactly as the old (time, seq) heap ordered it."""
    kernel = Kernel()
    seen = []

    def first():
        seen.append("first")
        kernel.schedule(0.0, seen.append, "late")

    kernel.schedule(1.0, first)
    kernel.schedule(1.0, seen.append, "second")
    kernel.run()
    assert seen == ["first", "second", "late"]


def test_cancel_churn_fires_survivors_in_order():
    """The RPC retry pattern: many timers set, most cancelled early."""
    kernel = Kernel()
    seen = []
    events = []
    for index in range(200):
        events.append(kernel.schedule(1.0 + (index % 7), seen.append, index))
    for index, event in enumerate(events):
        if index % 3:
            event.cancel()
    survivors = [index for index in range(200) if not index % 3]
    assert kernel.pending_events() == len(survivors)
    kernel.run()
    assert seen == sorted(survivors, key=lambda i: (1.0 + (i % 7), i))


def test_wheel_drains_completely():
    kernel = Kernel()
    for index in range(500):
        event = kernel.schedule(1.0 + index * 1e-3, lambda: None)
        if index % 10:
            event.cancel()
    kernel.run()
    assert kernel.pending_events() == 0
    # Whitebox: no leaked buckets or stale timestamps after a run.
    assert kernel._wheel == {}
    assert kernel._times == []


def test_mid_batch_cancellation_suppresses_peers():
    """An event fired in a batch may cancel later events of the same

    timestamp; they must not run, and counters must stay exact."""
    kernel = Kernel()
    seen = []
    victims = []

    def assassin():
        seen.append("assassin")
        for victim in victims:
            victim.cancel()

    kernel.schedule(1.0, assassin)
    victims.append(kernel.schedule(1.0, seen.append, "victim-a"))
    victims.append(kernel.schedule(1.0, seen.append, "victim-b"))
    kernel.schedule(2.0, seen.append, "after")
    kernel.run()
    assert seen == ["assassin", "after"]
    assert kernel.pending_events() == 0


def test_mid_run_purge_keeps_the_loop_on_the_live_wheel():
    """Cancelling enough pending timers from inside a handler trips the
    lazy purge while ``run()`` is draining.  The rebuilt wheel must be
    the same objects the loop caches as locals: a rebinding purge left
    the loop on the stale pair, so events scheduled after the purge
    never fired and the duplicated survivors crashed the next run().
    """
    kernel = Kernel()
    seen = []
    timers = [kernel.schedule(10.0 + index, seen.append, index) for index in range(200)]

    def cancel_most_then_reschedule():
        # 150 cancellations out of ~200 pending events crosses the
        # purge threshold (>64 events, majority cancelled) mid-run.
        for timer in timers[:150]:
            timer.cancel()
        kernel.schedule(1.0, seen.append, "post-purge")

    kernel.schedule(1.0, cancel_most_then_reschedule)
    kernel.run(until=5.0)
    assert "post-purge" in seen
    # Exactly the 50 surviving timers remain; draining them in a second
    # segment must not double-fire or raise "time went backwards".
    assert kernel.pending_events() == 50
    kernel.run()
    assert kernel.pending_events() == 0
    assert [x for x in seen if isinstance(x, int)] == list(range(150, 200))


def test_purge_from_cancel_outside_run_stays_consistent():
    """The purge also fires outside run(); counters and order survive."""
    kernel = Kernel()
    seen = []
    events = [kernel.schedule(1.0 + index, seen.append, index) for index in range(100)]
    for event in events[:80]:
        event.cancel()
    assert kernel.pending_events() == 20
    kernel.schedule(0.5, seen.append, "early")
    kernel.run()
    assert seen == ["early"] + list(range(80, 100))
    assert kernel.pending_events() == 0


def test_livelock_counter_resets_between_run_segments():
    """A sub-limit same-time batch must not poison a later run() call.

    The counter used to persist across segmented ``run(until=...)``
    calls, so two batches at the same timestamp in consecutive segments
    added up and tripped the livelock detector spuriously.
    """
    kernel = Kernel(livelock_limit=100)
    seen = []
    for index in range(80):
        kernel.schedule(1.0, seen.append, index)
    kernel.run(until=1.0)
    assert len(seen) == 80
    # Still at t=1.0: no clock advance to reset the counter for us.
    for index in range(80):
        kernel.schedule(0.0, seen.append, 80 + index)
    kernel.run(until=1.0)
    assert len(seen) == 160
