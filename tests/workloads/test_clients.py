"""Tests for the client emulator and TxLog."""

import pytest

from repro.channels import Accept, Listener, Message, Recv, Send
from repro.sim import CurrentThread, Kernel, Rng
from repro.workloads import HttpClientPool, TxLog, WebTrace
from repro.workloads.clients import CLOSE


# ----------------------------------------------------------------------
# TxLog
# ----------------------------------------------------------------------
def test_txlog_counts_and_means():
    log = TxLog()
    log.add("A", 0.0, 1.0)
    log.add("A", 1.0, 4.0)
    log.add("B", 0.0, 0.5)
    assert log.count() == 3
    assert log.count("A") == 2
    assert log.mean_response("A") == pytest.approx(2.0)
    assert log.mean_response() == pytest.approx(4.5 / 3)
    assert log.mean_response("missing") == 0.0


def test_txlog_rejects_negative_latency():
    with pytest.raises(ValueError):
        TxLog().add("A", 2.0, 1.0)


def test_txlog_throughput_window():
    log = TxLog()
    for i in range(10):
        log.add("A", i, i + 0.5)
    # Completions at 0.5..9.5; window [2, 7] catches 2.5..6.5 = 5.
    assert log.throughput(2.0, 7.0) == pytest.approx(1.0)
    assert log.completions_in(2.0, 7.0) == 5
    assert log.throughput(5.0, 5.0) == 0.0


def test_txlog_percentiles():
    log = TxLog()
    for i in range(1, 11):
        log.add("A", 0.0, float(i))
    assert log.percentile_response(0.5) == pytest.approx(6.0)
    assert log.percentile_response(0.0) == pytest.approx(1.0)
    assert log.percentile_response(0.99) == pytest.approx(10.0)
    assert TxLog().percentile_response(0.5) == 0.0


def test_txlog_types():
    log = TxLog()
    log.add("B", 0, 1)
    log.add("A", 0, 1)
    assert log.types() == ["A", "B"]


# ----------------------------------------------------------------------
# HttpClientPool against a trivial echo server
# ----------------------------------------------------------------------
def run_echo_server(kernel, listener, trace, serve_log):
    def acceptor():
        yield CurrentThread()
        while True:
            connection = yield Accept(listener)
            handler = kernel.spawn(serve(connection))
            handler.daemon = True

    def serve(connection):
        yield CurrentThread()
        while True:
            msg = yield Recv(connection.to_server)
            verb, object_id = msg.payload
            if verb == CLOSE:
                return
            serve_log.append(object_id)
            yield Send(
                connection.to_client,
                Message(object_id, trace.size_of(object_id)),
            )

    thread = kernel.spawn(acceptor())
    thread.daemon = True


def test_clients_drive_requests_and_log():
    kernel = Kernel()
    listener = Listener(kernel)
    trace = WebTrace(Rng(2), objects=30, requests_per_connection_mean=3.0)
    served = []
    run_echo_server(kernel, listener, trace, served)
    pool = HttpClientPool(kernel, listener, trace, clients=3)
    pool.start()
    kernel.run(until=0.5)
    assert pool.log.count() == len(served)
    assert pool.log.count() > 20
    assert pool.bytes_received == sum(trace.size_of(oid) for oid in served)


def test_think_time_throttles_clients():
    kernel = Kernel()
    listener = Listener(kernel)
    trace = WebTrace(Rng(2), objects=30, requests_per_connection_mean=2.0)
    served = []
    run_echo_server(kernel, listener, trace, served)
    pool = HttpClientPool(kernel, listener, trace, clients=2, think_mean=1.0)
    pool.start()
    kernel.run(until=5.0)
    # ~2 requests per connection, ~1s think per connection cycle, 2
    # clients, 5s: order of 20 requests, nowhere near the unthrottled
    # thousands.
    assert 4 < pool.log.count() < 60
