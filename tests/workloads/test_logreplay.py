"""Tests for access-log parsing and replay."""

import io

import pytest

from repro.apps.httpd import HttpdServer
from repro.sim import Kernel
from repro.workloads import HttpClientPool
from repro.workloads.logreplay import ReplayTrace, parse_line, parse_log

SAMPLE = """\
10.0.0.1 - - [21/Mar/2007:10:00:00 -0600] "GET /index.html HTTP/1.1" 200 5120
10.0.0.1 - - [21/Mar/2007:10:00:01 -0600] "GET /logo.png HTTP/1.1" 200 20480
10.0.0.2 - - [21/Mar/2007:10:00:02 -0600] "GET /index.html HTTP/1.0" 200 5120
10.0.0.2 - - [21/Mar/2007:10:00:03 -0600] "GET /missing HTTP/1.1" 404 312
10.0.0.3 - - [21/Mar/2007:10:00:04 -0600] "GET /big.iso HTTP/1.1" 200 -
garbage line that does not parse
10.0.0.3 - - [21/Mar/2007:10:00:05 -0600] "POST /form HTTP/1.1" 200 99
"""


def test_parse_line_fields():
    record = parse_line(SAMPLE.splitlines()[0])
    assert record.host == "10.0.0.1"
    assert record.method == "GET"
    assert record.path == "/index.html"
    assert record.status == 200
    assert record.size == 5120


def test_parse_line_rejects_garbage():
    assert parse_line("garbage") is None
    assert parse_line("") is None
    assert parse_line("# comment") is None


def test_dash_size_is_zero():
    record = parse_line(SAMPLE.splitlines()[4])
    assert record.size == 0


def test_parse_log_from_stream_and_lines():
    records = parse_log(io.StringIO(SAMPLE))
    assert len(records) == 6  # garbage dropped
    records2 = parse_log(SAMPLE.splitlines())
    assert len(records2) == 6


def test_parse_log_from_file(tmp_path):
    path = tmp_path / "access.log"
    path.write_text(SAMPLE)
    assert len(parse_log(str(path))) == 6


def test_replay_trace_objects_and_sizes():
    trace = ReplayTrace(parse_log(io.StringIO(SAMPLE)))
    # Only 2xx records: /index.html, /logo.png, /index.html, /big.iso, /form
    assert trace.distinct_objects == 4
    index_id = trace._path_ids["/index.html"]
    assert trace.size_of(index_id) == 5120


def test_replay_order_follows_log():
    trace = ReplayTrace(parse_log(io.StringIO(SAMPLE)))
    first = trace.next_object()
    second = trace.next_object()
    assert first.object_id == trace._path_ids["/index.html"]
    assert second.object_id == trace._path_ids["/logo.png"]


def test_sessions_group_by_host():
    trace = ReplayTrace(parse_log(io.StringIO(SAMPLE)))
    # 10.0.0.1 issued two consecutive requests.
    assert trace.connection_length() == 2
    session = list(trace.session())
    assert len(session) == 2


def test_replay_wraps_around():
    trace = ReplayTrace(parse_log(io.StringIO(SAMPLE)))
    total = sum(1 for _ in range(20) for __ in [trace.next_object()])
    assert total == 20  # cursor wraps; never exhausts


def test_empty_log_rejected():
    with pytest.raises(ValueError):
        ReplayTrace([])


def test_replay_trace_drives_the_apache_server():
    """End to end: a replayed log works anywhere a WebTrace does."""
    kernel = Kernel()
    trace = ReplayTrace(parse_log(io.StringIO(SAMPLE * 50)))
    server = HttpdServer(kernel, trace)
    server.start()
    pool = HttpClientPool(kernel, server.listener_socket, trace, clients=3)
    pool.start()
    kernel.run(until=1.0)
    assert server.requests_served > 50
    assert server.bytes_sent > 0
