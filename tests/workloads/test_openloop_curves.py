"""Rate curves, flash crowds, heavy-tailed think times, session caps —
the cluster-scale extensions to the open-loop generator."""

import pytest

from repro.apps.httpd import HttpdServer
from repro.sim import Kernel, Rng
from repro.workloads import OpenLoopClientPool, RateCurve, ThinkTime, WebTrace


def run_openloop(seconds=3.0, seed=3, **kwargs):
    kernel = Kernel()
    trace = WebTrace(Rng(seed), objects=100, requests_per_connection_mean=2.0)
    server = HttpdServer(kernel, trace)
    server.start()
    pool = OpenLoopClientPool(
        kernel, server.listener_socket, trace, rng=Rng(seed), **kwargs
    )
    pool.start()
    kernel.run(until=seconds)
    return server, pool


class TestRateCurve:
    def test_constant_curve(self):
        curve = RateCurve(base_rate=100.0)
        assert curve.rate(0.0) == 100.0
        assert curve.rate(12345.6) == 100.0
        assert curve.peak_rate() == 100.0

    def test_diurnal_swing(self):
        curve = RateCurve(
            base_rate=100.0, diurnal_amplitude=0.5, diurnal_period=4.0
        )
        assert curve.rate(1.0) == pytest.approx(150.0)  # sin peak
        assert curve.rate(3.0) == pytest.approx(50.0)  # sin trough
        assert curve.peak_rate() == pytest.approx(150.0)

    def test_flash_crowd_window(self):
        curve = RateCurve(
            base_rate=10.0, flash_crowds=((5.0, 2.0, 4.0),)
        )
        assert curve.rate(4.9) == 10.0
        assert curve.rate(5.0) == 40.0
        assert curve.rate(6.9) == 40.0
        assert curve.rate(7.0) == 10.0
        assert curve.peak_rate() == 40.0

    def test_overlapping_crowds_take_max(self):
        curve = RateCurve(
            base_rate=10.0,
            flash_crowds=((0.0, 10.0, 2.0), (3.0, 2.0, 5.0)),
        )
        assert curve.rate(4.0) == 50.0
        assert curve.rate(8.0) == 20.0

    def test_scaled_keeps_shape(self):
        curve = RateCurve(
            base_rate=100.0, diurnal_amplitude=0.3, diurnal_period=7.0,
            flash_crowds=((1.0, 1.0, 2.0),),
        )
        half = curve.scaled(0.5)
        assert half.base_rate == 50.0
        assert half.rate(1.5) == pytest.approx(curve.rate(1.5) / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            RateCurve(base_rate=0.0)
        with pytest.raises(ValueError):
            RateCurve(base_rate=1.0, diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            RateCurve(base_rate=1.0, flash_crowds=((0.0, -1.0, 2.0),))


class TestThinkTime:
    def test_none_draws_nothing(self):
        rng = Rng(1)
        assert ThinkTime().sample(rng) == 0.0
        # No RNG state was consumed by the "none" distribution.
        assert rng.random() == Rng(1).random()

    def test_pareto_heavy_tail(self):
        think = ThinkTime(distribution="pareto", alpha=1.2, minimum=0.5)
        rng = Rng(7)
        samples = [think.sample(rng) for _ in range(4000)]
        assert min(samples) >= 0.5
        # Heavy tail: the max dominates the median by orders of magnitude.
        ordered = sorted(samples)
        assert ordered[-1] > 50 * ordered[len(ordered) // 2]

    def test_lognormal_positive(self):
        think = ThinkTime(distribution="lognormal", mu=0.0, sigma=1.5)
        rng = Rng(7)
        assert all(think.sample(rng) > 0 for _ in range(100))

    def test_exponential_mean(self):
        think = ThinkTime(distribution="exponential", mean=2.0)
        rng = Rng(7)
        samples = [think.sample(rng) for _ in range(4000)]
        assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.1)

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            ThinkTime(distribution="uniform")


class TestGeneratorExtensions:
    def test_max_sessions_is_a_hard_cap(self):
        _, pool = run_openloop(arrival_rate=500.0, max_sessions=40,
                               seconds=5.0)
        assert pool.sessions_started == 40
        assert pool.sessions_finished == 40

    def test_record_log_off_keeps_aggregates(self):
        _, logged = run_openloop(arrival_rate=50.0, seconds=3.0)
        _, unlogged = run_openloop(arrival_rate=50.0, seconds=3.0,
                                   record_log=False)
        assert unlogged.log.count() == 0
        assert unlogged.completed_requests == logged.log.count()
        assert unlogged.mean_response() == pytest.approx(
            logged.log.mean_response()
        )

    def test_legacy_stream_unchanged(self):
        # The plain constant-rate path must consume the RNG draw-for-
        # draw as before the extensions: same seed, same arrivals.
        _, a = run_openloop(arrival_rate=80.0, seconds=3.0)
        _, b = run_openloop(arrival_rate=80.0, seconds=3.0,
                            rate_curve=None, think=None, max_sessions=None)
        assert a.sessions_started == b.sessions_started
        assert a.log.records == b.log.records

    def test_flash_crowd_multiplies_arrivals(self):
        base = RateCurve(base_rate=60.0)
        crowd = RateCurve(
            base_rate=60.0, flash_crowds=((1.0, 2.0, 4.0),)
        )
        _, quiet = run_openloop(rate_curve=base, seconds=4.0)
        _, stormy = run_openloop(rate_curve=crowd, seconds=4.0)
        # 2s at 4x adds ~360 expected sessions on a ~240 baseline.
        assert stormy.sessions_started > 1.8 * quiet.sessions_started

    def test_diurnal_rate_averages_out(self):
        # Over whole periods the sinusoid integrates to the base rate.
        curve = RateCurve(
            base_rate=100.0, diurnal_amplitude=0.8, diurnal_period=1.0
        )
        _, pool = run_openloop(rate_curve=curve, seconds=6.0)
        expected = 600
        assert 0.6 * expected < pool.sessions_started < 1.4 * expected

    def test_thinning_is_deterministic(self):
        curve = RateCurve(
            base_rate=80.0, diurnal_amplitude=0.4, diurnal_period=2.0,
            flash_crowds=((1.0, 0.5, 3.0),),
        )
        think = ThinkTime(distribution="pareto", alpha=1.5, minimum=0.05)
        runs = [
            run_openloop(rate_curve=curve, think=think, seconds=3.0)[1]
            for _ in range(2)
        ]
        assert runs[0].sessions_started == runs[1].sessions_started
        assert runs[0].completed_requests == runs[1].completed_requests
        assert runs[0].response_sum == runs[1].response_sum

    def test_think_time_slows_sessions(self):
        think = ThinkTime(distribution="exponential", mean=1.0)
        _, fast = run_openloop(arrival_rate=50.0, seconds=3.0)
        _, slow = run_openloop(arrival_rate=50.0, seconds=3.0, think=think)
        # Same arrivals, but paused sessions finish far fewer of them.
        assert slow.sessions_started == fast.sessions_started
        assert slow.sessions_finished < fast.sessions_finished
