"""Tests for the open-loop Poisson client generator."""

import pytest

from repro.apps.httpd import HttpdServer
from repro.sim import Kernel, Rng
from repro.workloads import OpenLoopClientPool, WebTrace


def run_openloop(rate, seconds=3.0):
    kernel = Kernel()
    trace = WebTrace(Rng(3), objects=100, requests_per_connection_mean=2.0)
    server = HttpdServer(kernel, trace)
    server.start()
    pool = OpenLoopClientPool(kernel, server.listener_socket, trace, arrival_rate=rate)
    pool.start()
    kernel.run(until=seconds)
    return server, pool


def test_arrival_rate_roughly_respected():
    server, pool = run_openloop(rate=50.0, seconds=4.0)
    # ~200 sessions expected; allow a wide band for Poisson noise.
    assert 120 < pool.sessions_started < 300
    assert pool.sessions_finished > 100
    assert pool.log.count() > 150


def test_invalid_rate_rejected():
    kernel = Kernel()
    trace = WebTrace(Rng(1), objects=10)
    with pytest.raises(ValueError):
        OpenLoopClientPool(kernel, None, trace, arrival_rate=0)


def test_latency_grows_with_offered_load():
    # ~60us CPU per request puts server capacity near 16k requests/s;
    # 8000 sessions/s * 2 requests drives ~97% utilization, 100/s ~1%.
    _, light = run_openloop(rate=100.0, seconds=2.0)
    _, heavy = run_openloop(rate=8000.0, seconds=2.0)
    assert heavy.log.mean_response() > 3 * light.log.mean_response()
