"""Tests for the synthetic web trace."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Rng
from repro.workloads import WebTrace


def test_trace_is_reproducible():
    a = WebTrace(Rng(5), objects=100)
    b = WebTrace(Rng(5), objects=100)
    assert [o.size for o in a.objects] == [o.size for o in b.objects]
    assert [a.next_object().object_id for _ in range(50)] == [
        b.next_object().object_id for _ in range(50)
    ]


def test_different_seeds_differ():
    a = WebTrace(Rng(5), objects=100)
    b = WebTrace(Rng(6), objects=100)
    assert [a.next_object().object_id for _ in range(50)] != [
        b.next_object().object_id for _ in range(50)
    ]


def test_sizes_within_bounds():
    trace = WebTrace(Rng(1), objects=500, min_size=1000, max_size=10_000)
    assert all(1000 <= o.size <= 10_000 for o in trace.objects)


def test_popularity_is_skewed():
    trace = WebTrace(Rng(2), objects=1000)
    picks = [trace.next_object().object_id for _ in range(5000)]
    top_decile = sum(1 for p in picks if p < 100)
    assert top_decile > 0.45 * len(picks)  # zipf(1.0) head


def test_connection_length_mean():
    trace = WebTrace(Rng(3), objects=10, requests_per_connection_mean=5.0)
    lengths = [trace.connection_length() for _ in range(3000)]
    assert all(l >= 1 for l in lengths)
    mean = sum(lengths) / len(lengths)
    assert mean == pytest.approx(5.0, rel=0.15)


def test_connection_length_of_one():
    trace = WebTrace(Rng(3), objects=10, requests_per_connection_mean=1.0)
    assert all(trace.connection_length() == 1 for _ in range(100))


def test_session_yields_objects():
    trace = WebTrace(Rng(4), objects=50)
    session = list(trace.session())
    assert len(session) >= 1
    assert all(0 <= o.object_id < 50 for o in session)


def test_size_of_and_object_accessors():
    trace = WebTrace(Rng(4), objects=20)
    assert trace.size_of(3) == trace.object(3).size
    assert trace.total_corpus_bytes() == sum(o.size for o in trace.objects)


@given(st.integers(min_value=0, max_value=10_000))
def test_any_seed_builds_valid_trace(seed):
    trace = WebTrace(Rng(seed), objects=20)
    obj = trace.next_object()
    assert 0 <= obj.object_id < 20
    assert obj.size >= 512
