"""Regression tests for TransactionContext's cached hash and derive memos.

The hot-path work memoizes ``__hash__`` at construction and caches
``append()`` / ``extend_path()`` derivations per parent context.  These
tests pin the aliasing contract: a memoized derivation is always the
same value a fresh computation would produce, deriving never mutates
the parent, and the cached hash always agrees with equality.
"""

import pickle

from repro.core.context import TransactionContext


def test_cached_hash_agrees_with_equality():
    a = TransactionContext(("web", "app", "db"))
    b = TransactionContext(("web", "app", "db"))
    assert a == b
    assert hash(a) == hash(b)
    assert hash(a) == hash(TransactionContext(("web", "app", "db")))
    c = TransactionContext(("web", "app"))
    assert a != c
    # Hash stays the pinned construction-time value across use.
    before = hash(a)
    a.append("x")
    a.extend_path(("p", "q"))
    assert hash(a) == before


def test_append_memo_returns_the_same_object_and_value():
    parent = TransactionContext(("web", "app"))
    d1 = parent.append("db")
    d2 = parent.append("db")
    assert d1 is d2, "repeat appends should hit the memo"
    # The memoized result is exactly what a fresh computation produces.
    fresh = TransactionContext(("web", "app", "db"))
    assert d1 == fresh
    assert hash(d1) == hash(fresh)
    # Deriving never mutates the parent.
    assert parent.elements == ("web", "app")


def test_append_memo_keys_on_normalisation_flags():
    parent = TransactionContext(("a",))
    collapsed = parent.append("a")  # collapse: a,a -> a
    assert collapsed is parent
    pruned = parent.append("a", collapse=False)  # prune loops back to a
    assert pruned.elements == ("a",)
    full = parent.append("a", collapse=False, prune=False)
    assert full.elements == ("a", "a")
    # Each flag combination memoizes independently and stably.
    assert parent.append("a") is collapsed
    assert parent.append("a", collapse=False) is pruned
    assert parent.append("a", collapse=False, prune=False) is full


def test_extend_path_memo_matches_fresh_concatenation():
    parent = TransactionContext(("web",))
    e1 = parent.extend_path(("handler", "query"))
    e2 = parent.extend_path(("handler", "query"))
    assert e1 is e2
    assert e1.elements == ("web", "handler", "query")
    assert hash(e1) == hash(TransactionContext(("web", "handler", "query")))
    assert parent.extend_path(()) is parent
    assert parent.elements == ("web",)


def test_call_path_interning_returns_one_canonical_object():
    p1 = TransactionContext.from_call_path(("main", "serve"))
    p2 = TransactionContext.from_call_path(("main", "serve"))
    assert p1 is p2
    assert hash(p1) == hash(TransactionContext(("main", "serve")))


def test_pickle_round_trip_recomputes_a_consistent_hash():
    original = TransactionContext(("web", "app", "db"))
    original.append("x")  # populate the memo; it must not be pickled
    clone = pickle.loads(pickle.dumps(original))
    assert clone == original
    # Same process, same PYTHONHASHSEED: the recomputed hash matches the
    # memoized one, so clones interoperate with originals in dicts/sets.
    assert hash(clone) == hash(original)
    assert {original: 1}[clone] == 1
