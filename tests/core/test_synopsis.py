"""Tests for synopsis allocation, composition and round-tripping."""

import pytest
from hypothesis import given, strategies as st

from repro.core.context import TransactionContext
from repro.core.synopsis import CompositeSynopsis, SynopsisTable


def ctxt(*elements):
    return TransactionContext(elements)


def test_synopsis_allocated_once_per_context():
    table = SynopsisTable("web")
    a = table.synopsis(ctxt("main", "foo"))
    b = table.synopsis(ctxt("main", "foo"))
    assert a == b
    assert len(table) == 1


def test_distinct_contexts_get_distinct_synopses():
    table = SynopsisTable("web")
    a = table.synopsis(ctxt("main", "foo"))
    b = table.synopsis(ctxt("main", "bar"))
    assert a != b


def test_zero_reserved():
    table = SynopsisTable("web")
    assert table.synopsis(ctxt("x")) != 0


def test_resolve_round_trip():
    table = SynopsisTable("web")
    context = ctxt("main", "foo", "send")
    assert table.resolve(table.synopsis(context)) == context


def test_resolve_unknown_raises():
    table = SynopsisTable("web")
    with pytest.raises(KeyError):
        table.resolve(99)


def test_lookup_without_allocation():
    table = SynopsisTable("web")
    assert table.lookup(ctxt("a")) is None
    value = table.synopsis(ctxt("a"))
    assert table.lookup(ctxt("a")) == value


def test_make_response_composes():
    table = SynopsisTable("db")
    request = 7
    composite = table.make_response(request, ctxt("svc_run", "send"))
    assert composite.prefix == 7
    assert table.resolve(composite.suffix) == ctxt("svc_run", "send")


def test_is_own_prefix_distinguishes_callers():
    caller = SynopsisTable("web")
    callee = SynopsisTable("db")
    request = caller.synopsis(ctxt("main", "foo", "send"))
    response = callee.make_response(request, ctxt("svc_run", "send"))
    assert caller.is_own_prefix(response)
    assert not callee.is_own_prefix(response)


def test_composite_wire_size_is_nine_bytes():
    """4 bytes + '#' + 4 bytes, per §7.4."""
    assert CompositeSynopsis(1, 2).wire_size() == 9


def test_composite_equality():
    assert CompositeSynopsis(1, 2) == CompositeSynopsis(1, 2)
    assert CompositeSynopsis(1, 2) != CompositeSynopsis(2, 1)


def test_items_lists_all_allocations():
    table = SynopsisTable("web")
    contexts = [ctxt("a"), ctxt("b"), ctxt("c")]
    values = [table.synopsis(c) for c in contexts]
    assert dict(table.items()) == dict(zip(contexts, values))


def test_synopsis_space_overflow_raises():
    """Exhausting the 20-bit per-stage space fails loudly, not silently."""
    from repro.core.synopsis import _LOCAL_MASK

    table = SynopsisTable("web")
    # Jump the sequential allocator to the last legal identifier.
    table._next = _LOCAL_MASK
    last = table.synopsis(ctxt("last"))
    assert last & _LOCAL_MASK == _LOCAL_MASK
    assert table.resolve(last) == ctxt("last")
    with pytest.raises(OverflowError):
        table.synopsis(ctxt("one-too-many"))
    # The failed allocation registered nothing.
    assert table.lookup(ctxt("one-too-many")) is None


def _colliding_stage_names():
    """Two distinct stage names whose 12-bit stage-hash buckets collide."""
    from repro.core.synopsis import _stage_base

    seen = {}
    for index in range(100_000):
        name = f"stage{index}"
        base = _stage_base(name)
        if base in seen:
            return seen[base], name
        seen[base] = name
    raise AssertionError("no collision found")  # pragma: no cover


def test_colliding_stage_hash_buckets_are_salted_apart():
    """Regression for the 12-bit stage-hash collision: two stage names

    that hash into the same bucket used to mint identical 32-bit
    synopses, so both claimed a composite's prefix as their own and a
    caller could adopt a stranger's response.  The process-wide base
    registry now salts and rehashes the second name into a free bucket.
    """
    from repro.core.synopsis import _stage_base

    name_a, name_b = _colliding_stage_names()
    # The raw hashes still collide — the registry is what separates them.
    assert _stage_base(name_a) == _stage_base(name_b)
    a = SynopsisTable(name_a)
    b = SynopsisTable(name_b)
    assert a._base != b._base
    first_a = a.synopsis(ctxt("a-context"))
    first_b = b.synopsis(ctxt("b-context"))
    assert first_a != first_b
    response = CompositeSynopsis(first_a, 1)
    assert a.is_own_prefix(response)
    assert not b.is_own_prefix(response)
    response_b = CompositeSynopsis(first_b, 1)
    assert b.is_own_prefix(response_b)
    assert not a.is_own_prefix(response_b)


def test_recreated_table_reuses_its_registered_bucket():
    """Re-creating a table for a known stage name is stable: it gets the

    same base, so synopses from an earlier table of the same stage keep
    attributing to that stage within one process.
    """
    first = SynopsisTable("web")
    again = SynopsisTable("web")
    assert first._base == again._base


def test_clear_mappings_keeps_allocator_monotonic():
    """Crash amnesia must not alias: a value minted before the crash is

    unresolvable afterwards, never silently re-bound to a new context.
    """
    table = SynopsisTable("web")
    before = table.synopsis(ctxt("pre-crash"))
    assert table.clear_mappings() == 1
    assert len(table) == 0
    with pytest.raises(KeyError):
        table.resolve(before)
    after = table.synopsis(ctxt("post-crash"))
    assert after != before
    assert table.resolve(after) == ctxt("post-crash")


@given(st.lists(st.lists(st.sampled_from("abcdef"), max_size=5), max_size=40))
def test_synopses_injective(paths):
    """Distinct contexts never share a synopsis (uniqueness guarantee)."""
    table = SynopsisTable("stage")
    contexts = [TransactionContext(tuple(p)) for p in paths]
    values = {}
    for context in contexts:
        value = table.synopsis(context)
        if context in values:
            assert values[context] == value
        values[context] = value
    distinct_contexts = set(values.keys())
    distinct_values = set(values.values())
    assert len(distinct_contexts) == len(distinct_values)


@given(st.lists(st.sampled_from("abcdef"), max_size=8))
def test_resolve_inverse_of_synopsis(path):
    table = SynopsisTable("stage")
    context = TransactionContext(tuple(path))
    assert table.resolve(table.synopsis(context)) == context
