"""Tests for the per-stage Whodunit runtime: sampling, CCT selection,
context propagation wrappers, and overhead models."""

import pytest

from repro.core.context import SynopsisRef, TransactionContext
from repro.core.profiler import (
    LOCAL,
    OverheadModel,
    ProfilerMode,
    StageRuntime,
    work,
)
from repro.sim import CPU, CurrentThread, Join, Kernel, Spawn
from repro.sim.process import frame


ZERO_OVERHEAD = OverheadModel(
    sample_cost=0.0,
    call_cost=0.0,
    synopsis_cost=0.0,
    switch_cost=0.0,
    call_density=0.0,
)


def make_stage(mode=ProfilerMode.WHODUNIT, hz=1000.0, overhead=ZERO_OVERHEAD, **kwargs):
    return StageRuntime("stage", mode=mode, sampling_hz=hz, overhead=overhead, **kwargs)


def run_worker(stage, body):
    kernel = Kernel()
    cpu = CPU(kernel)
    thread_box = {}

    def worker():
        thread = thread_box["t"]
        yield from body(thread, cpu)

    thread_box["t"] = kernel.spawn(worker(), name="w", stage=stage)
    kernel.run()
    return kernel


def test_deterministic_sampling_weight_equals_time_times_freq():
    stage = make_stage(hz=1000.0)

    def body(thread, cpu):
        with frame(thread, "main"):
            with frame(thread, "handle"):
                yield from work(thread, cpu, 0.5)

    run_worker(stage, body)
    cct = stage.ccts[LOCAL]
    assert cct.weight_of(("main", "handle")) == pytest.approx(500.0)


def test_off_mode_records_nothing_and_adds_no_overhead():
    stage = make_stage(mode=ProfilerMode.OFF)

    def body(thread, cpu):
        with frame(thread, "main"):
            demand = yield from work(thread, cpu, 0.5)
            assert demand == 0.5

    kernel = run_worker(stage, body)
    assert stage.ccts == {}
    assert kernel.now == pytest.approx(0.5)


def test_sampling_overhead_inflates_cpu_demand():
    overhead = OverheadModel(sample_cost=100e-6)
    stage = make_stage(mode=ProfilerMode.CSPROF, hz=1000.0, overhead=overhead)

    def body(thread, cpu):
        with frame(thread, "main"):
            yield from work(thread, cpu, 1.0)

    kernel = run_worker(stage, body)
    # 1000 samples/s * 100us = 10% overhead
    assert kernel.now == pytest.approx(1.1)


def test_gprof_charges_per_call_and_counts_calls():
    overhead = OverheadModel(call_cost=1e-3, sample_cost=0.0, call_density=0.0)
    stage = make_stage(mode=ProfilerMode.GPROF, hz=0.0, overhead=overhead)

    def body(thread, cpu):
        with frame(thread, "main"):
            with frame(thread, "foo"):
                yield from work(thread, cpu, 0.1)
            with frame(thread, "foo"):
                yield from work(thread, cpu, 0.1)

    kernel = run_worker(stage, body)
    assert stage.total_calls == 3  # main, foo, foo
    # 0.2 useful + 3 calls * 1ms
    assert kernel.now == pytest.approx(0.203)
    assert stage.ccts[LOCAL].lookup(("main", "foo")).call_count == 2


def test_stochastic_sampling_converges_to_deterministic():
    det = make_stage(hz=2000.0)
    sto = StageRuntime(
        "stage",
        mode=ProfilerMode.WHODUNIT,
        sampling_hz=2000.0,
        overhead=ZERO_OVERHEAD,
        deterministic=False,
        seed=3,
    )

    def body(thread, cpu):
        with frame(thread, "main"):
            for _ in range(50):
                yield from work(thread, cpu, 0.01)

    run_worker(det, body)
    run_worker(sto, body)
    expected = det.total_weight()
    observed = sto.total_weight()
    # 50 slices * 0.01s * 2000Hz = 1000 samples expected.
    assert expected == pytest.approx(1000.0)
    # Stochastic totals agree within a few standard deviations (~32).
    assert abs(observed - expected) < 5 * (expected ** 0.5)
    # Stochastic weights are integers.
    for cct in sto.ccts.values():
        for path, weight in cct.flatten().items():
            assert weight == int(weight)


def test_stochastic_sampling_is_seeded():
    def build(seed):
        stage = StageRuntime(
            "s",
            overhead=ZERO_OVERHEAD,
            deterministic=False,
            seed=seed,
            sampling_hz=500.0,
        )

        def body(thread, cpu):
            with frame(thread, "main"):
                yield from work(thread, cpu, 0.1)

        run_worker(stage, body)
        return stage.total_weight()

    assert build(1) == build(1)


def test_gprof_call_density_inflates_with_useful_cpu():
    overhead = OverheadModel(
        sample_cost=0.0, call_cost=1e-6, call_density=100_000.0
    )
    stage = make_stage(mode=ProfilerMode.GPROF, hz=0.0, overhead=overhead)

    def body(thread, cpu):
        with frame(thread, "main"):
            yield from work(thread, cpu, 1.0)

    kernel = run_worker(stage, body)
    # 100k calls/s * 1us = 10% mcount overhead, plus one frame push.
    assert kernel.now == pytest.approx(1.1 + 1e-6)


def test_csprof_has_no_call_density_overhead():
    overhead = OverheadModel(
        sample_cost=0.0, call_cost=1e-6, call_density=100_000.0
    )
    stage = make_stage(mode=ProfilerMode.CSPROF, hz=0.0, overhead=overhead)

    def body(thread, cpu):
        with frame(thread, "main"):
            yield from work(thread, cpu, 1.0)

    kernel = run_worker(stage, body)
    assert kernel.now == pytest.approx(1.0)


def test_csprof_ignores_transaction_context_whodunit_uses_it():
    ctxt = TransactionContext(("listener",))

    def body(thread, cpu):
        thread.tran_ctxt = ctxt
        with frame(thread, "main"):
            yield from work(thread, cpu, 0.1)

    whodunit = make_stage(mode=ProfilerMode.WHODUNIT, hz=100.0)
    run_worker(whodunit, body)
    assert ctxt in whodunit.ccts
    assert LOCAL not in whodunit.ccts

    csprof = make_stage(mode=ProfilerMode.CSPROF, hz=100.0)
    run_worker(csprof, body)
    assert list(csprof.ccts) == [LOCAL]


def test_separate_ccts_per_context_label():
    stage = make_stage(hz=100.0)
    a = TransactionContext(("A",))
    b = TransactionContext(("B",))

    def body(thread, cpu):
        with frame(thread, "main"):
            thread.tran_ctxt = a
            yield from work(thread, cpu, 0.1)
            thread.tran_ctxt = b
            yield from work(thread, cpu, 0.3)

    run_worker(stage, body)
    assert stage.ccts[a].total_weight() == pytest.approx(10.0)
    assert stage.ccts[b].total_weight() == pytest.approx(30.0)
    assert stage.total_weight() == pytest.approx(40.0)


def test_send_request_allocates_synopsis_and_remembers_origin_cct():
    stage = make_stage()
    kernel = Kernel()
    cpu = CPU(kernel)
    sent = {}

    def worker():
        thread = box["t"]
        with frame(thread, "main"):
            with frame(thread, "foo"):
                sent["syn"] = stage.send_request(thread)
        yield from work(thread, cpu, 0.01)

    box = {}
    box["t"] = kernel.spawn(worker(), name="w", stage=stage)
    kernel.run()
    syn = sent["syn"]
    assert syn is not None
    assert stage.synopses.resolve(syn) == TransactionContext(("main", "foo"))


def test_context_at_send_includes_inherited_prefix():
    stage = make_stage()
    kernel = Kernel()
    cpu = CPU(kernel)
    out = {}

    def worker():
        thread = box["t"]
        thread.tran_ctxt = TransactionContext((SynopsisRef("web", 5),))
        with frame(thread, "svc"):
            out["ctxt"] = stage.context_at_send(thread)
        yield from work(thread, cpu, 0.0)

    box = {}
    box["t"] = kernel.spawn(worker(), name="w", stage=stage)
    kernel.run()
    assert out["ctxt"].elements == (SynopsisRef("web", 5), "svc")


def test_request_response_round_trip_switches_contexts():
    """Caller sends, callee adopts, callee responds, caller switches back."""
    caller = StageRuntime("web")
    callee = StageRuntime("db")
    kernel = Kernel()
    cpu = CPU(kernel)
    box = {}
    log = {}

    def caller_thread():
        thread = box["caller"]
        original_ctxt = TransactionContext(("upstream",))
        thread.tran_ctxt = original_ctxt
        with frame(thread, "main"):
            with frame(thread, "foo"):
                syn = caller.send_request(thread)
                log["request_syn"] = syn
                # Hand off to the callee and wait for its response.
                callee_t = yield Spawn(callee_thread(), name="callee", stage=callee)
                box["callee"] = callee_t
                yield Join(callee_t)
                composite = log["response"]
                # While waiting, the caller may have served other work:
                thread.tran_ctxt = TransactionContext(("other",))
                assert caller.receive_response(thread, composite)
                # Switched back to the context active at send time.
                assert thread.tran_ctxt == original_ctxt
        yield from work(thread, cpu, 0.0)

    def callee_thread():
        thread = yield CurrentThread()
        callee.receive_request(thread, "web", log["request_syn"])
        log["callee_ctxt"] = thread.tran_ctxt
        with frame(thread, "svc_run"):
            with frame(thread, "send"):
                log["response"] = callee.send_response(thread, log["request_syn"])
        yield from work(thread, cpu, 0.0)

    box["caller"] = kernel.spawn(caller_thread(), name="caller", stage=caller)
    kernel.run()
    syn = log["request_syn"]
    assert caller.synopses.resolve(syn).elements == ("upstream", "main", "foo")
    assert log["callee_ctxt"].elements == (SynopsisRef("web", syn),)
    composite = log["response"]
    assert composite.prefix == syn
    assert callee.synopses.resolve(composite.suffix) == TransactionContext(
        ("svc_run", "send")
    )
    assert caller.synopses.is_own_prefix(composite)
    assert not callee.synopses.is_own_prefix(composite)


def test_receive_response_ignores_foreign_composites():
    stage = make_stage()
    kernel = Kernel()
    cpu = CPU(kernel)
    box = {}
    out = {}

    def worker():
        thread = box["t"]
        from repro.core.synopsis import CompositeSynopsis

        out["handled"] = stage.receive_response(thread, CompositeSynopsis(12345, 1))
        yield from work(thread, cpu, 0.0)

    box["t"] = kernel.spawn(worker(), name="w", stage=stage)
    kernel.run()
    assert out["handled"] is False


def test_tracking_disabled_send_wrappers_are_noops():
    stage = make_stage(mode=ProfilerMode.CSPROF)
    kernel = Kernel()
    cpu = CPU(kernel)
    box = {}
    out = {}

    def worker():
        thread = box["t"]
        out["req"] = stage.send_request(thread)
        out["resp"] = stage.send_response(thread, 1)
        stage.receive_request(thread, "x", None)
        out["ctxt"] = thread.tran_ctxt
        yield from work(thread, cpu, 0.0)

    box["t"] = kernel.spawn(worker(), name="w", stage=stage)
    kernel.run()
    assert out["req"] is None
    assert out["resp"] is None
    assert out["ctxt"] is None


def test_receive_response_pops_matched_request():
    """Regression: the sent-request entry must not outlive its response.

    Before the fix the map grew unboundedly and a stale prefix from an
    old request could be spuriously matched by a later response.
    """
    stage = make_stage()
    kernel = Kernel()
    cpu = CPU(kernel)
    box = {}
    out = {}

    def worker():
        from repro.core.synopsis import CompositeSynopsis

        thread = box["t"]
        with frame(thread, "main"):
            syn = stage.send_request(thread)
        assert stage.in_flight_requests == 1
        composite = CompositeSynopsis(syn, 1)
        out["first"] = stage.receive_response(thread, composite)
        out["in_flight"] = stage.in_flight_requests
        # A stale response carrying the same prefix no longer matches.
        out["stale"] = stage.receive_response(thread, composite)
        yield from work(thread, cpu, 0.0)

    box["t"] = kernel.spawn(worker(), name="w", stage=stage)
    kernel.run()
    assert out["first"] is True
    assert out["in_flight"] == 0
    assert out["stale"] is False


def test_identical_in_flight_requests_each_match_a_response():
    stage = make_stage()
    kernel = Kernel()
    cpu = CPU(kernel)
    box = {}
    out = {}

    def worker():
        from repro.core.synopsis import CompositeSynopsis

        thread = box["t"]
        with frame(thread, "main"):
            first = stage.send_request(thread)
            second = stage.send_request(thread)
        assert first == second  # same context -> same synopsis
        assert stage.in_flight_requests == 1  # shared, refcounted entry
        composite = CompositeSynopsis(first, 1)
        out["matches"] = [
            stage.receive_response(thread, composite),
            stage.receive_response(thread, composite),
            stage.receive_response(thread, composite),
        ]
        yield from work(thread, cpu, 0.0)

    box["t"] = kernel.spawn(worker(), name="w", stage=stage)
    kernel.run()
    # Two in-flight sends match exactly two responses; the third is stale.
    assert out["matches"] == [True, True, False]


def test_pending_overhead_reclaimed_when_thread_exits():
    """Regression: a thread exiting with queued overhead must not leak it."""
    stage = make_stage()
    kernel = Kernel()
    box = {}

    def worker():
        thread = box["t"]
        stage.add_pending(thread, 0.05)
        return
        yield  # pragma: no cover

    box["t"] = kernel.spawn(worker(), name="w", stage=stage)
    kernel.run()
    assert stage._pending == {}


def test_pending_overhead_reclaimed_when_thread_fails():
    stage = make_stage()
    kernel = Kernel()
    box = {}

    def worker():
        thread = box["t"]
        stage.add_pending(thread, 0.05)
        raise RuntimeError("boom")
        yield  # pragma: no cover

    box["t"] = kernel.spawn(worker(), name="w", stage=stage)
    with pytest.raises(RuntimeError):
        kernel.run()
    assert stage._pending == {}


def test_message_byte_accounting():
    stage = make_stage()
    stage.account_message(1000, 4)
    stage.account_message(500, 9)
    assert stage.comm_data_bytes == 1500
    assert stage.comm_context_bytes == 13


def test_pending_overhead_consumed_once():
    stage = make_stage(hz=0.0)
    kernel = Kernel()
    cpu = CPU(kernel)
    box = {}

    def worker():
        thread = box["t"]
        stage.add_pending(thread, 0.05)
        yield from work(thread, cpu, 0.1)  # 0.15 total
        yield from work(thread, cpu, 0.1)  # pending already consumed

    box["t"] = kernel.spawn(worker(), name="w", stage=stage)
    kernel.run()
    assert kernel.now == pytest.approx(0.25)
