"""Tests for the compact v2 profile format (interned, framed, gzipped)."""

import io
import json

import pytest

from repro.core.context import SynopsisRef, TransactionContext, UnresolvedRef
from repro.core.persist import (
    FORMAT_VERSION_V2,
    JSON_SEPARATORS,
    V2_MAGIC,
    decode_stage_v2,
    dump_size,
    encode_stage,
    encode_stage_v2,
    dumps_stage_v2,
    load_stage,
    loads_stage_v2,
    save_stage,
)
from repro.core.profiler import LOCAL, ProfilerMode, StageRuntime


def ctxt(*elements):
    return TransactionContext(elements)


def make_stage():
    """A stage exercising every persisted feature: local and flow CCTs,
    SynopsisRef *and* UnresolvedRef context elements (partial-stitch
    placeholders), synopsis entries, context-typed crosstalk, comm."""
    stage = StageRuntime("web", mode=ProfilerMode.WHODUNIT, sampling_hz=500.0)
    stage.cct_for(LOCAL).record_sample(("main", "accept"), 12.5)
    flow = stage.cct_for(ctxt("listener", SynopsisRef("db", 0xABC00007), "push"))
    flow.record_sample(("main", "worker", "deep", "deeper"), 30.0)
    flow.record_call(("main", "worker"))
    partial = stage.cct_for(ctxt(UnresolvedRef("gone", 17), "tail"))
    partial.record_sample(("main", "salvage"), 3.25)
    stage.synopses.synopsis(ctxt("main", "send"))
    stage.synopses.synopsis(ctxt("main", "send", "again"))
    stage.crosstalk.record("B", "A", 0.07)
    stage.crosstalk.record(ctxt("main", "send"), None, 0.003)
    stage.account_message(1000, 4)
    return stage


def same_profile(a: StageRuntime, b: StageRuntime) -> bool:
    """load(dump(x)) == x, compared through the exhaustive v1 encoding."""
    return encode_stage(a) == encode_stage(b)


# ----------------------------------------------------------------------
# Round trip
# ----------------------------------------------------------------------
def test_v2_round_trip_is_exact():
    stage = make_stage()
    assert same_profile(loads_stage_v2(dumps_stage_v2(stage)), stage)


def test_v2_round_trip_preserves_synopsis_snapshot():
    stage = make_stage()
    clone = loads_stage_v2(dumps_stage_v2(stage))
    assert clone.synopses.base == stage.synopses.base
    assert clone.synopses.next_value == stage.synopses.next_value
    assert dict(clone.synopses.items()) == dict(stage.synopses.items())


def test_v2_dump_is_byte_deterministic():
    stage = make_stage()
    blob = dumps_stage_v2(stage)
    assert dumps_stage_v2(stage) == blob
    # Decode → re-encode is also a fixed point.
    assert dumps_stage_v2(loads_stage_v2(blob)) == blob


def test_v2_restores_a_foreign_base_instead_of_rederiving():
    """The bugfix guard: a fresh process must adopt the dump's salted
    base, never the one it would derive itself (collision salting is
    registration-order dependent)."""
    stage = make_stage()
    document = encode_stage_v2(stage)
    foreign_base = document[4] ^ (7 << 20)  # a base this name never hashes to
    document[4] = foreign_base
    document[9] = [[ctx_id, remainder] for ctx_id, remainder in document[9]]
    clone = decode_stage_v2(document)
    assert clone.synopses.base == foreign_base
    # New synopses allocated post-restore carry the restored base.
    fresh = clone.synopses.synopsis(ctxt("post", "restore"))
    assert fresh & ~0xFFFFF == foreign_base


def test_v2_framing_rejects_corruption():
    stage = make_stage()
    blob = dumps_stage_v2(stage)
    assert blob[:4] == V2_MAGIC
    with pytest.raises(ValueError):
        loads_stage_v2(b"XXXX" + blob[4:])
    with pytest.raises(ValueError):
        loads_stage_v2(blob[:8])
    with pytest.raises(ValueError):
        loads_stage_v2(blob[:-5])


def test_v2_rejects_wrong_version():
    document = encode_stage_v2(make_stage())
    document[0] = 99
    with pytest.raises(ValueError):
        decode_stage_v2(document)


# ----------------------------------------------------------------------
# Files and format negotiation
# ----------------------------------------------------------------------
def test_load_stage_sniffs_both_formats(tmp_path):
    stage = make_stage()
    v1_path = str(tmp_path / "web.profile.json")
    v2_path = str(tmp_path / "web.profile.wdp")
    save_stage(stage, v1_path, profile_format="v1")
    save_stage(stage, v2_path, profile_format="v2")
    assert same_profile(load_stage(v1_path), stage)
    assert same_profile(load_stage(v2_path), stage)


def test_save_stage_rejects_unknown_format(tmp_path):
    with pytest.raises(ValueError):
        save_stage(make_stage(), str(tmp_path / "x"), profile_format="v3")


def test_v1_dump_uses_compact_separators():
    buffer = io.StringIO()
    save_stage(make_stage(), buffer, profile_format="v1")
    text = buffer.getvalue()
    assert ", " not in text and ": " not in text
    json.loads(text)  # still plain JSON


def test_v1_dump_persists_synopsis_snapshot():
    stage = make_stage()
    data = encode_stage(stage)
    assert data["synopsis_base"] == stage.synopses.base
    assert data["synopsis_next"] == stage.synopses.next_value


def test_dump_size_v2_smaller_than_v1():
    stage = StageRuntime("sized")
    for i in range(50):
        cct = stage.cct_for(ctxt("entry", f"request_{i % 5}"))
        cct.record_sample(("main", "dispatch", f"handler_{i % 5}", "io"), 1.0 + i)
        stage.synopses.synopsis(ctxt("entry", f"request_{i}"))
    assert dump_size(stage, "v2") < dump_size(stage, "v1")


def test_interning_stores_repeated_strings_once():
    stage = StageRuntime("intern")
    for i in range(40):
        stage.cct_for(ctxt("same_label", str(i))).record_sample(
            ("very_long_repeated_frame_name", "another_long_frame"), 1.0
        )
    document = encode_stage_v2(stage)
    strings = document[6]
    assert strings.count("very_long_repeated_frame_name") == 1
    assert strings.count("another_long_frame") == 1
