"""Tests for the flow dictionary and role tables."""

from repro.core.flow import (
    FLOW,
    INVALID,
    FlowDictionary,
    LockRoles,
    NO_FLOW_ALLOCATOR,
    NO_FLOW_STATEFUL,
    RoleTable,
)
from repro.vm.machine import mem_loc, reg_loc


def test_invalid_is_singleton():
    from repro.core.flow.dictionary import _Invalid

    assert _Invalid() is INVALID
    assert repr(INVALID) == "invlctxt"


def test_set_get_remove():
    d = FlowDictionary()
    loc = mem_loc(5)
    d.set(loc, "ctx", "lockA", "t1")
    entry = d.get(loc)
    assert entry.context == "ctx"
    assert entry.lock == "lockA"
    assert entry.writer == "t1"
    assert entry.valid
    d.remove(loc)
    assert d.get(loc) is None
    d.remove(loc)  # idempotent


def test_invalid_entry_not_valid():
    d = FlowDictionary()
    entry = d.set(mem_loc(1), INVALID, "l", "t")
    assert not entry.valid


def test_flush_if_foreign_lock():
    d = FlowDictionary()
    lock_a, lock_b = object(), object()
    d.set(mem_loc(1), "ctx", lock_a, "t")
    assert not d.flush_if_foreign_lock(mem_loc(1), lock_a)
    assert d.get(mem_loc(1)) is not None
    assert d.flush_if_foreign_lock(mem_loc(1), lock_b)
    assert d.get(mem_loc(1)) is None
    assert not d.flush_if_foreign_lock(mem_loc(1), lock_b)  # already gone


def test_clear_registers_only_affects_one_thread():
    d = FlowDictionary()
    d.set(reg_loc("t1", 0), "c", "l", "t1")
    d.set(reg_loc("t1", 1), "c", "l", "t1")
    d.set(reg_loc("t2", 0), "c", "l", "t2")
    d.set(mem_loc(9), "c", "l", "t1")
    assert d.clear_registers("t1") == 2
    assert d.get(reg_loc("t1", 0)) is None
    assert d.get(reg_loc("t2", 0)) is not None
    assert d.get(mem_loc(9)) is not None


def test_lock_roles_allocator_classification():
    roles = LockRoles()
    roles.add_producer("t1")
    assert roles.classification is None
    roles.add_consumer("t2")
    assert roles.classification is None
    roles.add_consumer("t1")  # overlap!
    assert roles.classification == NO_FLOW_ALLOCATOR
    assert roles.is_no_flow


def test_overlap_overrides_flow_classification():
    roles = LockRoles()
    roles.add_producer("t1")
    roles.add_consumer("t2")
    roles.note_flow()
    assert roles.classification == FLOW
    roles.add_consumer("t1")
    assert roles.classification == NO_FLOW_ALLOCATOR


def test_stateful_classification_after_threshold():
    roles = LockRoles()
    for _ in range(31):
        roles.note_execution(stateful_threshold=32)
    assert roles.classification is None
    roles.note_execution(stateful_threshold=32)
    assert roles.classification == NO_FLOW_STATEFUL


def test_valid_produce_prevents_stateful_classification():
    roles = LockRoles()
    roles.valid_produced = True
    for _ in range(100):
        roles.note_execution(stateful_threshold=32)
    assert roles.classification is None


def test_flow_classification_sticks():
    roles = LockRoles()
    roles.note_flow()
    for _ in range(100):
        roles.note_execution(stateful_threshold=32)
    assert roles.classification == FLOW
    assert roles.flows_detected == 1


def test_role_table_lazily_creates():
    table = RoleTable()
    lock = object()
    assert table.classification(lock) is None
    roles = table.for_lock(lock)
    assert table.for_lock(lock) is roles
    assert len(table) == 1
