"""Tests for nested critical sections (§3.3.2).

"Programs often use nested locks.  Our algorithm analyzes all
instructions that are in the critical section protected by the
outermost lock.  Thus, all internal critical sections are also
analyzed."
"""

import pytest

from repro.core.context import TransactionContext
from repro.core.flow import FLOW, FlowDetector
from repro.vm import Emulator, Machine
from repro.vm.programs import BoundedQueue


def ctxt(*elements):
    return TransactionContext(elements)


def test_nested_enter_returns_outer_hooks():
    detector = FlowDetector()
    outer = detector.enter_cs("outer", "t1", ctxt("a"))
    inner = detector.enter_cs("inner", "t1", ctxt("a"))
    assert inner is outer
    assert outer.depth == 2
    assert outer.lock == "outer"


def test_nested_exit_keeps_section_open():
    detector = FlowDetector()
    outer = detector.enter_cs("outer", "t1", ctxt("a"))
    detector.enter_cs("inner", "t1", ctxt("a"))
    assert detector.exit_cs(outer) is None  # inner exit
    assert not outer.closed
    window = detector.exit_cs(outer)  # outer exit
    assert window is not None
    assert outer.closed


def test_nested_instructions_attributed_to_outer_lock():
    """A push executed while holding an inner lock still produces for

    the OUTER lock's resource lists."""
    machine = Machine()
    emulator = Emulator()
    detector = FlowDetector()
    queue = BoundedQueue(machine.memory)

    # Producer holds outer then inner; the push runs "inside" inner.
    outer = detector.enter_cs("outer", "prod", ctxt("produce"))
    detector.enter_cs("inner", "prod", ctxt("produce"))
    machine.registers("prod").load_arguments(5, 6)
    emulator.run(queue.push_program, machine, "prod", hooks=outer)
    detector.exit_cs(outer)
    detector.exit_cs(outer)

    roles_outer = detector.roles.for_lock("outer")
    roles_inner = detector.roles.for_lock("inner")
    assert "prod" in roles_outer.producers
    assert not roles_inner.producers

    # The consumer (single flat lock) still receives the context: the
    # dictionary entry was recorded under "outer", and the consumer
    # accesses it under "outer" too.
    cs = detector.enter_cs("outer", "cons", ctxt())
    emulator.run(queue.pop_program, machine, "cons", hooks=cs)
    window = detector.exit_cs(cs)
    emulator.run(queue.use_program, machine, "cons", hooks=window)
    assert window.consumed
    assert window.consumed[0].context == ctxt("produce")
    assert detector.roles.for_lock("outer").classification == FLOW


def test_different_threads_do_not_share_sections():
    detector = FlowDetector()
    a = detector.enter_cs("lock", "t1", ctxt())
    b = detector.enter_cs("lock", "t2", ctxt())
    assert a is not b


def test_reentry_after_close_creates_new_section():
    detector = FlowDetector()
    first = detector.enter_cs("lock", "t1", ctxt())
    detector.exit_cs(first)
    second = detector.enter_cs("lock", "t1", ctxt())
    assert second is not first
    assert second.depth == 1
