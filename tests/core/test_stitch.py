"""Tests for post-mortem profile stitching across stages."""

import pytest

from repro.core.context import SynopsisRef, TransactionContext
from repro.core.profiler import LOCAL, StageRuntime
from repro.core.stitch import StitchError, resolve_context, stitch_profiles


def ctxt(*elements):
    return TransactionContext(elements)


def test_resolve_context_without_refs_is_identity():
    stages = {}
    c = ctxt("main", "foo")
    assert resolve_context(c, stages) == c


def test_resolve_single_ref():
    web = StageRuntime("web")
    syn = web.synopses.synopsis(ctxt("main", "foo", "send"))
    stages = {"web": web}
    resolved = resolve_context(ctxt(SynopsisRef("web", syn), "svc"), stages)
    assert resolved.elements == ("main", "foo", "send", "svc")


def test_resolve_nested_refs_across_three_tiers():
    """proxy -> app -> db: the db context expands through both hops."""
    proxy = StageRuntime("proxy")
    app = StageRuntime("app")
    proxy_syn = proxy.synopses.synopsis(ctxt("comm_poll", "send"))
    app_context = ctxt(SynopsisRef("proxy", proxy_syn), "servlet", "query")
    app_syn = app.synopses.synopsis(app_context)
    db_label = ctxt(SynopsisRef("app", app_syn))
    stages = {"proxy": proxy, "app": app}
    resolved = resolve_context(db_label, stages)
    assert resolved.elements == ("comm_poll", "send", "servlet", "query")


def test_resolve_unknown_stage_raises():
    with pytest.raises(StitchError):
        resolve_context(ctxt(SynopsisRef("ghost", 1)), {})


def test_resolve_cycle_raises():
    a = StageRuntime("a")
    # Forge a self-referential synopsis: context containing a ref to itself.
    value = a.synopses.synopsis(ctxt("placeholder"))
    a.synopses._by_value[value] = ctxt(SynopsisRef("a", value))
    with pytest.raises(StitchError):
        resolve_context(ctxt(SynopsisRef("a", value)), {"a": a})


def test_resolve_cycle_error_names_the_chain():
    a = StageRuntime("a")
    b = StageRuntime("b")
    # a's synopsis refers to b's, which refers back to a's.
    a_value = a.synopses.synopsis(ctxt("placeholder-a"))
    b_value = b.synopses.synopsis(ctxt("placeholder-b"))
    a.synopses._by_value[a_value] = ctxt(SynopsisRef("b", b_value))
    b.synopses._by_value[b_value] = ctxt(SynopsisRef("a", a_value))
    with pytest.raises(StitchError) as excinfo:
        resolve_context(ctxt(SynopsisRef("a", a_value)), {"a": a, "b": b})
    message = str(excinfo.value)
    assert "cyclic" in message
    assert "a" in message and "b" in message


def test_resolve_deep_legitimate_chain_is_not_a_cycle():
    """A 200-hop reference chain (former depth cap was 32) resolves fine."""
    stage = StageRuntime("s")
    previous = stage.synopses.synopsis(ctxt("origin"))
    for level in range(200):
        previous = stage.synopses.synopsis(
            ctxt(SynopsisRef("s", previous), f"hop{level}")
        )
    resolved = resolve_context(ctxt(SynopsisRef("s", previous)), {"s": stage})
    assert resolved.elements[0] == "origin"
    assert len(resolved.elements) == 201


def test_resolve_cache_is_shared_and_correct():
    web = StageRuntime("web")
    syn = web.synopses.synopsis(ctxt("main", "send"))
    stages = {"web": web}
    cache = {}
    label = ctxt(SynopsisRef("web", syn), "svc")
    first = resolve_context(label, stages, cache)
    assert first.elements == ("main", "send", "svc")
    # Both the label and the referenced context are now memoized.
    assert cache[label] == first
    # A second resolution comes straight from the cache (identity).
    assert resolve_context(label, stages, cache) is first


def test_resolve_cache_never_caches_partial_cycles():
    a = StageRuntime("a")
    value = a.synopses.synopsis(ctxt("placeholder"))
    a.synopses._by_value[value] = ctxt(SynopsisRef("a", value))
    cache = {}
    with pytest.raises(StitchError):
        resolve_context(ctxt(SynopsisRef("a", value)), {"a": a}, cache)
    assert cache == {}


def test_stitch_merges_cct_labels_into_full_contexts():
    web = StageRuntime("web")
    db = StageRuntime("db")
    send_ctxt = ctxt("main", "foo", "send")
    syn = web.synopses.synopsis(send_ctxt)
    # Web samples under its local (empty) label:
    web.cct_for(LOCAL).record_sample(("main", "foo"), 10.0)
    # DB samples under the received synopsis label:
    db_label = ctxt(SynopsisRef("web", syn))
    db.cct_for(db_label).record_sample(("svc_run", "sort"), 30.0)

    profile = stitch_profiles([web, db])
    assert profile.stages() == ["db", "web"]
    resolved = ctxt("main", "foo", "send")
    assert profile.cct("db", resolved).weight_of(("svc_run", "sort")) == 30.0
    assert profile.cct("web", LOCAL).weight_of(("main", "foo")) == 10.0


def test_stitch_two_callers_produce_two_db_contexts():
    """Fig 7: the callee's call-path tree appears once per caller context."""
    web = StageRuntime("web")
    db = StageRuntime("db")
    foo = web.synopses.synopsis(ctxt("main", "foo", "send"))
    bar = web.synopses.synopsis(ctxt("main", "bar", "send"))
    db.cct_for(ctxt(SynopsisRef("web", foo))).record_sample(("svc",), 1.0)
    db.cct_for(ctxt(SynopsisRef("web", bar))).record_sample(("svc",), 2.0)

    profile = stitch_profiles([web, db])
    db_contexts = profile.contexts_of("db")
    assert len(db_contexts) == 2
    assert profile.cct("db", ctxt("main", "foo", "send")).total_weight() == 1.0
    assert profile.cct("db", ctxt("main", "bar", "send")).total_weight() == 2.0


def test_stitch_merges_labels_resolving_to_same_context():
    web = StageRuntime("web")
    db = StageRuntime("db")
    send_ctxt = ctxt("main", "send")
    syn = web.synopses.synopsis(send_ctxt)
    # Same resolved context reachable via ref and recorded directly:
    db.cct_for(ctxt(SynopsisRef("web", syn))).record_sample(("svc",), 1.0)
    db.cct_for(send_ctxt).record_sample(("svc",), 2.0)

    profile = stitch_profiles([web, db])
    assert profile.cct("db", send_ctxt).weight_of(("svc",)) == 3.0


def test_stage_weight_and_context_share():
    web = StageRuntime("web")
    web.cct_for(ctxt("hit")).record_sample(("w",), 30.0)
    web.cct_for(ctxt("miss")).record_sample(("w",), 70.0)
    profile = stitch_profiles([web])
    assert profile.stage_weight("web") == 100.0
    assert profile.context_share("web", ctxt("hit")) == pytest.approx(0.3)
    assert profile.total_weight() == 100.0


def test_stage_weight_cache_invalidated_by_add():
    web = StageRuntime("web")
    web.cct_for(ctxt("hit")).record_sample(("w",), 30.0)
    profile = stitch_profiles([web])
    assert profile.stage_weight("web") == 30.0  # primes the cache
    extra = StageRuntime("web")
    extra.cct_for(ctxt("miss")).record_sample(("w",), 70.0)
    profile.add("web", ctxt("miss"), extra.ccts[ctxt("miss")])
    assert profile.stage_weight("web") == 100.0
    assert profile.context_share("web", ctxt("hit")) == pytest.approx(0.3)


def test_invalidate_weights_after_direct_cct_mutation():
    web = StageRuntime("web")
    web.cct_for(LOCAL).record_sample(("main",), 10.0)
    profile = stitch_profiles([web])
    assert profile.stage_weight("web") == 10.0
    profile.cct("web", LOCAL).record_sample(("main",), 5.0)
    profile.invalidate_weights("web")
    assert profile.stage_weight("web") == 15.0


def test_context_share_many_contexts_uses_one_stage_scan():
    """context_share over n contexts must not re-sum the stage each time."""
    web = StageRuntime("web")
    for index in range(50):
        web.cct_for(ctxt(f"c{index}")).record_sample(("w",), 1.0)
    profile = stitch_profiles([web])
    shares = [
        profile.context_share("web", ctxt(f"c{index}")) for index in range(50)
    ]
    assert all(share == pytest.approx(1 / 50) for share in shares)


def test_context_share_of_empty_stage_is_zero():
    web = StageRuntime("web")
    web.cct_for(ctxt("a"))  # empty CCT
    profile = stitch_profiles([web])
    assert profile.context_share("web", ctxt("a")) == 0.0


def test_flow_graph_derives_request_edges():
    from repro.core.stitch import FlowEdge, flow_graph

    web = StageRuntime("web")
    db = StageRuntime("db")
    foo = web.synopses.synopsis(ctxt("main", "foo", "send"))
    bar = web.synopses.synopsis(ctxt("main", "bar", "send"))
    web.cct_for(LOCAL).record_sample(("main",), 1.0)
    db.cct_for(ctxt(SynopsisRef("web", foo))).record_sample(("svc",), 1.0)
    db.cct_for(ctxt(SynopsisRef("web", bar))).record_sample(("svc",), 1.0)

    edges = flow_graph([web, db])
    assert len(edges) == 2
    assert FlowEdge("web", ctxt("main", "foo", "send"), "db", ctxt("main", "foo", "send")) in edges
    froms = {(e.from_stage, e.to_stage) for e in edges}
    assert froms == {("web", "db")}


def test_flow_graph_three_tier_chain():
    from repro.core.stitch import flow_graph

    proxy = StageRuntime("proxy")
    app = StageRuntime("app")
    db = StageRuntime("db")
    p_syn = proxy.synopses.synopsis(ctxt("poll", "send"))
    app_label = ctxt(SynopsisRef("proxy", p_syn))
    app.cct_for(app_label).record_sample(("servlet",), 1.0)
    a_syn = app.synopses.synopsis(app_label.extend_path(("servlet", "query")))
    db.cct_for(ctxt(SynopsisRef("app", a_syn))).record_sample(("select",), 1.0)

    edges = flow_graph([proxy, app, db])
    pairs = {(e.from_stage, e.to_stage) for e in edges}
    assert pairs == {("proxy", "app"), ("app", "db")}
    db_edge = next(e for e in edges if e.to_stage == "db")
    assert db_edge.to_context.elements == ("poll", "send", "servlet", "query")


def test_flow_graph_deduplicates():
    from repro.core.stitch import flow_graph

    web = StageRuntime("web")
    db = StageRuntime("db")
    syn = web.synopses.synopsis(ctxt("send"))
    db.cct_for(ctxt(SynopsisRef("web", syn))).record_sample(("a",), 1.0)
    # Same label appears only once even if asked twice.
    assert len(flow_graph([web, db])) == len(flow_graph([web, db])) == 1


def test_stitched_ccts_are_copies():
    web = StageRuntime("web")
    web.cct_for(LOCAL).record_sample(("main",), 1.0)
    profile = stitch_profiles([web])
    profile.cct("web", LOCAL).record_sample(("main",), 99.0)
    assert web.ccts[LOCAL].weight_of(("main",)) == 1.0
