"""End-to-end tests of the flow-detection algorithm on §3's programs.

These mirror the paper's own validation: the Apache queue (Fig 1) must
produce transaction flow from listener to worker; the shared counter
(Fig 2) and the memory allocator (Fig 3) must not; NULL sanity-checking
and element relocation (§3.3.2, §3.2) must behave as described.
"""

import pytest

from repro.core.context import TransactionContext
from repro.core.flow import (
    FLOW,
    FlowDetector,
    NO_FLOW_ALLOCATOR,
    NO_FLOW_STATEFUL,
)
from repro.vm import Emulator, Machine
from repro.vm.emulator import DIRECT, EMULATE
from repro.vm.programs import (
    BoundedQueue,
    FreeListAllocator,
    LinkedQueue,
    SharedCounter,
    SlotShuffleQueue,
)


def ctxt(*elements):
    return TransactionContext(elements)


class Harness:
    """Drives critical sections the way the shared-memory channel does."""

    def __init__(self):
        self.machine = Machine()
        self.emulator = Emulator()
        self.detector = FlowDetector()

    def run_cs(self, lock, thread, context, program, args=(), use_program=None):
        """Run one critical section (and its use window); returns consumes."""
        self.machine.registers(thread).load_arguments(*args)
        if self.detector.mode_for(lock) == DIRECT:
            self.emulator.run(program, self.machine, thread, mode=DIRECT)
            if use_program is not None:
                self.emulator.run(use_program, self.machine, thread, mode=DIRECT)
            return []
        cs = self.detector.enter_cs(lock, thread, context)
        self.emulator.run(program, self.machine, thread, hooks=cs)
        window = self.detector.exit_cs(cs)
        if use_program is not None:
            self.emulator.run(use_program, self.machine, thread, hooks=window)
        return window.consumed


@pytest.fixture
def harness():
    return Harness()


# ----------------------------------------------------------------------
# Fig 1: the Apache queue — flow must be detected
# ----------------------------------------------------------------------
def test_queue_push_pop_detects_flow(harness):
    q = BoundedQueue(harness.machine.memory)
    lock = "one_big_mutex"
    listener_ctxt = ctxt("main", "listener", "ap_queue_push")

    harness.run_cs(lock, "listener", listener_ctxt, q.push_program, (111, 222))
    consumed = harness.run_cs(
        lock, "worker", ctxt(), q.pop_program, (), use_program=q.use_program
    )

    assert len(consumed) >= 1
    event = consumed[0]
    assert event.context == listener_ctxt
    assert event.producer == "listener"
    roles = harness.detector.roles.for_lock(lock)
    assert roles.classification == FLOW
    assert "listener" in roles.producers
    assert "worker" in roles.consumers


def test_queue_flow_repeats_for_many_elements(harness):
    q = BoundedQueue(harness.machine.memory)
    lock = "q"
    contexts = [ctxt("push", str(i)) for i in range(5)]
    for i, c in enumerate(contexts):
        harness.run_cs(lock, "listener", c, q.push_program, (100 + i, 200 + i))
    seen = []
    for _ in range(5):
        consumed = harness.run_cs(
            lock, "worker", ctxt(), q.pop_program, (), use_program=q.use_program
        )
        seen.append(consumed[0].context)
    # LIFO pop order: contexts come back newest-first.
    assert seen == list(reversed(contexts))


def test_two_workers_each_get_producer_context(harness):
    q = BoundedQueue(harness.machine.memory)
    lock = "q"
    harness.run_cs(lock, "listener", ctxt("c1"), q.push_program, (1, 2))
    harness.run_cs(lock, "listener", ctxt("c2"), q.push_program, (3, 4))
    first = harness.run_cs(lock, "w1", ctxt(), q.pop_program, (), use_program=q.use_program)
    second = harness.run_cs(lock, "w2", ctxt(), q.pop_program, (), use_program=q.use_program)
    assert first[0].context == ctxt("c2")
    assert second[0].context == ctxt("c1")
    roles = harness.detector.roles.for_lock(lock)
    assert roles.consumers == {"w1", "w2"}
    assert roles.classification == FLOW


def test_flow_lock_keeps_being_emulated(harness):
    q = BoundedQueue(harness.machine.memory)
    lock = "q"
    for i in range(40):
        harness.run_cs(lock, "listener", ctxt(f"c{i}"), q.push_program, (i, i))
        harness.run_cs(lock, "worker", ctxt(), q.pop_program, (), use_program=q.use_program)
    assert harness.detector.mode_for(lock) == EMULATE


# ----------------------------------------------------------------------
# Fig 2: the shared counter — no flow, classified stateful
# ----------------------------------------------------------------------
def test_counter_produces_no_flow_and_goes_native(harness):
    counter = SharedCounter(harness.machine.memory)
    lock = "count_mutex"
    threshold = harness.detector.stateful_threshold
    for i in range(threshold):
        thread = "t1" if i % 2 == 0 else "t2"
        consumed = harness.run_cs(
            lock, thread, ctxt("tx", str(i)), counter.increment_program
        )
        assert consumed == []
    roles = harness.detector.roles.for_lock(lock)
    assert roles.classification == NO_FLOW_STATEFUL
    assert roles.producers == set()
    assert roles.consumers == set()
    assert harness.detector.mode_for(lock) == DIRECT
    # Counter keeps functioning natively afterwards.
    harness.run_cs(lock, "t1", ctxt(), counter.increment_program)
    assert counter.value(harness.machine.memory) == threshold + 1


def test_counter_location_carries_invalid_context(harness):
    from repro.core.flow.dictionary import INVALID
    from repro.vm.machine import mem_loc

    counter = SharedCounter(harness.machine.memory)
    harness.run_cs("l", "t1", ctxt("a"), counter.increment_program)
    entry = harness.detector.dictionary.get(mem_loc(counter.count_addr))
    assert entry is not None
    assert entry.context is INVALID


# ----------------------------------------------------------------------
# Fig 3: the memory allocator — producer/consumer overlap, no flow
# ----------------------------------------------------------------------
def test_allocator_classified_no_flow(harness):
    allocator = FreeListAllocator(harness.machine.memory, blocks=4)
    lock = "alloc_mutex"

    def alloc(thread, tx):
        harness.run_cs(
            lock, thread, tx, allocator.alloc_program, (), use_program=allocator.use_program
        )
        return harness.machine.registers(thread).read(0)

    def free(thread, tx, block):
        harness.run_cs(lock, thread, tx, allocator.free_program, (block,))

    # Threads allocate, work, free — blocks recycle across threads.
    block_a = alloc("tA", ctxt("txA"))
    free("tA", ctxt("txA"), block_a)
    block_b = alloc("tB", ctxt("txB"))  # tB may consume tA's ctxt: flow-ish
    free("tB", ctxt("txB"), block_b)
    alloc("tA", ctxt("txA2"))  # tA consumes tB's block: overlap

    roles = harness.detector.roles.for_lock(lock)
    assert roles.classification == NO_FLOW_ALLOCATOR
    assert harness.detector.mode_for(lock) == DIRECT


def test_allocator_flow_edges_suppressed_in_report(harness):
    allocator = FreeListAllocator(harness.machine.memory, blocks=2)
    lock = "alloc"

    def cycle(thread, tx):
        harness.run_cs(
            lock, thread, tx, allocator.alloc_program, (), use_program=allocator.use_program
        )
        block = harness.machine.registers(thread).read(0)
        harness.run_cs(lock, thread, tx, allocator.free_program, (block,))

    for i in range(6):
        cycle("tA" if i % 2 == 0 else "tB", ctxt("tx", str(i)))

    assert harness.detector.roles.for_lock(lock).is_no_flow
    # Transient consume events happened on this lock before it was
    # classified, but flow_edges() excludes them all.
    assert any(e.lock == lock for e in harness.detector.consume_events)
    assert harness.detector.flow_edges() == []


# ----------------------------------------------------------------------
# §3.3.2: NULL sanity-checking must not create reverse flow
# ----------------------------------------------------------------------
def test_linked_queue_flow_detected_and_null_head_is_invalid(harness):
    q = LinkedQueue(harness.machine.memory)
    lock = "slist"
    e1 = harness.machine.memory.alloc(2)
    harness.run_cs(lock, "prod", ctxt("enq1"), q.enqueue_program, (e1,))
    consumed = harness.run_cs(
        lock, "cons1", ctxt(), q.dequeue_program, (), use_program=q.use_program
    )
    assert consumed and consumed[0].context == ctxt("enq1")

    # Queue now empty; head was written with a NULL propagated through
    # elem->next (invalid context).  A second consumer must not consume.
    consumed2 = harness.run_cs(
        lock, "cons2", ctxt(), q.dequeue_program, (), use_program=None
    )
    assert consumed2 == []
    assert "cons2" not in harness.detector.roles.for_lock(lock).consumers


def test_null_cleared_slot_does_not_flow_back_to_producer(harness):
    """The consumer writes NULL into the slot; the producer later reads

    it (sanity check) — the paper: no flow from consumer to producer.
    """
    q = LinkedQueue(harness.machine.memory)
    lock = "slist"
    e1 = harness.machine.memory.alloc(2)
    harness.run_cs(lock, "prod", ctxt("enq"), q.enqueue_program, (e1,))
    harness.run_cs(lock, "cons", ctxt(), q.dequeue_program, (), use_program=q.use_program)
    # Producer enqueues the same element again, reading its cleared next
    # pointer in the process.
    harness.run_cs(lock, "prod", ctxt("enq2"), q.enqueue_program, (e1,))
    roles = harness.detector.roles.for_lock(lock)
    assert "prod" not in roles.consumers
    assert roles.classification == FLOW


# ----------------------------------------------------------------------
# §3.2: element relocation preserves the producer's context
# ----------------------------------------------------------------------
def test_slot_shuffle_preserves_context(harness):
    q = SlotShuffleQueue(harness.machine.memory)
    lock = "pq"
    harness.run_cs(lock, "prod", ctxt("stored"), q.store_program, (777, 2))
    # A third thread rearranges the queue internally.
    harness.run_cs(lock, "shuffler", ctxt("shuffle"), q.shuffle_program, (2, 5))
    consumed = harness.run_cs(
        lock, "cons", ctxt(), q.load_program, (0, 5), use_program=q.use_program
    )
    assert consumed
    assert consumed[0].context == ctxt("stored")
    assert consumed[0].producer == "prod"


# ----------------------------------------------------------------------
# Lock-mismatch flushing
# ----------------------------------------------------------------------
def test_access_under_different_lock_flushes_context(harness):
    q = BoundedQueue(harness.machine.memory)
    harness.run_cs("lockA", "listener", ctxt("A"), q.push_program, (1, 2))
    # Pop the same memory under a DIFFERENT lock: the entry must flush,
    # so no consumption can be inferred.
    consumed = harness.run_cs(
        "lockB", "worker", ctxt(), q.pop_program, (), use_program=q.use_program
    )
    assert consumed == []


# ----------------------------------------------------------------------
# Detector mechanics
# ----------------------------------------------------------------------
def test_registers_cleared_on_cs_entry(harness):
    from repro.vm.machine import reg_loc

    q = BoundedQueue(harness.machine.memory)
    harness.detector.dictionary.set(reg_loc("listener", 0), ctxt("stale"), "q", "x")
    harness.run_cs("q", "listener", ctxt("fresh"), q.push_program, (9, 9))
    # The stale r0 entry cannot have been propagated into the queue:
    consumed = harness.run_cs(
        "q", "worker", ctxt(), q.pop_program, (), use_program=q.use_program
    )
    assert consumed[0].context == ctxt("fresh")


def test_exit_cs_twice_raises(harness):
    cs = harness.detector.enter_cs("l", "t", ctxt())
    harness.detector.exit_cs(cs)
    with pytest.raises(RuntimeError):
        harness.detector.exit_cs(cs)


def test_window_budget_limits_consumption_reads():
    from repro.vm.machine import mem_loc

    detector = FlowDetector(max_window=2)
    detector.dictionary.set(mem_loc(1), ctxt("a"), "l", "prod")
    detector.dictionary.set(mem_loc(2), ctxt("b"), "l", "prod")
    detector.dictionary.set(mem_loc(3), ctxt("c"), "l", "prod")
    cs = detector.enter_cs("l", "cons", ctxt())
    window = detector.exit_cs(cs)
    window.read(mem_loc(1))
    window.read(mem_loc(2))
    window.read(mem_loc(3))  # beyond the MAX window
    assert [e.context for e in window.consumed] == [ctxt("a"), ctxt("b")]


def test_own_writes_are_not_consumed():
    from repro.vm.machine import mem_loc

    detector = FlowDetector()
    detector.dictionary.set(mem_loc(1), ctxt("mine"), "l", "me")
    cs = detector.enter_cs("l", "me", ctxt())
    window = detector.exit_cs(cs)
    window.read(mem_loc(1))
    assert window.consumed == []


def test_window_writes_untrack_locations():
    from repro.vm.machine import mem_loc

    detector = FlowDetector()
    detector.dictionary.set(mem_loc(1), ctxt("a"), "l", "prod")
    cs = detector.enter_cs("l", "cons", ctxt())
    window = detector.exit_cs(cs)
    window.write_invalid(mem_loc(1))
    assert detector.dictionary.get(mem_loc(1)) is None


def test_flow_edges_lists_consumptions(harness):
    q = BoundedQueue(harness.machine.memory)
    harness.run_cs("q", "l", ctxt("origin"), q.push_program, (1, 1))
    harness.run_cs("q", "w", ctxt(), q.pop_program, (), use_program=q.use_program)
    edges = harness.detector.flow_edges()
    assert (ctxt("origin"), "w") in edges


def test_classifications_snapshot(harness):
    counter = SharedCounter(harness.machine.memory)
    for _ in range(harness.detector.stateful_threshold):
        harness.run_cs("c", "t", ctxt(), counter.increment_program)
    snapshot = harness.detector.classifications()
    assert snapshot["c"] == NO_FLOW_STATEFUL
