"""Tests for TransactionContext: concatenation, collapse, loop pruning."""

import pytest
from hypothesis import given, strategies as st

from repro.core.context import SynopsisRef, TransactionContext


def ctxt(*elements):
    return TransactionContext(elements)


def test_empty_context_singleton_behaviour():
    assert TransactionContext.empty().is_empty
    assert len(TransactionContext.empty()) == 0


def test_from_call_path():
    c = TransactionContext.from_call_path(("main", "accept"))
    assert c.elements == ("main", "accept")


def test_append_grows_sequence():
    c = ctxt("accept").append("read")
    assert c.elements == ("accept", "read")


def test_append_collapses_consecutive_duplicates():
    """evhB scheduled repeatedly for one long read collapses to one entry."""
    c = ctxt("accept", "read")
    assert c.append("read").elements == ("accept", "read")


def test_append_collapse_disabled_keeps_duplicates():
    c = ctxt("accept", "read")
    assert c.append("read", collapse=False, prune=False).elements == (
        "accept",
        "read",
        "read",
    )


def test_loop_pruning_persistent_connection():
    """Paper's example: [accept, read, write] + read prunes to [accept, read]."""
    c = ctxt("accept", "read", "write")
    pruned = c.append("read")
    assert pruned.elements == ("accept", "read")


def test_loop_pruning_stabilises_over_many_requests():
    """A persistent connection cycling read/write reaches a fixed point."""
    c = ctxt("accept")
    seen = set()
    for _ in range(10):
        c = c.append("read")
        seen.add(c.elements)
        c = c.append("write")
        seen.add(c.elements)
    assert seen == {("accept", "read"), ("accept", "read", "write")}


def test_prune_disabled_grows_history():
    c = ctxt("accept", "read", "write")
    grown = c.append("read", prune=False)
    assert grown.elements == ("accept", "read", "write", "read")


def test_append_memo_is_bounded():
    """High-cardinality appends (per-request ids) must not pin unbounded
    derived contexts to a long-lived root via the append memo."""
    from repro.core.context import _APPEND_MEMO_MAX

    c = ctxt("accept")
    for index in range(_APPEND_MEMO_MAX * 4):
        result = c.append(f"req-{index}")
        assert result.elements == ("accept", f"req-{index}")
    assert len(c._appends) <= _APPEND_MEMO_MAX
    # Cached appends still hit the memo and stay correct past the cap.
    assert c.append("req-0") is c._appends[("req-0", True, True)]


def test_concat_orders_elements():
    assert ctxt("a", "b").concat(ctxt("c")).elements == ("a", "b", "c")


def test_concat_with_empty_is_identity():
    c = ctxt("a", "b")
    assert c.concat(TransactionContext.empty()) is c
    assert TransactionContext.empty().concat(c) is c


def test_extend_path():
    c = ctxt("syn").extend_path(("main", "handler"))
    assert c.elements == ("syn", "main", "handler")


def test_extend_path_empty_is_identity():
    c = ctxt("a")
    assert c.extend_path(()) is c


def test_starts_with():
    c = ctxt("a", "b", "c")
    assert c.starts_with(ctxt("a", "b"))
    assert c.starts_with(TransactionContext.empty())
    assert not c.starts_with(ctxt("b"))
    assert not ctxt("a").starts_with(c)


def test_equality_and_hash():
    assert ctxt("a", "b") == ctxt("a", "b")
    assert hash(ctxt("a", "b")) == hash(ctxt("a", "b"))
    assert ctxt("a") != ctxt("b")
    assert ctxt("a") != "a"


def test_contexts_usable_as_dict_keys():
    d = {ctxt("a"): 1, ctxt("a", "b"): 2}
    assert d[ctxt("a")] == 1
    assert d[ctxt("a", "b")] == 2


def test_synopsis_ref_equality():
    assert SynopsisRef("web", 3) == SynopsisRef("web", 3)
    assert SynopsisRef("web", 3) != SynopsisRef("db", 3)
    assert SynopsisRef("web", 3) != SynopsisRef("web", 4)


def test_synopsis_ref_bounds():
    SynopsisRef("web", 0)
    SynopsisRef("web", 0xFFFFFFFF)
    with pytest.raises(ValueError):
        SynopsisRef("web", -1)
    with pytest.raises(ValueError):
        SynopsisRef("web", 2**32)


def test_context_with_synopsis_ref_elements():
    ref = SynopsisRef("web", 7)
    c = TransactionContext((ref,)).extend_path(("main", "query"))
    assert c.elements[0] == ref
    assert c.elements[1:] == ("main", "query")


# ----------------------------------------------------------------------
# Property-based tests on normalisation laws
# ----------------------------------------------------------------------
elements = st.sampled_from(["accept", "read", "write", "cache", "miss"])


@given(st.lists(elements, max_size=30))
def test_no_consecutive_duplicates_after_appends(seq):
    c = TransactionContext.empty()
    for e in seq:
        c = c.append(e)
    assert all(a != b for a, b in zip(c.elements, c.elements[1:]))


@given(st.lists(elements, max_size=30))
def test_all_elements_distinct_after_pruning_appends(seq):
    """Loop pruning guarantees each element appears at most once."""
    c = TransactionContext.empty()
    for e in seq:
        c = c.append(e)
    assert len(set(c.elements)) == len(c.elements)


@given(st.lists(elements, max_size=30))
def test_last_appended_element_is_suffix_or_absorbed(seq):
    c = TransactionContext.empty()
    for e in seq:
        c = c.append(e)
        assert c.elements[-1] == e


@given(st.lists(elements, max_size=15), st.lists(elements, max_size=15))
def test_concat_associative(a, b):
    ca, cb = TransactionContext(a), TransactionContext(b)
    cc = TransactionContext(["x"])
    left = ca.concat(cb).concat(cc)
    right = ca.concat(cb.concat(cc))
    assert left == right


@given(st.lists(elements, max_size=20))
def test_append_idempotent_on_duplicates(seq):
    """Appending the same element twice in a row equals appending once."""
    c = TransactionContext.empty()
    for e in seq:
        once = c.append(e)
        twice = once.append(e)
        assert once == twice
        c = once
