"""Property-based tests of the flow-detection algorithm.

Random interleavings of pushes and pops over the VM-backed queue must
always satisfy the paper's correctness property: every consumption
returns the transaction context of the push that stored that element,
and the queue lock is classified as flow, never as allocator.
"""

from hypothesis import given, settings, strategies as st

from repro.core.context import TransactionContext
from repro.core.flow import FLOW, FlowDetector, NO_FLOW_ALLOCATOR
from repro.vm import Emulator, Machine
from repro.vm.emulator import DIRECT
from repro.vm.programs import BoundedQueue, FreeListAllocator


def ctxt(*elements):
    return TransactionContext(elements)


class QueueHarness:
    def __init__(self):
        self.machine = Machine()
        self.emulator = Emulator()
        self.detector = FlowDetector()
        self.queue = BoundedQueue(self.machine.memory, capacity=64)
        self.lock = "q"
        self.model = []  # python-side mirror of queue contents

    def push(self, thread, tag):
        context = ctxt("push", str(tag))
        self.machine.registers(thread).load_arguments(100 + tag, 200 + tag)
        cs = self.detector.enter_cs(self.lock, thread, context)
        self.emulator.run(self.queue.push_program, self.machine, thread, hooks=cs)
        self.detector.exit_cs(cs)
        self.model.append((100 + tag, context))

    def pop(self, thread):
        cs = self.detector.enter_cs(self.lock, thread, ctxt())
        self.emulator.run(self.queue.pop_program, self.machine, thread, hooks=cs)
        window = self.detector.exit_cs(cs)
        self.emulator.run(self.queue.use_program, self.machine, thread, hooks=window)
        sd = self.machine.registers(thread).read(0)
        return sd, window.consumed


# Operations: (kind, thread index, tag)
operations = st.lists(
    st.tuples(
        st.sampled_from(["push", "pop"]),
        st.integers(0, 3),
        st.integers(0, 99),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(operations)
def test_every_consumption_returns_the_pushers_context(ops):
    harness = QueueHarness()
    producers = set()
    for kind, thread_index, tag in ops:
        thread = f"t{thread_index}"
        if kind == "push":
            if len(harness.model) >= 60:
                continue
            harness.push(thread, tag)
            producers.add(thread)
        else:
            if not harness.model:
                continue
            expected_sd, expected_ctxt = harness.model.pop()  # LIFO
            sd, consumed = harness.pop(thread)
            assert sd == expected_sd
            if consumed and thread not in producers:
                # The handed-over context is exactly the push context.
                assert consumed[0].context == expected_ctxt
    roles = harness.detector.roles.for_lock(harness.lock)
    # The queue lock must never be classified as an allocator unless a
    # thread really did both push and pop.
    if roles.classification == NO_FLOW_ALLOCATOR:
        assert roles.producers & roles.consumers


@settings(max_examples=40, deadline=None)
@given(operations)
def test_distinct_producer_consumer_threads_classify_flow(ops):
    """When pushes come only from t0/t1 and pops only from t2/t3, any

    classification must be flow (or undecided), never no-flow."""
    harness = QueueHarness()
    did_consume = False
    for kind, thread_index, tag in ops:
        if kind == "push":
            if len(harness.model) >= 60:
                continue
            harness.push(f"p{thread_index % 2}", tag)
        else:
            if not harness.model:
                continue
            harness.model.pop()
            _, consumed = harness.pop(f"c{thread_index % 2}")
            did_consume = did_consume or bool(consumed)
    roles = harness.detector.roles.for_lock(harness.lock)
    assert roles.classification in (None, FLOW)
    if did_consume:
        assert roles.classification == FLOW


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, 3), min_size=2, max_size=30),
)
def test_allocator_never_classified_flow_permanently(thread_sequence):
    """Alloc/free cycles from arbitrary threads must end no-flow (or

    transiently undecided/flow before the lists first intersect)."""
    machine = Machine()
    emulator = Emulator()
    detector = FlowDetector()
    allocator = FreeListAllocator(machine.memory, blocks=8)
    lock = "alloc"

    for i, thread_index in enumerate(thread_sequence):
        thread = f"t{thread_index}"
        if detector.mode_for(lock) == DIRECT:
            break
        cs = detector.enter_cs(lock, thread, ctxt("tx", str(i)))
        emulator.run(allocator.alloc_program, machine, thread, hooks=cs)
        window = detector.exit_cs(cs)
        emulator.run(allocator.use_program, machine, thread, hooks=window)
        block = machine.registers(thread).read(0)
        if block:
            cs = detector.enter_cs(lock, thread, ctxt("tx", str(i)))
            machine.registers(thread).load_arguments(block)
            emulator.run(allocator.free_program, machine, thread, hooks=cs)
            detector.exit_cs(cs)

    roles = detector.roles.for_lock(lock)
    distinct = len(set(thread_sequence))
    if roles.classification == NO_FLOW_ALLOCATOR:
        assert roles.producers & roles.consumers
    # With a single thread, consumption never fires (writer == reader),
    # so the lock can never be classified flow.
    if distinct == 1:
        assert roles.classification in (None,)
