"""Tests for the Calling Context Tree."""

import pytest
from hypothesis import given, strategies as st

from repro.core.cct import CallingContextTree


def test_record_sample_creates_path_nodes():
    cct = CallingContextTree()
    cct.record_sample(("main", "foo", "bar"), 2.0)
    assert cct.weight_of(("main", "foo", "bar")) == 2.0
    assert cct.weight_of(("main", "foo")) == 0.0


def test_samples_accumulate_on_same_path():
    cct = CallingContextTree()
    cct.record_sample(("main", "foo"), 1.0)
    cct.record_sample(("main", "foo"), 2.5)
    assert cct.weight_of(("main", "foo")) == 3.5


def test_sibling_paths_are_distinct_nodes():
    cct = CallingContextTree()
    cct.record_sample(("main", "foo"), 1.0)
    cct.record_sample(("main", "bar"), 2.0)
    assert cct.weight_of(("main", "foo")) == 1.0
    assert cct.weight_of(("main", "bar")) == 2.0


def test_same_procedure_in_different_contexts_is_distinct():
    """The defining property of call-path profiling vs call-graph."""
    cct = CallingContextTree()
    cct.record_sample(("main", "foo", "sort"), 1.0)
    cct.record_sample(("main", "bar", "sort"), 9.0)
    assert cct.weight_of(("main", "foo", "sort")) == 1.0
    assert cct.weight_of(("main", "bar", "sort")) == 9.0
    assert cct.by_frame()["sort"] == 10.0


def test_negative_weight_rejected():
    cct = CallingContextTree()
    with pytest.raises(ValueError):
        cct.record_sample(("main",), -1.0)


def test_total_weight_sums_everything():
    cct = CallingContextTree()
    cct.record_sample(("a",), 1.0)
    cct.record_sample(("a", "b"), 2.0)
    cct.record_sample(("c",), 3.0)
    assert cct.total_weight() == pytest.approx(6.0)


def test_inclusive_weight_of_subtree():
    cct = CallingContextTree()
    cct.record_sample(("main",), 1.0)
    cct.record_sample(("main", "foo"), 2.0)
    cct.record_sample(("main", "foo", "bar"), 4.0)
    cct.record_sample(("other",), 8.0)
    assert cct.inclusive_weight_of(("main",)) == pytest.approx(7.0)
    assert cct.inclusive_weight_of(("main", "foo")) == pytest.approx(6.0)


def test_lookup_missing_path():
    cct = CallingContextTree()
    cct.record_sample(("main",), 1.0)
    assert cct.lookup(("nope",)) is None
    assert cct.weight_of(("nope",)) == 0.0
    assert cct.inclusive_weight_of(("nope",)) == 0.0


def test_flatten_returns_only_sampled_paths():
    cct = CallingContextTree()
    cct.record_sample(("main", "foo"), 1.0)
    cct.record_sample(("main", "foo", "bar"), 2.0)
    flat = cct.flatten()
    assert flat == {("main", "foo"): 1.0, ("main", "foo", "bar"): 2.0}


def test_node_path_round_trip():
    cct = CallingContextTree()
    node = cct.record_sample(("a", "b", "c"), 1.0)
    assert node.path() == ("a", "b", "c")


def test_record_call_counts():
    cct = CallingContextTree()
    cct.record_call(("main", "foo"))
    cct.record_call(("main", "foo"))
    assert cct.lookup(("main", "foo")).call_count == 2
    assert cct.total_weight() == 0.0


def test_merge_accumulates_weights_and_counts():
    a = CallingContextTree("A")
    b = CallingContextTree("B")
    a.record_sample(("main", "x"), 1.0)
    b.record_sample(("main", "x"), 2.0)
    b.record_sample(("main", "y"), 3.0)
    b.record_call(("main", "x"))
    a.merge(b)
    assert a.weight_of(("main", "x")) == 3.0
    assert a.weight_of(("main", "y")) == 3.0
    assert a.lookup(("main", "x")).call_count == 1


def test_copy_is_independent():
    a = CallingContextTree("A")
    a.record_sample(("p",), 1.0)
    clone = a.copy()
    clone.record_sample(("p",), 5.0)
    assert a.weight_of(("p",)) == 1.0
    assert clone.weight_of(("p",)) == 6.0
    assert clone.label == "A"


def test_label_annotation():
    cct = CallingContextTree(("web", "accept"))
    assert cct.label == ("web", "accept")


def test_node_count():
    cct = CallingContextTree()
    cct.record_sample(("a", "b"), 1.0)
    cct.record_sample(("a", "c"), 1.0)
    assert cct.node_count() == 3


def test_walk_visits_children_sorted():
    cct = CallingContextTree()
    cct.record_sample(("b",), 1.0)
    cct.record_sample(("a",), 1.0)
    names = [n.name for n in cct.root.walk()]
    assert names == ["<root>", "a", "b"]


# ----------------------------------------------------------------------
# Property-based: sample conservation
# ----------------------------------------------------------------------
paths = st.lists(
    st.lists(st.sampled_from("pqrs"), min_size=1, max_size=4).map(tuple),
    min_size=1,
    max_size=30,
)
weights = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@given(paths, st.data())
def test_total_weight_equals_sum_of_recorded(paths_list, data):
    cct = CallingContextTree()
    total = 0.0
    for path in paths_list:
        w = data.draw(weights)
        cct.record_sample(path, w)
        total += w
    assert cct.total_weight() == pytest.approx(total)


@given(paths)
def test_flatten_preserves_total(paths_list):
    cct = CallingContextTree()
    for path in paths_list:
        cct.record_sample(path, 1.0)
    assert sum(cct.flatten().values()) == pytest.approx(cct.total_weight())


@given(paths)
def test_merge_preserves_total(paths_list):
    a = CallingContextTree()
    b = CallingContextTree()
    for i, path in enumerate(paths_list):
        (a if i % 2 else b).record_sample(path, 1.0)
    expected = a.total_weight() + b.total_weight()
    a.merge(b)
    assert a.total_weight() == pytest.approx(expected)


# ----------------------------------------------------------------------
# Deep call paths: the tree operations are iterative and must tolerate
# paths far beyond the interpreter's recursion limit.
# ----------------------------------------------------------------------
DEEP = 10_000


def _deep_tree(depth=DEEP, weight=1.0):
    cct = CallingContextTree()
    path = tuple(f"f{level}" for level in range(depth))
    cct.record_sample(path, weight)
    return cct, path


def test_deep_tree_subtree_weight_no_recursion_error():
    cct, path = _deep_tree()
    assert cct.total_weight() == 1.0
    assert cct.inclusive_weight_of(path[:1]) == 1.0


def test_deep_tree_walk_and_flatten_no_recursion_error():
    cct, path = _deep_tree()
    assert cct.node_count() == DEEP
    flat = cct.flatten()
    assert flat == {path: 1.0}


def test_deep_tree_merge_and_copy_no_recursion_error():
    a, path = _deep_tree(weight=1.0)
    b, _ = _deep_tree(weight=2.0)
    a.merge(b)
    assert a.weight_of(path) == 3.0
    clone = a.copy()
    assert clone.weight_of(path) == 3.0


def test_deep_tree_persist_encoding_is_iterative():
    from repro.core.cct import CCTNode
    from repro.core.persist import _decode_cct_node, _encode_cct_node

    cct, path = _deep_tree(depth=5_000)
    encoded = _encode_cct_node(cct.root)
    rebuilt_root = CCTNode("<root>")
    _decode_cct_node(rebuilt_root, encoded)
    rebuilt = CallingContextTree()
    rebuilt.root = rebuilt_root
    assert rebuilt.weight_of(path[:5_000]) == 1.0
