"""Partial stitching: graceful degradation after crash amnesia."""

import pytest

from repro.core.context import SynopsisRef, TransactionContext, UnresolvedRef
from repro.core.profiler import ProfilerMode, StageRuntime
from repro.core.stitch import (
    StitchError,
    StitchStats,
    flow_graph,
    resolve_context,
    stitch_profiles,
)


def ctxt(*elements):
    return TransactionContext(elements)


def _two_stages_with_dangling_ref():
    """web -> db where db's label references a synopsis web has lost."""
    web = StageRuntime("web", mode=ProfilerMode.WHODUNIT)
    db = StageRuntime("db", mode=ProfilerMode.WHODUNIT)
    value = web.synopses.synopsis(ctxt("main", "foo"))
    label = TransactionContext((SynopsisRef("web", value),))
    db.cct_for(label).record_sample(("svc_run",), 5.0)
    web.cct_for(ctxt()).record_sample(("main",), 3.0)
    # Crash amnesia: the mapping is gone, the reference dangles.
    web.synopses.clear_mappings()
    return web, db, value


def test_strict_resolution_still_raises():
    web, db, _ = _two_stages_with_dangling_ref()
    with pytest.raises(KeyError):
        stitch_profiles([web, db], strict=True)


def test_non_strict_keeps_weight_under_unresolved_placeholder():
    web, db, value = _two_stages_with_dangling_ref()
    profile = stitch_profiles([web, db], strict=False)
    assert profile.synopsis_refs == 1
    assert profile.unresolved_refs == 1
    assert profile.completeness == 0.0
    contexts = profile.contexts_of("db")
    assert len(contexts) == 1
    placeholder = contexts[0].elements[0]
    assert isinstance(placeholder, UnresolvedRef)
    assert placeholder.origin == "web"
    assert placeholder.value == value
    assert repr(placeholder) == f"<unresolved:web:{value:#010x}>"
    # The weight survived: nothing was silently discarded.
    assert profile.cct("db", contexts[0]).total_weight() == 5.0
    assert profile.stage_weight("web") == 3.0


def test_unknown_stage_reference_degrades_non_strict():
    stats = StitchStats()
    context = TransactionContext((SynopsisRef("ghost", 42), "local"))
    resolved = resolve_context(context, {}, strict=False, stats=stats)
    assert isinstance(resolved.elements[0], UnresolvedRef)
    assert resolved.elements[1] == "local"
    assert stats.attempted == 1
    assert stats.unresolved == 1
    with pytest.raises(StitchError):
        resolve_context(context, {}, strict=True)


def test_completeness_mixes_resolved_and_unresolved():
    web, db, _ = _two_stages_with_dangling_ref()
    # A second, resolvable reference from another tier.
    squid = StageRuntime("squid", mode=ProfilerMode.WHODUNIT)
    good = squid.synopses.synopsis(ctxt("proxy_main"))
    label = TransactionContext((SynopsisRef("squid", good),))
    db.cct_for(label).record_sample(("svc_run",), 2.0)
    profile = stitch_profiles([web, db, squid], strict=False)
    assert profile.synopsis_refs == 2
    assert profile.unresolved_refs == 1
    assert profile.completeness == 0.5


def test_lossless_profile_reports_full_completeness():
    web = StageRuntime("web", mode=ProfilerMode.WHODUNIT)
    db = StageRuntime("db", mode=ProfilerMode.WHODUNIT)
    value = web.synopses.synopsis(ctxt("main"))
    label = TransactionContext((SynopsisRef("web", value),))
    db.cct_for(label).record_sample(("svc",), 1.0)
    profile = stitch_profiles([web, db], strict=False)
    assert profile.unresolved_refs == 0
    assert profile.completeness == 1.0
    # An empty profile stitched *nothing*: 0.0, not vacuously complete
    # (an all-dropped fault run must not report a perfect stitch).
    assert stitch_profiles([], strict=False).completeness == 0.0


def test_flow_graph_drops_unresolvable_edges_non_strict():
    web, db, _ = _two_stages_with_dangling_ref()
    with pytest.raises(KeyError):
        flow_graph([web, db], strict=True)
    assert flow_graph([web, db], strict=False) == []


def test_stitch_stats_completeness_property():
    stats = StitchStats()
    assert stats.completeness == 1.0
    stats.attempted = 4
    stats.unresolved = 1
    assert stats.completeness == 0.75


def test_render_announces_partial_stitch_only_when_lossy():
    from repro.analysis import render_stitched_profile

    web, db, _ = _two_stages_with_dangling_ref()
    partial = stitch_profiles([web, db], strict=False)
    text = render_stitched_profile(partial)
    assert "partial stitch: 1 of 1" in text
    assert "completeness 0.0%" in text

    # A clean profile renders without the partial-stitch banner —
    # byte-identical to the pre-fault-injection output.
    clean_web = StageRuntime("web2", mode=ProfilerMode.WHODUNIT)
    clean_web.cct_for(ctxt()).record_sample(("main",), 3.0)
    clean = stitch_profiles([clean_web])
    assert "partial stitch" not in render_stitched_profile(clean)
