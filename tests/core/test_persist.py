"""Tests for profile persistence (dump to disk, stitch post-mortem)."""

import io
import json

import pytest
from hypothesis import given, strategies as st

from repro.core.context import SynopsisRef, TransactionContext
from repro.core.persist import (
    decode_context,
    decode_stage,
    encode_context,
    encode_stage,
    load_and_stitch,
    load_stage,
    save_stage,
)
from repro.core.profiler import LOCAL, ProfilerMode, StageRuntime


def ctxt(*elements):
    return TransactionContext(elements)


def make_stage():
    stage = StageRuntime("web", mode=ProfilerMode.WHODUNIT, sampling_hz=500.0)
    stage.cct_for(LOCAL).record_sample(("main", "accept"), 12.5)
    flow = stage.cct_for(ctxt("listener", "push"))
    flow.record_sample(("main", "worker"), 30.0)
    flow.record_call(("main", "worker"))
    stage.synopses.synopsis(ctxt("main", "send"))
    stage.crosstalk.record("B", "A", 0.07)
    stage.account_message(1000, 4)
    return stage


def test_context_round_trip():
    context = ctxt("a", SynopsisRef("web", 7), "b")
    assert decode_context(encode_context(context)) == context


def test_unencodable_element_rejected():
    with pytest.raises(TypeError):
        encode_context(TransactionContext((42,)))


def test_bad_encoded_element_rejected():
    with pytest.raises(ValueError):
        decode_context([{"bogus": 1}])


def test_stage_round_trip_preserves_profile():
    stage = make_stage()
    clone = decode_stage(encode_stage(stage))
    assert clone.name == "web"
    assert clone.mode == ProfilerMode.WHODUNIT
    assert clone.sampling_hz == 500.0
    assert clone.total_weight() == pytest.approx(stage.total_weight())
    flow = clone.ccts[ctxt("listener", "push")]
    assert flow.weight_of(("main", "worker")) == 30.0
    assert flow.lookup(("main", "worker")).call_count == 1
    assert clone.synopses.lookup(ctxt("main", "send")) == stage.synopses.lookup(
        ctxt("main", "send")
    )
    assert clone.crosstalk.mean_wait("B", "A") == pytest.approx(0.07)
    assert clone.comm_data_bytes == 1000


def test_dump_is_plain_json():
    buffer = io.StringIO()
    save_stage(make_stage(), buffer)
    data = json.loads(buffer.getvalue())
    assert data["version"] == 1
    assert data["name"] == "web"


def test_save_load_file(tmp_path):
    path = str(tmp_path / "web.profile.json")
    save_stage(make_stage(), path)
    clone = load_stage(path)
    assert clone.name == "web"


def test_unsupported_version_rejected():
    data = encode_stage(make_stage())
    data["version"] = 99
    with pytest.raises(ValueError):
        decode_stage(data)


def test_presentation_phase_stitches_from_files(tmp_path):
    """The paper's workflow: stages dump independently; stitch later."""
    web = StageRuntime("web")
    db = StageRuntime("db")
    send_ctxt = ctxt("main", "foo", "send")
    syn = web.synopses.synopsis(send_ctxt)
    web.cct_for(LOCAL).record_sample(("main", "foo"), 10.0)
    db.cct_for(ctxt(SynopsisRef("web", syn))).record_sample(("svc", "sort"), 40.0)

    web_path = str(tmp_path / "web.json")
    db_path = str(tmp_path / "db.json")
    save_stage(web, web_path)
    save_stage(db, db_path)

    profile = load_and_stitch([web_path, db_path])
    assert profile.cct("db", send_ctxt).weight_of(("svc", "sort")) == 40.0


# ----------------------------------------------------------------------
# Property: arbitrary CCT shapes survive the round trip
# ----------------------------------------------------------------------
paths = st.lists(
    st.lists(st.sampled_from("abcd"), min_size=1, max_size=4).map(tuple),
    min_size=1,
    max_size=20,
)


@given(paths)
def test_round_trip_arbitrary_trees(path_list):
    stage = StageRuntime("s")
    cct = stage.cct_for(ctxt("x"))
    for i, path in enumerate(path_list):
        cct.record_sample(path, float(i + 1))
    clone = decode_stage(encode_stage(stage))
    assert clone.ccts[ctxt("x")].flatten() == cct.flatten()
