"""Tests for the call-path value helpers."""

import pytest

from repro.core.callpath import (
    EMPTY_PATH,
    common_prefix,
    format_path,
    is_prefix,
    make_path,
)


def test_make_path_builds_tuple():
    assert make_path("main", "foo", "send") == ("main", "foo", "send")


def test_make_path_rejects_empty_frames():
    with pytest.raises(ValueError):
        make_path("main", "")


def test_make_path_rejects_non_strings():
    with pytest.raises(ValueError):
        make_path("main", 3)


def test_empty_path_constant():
    assert EMPTY_PATH == ()


def test_is_prefix_true_cases():
    assert is_prefix((), ("a", "b"))
    assert is_prefix(("a",), ("a", "b"))
    assert is_prefix(("a", "b"), ("a", "b"))


def test_is_prefix_false_cases():
    assert not is_prefix(("b",), ("a", "b"))
    assert not is_prefix(("a", "b", "c"), ("a", "b"))


def test_common_prefix():
    assert common_prefix(("a", "b", "c"), ("a", "b", "d")) == ("a", "b")
    assert common_prefix(("x",), ("y",)) == ()
    assert common_prefix((), ("a",)) == ()


def test_format_path():
    assert format_path(("main", "foo")) == "main > foo"
    assert format_path(()) == "<empty>"
