"""Algebraic properties of :meth:`StitchedProfile.merge`.

The parallel presentation phase and the live collector both lean on
``merge`` behaving like a well-defined fold: merging with an empty
profile is the identity, and — when the weights are exactly
representable so float addition cannot re-associate — any order and
any grouping of the same contributions produce byte-identical
canonical output.  Weights here are dyadic rationals (``k / 8`` with
small ``k``), for which IEEE-754 addition is exact, so the properties
hold *bitwise*, which is what :func:`canonical_profile_bytes` checks.
(Arbitrary float weights need the Shewchuk accumulator in
``repro.parallel.reduce`` for order invariance — covered by the
parallel reduce tests.)
"""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cct import CallingContextTree
from repro.core.context import TransactionContext
from repro.core.stitch import StitchedProfile
from repro.parallel import canonical_profile_bytes

_STAGES = ("web", "app", "db")
_FRAMES = ("main", "accept", "parse", "service", "query", "sort")
_CONTEXTS = (
    ("main", "get"),
    ("main", "post"),
    ("main", "get", "query"),
)


def _digest(profile: StitchedProfile) -> str:
    return hashlib.sha256(canonical_profile_bytes(profile)).hexdigest()


# One sample: which (stage, context) entry it lands in, its call path,
# and an exactly-representable dyadic weight.
_sample = st.tuples(
    st.sampled_from(_STAGES),
    st.sampled_from(_CONTEXTS),
    st.lists(st.sampled_from(_FRAMES), min_size=1, max_size=4),
    st.integers(min_value=1, max_value=64).map(lambda k: k / 8.0),
)


def _build(samples, refs=(0, 0)) -> StitchedProfile:
    profile = StitchedProfile()
    trees = {}
    for stage, context, path, weight in samples:
        key = (stage, TransactionContext(context))
        cct = trees.get(key)
        if cct is None:
            cct = trees[key] = CallingContextTree(key[1])
        cct.record_sample(tuple(path), weight)
    for (stage, context), cct in trees.items():
        profile.add(stage, context, cct)
    profile.synopsis_refs, profile.unresolved_refs = refs
    return profile


_profile = st.tuples(
    st.lists(_sample, max_size=12),
    st.tuples(
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=5),
    ),
).map(lambda pair: _build(pair[0], pair[1]))


@settings(max_examples=60, deadline=None)
@given(_profile)
def test_merge_with_empty_is_identity(profile):
    before = _digest(profile)
    profile.merge(StitchedProfile())
    assert _digest(profile) == before
    empty = StitchedProfile()
    empty.merge(profile)
    assert _digest(empty) == before
    assert empty.synopsis_refs == profile.synopsis_refs
    assert empty.unresolved_refs == profile.unresolved_refs


@settings(max_examples=60, deadline=None)
@given(_profile, _profile)
def test_merge_is_commutative(a, b):
    ab = StitchedProfile()
    ab.merge(a)
    ab.merge(b)
    ba = StitchedProfile()
    ba.merge(b)
    ba.merge(a)
    assert _digest(ab) == _digest(ba)
    assert ab.synopsis_refs == ba.synopsis_refs
    assert ab.unresolved_refs == ba.unresolved_refs


@settings(max_examples=40, deadline=None)
@given(
    st.lists(_profile, min_size=3, max_size=5),
    st.randoms(use_true_random=False),
)
def test_merge_is_associative_over_shuffled_folds(profiles, rng):
    """Any permutation and any grouping of the same shard profiles
    yields identical canonical bytes (shard order must not matter)."""
    flat = StitchedProfile()
    for profile in profiles:
        flat.merge(profile)
    reference = _digest(flat)

    shuffled = list(profiles)
    rng.shuffle(shuffled)
    refold = StitchedProfile()
    for profile in shuffled:
        refold.merge(profile)
    assert _digest(refold) == reference

    # A different association: fold pairwise into groups, then fold
    # the groups — the hierarchical reduce shape.
    split = max(1, len(shuffled) // 2)
    left, right = StitchedProfile(), StitchedProfile()
    for profile in shuffled[:split]:
        left.merge(profile)
    for profile in shuffled[split:]:
        right.merge(profile)
    grouped = StitchedProfile()
    grouped.merge(left)
    grouped.merge(right)
    assert _digest(grouped) == reference


def test_merge_does_not_alias_source_trees():
    """merge() must deep-copy on first insertion: mutating the merged
    result later must not corrupt the contributing profile."""
    source = _build([("db", ("main", "get"), ["main", "query"], 1.0)])
    before = _digest(source)
    merged = StitchedProfile()
    merged.merge(source)
    for cct in merged.entries.values():
        cct.record_sample(("main", "query", "sort"), 2.0)
    assert _digest(source) == before
