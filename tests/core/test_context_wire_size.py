"""Tests for context wire-size accounting (synopsis ablation support)."""

import pytest

from repro.core.context import SynopsisRef, TransactionContext


def test_wire_size_strings():
    c = TransactionContext(("accept", "read"))
    assert c.wire_size() == len("accept") + 1 + len("read") + 1


def test_wire_size_refs_cost_four_bytes():
    c = TransactionContext((SynopsisRef("web", 9), "svc"))
    assert c.wire_size() == 4 + len("svc") + 1


def test_wire_size_empty():
    assert TransactionContext.empty().wire_size() == 0


def test_wire_size_grows_with_depth():
    shallow = TransactionContext(("a",))
    deep = shallow
    for name in ["handler" + str(i) for i in range(10)]:
        deep = deep.append(name)
    assert deep.wire_size() > 10 * shallow.wire_size()
