"""Tests for transaction crosstalk measurement (§6)."""

import pytest

from repro.core.context import TransactionContext
from repro.core.crosstalk import CrosstalkRecorder, PairStats
from repro.sim import Acquire, Delay, Kernel, Mutex, Release


def test_pair_stats_accumulate():
    stats = PairStats()
    stats.add(1.0)
    stats.add(3.0)
    assert stats.count == 2
    assert stats.total == 4.0
    assert stats.mean == 2.0
    assert stats.max == 3.0


def test_empty_pair_stats_mean_zero():
    assert PairStats().mean == 0.0


def test_record_aggregates_by_ordered_pair():
    recorder = CrosstalkRecorder()
    recorder.record("B", "A", 2.0)
    recorder.record("B", "A", 4.0)
    recorder.record("A", "B", 1.0)
    assert recorder.mean_wait("B", "A") == 3.0
    assert recorder.mean_wait("A", "B") == 1.0
    assert recorder.mean_wait("A", "C") == 0.0


def test_by_waiter_totals():
    recorder = CrosstalkRecorder()
    recorder.record("B", "A", 2.0)
    recorder.record("B", "C", 3.0)
    assert recorder.total_wait_of("B") == 5.0
    assert recorder.total_wait_of("A") == 0.0


def test_pair_table_sorted_by_impact():
    recorder = CrosstalkRecorder()
    recorder.record("light", "x", 0.001)
    for _ in range(10):
        recorder.record("heavy", "y", 1.0)
    rows = recorder.pair_table()
    assert rows[0][0] == "heavy"
    assert rows[0][2] == 10


def test_classifier_maps_context_to_type():
    recorder = CrosstalkRecorder(type_of=lambda ctxt: ctxt.elements[0])
    assert recorder.classify(TransactionContext(("BestSellers", "query"))) == (
        "BestSellers"
    )
    assert recorder.classify(None) is None


def test_mutex_observation_records_holder_context():
    kernel = Kernel()
    mutex = Mutex("item-table")
    recorder = CrosstalkRecorder(type_of=lambda c: c.elements[0])
    recorder.observe(mutex)

    def holder():
        thread = yield from _current()
        thread.tran_ctxt = TransactionContext(("AdminConfirm",))
        yield Acquire(mutex)
        yield Delay(0.094)
        yield Release(mutex)

    def waiter():
        thread = yield from _current()
        thread.tran_ctxt = TransactionContext(("BuyConfirm",))
        yield Delay(0.01)
        yield Acquire(mutex)
        yield Release(mutex)

    def _current():
        from repro.sim import CurrentThread

        thread = yield CurrentThread()
        return thread

    kernel.spawn(holder())
    kernel.spawn(waiter())
    kernel.run()
    assert recorder.mean_wait("BuyConfirm", "AdminConfirm") == pytest.approx(0.084)


def test_mutex_observation_splits_wait_among_shared_holders():
    kernel = Kernel()
    mutex = Mutex("table")
    recorder = CrosstalkRecorder(type_of=lambda c: c.elements[0])
    recorder.observe(mutex)

    def reader(name, hold):
        from repro.sim import CurrentThread

        thread = yield CurrentThread()
        thread.tran_ctxt = TransactionContext((name,))
        yield Acquire(mutex, shared=True)
        yield Delay(hold)
        yield Release(mutex)

    def writer():
        from repro.sim import CurrentThread

        thread = yield CurrentThread()
        thread.tran_ctxt = TransactionContext(("AdminConfirm",))
        yield Delay(0.01)
        yield Acquire(mutex)
        yield Release(mutex)

    kernel.spawn(reader("Home", 0.05))
    kernel.spawn(reader("Search", 0.05))
    kernel.spawn(writer())
    kernel.run()
    # Writer waited 0.04s behind two readers: 0.02s attributed to each.
    assert recorder.mean_wait("AdminConfirm", "Home") == pytest.approx(0.02)
    assert recorder.mean_wait("AdminConfirm", "Search") == pytest.approx(0.02)
    assert recorder.total_wait_of("AdminConfirm") == pytest.approx(0.04)


def test_zero_wait_not_recorded():
    recorder = CrosstalkRecorder()
    recorder._on_wait(Mutex("m"), None, (), "exclusive", 0.0)
    assert recorder.events == []


def test_unknown_holder_attributed_to_none():
    recorder = CrosstalkRecorder()

    class FakeThread:
        tran_ctxt = None

    recorder._on_wait(Mutex("m"), FakeThread(), (), "exclusive", 1.5)
    assert recorder.mean_wait(None, None) == 1.5


def test_merge_combines_recorders():
    a = CrosstalkRecorder()
    b = CrosstalkRecorder()
    a.record("X", "Y", 1.0)
    b.record("X", "Y", 3.0)
    a.merge(b)
    assert a.mean_wait("X", "Y") == 2.0
    assert len(a.events) == 2


def test_event_retention_is_bounded_but_aggregates_stay_exact():
    recorder = CrosstalkRecorder(event_capacity=4)
    for index in range(10):
        recorder.record("A", "B", float(index))
    # Ring buffer keeps only the most recent events...
    assert recorder.events == [("A", "B", float(i)) for i in (6, 7, 8, 9)]
    assert recorder.event_capacity == 4
    # ...while the aggregates saw every wait.
    assert recorder.total_wait_of("A") == sum(range(10))
    assert recorder.pairs[("A", "B")].count == 10
    assert recorder.pairs[("A", "B")].max == 9.0


def test_unbounded_retention_opt_in():
    recorder = CrosstalkRecorder(event_capacity=None)
    assert recorder.event_capacity is None
    for index in range(100):
        recorder.record("A", "B", 1.0)
    assert len(recorder.events) == 100


def test_default_capacity_is_large_but_finite():
    from repro.core.crosstalk import DEFAULT_EVENT_CAPACITY

    recorder = CrosstalkRecorder()
    assert recorder.event_capacity == DEFAULT_EVENT_CAPACITY
    assert DEFAULT_EVENT_CAPACITY >= 1 << 20


def test_merge_is_exact_even_after_ring_buffer_drops():
    a = CrosstalkRecorder()
    b = CrosstalkRecorder(event_capacity=2)
    for _ in range(5):
        b.record("X", "Y", 2.0)
    a.merge(b)
    # b retained only 2 raw events but its aggregates saw all 5 waits,
    # and merge folds the aggregates, not the surviving events.
    assert a.pairs[("X", "Y")].count == 5
    assert a.total_wait_of("X") == 10.0
    assert len(a.events) == 2


def test_pair_stats_add_stats():
    a = PairStats()
    b = PairStats()
    a.add(1.0)
    b.add(5.0)
    b.add(2.0)
    a.add_stats(b)
    assert a.count == 3
    assert a.total == 8.0
    assert a.max == 5.0
