"""Tests for transaction crosstalk measurement (§6)."""

import pytest

from repro.core.context import TransactionContext
from repro.core.crosstalk import CrosstalkRecorder, PairStats
from repro.sim import Acquire, Delay, Kernel, Mutex, Release


def test_pair_stats_accumulate():
    stats = PairStats()
    stats.add(1.0)
    stats.add(3.0)
    assert stats.count == 2
    assert stats.total == 4.0
    assert stats.mean == 2.0
    assert stats.max == 3.0


def test_empty_pair_stats_mean_zero():
    assert PairStats().mean == 0.0


def test_record_aggregates_by_ordered_pair():
    recorder = CrosstalkRecorder()
    recorder.record("B", "A", 2.0)
    recorder.record("B", "A", 4.0)
    recorder.record("A", "B", 1.0)
    assert recorder.mean_wait("B", "A") == 3.0
    assert recorder.mean_wait("A", "B") == 1.0
    assert recorder.mean_wait("A", "C") == 0.0


def test_by_waiter_totals():
    recorder = CrosstalkRecorder()
    recorder.record("B", "A", 2.0)
    recorder.record("B", "C", 3.0)
    assert recorder.total_wait_of("B") == 5.0
    assert recorder.total_wait_of("A") == 0.0


def test_pair_table_sorted_by_impact():
    recorder = CrosstalkRecorder()
    recorder.record("light", "x", 0.001)
    for _ in range(10):
        recorder.record("heavy", "y", 1.0)
    rows = recorder.pair_table()
    assert rows[0][0] == "heavy"
    assert rows[0][2] == 10


def test_classifier_maps_context_to_type():
    recorder = CrosstalkRecorder(type_of=lambda ctxt: ctxt.elements[0])
    assert recorder.classify(TransactionContext(("BestSellers", "query"))) == (
        "BestSellers"
    )
    assert recorder.classify(None) is None


def test_mutex_observation_records_holder_context():
    kernel = Kernel()
    mutex = Mutex("item-table")
    recorder = CrosstalkRecorder(type_of=lambda c: c.elements[0])
    recorder.observe(mutex)

    def holder():
        thread = yield from _current()
        thread.tran_ctxt = TransactionContext(("AdminConfirm",))
        yield Acquire(mutex)
        yield Delay(0.094)
        yield Release(mutex)

    def waiter():
        thread = yield from _current()
        thread.tran_ctxt = TransactionContext(("BuyConfirm",))
        yield Delay(0.01)
        yield Acquire(mutex)
        yield Release(mutex)

    def _current():
        from repro.sim import CurrentThread

        thread = yield CurrentThread()
        return thread

    kernel.spawn(holder())
    kernel.spawn(waiter())
    kernel.run()
    assert recorder.mean_wait("BuyConfirm", "AdminConfirm") == pytest.approx(0.084)


def test_mutex_observation_splits_wait_among_shared_holders():
    kernel = Kernel()
    mutex = Mutex("table")
    recorder = CrosstalkRecorder(type_of=lambda c: c.elements[0])
    recorder.observe(mutex)

    def reader(name, hold):
        from repro.sim import CurrentThread

        thread = yield CurrentThread()
        thread.tran_ctxt = TransactionContext((name,))
        yield Acquire(mutex, shared=True)
        yield Delay(hold)
        yield Release(mutex)

    def writer():
        from repro.sim import CurrentThread

        thread = yield CurrentThread()
        thread.tran_ctxt = TransactionContext(("AdminConfirm",))
        yield Delay(0.01)
        yield Acquire(mutex)
        yield Release(mutex)

    kernel.spawn(reader("Home", 0.05))
    kernel.spawn(reader("Search", 0.05))
    kernel.spawn(writer())
    kernel.run()
    # Writer waited 0.04s behind two readers: 0.02s attributed to each.
    assert recorder.mean_wait("AdminConfirm", "Home") == pytest.approx(0.02)
    assert recorder.mean_wait("AdminConfirm", "Search") == pytest.approx(0.02)
    assert recorder.total_wait_of("AdminConfirm") == pytest.approx(0.04)


def test_zero_wait_not_recorded():
    recorder = CrosstalkRecorder()
    recorder._on_wait(Mutex("m"), None, (), "exclusive", 0.0)
    assert recorder.events == []


def test_unknown_holder_attributed_to_none():
    recorder = CrosstalkRecorder()

    class FakeThread:
        tran_ctxt = None

    recorder._on_wait(Mutex("m"), FakeThread(), (), "exclusive", 1.5)
    assert recorder.mean_wait(None, None) == 1.5


def test_merge_combines_recorders():
    a = CrosstalkRecorder()
    b = CrosstalkRecorder()
    a.record("X", "Y", 1.0)
    b.record("X", "Y", 3.0)
    a.merge(b)
    assert a.mean_wait("X", "Y") == 2.0
    assert len(a.events) == 2
