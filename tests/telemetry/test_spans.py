"""Span recorder: nesting, traces, synopsis joins, sinks, ring buffer."""

import io
import json

from repro import telemetry
from repro.telemetry.sinks import CallbackSink, CollectingSink, JsonLinesSink
from repro.telemetry.spans import SpanRecorder


def test_spans_nest_per_thread_and_inherit_trace():
    rec = SpanRecorder()
    outer = rec.begin("outer", "test", "s1", 0.0, thread=1)
    inner = rec.begin("inner", "test", "s1", 1.0, thread=1)
    other = rec.begin("elsewhere", "test", "s2", 1.0, thread=2)
    assert inner.parent_id == outer.span_id
    assert inner.trace_id == outer.trace_id
    assert other.parent_id is None
    assert other.trace_id != outer.trace_id
    rec.end(inner, 2.0)
    rec.end(outer, 3.0)
    rec.end(other, 3.0)
    assert rec.open_spans() == 0
    assert outer.duration == 3.0
    assert not outer.is_instant


def test_out_of_order_end_unwinds_the_stack():
    rec = SpanRecorder()
    outer = rec.begin("outer", "test", "s", 0.0, thread=1)
    rec.begin("inner", "test", "s", 1.0, thread=1)  # never ended explicitly
    rec.end(outer, 2.0)  # exception path: ends the outer first
    assert rec.open_spans() == 0


def test_instants_have_zero_duration():
    rec = SpanRecorder()
    span = rec.instant("evt", "test", "s", 5.0)
    assert span.is_instant
    assert span.duration == 0.0
    assert rec.completed == 1


def test_synopsis_join_links_receiver_into_sender_trace():
    rec = SpanRecorder()
    send = rec.instant("send", "channel.send", "tomcat", 1.0)
    rec.register_synopsis("tomcat", 0xDEADBEEF, send)
    hop = rec.instant("tomcat->mysql", "transaction.hop", "mysql", 1.1)
    assert rec.adopt_synopsis("tomcat", 0xDEADBEEF, hop)
    assert hop.trace_id == send.trace_id
    assert (send.trace_id, send.span_id) in hop.links
    # Both spans now group under one trace.
    assert len(rec.traces()[send.trace_id]) == 2


def test_unknown_synopsis_leaves_span_in_its_own_trace():
    rec = SpanRecorder()
    hop = rec.instant("x->y", "transaction.hop", "y", 1.0)
    before = hop.trace_id
    assert not rec.adopt_synopsis("x", 123, hop)
    assert hop.trace_id == before
    assert hop.links == []


def test_sinks_stream_spans_as_they_complete():
    rec = SpanRecorder()
    collected = CollectingSink()
    seen = []
    rec.add_sink(collected)
    rec.add_sink(CallbackSink(seen.append))
    a = rec.begin("a", "test", "s", 0.0, thread=1)
    assert collected.spans == []  # not yet complete — nothing streamed
    rec.end(a, 1.0)
    rec.instant("b", "test", "s", 2.0)
    assert [s.name for s in collected.spans] == ["a", "b"]
    assert [s.name for s in seen] == ["a", "b"]


def test_jsonlines_sink_writes_one_record_per_span():
    buffer = io.StringIO()
    rec = SpanRecorder()
    rec.add_sink(JsonLinesSink(buffer))
    send = rec.instant("send", "channel.send", "s", 1.0)
    rec.register_synopsis("s", 7, send)
    # adopt= joins the trace *before* streaming: a live consumer must
    # never see a hop record without its link.
    rec.instant("hop", "transaction.hop", "t", 2.0, adopt=("s", 7))
    lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
    assert len(lines) == 2
    assert lines[1]["links"][0]["spanId"] == f"{send.span_id:016x}"
    assert lines[0]["traceId"] == lines[1]["traceId"]


def test_ring_buffer_drops_oldest_but_counts_everything():
    rec = SpanRecorder(capacity=3)
    for i in range(5):
        rec.instant(f"s{i}", "test", None, float(i))
    assert len(rec) == 3
    assert [s.name for s in rec.spans] == ["s2", "s3", "s4"]
    assert rec.dropped == 2
    assert rec.completed == 5


def test_install_modes_and_scoped_enable():
    assert telemetry.active() is None
    with telemetry.enabled("spans") as tele:
        assert telemetry.active() is tele
        assert not tele.wants_metrics
        assert tele.rpc_requests is None
    assert telemetry.active() is None
    tele = telemetry.install("full")
    try:
        assert tele.wants_metrics
        assert tele.rpc_requests is not None
    finally:
        telemetry.uninstall()
    assert telemetry.install("off") is None


def test_admit_helper_is_noop_when_off():
    class FakeKernel:
        now = 1.0

    telemetry.uninstall()
    telemetry.admit("stage", FakeKernel())  # must not raise
    with telemetry.enabled("full") as tele:
        telemetry.admit("stage", FakeKernel(), {"k": "v"})
        (span,) = tele.spans.by_category("app.admission")
        assert span.attrs == {"k": "v"}
        counter = tele.metrics.counter("repro_requests_admitted_total", stage="stage")
        assert counter.value == 1
