"""Metrics registry and histogram bucket semantics."""

import math

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


# ----------------------------------------------------------------------
# Counters and gauges
# ----------------------------------------------------------------------
def test_counter_only_goes_up():
    c = Counter("x_total")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_moves_both_ways():
    g = Gauge("depth")
    g.set(10)
    g.dec(3)
    g.inc()
    assert g.value == 8


def test_registry_returns_same_instrument_for_same_identity():
    reg = MetricsRegistry()
    a = reg.counter("hits_total", stage="squid")
    b = reg.counter("hits_total", stage="squid")
    c = reg.counter("hits_total", stage="tomcat")
    assert a is b
    assert a is not c
    assert len(reg) == 2


def test_registry_rejects_kind_conflicts():
    reg = MetricsRegistry()
    reg.counter("thing")
    with pytest.raises(ValueError):
        reg.gauge("thing")


def test_registry_label_order_is_irrelevant():
    reg = MetricsRegistry()
    a = reg.counter("x_total", a="1", b="2")
    b = reg.counter("x_total", b="2", a="1")
    assert a is b


# ----------------------------------------------------------------------
# Histogram edge cases (the satellite checklist)
# ----------------------------------------------------------------------
def test_histogram_value_below_first_bucket():
    h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
    h.observe(0.001)
    assert h.counts == [1, 0, 0, 0]


def test_histogram_value_above_last_bucket_goes_to_overflow():
    h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
    h.observe(100.0)
    assert h.counts == [0, 0, 0, 1]
    # ... and the +Inf cumulative row still accounts for it.
    assert h.cumulative()[-1] == (math.inf, 1)


def test_histogram_boundary_value_is_inclusive():
    # Prometheus convention: le="2.0" includes observations == 2.0.
    h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
    h.observe(2.0)
    assert h.counts == [0, 1, 0, 0]
    rows = dict(h.cumulative())
    assert rows[2.0] == 1
    assert rows[1.0] == 0


def test_histogram_cumulative_rows_are_monotonic():
    h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.0, 1.5, 3.0, 9.0):
        h.observe(v)
    rows = h.cumulative()
    assert rows[-1][0] == math.inf
    counts = [c for _, c in rows]
    assert counts == sorted(counts)
    assert counts[-1] == h.count == 5
    assert h.mean == pytest.approx(sum((0.5, 1.0, 1.5, 3.0, 9.0)) / 5)


def test_histogram_merge_identical_layouts():
    a = Histogram("lat", buckets=(1.0, 2.0))
    b = Histogram("lat", buckets=(1.0, 2.0))
    a.observe(0.5)
    b.observe(1.5)
    b.observe(50.0)
    a.merge(b)
    assert a.counts == [1, 1, 1]
    assert a.count == 3
    assert a.sum == pytest.approx(52.0)


def test_histogram_merge_rejects_different_layouts():
    a = Histogram("lat", buckets=(1.0, 2.0))
    b = Histogram("lat", buckets=(1.0, 4.0))
    with pytest.raises(ValueError):
        a.merge(b)


def test_histogram_rejects_bad_bucket_layouts():
    with pytest.raises(ValueError):
        Histogram("lat", buckets=())
    with pytest.raises(ValueError):
        Histogram("lat", buckets=(1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("lat", buckets=(2.0, 1.0))


def test_default_buckets_are_strictly_increasing():
    assert all(a < b for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]))
