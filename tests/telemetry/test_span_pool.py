"""Regression tests for the SpanRecorder's evicted-shell span pool.

Spans mode allocates one Span per hop; the hot-path work recycles the
shell a bounded retention ring evicts — but only when it is provably
safe.  These tests pin the three layers of that safety contract:

1. the pool engages only with a bounded ring AND no sink that may
   retain spans past ``on_span`` (``retains_spans`` defaults to True);
2. a shell with any surviving outside handle is vetoed at pop time and
   simply dropped, never re-armed;
3. reuse is field-clean — no name/attrs/links bleed between the shell's
   lives, even for the lazily-materialised attrs/links.
"""

import json

from repro.telemetry.sinks import CollectingSink, JsonLinesSink
from repro.telemetry.spans import SpanRecorder


def _fill(recorder, n, start=0):
    for i in range(start, start + n):
        recorder.instant(f"ev-{i}", "test", "stage", float(i))


def test_pool_disabled_without_a_bounded_ring():
    recorder = SpanRecorder(capacity=None)
    _fill(recorder, 50)
    assert recorder._span_pool == []
    assert recorder.dropped == 0


def test_evicted_shell_is_recycled_field_clean():
    recorder = SpanRecorder(capacity=2)
    first = recorder.instant(
        "dirty", "test", "stage-a", 0.0, attrs={"size": 99}
    )
    first.links.append((7, 7))  # materialise links in the first life
    first_id = id(first)
    del first  # drop our handle so the eviction can pool the shell
    _fill(recorder, 2, start=1)  # ring now [ev-1, ev-2]; "dirty" evicted
    pool = recorder._span_pool
    assert len(pool) == 1
    assert id(pool[-1]) == first_id

    reused = recorder.instant("clean", "test", "stage-b", 5.0)
    assert id(reused) == first_id, "instant() should re-arm the shell"
    assert reused.name == "clean"
    assert reused.stage == "stage-b"
    assert reused.start == 5.0
    assert reused.end == 5.0
    assert reused.parent_id is None
    # Lazy attrs/links reset to unmaterialised — the first life's dict
    # and list are gone, not shared.
    assert reused._attrs is None
    assert reused._links is None
    assert reused.attrs == {}
    assert reused.links == []
    # Span ids keep increasing across reuse: no id aliasing.
    assert reused.span_id > 3


def test_surviving_handle_vetoes_recycling():
    recorder = SpanRecorder(capacity=2)
    held = recorder.instant("held", "test", "stage", 0.0, attrs={"k": "v"})
    _fill(recorder, 4, start=1)  # evicts "held" (and one more)
    assert all(span is not held for span in recorder._span_pool)
    # The held span still reads exactly as recorded.
    assert held.name == "held"
    assert held.attrs == {"k": "v"}
    assert held.start == 0.0


def test_retaining_sink_disables_the_pool():
    recorder = SpanRecorder(capacity=2)
    assert recorder._recycle is True  # bounded ring, no sinks
    keeper = CollectingSink()  # retains_spans defaults to True
    recorder.add_sink(keeper)
    assert recorder._recycle is False
    _fill(recorder, 10)
    assert recorder._span_pool == []
    # Every span the retaining sink collected is intact and distinct.
    names = [span.name for span in keeper.spans]
    assert names == [f"ev-{i}" for i in range(10)]
    recorder.detach_sink(keeper)
    assert recorder._recycle is True


def test_streaming_sink_output_is_unaffected_by_recycling(tmp_path):
    path = tmp_path / "spans.jsonl"
    recorder = SpanRecorder(capacity=4)
    sink = JsonLinesSink(str(path))
    recorder.add_sink(sink)
    assert recorder._recycle is True  # JsonLinesSink declares no retention
    _fill(recorder, 64)
    assert recorder._span_pool, "recycling should have engaged"
    recorder.close_sinks()
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert [row["name"] for row in lines] == [f"ev-{i}" for i in range(64)]
    span_ids = [int(row["spanId"], 16) for row in lines]
    assert span_ids == sorted(span_ids)
    assert len(set(span_ids)) == 64
