"""Exporter round-trips: Chrome trace schema, Prometheus text, OTLP ids."""

import json

from repro.telemetry.export import (
    chrome_trace_events,
    prometheus_text,
    to_chrome_trace,
    to_otlp_json,
    write_chrome_trace,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanRecorder


def _sample_recorder():
    rec = SpanRecorder()
    outer = rec.begin("handle", "seda.stage", "tomcat", 1.0, thread=3)
    send = rec.instant(
        "send_request", "channel.send", "tomcat", 1.5, thread=3,
        attrs={"size": 256},
    )
    rec.register_synopsis("tomcat", 42, send)
    rec.end(outer, 2.0)
    hop = rec.instant("tomcat->mysql", "transaction.hop", "mysql", 2.5)
    rec.adopt_synopsis("tomcat", 42, hop)
    return rec, outer, send, hop


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def test_chrome_trace_schema():
    rec, outer, send, hop = _sample_recorder()
    doc = to_chrome_trace(rec)
    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"
    # Every event carries the required keys.
    for event in events:
        assert {"ph", "name", "pid", "tid", "ts"} <= set(event)
    phases = [e["ph"] for e in events]
    # One process_name metadata event per distinct stage.
    assert phases.count("M") == 2
    assert phases.count("X") == 1  # the complete span
    assert phases.count("i") == 2  # the two instants
    complete = next(e for e in events if e["ph"] == "X")
    assert complete["name"] == "handle"
    assert complete["ts"] == 1.0 * 1e6  # virtual seconds -> microseconds
    assert complete["dur"] == 1.0 * 1e6
    assert complete["tid"] == 3
    instants = [e for e in events if e["ph"] == "i"]
    assert all(e["s"] == "t" for e in instants)
    # The hop's span link survives export.
    hop_event = next(e for e in events if e["name"] == "tomcat->mysql")
    assert hop_event["args"]["links"] == [
        {"trace": f"{send.trace_id:032x}", "span": f"{send.span_id:016x}"}
    ]


def test_chrome_trace_groups_stages_into_processes():
    rec, *_ = _sample_recorder()
    events = chrome_trace_events(rec)
    names = {
        e["args"]["name"]: e["pid"] for e in events if e["ph"] == "M"
    }
    assert set(names) == {"tomcat", "mysql"}
    for event in events:
        if event["ph"] == "M":
            continue
        stage = "mysql" if event["name"] == "tomcat->mysql" else "tomcat"
        assert event["pid"] == names[stage]


def test_chrome_trace_file_round_trips(tmp_path):
    rec, *_ = _sample_recorder()
    path = tmp_path / "trace.json"
    write_chrome_trace(str(path), rec)
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(json.dumps(to_chrome_trace(rec)))


# ----------------------------------------------------------------------
# OTLP-style JSON
# ----------------------------------------------------------------------
def test_otlp_parent_and_link_ids_resolve():
    rec, outer, send, hop = _sample_recorder()
    doc = to_otlp_json(rec)
    spans = {}
    for resource in doc["resourceSpans"]:
        service = next(
            a["value"]["stringValue"]
            for a in resource["resource"]["attributes"]
            if a["key"] == "service.name"
        )
        for scope in resource["scopeSpans"]:
            for span in scope["spans"]:
                spans[span["spanId"]] = (service, span)
    assert len(spans) == 3
    # Ids are the canonical widths.
    assert all(len(sid) == 16 for sid in spans)
    assert all(len(s["traceId"]) == 32 for _, s in spans.values())
    send_id = f"{send.span_id:016x}"
    # The instant send span nests under the open stage span.
    assert spans[send_id][1]["parentSpanId"] == f"{outer.span_id:016x}"
    # The hop links back to the send span, and parent/link ids all point
    # at spans present in the same export.
    hop_record = spans[f"{hop.span_id:016x}"][1]
    assert hop_record["links"] == [
        {"traceId": f"{send.trace_id:032x}", "spanId": send_id}
    ]
    for _, record in spans.values():
        if "parentSpanId" in record:
            assert record["parentSpanId"] in spans
        for link in record.get("links", []):
            assert link["spanId"] in spans
    # Timestamps are nanosecond strings.
    assert hop_record["startTimeUnixNano"] == str(int(2.5 * 1e9))
    # Stages map to OTLP resources.
    assert spans[send_id][0] == "tomcat"
    assert spans[f"{hop.span_id:016x}"][0] == "mysql"


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _parse_prometheus(text):
    """Parse exposition text into {name{labels}: float} + per-name types."""
    values, types = {}, {}
    for line in text.splitlines():
        if line.startswith("# TYPE"):
            _, _, name, kind = line.split()
            types[name] = kind
        elif line and not line.startswith("#"):
            key, raw = line.rsplit(" ", 1)
            values[key] = float(raw.replace("+Inf", "inf"))
    return values, types


def test_prometheus_text_parses_line_by_line():
    reg = MetricsRegistry()
    reg.counter("repro_hits_total", "hits", stage="squid").inc(3)
    reg.gauge("repro_depth", "queue depth", queue="q").set(7)
    h = reg.histogram("repro_lat_seconds", "latency", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    text = prometheus_text(reg)
    assert text.endswith("\n")
    values, types = _parse_prometheus(text)
    assert types == {
        "repro_hits_total": "counter",
        "repro_depth": "gauge",
        "repro_lat_seconds": "histogram",
    }
    assert values['repro_hits_total{stage="squid"}'] == 3
    assert values['repro_depth{queue="q"}'] == 7
    assert values['repro_lat_seconds_bucket{le="0.1"}'] == 1
    assert values['repro_lat_seconds_bucket{le="1"}'] == 2
    assert values['repro_lat_seconds_bucket{le="+Inf"}'] == 3
    assert values["repro_lat_seconds_count"] == 3
    assert values["repro_lat_seconds_sum"] == 5.55
    # HELP lines precede TYPE lines for each family.
    lines = text.splitlines()
    for name in types:
        help_at = lines.index(next(l for l in lines if l.startswith(f"# HELP {name} ")))
        type_at = lines.index(f"# TYPE {name} {types[name]}")
        assert help_at == type_at - 1


def test_prometheus_histogram_bucket_counts_are_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("repro_x_seconds", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 3.0, 9.0):
        h.observe(v)
    values, _ = _parse_prometheus(prometheus_text(reg))
    buckets = [
        values['repro_x_seconds_bucket{le="1"}'],
        values['repro_x_seconds_bucket{le="2"}'],
        values['repro_x_seconds_bucket{le="4"}'],
        values['repro_x_seconds_bucket{le="+Inf"}'],
    ]
    assert buckets == [1, 2, 3, 4]
