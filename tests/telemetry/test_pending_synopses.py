"""The span recorder's synopsis index is LRU-bounded, not unbounded."""

from repro.telemetry.spans import SpanRecorder


def _send_span(recorder, origin, value):
    span = recorder.instant(f"send-{value}", "channel.send", origin, 0.0)
    recorder.register_synopsis(origin, value, span)
    return span


class _Gauge:
    def __init__(self):
        self.value = None

    def set(self, value):
        self.value = value


def test_register_bounded_by_capacity_with_lru_eviction():
    recorder = SpanRecorder(synopsis_capacity=3)
    for value in range(3):
        _send_span(recorder, "web", value)
    assert recorder.pending_synopses == 3
    # Touch 0 so it is the most recently used; 1 becomes the LRU victim.
    hop = recorder.instant("hop", "seda.stage", "db", 1.0)
    assert recorder.adopt_synopsis("web", 0, hop)
    _send_span(recorder, "web", 3)
    assert recorder.pending_synopses == 3
    assert recorder.synopses_evicted == 1
    orphan = recorder.instant("hop2", "seda.stage", "db", 2.0)
    assert not recorder.adopt_synopsis("web", 1, orphan)  # evicted
    assert recorder.adopt_synopsis("web", 0, orphan)  # survived


def test_adopt_keeps_entry_for_reuse():
    """The same synopsis value is adopted once per request that reuses
    its context — adoption must not pop the registration."""
    recorder = SpanRecorder(synopsis_capacity=8)
    send = _send_span(recorder, "web", 7)
    for i in range(3):
        hop = recorder.instant(f"hop{i}", "seda.stage", "db", float(i))
        assert recorder.adopt_synopsis("web", 7, hop)
        assert hop.trace_id == send.trace_id
        assert (send.trace_id, send.span_id) in hop.links
    assert recorder.pending_synopses == 1


def test_reregistration_updates_in_place():
    recorder = SpanRecorder(synopsis_capacity=4)
    first = _send_span(recorder, "web", 1)
    second = _send_span(recorder, "web", 1)
    assert recorder.pending_synopses == 1
    hop = recorder.instant("hop", "seda.stage", "db", 1.0)
    recorder.adopt_synopsis("web", 1, hop)
    assert hop.trace_id == second.trace_id
    assert hop.trace_id != first.trace_id


def test_unbounded_when_capacity_none():
    recorder = SpanRecorder(synopsis_capacity=None)
    for value in range(1000):
        _send_span(recorder, "web", value)
    assert recorder.pending_synopses == 1000
    assert recorder.synopses_evicted == 0


def test_pending_gauge_tracks_index_size():
    recorder = SpanRecorder(synopsis_capacity=2)
    recorder.pending_gauge = _Gauge()
    _send_span(recorder, "web", 1)
    assert recorder.pending_gauge.value == 1
    _send_span(recorder, "web", 2)
    assert recorder.pending_gauge.value == 2
    _send_span(recorder, "web", 3)  # evicts 1
    assert recorder.pending_gauge.value == 2


def test_full_telemetry_mode_installs_pending_gauge():
    from repro import telemetry

    with telemetry.enabled(mode="full") as tele:
        assert tele.spans.pending_gauge is not None
        span = tele.spans.instant("send", "channel.send", "web", 0.0)
        tele.spans.register_synopsis("web", 5, span)
        assert tele.spans.pending_gauge.value == 1
