"""End-to-end telemetry over the three-tier TPC-W system.

The acceptance bar from the issue: a full-telemetry TPC-W run must
produce a trace whose transaction-hop span count equals the number of
stage hops the profiler itself recorded, and the CLI must write a
loadable trace file.
"""

import json

import pytest

from repro import telemetry
from repro.apps.tpcw import TpcwSystem
from repro.telemetry.sinks import CollectingSink


@pytest.fixture(autouse=True)
def _telemetry_teardown():
    yield
    telemetry.uninstall()


def _small_system():
    return TpcwSystem(clients=6, seed=11)


def test_hop_span_count_matches_profiler_hops():
    tele = telemetry.install("full")
    system = _small_system()
    system.run(duration=3.0, warmup=0.5)
    hop_spans = tele.spans.by_category("transaction.hop")
    stages = [system.squid.stage, system.tomcat.stage, system.db.stage]
    profiler_hops = sum(stage.hops_received for stage in stages)
    assert profiler_hops > 0
    assert len(hop_spans) == profiler_hops
    # Every hop joined a sender's trace (link back to the send span).
    assert all(span.links for span in hop_spans)
    # The metric registry agrees with the plain attribute.
    metric_hops = sum(
        tele.metrics.counter(
            "repro_profiler_hops_total", stage=stage.name
        ).value
        for stage in stages
    )
    assert metric_hops == profiler_hops


def test_traces_span_multiple_tiers():
    tele = telemetry.install("full")
    system = _small_system()
    system.run(duration=3.0, warmup=0.5)
    multi_stage = [
        spans
        for spans in tele.spans.traces().values()
        if len({s.stage for s in spans}) > 1
    ]
    # Transactions flow tomcat -> mysql; their spans share one trace.
    assert multi_stage
    assert any(
        {"tomcat", "mysql"} <= {s.stage for s in spans} for spans in multi_stage
    )


def test_sinks_observe_during_the_run_not_at_teardown():
    tele = telemetry.install("full")
    seen_at = []
    sink = CollectingSink()
    tele.add_sink(sink)
    system = _small_system()
    system.run(duration=2.0, warmup=0.5)
    kernel_end = system.kernel.now
    # Spans completed throughout virtual time, not in one teardown burst.
    times = [span.end for span in sink.spans]
    assert times, "sink saw no spans"
    assert min(times) < kernel_end / 2


def test_spans_mode_skips_metrics():
    tele = telemetry.install("spans")
    system = _small_system()
    system.run(duration=1.0, warmup=0.2)
    assert len(tele.spans.spans) > 0
    assert len(tele.metrics) == 0


def test_disabled_telemetry_records_nothing_but_hops_still_counted():
    system = _small_system()
    system.run(duration=3.0, warmup=0.5)
    assert telemetry.active() is None
    # The plain hop attribute is maintained regardless of telemetry.
    assert system.tomcat.stage.hops_received > 0


def test_cli_tpcw_writes_chrome_trace_and_metrics(tmp_path, capsys):
    from repro.cli import main

    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.prom"
    status = main(
        [
            "tpcw",
            "--clients", "6",
            "--duration", "2",
            "--warmup", "0.5",
            "--telemetry", "full",
            "--trace-out", str(trace),
            "--metrics-out", str(metrics),
        ]
    )
    assert status == 0
    out = capsys.readouterr().out
    assert "live telemetry summary" in out
    data = json.loads(trace.read_text())
    assert any(
        e.get("cat") == "transaction.hop" for e in data["traceEvents"]
    )
    assert "repro_sim_events_fired_total" in metrics.read_text()
    # The CLI must tear the global switch down afterwards.
    assert telemetry.active() is None


def test_cli_otlp_format(tmp_path):
    from repro.cli import main

    trace = tmp_path / "trace_otlp.json"
    main(
        [
            "tpcw",
            "--clients", "4",
            "--duration", "1",
            "--warmup", "0.2",
            "--telemetry", "spans",
            "--trace-out", str(trace),
            "--trace-format", "otlp",
        ]
    )
    data = json.loads(trace.read_text())
    assert data["resourceSpans"]
    services = {
        a["value"]["stringValue"]
        for r in data["resourceSpans"]
        for a in r["resource"]["attributes"]
        if a["key"] == "service.name"
    }
    assert "mysql" in services


def test_cli_warns_when_outputs_requested_but_telemetry_off(tmp_path, capsys):
    from repro.cli import main

    trace = tmp_path / "ignored.json"
    main(["table3", "--trace-out", str(trace)])
    err = capsys.readouterr().err
    assert "--trace-out ignored" in err
    assert not trace.exists()
