"""Sink fan-out hardening and the explicit sink lifecycle contract.

Satellite guarantees from the observability PR: a sink that raises
from any telemetry callback is detached and counted (``sink_errors``),
never crashing the simulation hot path; ``JsonLinesSink`` has an
explicit, idempotent ``flush()``/``close()`` contract and works as a
context manager; full-mode runs surface detachments as the
``repro_telemetry_sink_errors_total`` metric.
"""

import io
import json

import pytest

from repro import telemetry
from repro.apps.tpcw import TpcwSystem
from repro.telemetry.sinks import (
    CallbackSink,
    CollectingSink,
    JsonLinesSink,
    TelemetrySink,
)
from repro.telemetry.spans import SpanRecorder


@pytest.fixture(autouse=True)
def _telemetry_teardown():
    yield
    telemetry.uninstall()


class _ExplodingSink(TelemetrySink):
    wants_profile_events = True

    def __init__(self, explode_after=0):
        self.calls = 0
        self.explode_after = explode_after
        self.closed = False

    def _maybe_explode(self):
        self.calls += 1
        if self.calls > self.explode_after:
            raise RuntimeError("sink detonated")

    def on_span(self, span):
        self._maybe_explode()

    def on_profile_event(self, event):
        self._maybe_explode()

    def close(self):
        self.closed = True


def test_raising_sink_is_detached_counted_and_closed():
    recorder = SpanRecorder()
    bad = _ExplodingSink()
    good = CollectingSink()
    recorder.add_sink(bad)
    recorder.add_sink(good)
    span = recorder.begin("op", "test", "stage", 0.0)
    recorder.end(span, 1.0)  # bad raises -> quarantined
    assert recorder.sink_errors == 1
    assert bad.closed
    assert bad not in recorder._sinks and bad not in recorder._profile_sinks
    # The surviving sink saw the span despite its neighbor's failure.
    assert len(good.spans) == 1
    # Once detached, the bad sink never hears from the recorder again.
    span = recorder.begin("op2", "test", "stage", 1.0)
    recorder.end(span, 2.0)
    assert bad.calls == 1
    assert len(good.spans) == 2 and recorder.sink_errors == 1


def test_raising_profile_sink_never_crashes_the_run():
    tele = telemetry.install("full")
    bad = _ExplodingSink(explode_after=5)
    tele.add_sink(bad)
    system = TpcwSystem(clients=6, seed=11)
    system.run(duration=4.0, warmup=0.5)  # must not raise
    assert tele.sink_errors == 1
    assert bad.closed
    # Full mode also surfaces the detachment as a metric.
    metric = tele.metrics.counter(
        "repro_telemetry_sink_errors_total",
        "sinks detached after raising from a telemetry callback",
    )
    assert metric.value == 1
    # The profiler kept emitting after quarantine: spans still flowed.
    assert len(tele.spans.spans) > bad.calls


def test_flush_and_close_errors_are_counted_not_raised():
    recorder = SpanRecorder()

    class _BadFlush(CollectingSink):
        def flush(self):
            raise OSError("disk full")

    class _BadClose(CollectingSink):
        def close(self):
            raise OSError("already gone")

    recorder.add_sink(_BadFlush())
    recorder.add_sink(_BadClose())
    recorder.flush_sinks()  # detaches the bad flusher
    assert recorder.sink_errors == 1
    recorder.close_sinks()  # close error counted, not raised
    assert recorder.sink_errors == 2
    assert recorder._sinks == []


def test_jsonlines_sink_lifecycle_contract(tmp_path):
    path = tmp_path / "trace.jsonl"
    recorder = SpanRecorder()
    sink = JsonLinesSink(str(path))
    recorder.add_sink(sink)
    span = recorder.begin("op", "test", "stage", 0.0)
    recorder.end(span, 1.5)
    assert sink.lines_written == 1 and not sink.closed
    sink.flush()
    sink.flush()  # idempotent
    line = json.loads(path.read_text().splitlines()[0])
    assert line["name"] == "op" and line["end"] == 1.5
    sink.close()
    sink.close()  # idempotent
    assert sink.closed
    # A closed sink silently ignores further spans instead of writing
    # to a closed file (the recorder may still be mid-teardown).
    span = recorder.begin("late", "test", "stage", 2.0)
    recorder.end(span, 3.0)
    assert sink.lines_written == 1
    assert recorder.sink_errors == 0


def test_jsonlines_sink_as_context_manager():
    buffer = io.StringIO()
    with JsonLinesSink(buffer) as sink:
        recorder = SpanRecorder()
        recorder.add_sink(sink)
        span = recorder.begin("op", "test", "stage", 0.0)
        recorder.end(span, 1.0)
    assert sink.closed
    # The sink did not own the handle, so the buffer stays usable.
    assert not buffer.closed
    assert json.loads(buffer.getvalue())["name"] == "op"


def test_uninstall_closes_attached_sinks(tmp_path):
    tele = telemetry.install("spans")
    sink = JsonLinesSink(str(tmp_path / "t.jsonl"))
    tele.add_sink(sink)
    telemetry.uninstall()
    assert sink.closed


def test_callback_sink_exception_detaches():
    recorder = SpanRecorder()
    recorder.add_sink(CallbackSink(lambda span: 1 / 0))
    span = recorder.begin("op", "test", "stage", 0.0)
    recorder.end(span, 1.0)
    assert recorder.sink_errors == 1
    assert recorder._sinks == []
