"""Bounded-loss recovery: a dead collector restarts from checkpoints.

The contract: killing the collector loses at most one checkpoint
interval.  Recovery from the surviving WDR2 chain must restore the
counters, resolution accounting (attempted/unresolved — the
completeness ratio), and queryable state *exactly* as of the last
surviving checkpoint — including runs where a simulated stage crash
(``repro.faults``) wiped synopsis tables mid-run, since the op-log
replay re-applies mints and clears in order.
"""

import hashlib
import os

import pytest

from repro import telemetry
from repro.apps.tpcw import TpcwSystem
from repro.live import (
    LiveCollector,
    attach_collector,
    list_checkpoints,
    read_checkpoint,
)
from repro.parallel import canonical_profile_bytes


@pytest.fixture(autouse=True)
def _telemetry_teardown():
    yield
    telemetry.uninstall()


def _digest(profile) -> str:
    return hashlib.sha256(canonical_profile_bytes(profile)).hexdigest()


def _checkpointed_run(tmp_path, fault_plan=None):
    tele = telemetry.install("spans")
    directory = str(tmp_path / "live")
    collector = attach_collector(
        tele, directory=directory, interval=2.0, max_resident=6
    )
    kwargs = {"clients": 12, "seed": 7}
    if fault_plan is not None:
        kwargs.update(fault_plan=fault_plan, fault_seed=1)
    system = TpcwSystem(**kwargs)
    results = system.run(duration=16.0, warmup=2.0)
    collector.finalize()
    telemetry.uninstall()
    return directory, collector, results


def test_full_recovery_matches_postmortem_digest(tmp_path):
    directory, collector, results = _checkpointed_run(tmp_path)
    recovered = LiveCollector.recover(directory)
    assert recovered.recovered_from == len(list_checkpoints(directory))
    assert recovered.samples == collector.samples
    assert recovered.now == collector.now
    assert _digest(recovered.stitched_profile(strict=True)) == _digest(
        results.stitch()
    )


def test_recovery_after_collector_death_is_exact(tmp_path):
    """Kill the collector mid-run (simulated by deleting its newest
    checkpoints) during a run where a stage crash cleared synopsis
    tables; the restart must restore the accounting of the last
    surviving checkpoint exactly — no drift, no double counting."""
    directory, _, _ = _checkpointed_run(
        tmp_path, fault_plan="crash=tomcat@9.0"
    )
    files = list_checkpoints(directory)
    assert len(files) > 4
    for path in files[-2:]:  # everything after the survivor is lost
        os.remove(path)
    survivor = read_checkpoint(files[-3])
    stored = survivor["counters"]
    assert stored["crashes"] >= 1  # the fault fired before the survivor

    recovered = LiveCollector.recover(directory)
    assert recovered.now == survivor["t"]
    assert recovered.samples == stored["samples"]
    assert recovered.sample_weight == stored["sample_weight"]
    assert recovered.synopses_minted == stored["synopses_minted"]
    assert recovered.synopses_lost == stored["synopses_lost"]
    assert recovered.crashes == stored["crashes"]
    attempted, unresolved = recovered.stitch_stats()
    assert (attempted, unresolved) == (
        stored["attempted"], stored["unresolved"]
    )
    # The completeness ratio is recomputed from a fresh resolve pass
    # over recovered state, not read back from the file — and still
    # agrees with the stored accounting exactly.
    assert recovered.completeness() == (attempted - unresolved) / attempted
    assert recovered.completeness() < 1.0  # the crash really lost refs

    # Cold state answers queries: trees fault in from checkpoints.
    rows = recovered.top_contexts(5)
    assert rows and rows[0][2] > 0.0
    profile = recovered.stitched_profile(strict=False)
    assert profile.entries
    assert profile.completeness == recovered.completeness()


def test_recovery_roundtrip_is_stable(tmp_path):
    """recover -> compact -> recover again reproduces the same bytes
    from a single superseding snapshot."""
    directory, _, _ = _checkpointed_run(tmp_path)
    first = LiveCollector.recover(directory)
    digest = _digest(first.compact(strict=True))
    assert len(list_checkpoints(directory)) == 1
    second = LiveCollector.recover(directory)
    assert second.samples == first.samples
    assert _digest(second.stitched_profile(strict=True)) == digest
