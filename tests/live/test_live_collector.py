"""The online streaming stitcher's headline guarantee.

A live collector consuming the telemetry profile-event stream during
the run — with an LRU bound forcing real evictions to checkpoints —
must, after final compaction, produce a profile *byte-identical* to
the post-mortem stitch of the same seeded run, and must answer
``top_contexts`` / ``completeness`` queries mid-run without stopping
or perturbing the simulation.
"""

import hashlib

import pytest

from repro import telemetry
from repro.apps.tpcw import TpcwSystem
from repro.live import LiveCollector, attach_collector, list_checkpoints
from repro.parallel import canonical_profile_bytes


@pytest.fixture(autouse=True)
def _telemetry_teardown():
    yield
    telemetry.uninstall()


def _digest(profile) -> str:
    return hashlib.sha256(canonical_profile_bytes(profile)).hexdigest()


def _live_run(tmp_path, fault_plan=None, interval=3.0, max_resident=4,
              clients=12, seed=7, duration=18.0, warmup=2.0, mix="browsing"):
    tele = telemetry.install("spans")
    collector = attach_collector(
        tele,
        directory=str(tmp_path / "live"),
        interval=interval,
        max_resident=max_resident,
    )
    kwargs = {"clients": clients, "seed": seed, "mix": mix}
    if fault_plan is not None:
        kwargs.update(fault_plan=fault_plan, fault_seed=3)
    system = TpcwSystem(**kwargs)
    results = system.run(duration=duration, warmup=warmup)
    return collector, system, results


def test_live_compaction_matches_postmortem_under_eviction(tmp_path):
    collector, system, results = _live_run(tmp_path, max_resident=4)
    # The LRU bound must have actually been exercised: trees were
    # spilled to checkpoints and faulted back in.
    assert collector.evictions > 0
    assert collector.revivals > 0
    assert collector.peak_resident <= 4
    live = collector.compact(strict=True)
    post = results.stitch()  # lossless run -> strict post-mortem stitch
    assert live.completeness == 1.0
    assert _digest(live) == _digest(post)
    # Compaction collapsed the directory to one superseding snapshot.
    assert len(list_checkpoints(collector.directory)) == 1


def test_live_matches_postmortem_with_stage_crashes(tmp_path):
    collector, system, results = _live_run(
        tmp_path,
        fault_plan="crash=tomcat@9.0,crash=mysql@14.0",
        max_resident=8,
        duration=16.0,
    )
    live = collector.compact(strict=False)
    post = results.stitch(strict=False)
    # Crashes cleared synopsis mappings -> genuinely partial profile,
    # and the live collector accounts for the loss identically.
    assert post.unresolved_refs > 0
    assert live.completeness == post.completeness < 1.0
    assert _digest(live) == _digest(post)


def test_midrun_queries_answer_without_stopping(tmp_path):
    tele = telemetry.install("spans")
    collector = attach_collector(
        tele, directory=str(tmp_path / "live"), interval=2.0, max_resident=4
    )
    system = TpcwSystem(clients=10, seed=5)
    probes = []

    def probe():
        rows = collector.top_contexts(3)
        probes.append((collector.now, rows, collector.completeness(),
                       collector.stage_weights()))

    system.kernel.schedule(6.0, probe)
    system.kernel.schedule(12.0, probe)
    results = system.run(duration=15.0, warmup=1.0)
    assert len(probes) == 2
    (t1, rows1, comp1, weights1), (t2, rows2, comp2, weights2) = probes
    assert t1 < t2
    assert rows2 and rows2[0][2] > 0.0  # (stage, context, weight, share)
    assert all(0.0 < share <= 1.0 for _, _, _, share in rows2)
    assert 0.0 < comp2 <= 1.0
    # Work accumulates between the probes.
    assert sum(weights2.values()) > sum(weights1.values())
    # The queries (drains, index refreshes, resolve passes) left the
    # equivalence guarantee intact.
    assert _digest(collector.compact(strict=True)) == _digest(results.stitch())


def test_memory_only_collector_disables_eviction():
    tele = telemetry.install("spans")
    # No directory -> nowhere to spill -> the bound must be dropped.
    collector = attach_collector(tele, directory=None, max_resident=4)
    assert collector.max_resident is None
    system = TpcwSystem(clients=6, seed=11)
    results = system.run(duration=6.0, warmup=1.0)
    assert collector.evictions == 0
    assert collector.checkpoints_written == 0
    assert _digest(collector.stitched_profile(strict=True)) == _digest(
        results.stitch()
    )


def test_live_crosstalk_and_renderers(tmp_path):
    from repro.analysis import render_live_crosstalk, render_live_top

    # The ordering mix issues conflicting writes, so the shared DB
    # tier contends deterministically at this scale.
    collector, system, results = _live_run(
        tmp_path, max_resident=64, clients=40, duration=15.0, mix="ordering"
    )
    pairs = collector.crosstalk_pairs()
    assert pairs
    waiter, holder, count, total, mean, peak = pairs[0]
    assert count > 0 and total > 0.0 and peak >= mean > 0.0
    # Live totals agree with the instrumented runtime's own aggregate.
    assert sum(row[2] for row in pairs) == sum(
        stats.count for stats in system.db.crosstalk.pairs.values()
    )
    top = render_live_top(collector, k=5)
    assert "live profile" in top and "stage totals" in top
    assert render_live_crosstalk(collector).count("\n") >= 1


def test_sharded_live_collection_folds_like_parallel_stitch(tmp_path):
    """Per-shard live collectors, folded shard-by-shard through the
    exact accumulator with @shardN tagging, must match the sharded
    post-mortem map-reduce byte-for-byte."""
    from repro.parallel import plan_shards, run_shards
    from repro.parallel.reduce import ProfileAccumulator
    from repro.parallel.stitching import _tag_unresolved

    live_dir = tmp_path / "live"
    spool = tmp_path / "spool"
    plan = plan_shards(
        "tpcw",
        seed=7,
        clients=12,
        shards=3,
        duration=8.0,
        warmup=1.0,
        params={},
        spool_dir=str(spool),
        live_dir=str(live_dir),
        live_interval=2.0,
        live_resident=6,
    )
    run = run_shards(plan, jobs=1)
    accumulator = ProfileAccumulator()
    for index in range(3):
        shard_dir = str(live_dir / f"shard-{index:04d}")
        assert list_checkpoints(shard_dir)
        recovered = LiveCollector.recover(shard_dir)
        accumulator.add_profile(
            _tag_unresolved(
                recovered.stitched_profile(strict=False), f"@shard{index}"
            )
        )
        extra = run.results[index].extra["live"]
        assert extra["samples"] == recovered.samples
        assert extra["sink_errors"] == 0
    folded = accumulator.finalize()
    assert _digest(folded) == _digest(run.stitch(strict=False))
