"""CLI surface of the online streaming stitcher.

``--live`` / ``--live-dir`` on the single-run and sharded paths, and
``live-report`` over checkpoint directories — including the CI-grade
proof that a live run's checkpoints stitch to the *same digest* as the
post-mortem spool of the identical seeded run.
"""

import pytest

from repro.cli import main
from repro.live import list_checkpoints


@pytest.fixture(autouse=True)
def _telemetry_teardown():
    from repro import telemetry

    yield
    telemetry.uninstall()


_TPCW = ["tpcw", "--clients", "8", "--duration", "8", "--warmup", "1",
         "--seed", "7"]


def test_tpcw_live_flag(capsys):
    assert main(_TPCW + ["--live", "--live-top", "4"]) == 0
    out = capsys.readouterr().out
    assert "=== live profile @ t=" in out
    assert "live stitch:" in out
    assert "completeness 100.00%" in out


def test_haboob_live_with_checkpoints(tmp_path, capsys):
    live = tmp_path / "live"
    assert main([
        "haboob", "--seconds", "2", "--clients", "3", "--objects", "50",
        "--live-dir", str(live), "--live-interval", "0.5",
        "--live-resident", "6",
    ]) == 0
    out = capsys.readouterr().out
    assert "live profile" in out
    # Compaction at the end of the run collapsed the chain to one file.
    assert len(list_checkpoints(str(live))) == 1
    assert main(["live-report", str(live), "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "live profile" in out
    assert "end-to-end transactional profile" in out


def test_live_report_digest_matches_postmortem_stitch(tmp_path, capsys):
    """The acceptance proof, end to end through the CLI: a sharded run
    writes both live checkpoints and post-mortem spool dumps; the
    live-report fold and the spool stitch print the same SHA-256."""
    live = tmp_path / "live"
    spool = tmp_path / "spool"
    assert main(_TPCW + [
        "--shards", "2", "--jobs", "1",
        "--live-dir", str(live), "--live-interval", "2",
        "--live-resident", "4",
        "--spool", str(spool), "--profile-format", "v2",
    ]) == 0
    out = capsys.readouterr().out
    assert "live checkpoints in" in out
    assert main(["live-report", str(live), "--digest"]) == 0
    live_digest = capsys.readouterr().out.strip()
    assert main(["stitch", str(spool), "--digest"]) == 0
    post_digest = capsys.readouterr().out.strip()
    assert len(live_digest) == 64
    assert live_digest == post_digest


def test_live_report_rejects_bad_directory(tmp_path, capsys):
    assert main(["live-report", str(tmp_path / "nope")]) == 2
    assert "not a directory" in capsys.readouterr().err
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["live-report", str(empty)]) == 2
    assert "no checkpoints" in capsys.readouterr().err


def test_sharded_live_without_dir_warns(tmp_path, capsys):
    assert main(_TPCW + ["--shards", "2", "--jobs", "1", "--live"]) == 0
    assert "--live with --shards needs --live-dir" in capsys.readouterr().err
