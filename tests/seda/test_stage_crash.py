"""Stage crash-and-restart: fail-stop amnesia for SEDA stages."""

import pytest

from repro.core.context import TransactionContext
from repro.core.profiler import ProfilerMode, StageRuntime
from repro.seda import Dequeue, SedaStage, StageEvent, StageQueue
from repro.sim import CurrentThread, Delay, Kernel


def _stage(kernel, name="s", workers=2, runtime=None, on_element=None):
    def handler(stage, thread, payload):
        if on_element is not None:
            on_element(payload)
        yield Delay(0.01)

    stage = SedaStage(kernel, name, handler, workers=workers, stage_runtime=runtime)
    stage.start()
    return stage


def test_crash_kills_workers_and_loses_queued_elements():
    kernel = Kernel()
    processed = []
    stage = _stage(kernel, workers=1, on_element=processed.append)
    for i in range(5):
        stage.inject(i)
    # Let the single worker get through two elements (0.01s each).
    kernel.run(until=0.025)
    stage.crash()
    kernel.run(until=1.0)
    assert stage.crashes == 1
    # Element 2 was in flight (dequeued), 3 and 4 still buffered: lost.
    assert stage.lost_elements == 2
    assert len(stage.input_queue) == 0
    assert stage.threads == []
    assert processed == [0, 1, 2]
    # Work injected after the crash sits unserved — no workers exist.
    stage.inject(99)
    kernel.run(until=2.0)
    assert 99 not in processed


def test_crash_with_restart_spawns_fresh_worker_pool():
    kernel = Kernel()
    processed = []
    stage = _stage(kernel, workers=2, on_element=processed.append)
    stage.inject("before")
    kernel.run(until=0.1)
    stage.crash(restart_after=0.5)
    stage.inject("limbo")  # lands in the queue while no workers exist
    kernel.run(until=0.2)
    assert "limbo" not in processed
    kernel.run(until=1.0)
    assert stage.restarts == 1
    assert len(stage.threads) == 2
    assert processed == ["before", "limbo"]


def test_crash_wipes_attached_runtime_synopsis_mappings():
    kernel = Kernel()
    runtime = StageRuntime("crashy", mode=ProfilerMode.WHODUNIT)
    value = runtime.synopses.synopsis(TransactionContext(("pre",)))
    stage = _stage(kernel, runtime=runtime)
    stage.crash()
    assert runtime.crashes == 1
    with pytest.raises(KeyError):
        runtime.synopses.resolve(value)
    # The allocator stays monotonic: post-crash values never alias.
    assert runtime.synopses.synopsis(TransactionContext(("post",))) != value


def test_enqueue_skips_dead_waiters():
    """An element handed to a queue whose blocked worker has since been
    killed must reach a surviving worker, not vanish."""
    kernel = Kernel()
    queue = StageQueue(kernel)
    got = []

    def worker():
        element = yield Dequeue(queue)
        got.append(element.payload)

    doomed = kernel.spawn(worker(), name="doomed")
    survivor = kernel.spawn(worker(), name="survivor")
    survivor.daemon = True

    def killer_then_enqueue():
        yield Delay(0.1)
        doomed.finish(None)
        queue.enqueue(StageEvent("work"))

    kernel.spawn(killer_then_enqueue())
    kernel.run()
    assert got == ["work"]


def test_enqueue_buffers_when_all_waiters_dead():
    kernel = Kernel()
    queue = StageQueue(kernel)

    def worker():
        yield Dequeue(queue)

    doomed = kernel.spawn(worker())

    def killer_then_enqueue():
        yield Delay(0.1)
        doomed.finish(None)
        queue.enqueue(StageEvent("orphan"))

    kernel.spawn(killer_then_enqueue())
    kernel.run()
    assert len(queue) == 1


def test_double_crash_is_idempotent_on_thread_list():
    kernel = Kernel()
    stage = _stage(kernel, workers=3)
    stage.crash()
    stage.crash()
    assert stage.crashes == 2
    assert stage.threads == []
    assert not [t for t in kernel.live_threads if t.name.startswith("s-")]


def test_crash_purges_dead_waiters_from_queue():
    """Workers killed while blocked in Dequeue must leave the waiter
    deque; enqueue() skips dead waiters but never frees them, so
    without the purge every crash/restart cycle grows the deque."""
    kernel = Kernel()
    stage = _stage(kernel, workers=3)
    kernel.run(until=0.1)  # all three workers park in Dequeue
    assert len(stage.input_queue._waiters) == 3
    stage.crash()
    assert len(stage.input_queue._waiters) == 0


def test_crash_restart_cycles_keep_waiter_state_bounded():
    kernel = Kernel()
    stage = _stage(kernel, workers=3)
    kernel.run(until=0.1)
    for _ in range(10):
        stage.crash()
        stage.restart()
        kernel.run(until=kernel.now + 0.1)
    # Only the live pool waits; the 30 crashed workers are gone.
    assert len(stage.input_queue._waiters) == 3
    assert all(waiter.alive for waiter in stage.input_queue._waiters)
