"""Tests for SEDA stages and queues (Fig 5)."""

import pytest

from repro.core.context import TransactionContext
from repro.core.profiler import OverheadModel, ProfilerMode, StageRuntime, work

ZERO = OverheadModel(0.0, 0.0, 0.0, 0.0)
from repro.seda import Dequeue, SedaStage, StageEvent, StageQueue
from repro.sim import CPU, CurrentThread, Delay, Kernel


def ctxt(*elements):
    return TransactionContext(elements)


def test_stage_queue_fifo():
    kernel = Kernel()
    queue = StageQueue(kernel)
    got = []

    def worker():
        for _ in range(3):
            element = yield Dequeue(queue)
            got.append(element.payload)

    kernel.spawn(worker())
    for i in range(3):
        queue.enqueue(StageEvent(i))
    kernel.run()
    assert got == [0, 1, 2]


def test_dequeue_blocks_until_enqueue():
    kernel = Kernel()
    queue = StageQueue(kernel)
    got = []

    def worker():
        element = yield Dequeue(queue)
        got.append((element.payload, kernel.now))

    def producer():
        yield Delay(1.5)
        queue.enqueue(StageEvent("x"))

    kernel.spawn(worker())
    kernel.spawn(producer())
    kernel.run()
    assert got == [("x", 1.5)]


def test_contexts_accumulate_through_stages():
    kernel = Kernel()
    runtime = StageRuntime("haboob")
    contexts = []

    def make_handler(downstream):
        def handler(stage, thread, payload):
            contexts.append((stage.name, thread.tran_ctxt))
            if downstream is not None:
                stage.enqueue(thread, downstream.input_queue, payload)
            return
            yield  # pragma: no cover

        return handler

    write_stage = SedaStage(kernel, "WriteStage", make_handler(None), stage_runtime=runtime)
    cache_stage = SedaStage(kernel, "CacheStage", make_handler(write_stage), stage_runtime=runtime)
    read_stage = SedaStage(kernel, "ReadStage", make_handler(cache_stage), stage_runtime=runtime)
    for stage in (write_stage, cache_stage, read_stage):
        stage.start()

    read_stage.inject("req-1")
    kernel.run(until=1.0)
    assert contexts == [
        ("ReadStage", ctxt("ReadStage")),
        ("CacheStage", ctxt("ReadStage", "CacheStage")),
        ("WriteStage", ctxt("ReadStage", "CacheStage", "WriteStage")),
    ]


def test_stage_loop_pruning_on_rpc_like_return():
    kernel = Kernel()
    runtime = StageRuntime("seda")
    contexts = []
    hops = []

    def a_handler(stage, thread, payload):
        contexts.append(thread.tran_ctxt)
        if len(hops) < 3:
            hops.append(1)
            stage.enqueue(thread, b.input_queue, payload)
        return
        yield  # pragma: no cover

    def b_handler(stage, thread, payload):
        contexts.append(thread.tran_ctxt)
        stage.enqueue(thread, a.input_queue, payload)
        return
        yield  # pragma: no cover

    a = SedaStage(kernel, "A", a_handler, stage_runtime=runtime)
    b = SedaStage(kernel, "B", b_handler, stage_runtime=runtime)
    a.start()
    b.start()
    a.inject("x")
    kernel.run(until=1.0)
    # A→B→A→B...: the loop prunes, contexts cycle between [A] and [A, B].
    assert set(c.elements for c in contexts) == {("A",), ("A", "B")}


def test_multiple_workers_share_the_input_queue():
    kernel = Kernel()
    runtime = StageRuntime("seda")
    served = []

    def handler(stage, thread, payload):
        yield Delay(1.0)
        served.append((thread.name, payload))

    stage = SedaStage(kernel, "S", handler, workers=3, stage_runtime=runtime)
    stage.start()
    for i in range(3):
        stage.inject(i)
    kernel.run(until=1.5)
    assert len(served) == 3
    assert len({name for name, _ in served}) == 3  # all three workers ran
    assert stage.processed == 3


def test_samples_annotated_with_stage_context():
    kernel = Kernel()
    cpu = CPU(kernel)
    runtime = StageRuntime("haboob", mode=ProfilerMode.WHODUNIT, overhead=ZERO)

    def cache_handler(stage, thread, payload):
        yield from work(thread, cpu, 0.2)
        stage.enqueue(thread, write.input_queue, payload)

    def write_handler(stage, thread, payload):
        yield from work(thread, cpu, 0.4)

    cache = SedaStage(kernel, "CacheStage", cache_handler, stage_runtime=runtime)
    write = SedaStage(kernel, "WriteStage", write_handler, stage_runtime=runtime)
    cache.start()
    write.start()
    cache.inject("r")
    kernel.run(until=2.0)

    hz = runtime.sampling_hz
    cache_cct = runtime.ccts[ctxt("CacheStage")]
    write_cct = runtime.ccts[ctxt("CacheStage", "WriteStage")]
    assert cache_cct.total_weight() == pytest.approx(0.2 * hz)
    assert write_cct.total_weight() == pytest.approx(0.4 * hz)
    assert cache_cct.weight_of(("stage_loop", "CacheStage")) > 0


def test_inject_has_empty_context():
    kernel = Kernel()
    queue = StageQueue(kernel)
    stage = SedaStage(kernel, "S", lambda s, t, p: iter(()))
    stage.inject("x")
    element = stage.input_queue._elements[0]
    assert element.tran_ctxt == TransactionContext.empty()


def test_enqueue_counts():
    kernel = Kernel()
    queue = StageQueue(kernel)
    queue.enqueue(StageEvent("a"))
    queue.enqueue(StageEvent("b"))
    assert queue.enqueued == 2
    assert len(queue) == 2


def test_bounded_queue_rejects_when_full():
    kernel = Kernel()
    queue = StageQueue(kernel, capacity=2)
    assert queue.enqueue(StageEvent(1))
    assert queue.enqueue(StageEvent(2))
    assert not queue.enqueue(StageEvent(3))  # admission control
    assert queue.rejected == 1
    assert len(queue) == 2


def test_bounded_queue_admits_when_worker_waiting():
    kernel = Kernel()
    queue = StageQueue(kernel, capacity=1)
    got = []

    def worker():
        element = yield Dequeue(queue)
        got.append(element.payload)

    kernel.spawn(worker())
    kernel.run(until=0.1)
    # The worker is parked: direct handoff bypasses the buffer bound.
    assert queue.enqueue(StageEvent("direct"))
    kernel.run(until=0.2)
    assert got == ["direct"]


def test_bounded_queue_capacity_validation():
    with pytest.raises(ValueError):
        StageQueue(Kernel(), capacity=0)


def test_overloaded_stage_sheds_load():
    """A slow bounded stage rejects the excess instead of queueing it."""
    kernel = Kernel()
    runtime = StageRuntime("seda")
    done = []

    def slow_handler(stage, thread, payload):
        yield Delay(1.0)
        done.append(payload)

    stage = SedaStage(
        kernel, "Slow", slow_handler, workers=1,
        stage_runtime=runtime, queue_capacity=2,
    )
    stage.start()
    kernel.run(until=0.0)  # let the worker park on the queue
    accepted = sum(1 for i in range(10) if stage.inject(i))
    kernel.run(until=10.0)
    # 1 handed to the waiting worker + 2 buffered = 3 accepted.
    assert accepted == 3
    assert stage.input_queue.rejected == 7
    assert len(done) == 3
