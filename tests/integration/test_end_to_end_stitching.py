"""End-to-end stitching and flow-graph validation on the full TPC-W.

The presentation-phase outputs (stitched profile, Fig-7 flow graph,
persisted dumps) must be consistent with each other on a real
three-tier run.
"""

import pytest

from repro.apps.tpcw import TpcwSystem
from repro.core.context import TransactionContext
from repro.core.persist import decode_stage, encode_stage
from repro.core.stitch import flow_graph, stitch_profiles


@pytest.fixture(scope="module")
def system_and_stages():
    system = TpcwSystem(clients=40, seed=21)
    system.run(duration=60.0, warmup=15.0)
    stages = [system.squid.stage, system.tomcat.stage, system.db.stage]
    return system, stages


def test_flow_graph_covers_both_hops(system_and_stages):
    system, stages = system_and_stages
    edges = flow_graph(stages)
    pairs = {(e.from_stage, e.to_stage) for e in edges}
    assert ("squid", "tomcat") in pairs
    assert ("tomcat", "mysql") in pairs
    # No edges out of mysql (it is the last tier).
    assert not any(e.from_stage == "mysql" for e in edges)


def test_every_mysql_edge_context_is_fully_resolved(system_and_stages):
    system, stages = system_and_stages
    for edge in flow_graph(stages):
        assert all(isinstance(el, str) for el in edge.to_context.elements)
        if edge.to_stage == "mysql":
            # The resolved context threads squid's event handlers and a
            # tomcat servlet.
            assert edge.to_context.elements[0] == "httpAccept"
            assert "executeQuery" in edge.to_context.elements


def test_stitched_weights_match_stage_totals(system_and_stages):
    system, stages = system_and_stages
    profile = stitch_profiles(stages)
    for stage in stages:
        assert profile.stage_weight(stage.name) == pytest.approx(
            stage.total_weight(), rel=1e-9
        )


def test_persisted_stages_stitch_identically(system_and_stages):
    system, stages = system_and_stages
    clones = [decode_stage(encode_stage(stage)) for stage in stages]
    original = stitch_profiles(stages)
    reloaded = stitch_profiles(clones)
    assert original.total_weight() == pytest.approx(reloaded.total_weight())
    for stage_name in original.stages():
        assert set(original.contexts_of(stage_name)) == set(
            reloaded.contexts_of(stage_name)
        )


def test_mysql_contexts_name_each_heavy_servlet(system_and_stages):
    system, stages = system_and_stages
    profile = stitch_profiles(stages)
    mysql_contexts = profile.contexts_of("mysql")
    servlets_seen = {
        element
        for context in mysql_contexts
        for element in context.elements
        if element in ("BestSellers", "SearchResult", "Home", "ProductDetail")
    }
    assert {"BestSellers", "SearchResult", "Home", "ProductDetail"} <= servlets_seen
