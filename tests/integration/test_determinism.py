"""Reproducibility: identical seeds must yield identical simulations.

Determinism is the property that makes this reproduction's experiments
meaningful: every benchmark number in EXPERIMENTS.md regenerates
exactly.
"""

import pytest

from repro.apps.tpcw import TpcwSystem
from repro.apps.httpd import HttpdServer
from repro.core.profiler import ProfilerMode
from repro.sim import Kernel, Rng
from repro.workloads import HttpClientPool, WebTrace


def tpcw_fingerprint(seed):
    system = TpcwSystem(clients=25, seed=seed)
    results = system.run(duration=30.0, warmup=5.0)
    return (
        tuple(results.log.records),
        system.db.queries_executed,
        round(system.db.cpu.busy_time, 9),
        tuple(sorted(results.db_cpu_share().items())),
    )


def test_tpcw_identical_across_runs():
    assert tpcw_fingerprint(11) == tpcw_fingerprint(11)


def test_tpcw_differs_across_seeds():
    assert tpcw_fingerprint(11) != tpcw_fingerprint(12)


def httpd_fingerprint(seed):
    kernel = Kernel()
    trace = WebTrace(Rng(seed), objects=100)
    server = HttpdServer(kernel, trace)
    server.start()
    pool = HttpClientPool(kernel, server.listener_socket, trace, clients=4)
    pool.start()
    kernel.run(until=1.0)
    stage = server.stage
    return (
        server.requests_served,
        server.bytes_sent,
        tuple(sorted((repr(l), round(c.total_weight(), 6)) for l, c in stage.ccts.items())),
    )


def test_httpd_identical_across_runs():
    assert httpd_fingerprint(3) == httpd_fingerprint(3)


def test_determinism_across_processes_and_hash_seeds():
    """Seeded streams must not depend on Python's per-process string

    hash randomisation (PYTHONHASHSEED)."""
    import os
    import subprocess
    import sys

    code = (
        "from repro.sim import Rng\n"
        "r = Rng(5).stream('clients').stream('think-3')\n"
        "print([r.randint(0, 99999) for _ in range(8)])\n"
    )
    outputs = set()
    for hash_seed in ("1", "77"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outputs.add(result.stdout)
    assert len(outputs) == 1


def test_profiling_does_not_change_functional_behaviour():
    """Whodunit slows the server but never changes what it serves."""

    def served(mode):
        kernel = Kernel()
        trace = WebTrace(Rng(5), objects=100)
        server = HttpdServer(kernel, trace, mode=mode)
        server.start()
        # A single client: its request sequence is deterministic, so the
        # first N object ids must be identical whether or not the server
        # is being profiled — profiling only shifts timing, not content.
        pool = HttpClientPool(kernel, server.listener_socket, trace, clients=1)
        pool.start()
        kernel.run(until=1.0)
        return pool.requested[:50]

    baseline = served(ProfilerMode.OFF)
    profiled = served(ProfilerMode.WHODUNIT)
    assert baseline[:30] == profiled[:30]
    assert len(baseline) >= 30
