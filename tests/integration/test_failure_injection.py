"""Failure injection: the substrate surfaces broken applications loudly.

A simulation framework that silently swallows bugs produces wrong
profiles; these tests pin down the failure behaviour users rely on.
"""

import pytest

from repro.channels import SharedMemoryRegion, SharedQueue
from repro.core.profiler import ProfilerMode, StageRuntime
from repro.events import Event, EventLoop
from repro.sim import (
    Acquire,
    CPU,
    CurrentThread,
    Delay,
    Kernel,
    Mutex,
    Release,
    UseCPU,
)
from repro.sim.kernel import Deadlock
from repro.vm import Assembler, Jmp, Label, Machine, VMError


def test_thread_dying_with_held_lock_strands_waiters():
    kernel = Kernel()
    mutex = Mutex("m")

    def dies_holding():
        yield Acquire(mutex)
        raise RuntimeError("crashed in critical section")

    def waiter():
        yield Delay(0.1)
        yield Acquire(mutex)

    kernel.spawn(dies_holding())
    kernel.spawn(waiter())
    with pytest.raises(RuntimeError):
        kernel.run()
    # The waiter can never proceed: unbounded run detects the deadlock.
    with pytest.raises(Deadlock):
        kernel.run()


def test_infinite_vm_loop_raises_instead_of_hanging():
    machine = Machine()
    program = Assembler("spin").emit(Label("top"), Jmp("top")).build()
    from repro.vm import Emulator

    with pytest.raises(VMError):
        Emulator().run(program, machine, "t", max_steps=1000)


def test_handler_exception_propagates_out_of_event_loop():
    kernel = Kernel()
    loop = EventLoop(kernel)
    stage = StageRuntime("s", mode=ProfilerMode.OFF)
    kernel.spawn(loop.run(), stage=stage)

    def bad(lp, ev):
        raise KeyError("handler bug")
        yield  # pragma: no cover

    loop.event_add(Event("bad", bad))
    with pytest.raises(KeyError):
        kernel.run(until=1.0)


def test_queue_overflow_is_loud():
    kernel = Kernel()
    cpu = CPU(kernel)
    stage = StageRuntime("s", mode=ProfilerMode.OFF)
    region = SharedMemoryRegion(cpu)
    queue = SharedQueue(region, capacity=2)

    def pusher():
        thread = yield CurrentThread()
        for i in range(3):
            yield from queue.push(thread, i, i)

    kernel.spawn(pusher(), stage=stage)
    with pytest.raises(OverflowError):
        kernel.run()
    # The failed push released the mutex on its way out.
    assert not queue.mutex.holders


def test_negative_cpu_demand_is_rejected():
    kernel = Kernel()
    cpu = CPU(kernel)

    def worker():
        yield UseCPU(cpu, -1.0)

    kernel.spawn(worker())
    with pytest.raises(ValueError):
        kernel.run()


def test_release_of_foreign_mutex_is_rejected():
    kernel = Kernel()
    mutex = Mutex("m")

    def holder():
        yield Acquire(mutex)
        yield Delay(10.0)
        yield Release(mutex)

    def thief():
        yield Delay(0.1)
        yield Release(mutex)

    kernel.spawn(holder())
    kernel.spawn(thief())
    with pytest.raises(RuntimeError):
        kernel.run()
