"""S4: the TPC-W fault matrix — loss modes × recovery on/off.

Each cell runs a short seeded TPC-W deployment under one fault mode and
checks the system-level guarantees: the run terminates, is
deterministic per seed, leaves no caller thread wedged forever, makes
forward progress when retries are on, and reports the correct stitch
completeness (1.0 without crash amnesia, < 1.0 with it).
"""

import pytest

from repro.apps.tpcw import TpcwSystem
from repro.channels.rpc import RetryPolicy

# Short windows keep the whole matrix affordable in CI; with ~15 clients
# and multi-message interactions even 10 virtual seconds sends hundreds
# of messages through the fault rules.
WARMUP = 2.0
DURATION = 8.0
RETRY = RetryPolicy(timeout=0.3, retries=3, backoff=2.0)

DROP = "drop=0.01"
DUP = "dup=0.01"
REORDER = "reorder=0.1:0.005"
MIXED = "drop=0.01,dup=0.01,reorder=0.05:0.005"
CRASH = "crash=tomcat@6.0"


def run_system(fault_plan=None, retry=None, fault_seed=1, seed=7, clients=15):
    system = TpcwSystem(
        clients=clients,
        seed=seed,
        fault_plan=fault_plan,
        fault_seed=fault_seed,
        retry=retry,
    )
    results = system.run(duration=DURATION, warmup=WARMUP)
    return system, results


def assert_no_wedged_callers(system):
    """No live thread may be blocked on an unbounded receive once the
    horizon is reached — recovery paths always use bounded waits."""
    for thread in system.kernel.live_threads:
        blocked = thread.blocked_on
        if blocked is None:
            continue
        timeout = getattr(blocked, "timeout", None)
        # Blocked threads are allowed (the run stops at the horizon mid
        # conversation); a *bounded* wait or an accept/dequeue loop is
        # fine — what must not exist is a client/caller stuck forever on
        # a response that will never come while holding resources.
        if type(blocked).__name__ == "Recv" and "to_client" in blocked.endpoint.name:
            assert timeout is not None, (
                f"{thread.name} wedged on unbounded recv {blocked!r}"
            )


@pytest.mark.parametrize("plan", [DROP, DUP, REORDER, MIXED], ids=["drop", "dup", "reorder", "mixed"])
def test_lossy_run_with_retries_terminates_and_recovers(plan):
    system, results = run_system(fault_plan=plan, retry=RETRY)
    report = results.fault_report()
    injected = report["injected"]
    assert injected["messages_seen"] > 0
    # The workload made forward progress despite the losses.
    assert results.log.count() > 0
    assert_no_wedged_callers(system)
    # No crash amnesia: every synopsis reference is still resolvable, so
    # stitching completes fully (retries recover, duplicates/stale
    # responses are discarded, never adopted).
    assert results.stitch_completeness() == 1.0
    profile = results.stitch(strict=False)
    assert profile.unresolved_refs == 0


def test_drop_without_retries_still_terminates():
    """Loss with no recovery: conversations wedge, but the simulation
    itself terminates at the horizon and stitches what it saw."""
    system, results = run_system(fault_plan=DROP, retry=None)
    assert system.faults.dropped > 0
    # No retry machinery ran.
    report = results.fault_report()
    assert report["client_resends"] == 0
    assert report["client_reconnects"] == 0
    # What did complete still stitches cleanly (losses lose liveness,
    # never attribution).
    assert results.stitch_completeness() == 1.0


def test_seeded_fault_run_is_deterministic():
    def fingerprint():
        system, results = run_system(fault_plan=MIXED, retry=RETRY, fault_seed=3)
        report = results.fault_report()
        return (
            report["injected"],
            report["client_resends"],
            report["client_reconnects"],
            report["db_timeouts"],
            results.log.count(),
            round(results.throughput_tpm(), 6),
            results.stitch_completeness(),
        )

    assert fingerprint() == fingerprint()


def test_different_fault_seeds_diverge():
    _, a = run_system(fault_plan=MIXED, retry=RETRY, fault_seed=1)
    _, b = run_system(fault_plan=MIXED, retry=RETRY, fault_seed=2)
    assert (
        a.fault_report()["injected"] != b.fault_report()["injected"]
    )


def test_stage_crash_yields_partial_profile_with_completeness():
    system, results = run_system(fault_plan=CRASH, retry=RETRY)
    assert system.faults.crashes_fired == 1
    report = results.fault_report()
    assert report["tomcat_crashes"] == 1
    # Crash amnesia: pre-crash tomcat synopses referenced by mysql's
    # CCT labels are unresolvable -> partial stitch, no KeyError.
    profile = results.stitch(strict=False)
    assert profile.unresolved_refs > 0
    completeness = results.stitch_completeness()
    assert 0.0 < completeness < 1.0
    # The default (faults installed -> non-strict) matches.
    default_profile = results.stitch()
    assert default_profile.unresolved_refs == profile.unresolved_refs


def test_crash_plus_loss_with_retries_survives():
    """The full gauntlet: loss, duplication, reordering and a mid-run
    database crash, with retries on. The run must terminate with a
    partial profile and a fault report, not hang or raise."""
    system, results = run_system(
        fault_plan=MIXED + ";" + CRASH, retry=RETRY, fault_seed=5
    )
    assert system.faults.crashes_fired == 1
    assert results.log.count() > 0
    assert_no_wedged_callers(system)
    completeness = results.stitch_completeness()
    assert 0.0 < completeness < 1.0
    report = results.fault_report()
    assert report["injected"]["dropped"] > 0


def test_lossless_run_reports_full_completeness_and_no_recovery_activity():
    """A fault-free run with retry machinery armed behaves byte-for-byte
    like the original: nothing times out, nothing is resent, the stitch
    is complete."""
    system, results = run_system(fault_plan=None, retry=RETRY)
    assert system.faults is None
    report = results.fault_report()
    assert report["injected"] == {}
    assert report["client_resends"] == 0
    assert report["client_reconnects"] == 0
    assert report["client_stale_responses"] == 0
    assert report["db_timeouts"] == 0
    assert results.stitch_completeness() == 1.0
    # Strict stitching (the lossless default) succeeds.
    assert results.stitch().unresolved_refs == 0
