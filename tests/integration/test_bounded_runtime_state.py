"""Bounded runtime state under sustained traffic.

A production profiler must not grow per-request state without bound:
the kernel reaps finished request threads, a stage's sent-request map
tracks only in-flight requests, and pending-overhead entries die with
their thread.  This run pushes 10k requests through the RPC wrappers
in an open-loop style (a fresh short-lived client/server thread pair
per request) and asserts every piece of bookkeeping ends bounded.
"""

import pytest

from repro.channels import Connection
from repro.channels.rpc import call, recv_request, send_response
from repro.core.profiler import StageRuntime
from repro.sim import CurrentThread, Kernel
from repro.sim.process import frame

REQUESTS = 10_000
SERVLETS = [f"servlet{index}" for index in range(10)]


@pytest.fixture(scope="module")
def open_loop_run():
    kernel = Kernel()
    web = StageRuntime("web")
    db = StageRuntime("db")
    completed = []

    def client(conn, servlet):
        thread = yield CurrentThread()
        with frame(thread, "main"):
            with frame(thread, servlet):
                response = yield from call(
                    thread, conn.to_server, conn.to_client, "query", 100
                )
                completed.append(response.payload)

    def server(conn):
        thread = yield CurrentThread()
        request = yield from recv_request(thread, conn.to_server)
        yield from send_response(thread, conn.to_client, request, "rows", 500)

    def spawn_request(index):
        conn = Connection(kernel)
        kernel.spawn(server(conn), name=f"server-{index}", stage=db)
        kernel.spawn(client(conn, SERVLETS[index % len(SERVLETS)]),
                     name=f"client-{index}", stage=web)

    # Open loop: arrivals at a fixed rate, regardless of completion.
    for index in range(REQUESTS):
        kernel.schedule(index * 1e-4, spawn_request, index)
    kernel.run()
    return kernel, web, db, completed


def test_all_requests_completed(open_loop_run):
    kernel, web, db, completed = open_loop_run
    assert len(completed) == REQUESTS


def test_thread_registry_is_bounded(open_loop_run):
    """20k spawned threads must not accumulate in the kernel."""
    kernel, web, db, completed = open_loop_run
    assert len(kernel._threads) == 0
    assert kernel.live_threads == []


def test_sent_request_map_is_bounded(open_loop_run):
    """Every matched response pops its entry: nothing in flight remains."""
    kernel, web, db, completed = open_loop_run
    assert web.in_flight_requests == 0
    assert db.in_flight_requests == 0


def test_pending_overhead_is_reclaimed(open_loop_run):
    kernel, web, db, completed = open_loop_run
    assert web._pending == {}
    assert db._pending == {}


def test_synopsis_tables_track_contexts_not_requests(open_loop_run):
    """10k requests over 10 distinct contexts allocate ~10 synopses."""
    kernel, web, db, completed = open_loop_run
    assert len(web.synopses) <= 2 * len(SERVLETS)
    assert len(db.synopses) <= 2 * len(SERVLETS)
