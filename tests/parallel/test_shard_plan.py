"""Tests for deterministic shard planning (seed derivation, partition)."""

import pytest

from repro.parallel import (
    derive_shard_seed,
    partition_clients,
    plan_shards,
)


# ----------------------------------------------------------------------
# Seed derivation
# ----------------------------------------------------------------------
def test_single_shard_passes_seed_through():
    """--shards 1 must stay byte-identical to the serial path, so the
    run seed must reach the (only) shard unchanged."""
    assert derive_shard_seed(42, 0, 1) == 42
    assert derive_shard_seed(0, 0, 1) == 0


def test_derivation_is_deterministic():
    assert derive_shard_seed(42, 3, 8) == derive_shard_seed(42, 3, 8)


def test_shards_get_distinct_seeds():
    seeds = [derive_shard_seed(42, index, 16) for index in range(16)]
    assert len(set(seeds)) == 16


def test_shard_count_is_part_of_the_derivation():
    """Re-planning with a different N must reshuffle every stream, not
    reuse a prefix of the old plan's seeds."""
    assert derive_shard_seed(42, 0, 2) != derive_shard_seed(42, 0, 4)


def test_derived_seeds_are_31_bit_non_negative():
    for index in range(64):
        seed = derive_shard_seed(7, index, 64)
        assert 0 <= seed < 2**31


# ----------------------------------------------------------------------
# Client partitioning
# ----------------------------------------------------------------------
@pytest.mark.parametrize("clients,shards", [(100, 4), (101, 4), (7, 3), (5, 5)])
def test_partition_sums_exactly(clients, shards):
    populations = partition_clients(clients, shards)
    assert len(populations) == shards
    assert sum(populations) == clients


def test_partition_is_near_equal():
    populations = partition_clients(103, 4)
    assert max(populations) - min(populations) <= 1
    # Remainder goes to the lowest indices.
    assert populations == sorted(populations, reverse=True)


def test_partition_rejects_empty_shards():
    with pytest.raises(ValueError):
        partition_clients(3, 4)
    with pytest.raises(ValueError):
        partition_clients(10, 0)


# ----------------------------------------------------------------------
# The plan
# ----------------------------------------------------------------------
def test_plan_shards_builds_complete_specs(tmp_path):
    plan = plan_shards(
        "tpcw",
        seed=42,
        clients=10,
        shards=4,
        duration=30.0,
        warmup=5.0,
        params={"mix": "ordering"},
        spool_dir=str(tmp_path),
        profile_format="v2",
    )
    assert len(plan) == 4
    assert [spec.index for spec in plan] == [0, 1, 2, 3]
    assert sum(spec.clients for spec in plan) == 10
    for spec in plan:
        assert spec.workload == "tpcw"
        assert spec.seed == derive_shard_seed(42, spec.index, 4)
        assert spec.duration == 30.0
        assert spec.warmup == 5.0
        assert spec.params["mix"] == "ordering"
        assert spec.spool_dir == str(tmp_path)
        assert spec.profile_format == "v2"


def test_plan_params_are_copied_per_spec():
    plan = plan_shards("tpcw", seed=1, clients=4, shards=2, duration=1.0,
                       params={"caching": True})
    plan.specs[0].params["caching"] = False
    assert plan.specs[1].params["caching"] is True


def test_plan_rejects_unknown_workload():
    with pytest.raises(ValueError):
        plan_shards("memcached", seed=1, clients=4, shards=2, duration=1.0)


def test_plan_is_reproducible():
    a = plan_shards("haboob", seed=9, clients=12, shards=3, duration=2.0)
    b = plan_shards("haboob", seed=9, clients=12, shards=3, duration=2.0)
    assert a.specs == b.specs
