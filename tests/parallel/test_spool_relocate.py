"""Spool relocatability: a spool directory is a self-contained artifact.

The cluster prerequisite — dumps spool on the machine that ran the
shards, then the whole directory is rsync'd to wherever the
presentation phase runs.  That only works if the manifest references
its files relative to itself, never by absolute path.
"""

import json
import os
import shutil

from repro.parallel import (
    canonical_profile_bytes,
    plan_shards,
    run_shards,
    spool_groups,
    stitch_spool,
)
from repro.parallel.runner import MANIFEST_NAME


def _spool_run(spool_dir, profile_format="v2"):
    plan = plan_shards(
        "haboob",
        seed=21,
        clients=9,
        shards=3,
        duration=2.0,
        spool_dir=str(spool_dir),
        profile_format=profile_format,
    )
    return run_shards(plan, jobs=1)


class TestManifestRelativity:
    def test_manifest_has_no_absolute_paths(self, tmp_path):
        spool = tmp_path / "spool"
        _spool_run(spool)
        with open(spool / MANIFEST_NAME, encoding="utf-8") as handle:
            manifest = json.load(handle)
        for group in manifest["groups"]:
            assert not os.path.isabs(group["dir"])
            assert os.sep not in group["dir"]
            for name in group["files"]:
                assert not os.path.isabs(name)
                assert os.sep not in name

    def test_spool_groups_resolve_against_spool_dir(self, tmp_path):
        spool = tmp_path / "spool"
        run = _spool_run(spool)
        groups = spool_groups(str(spool))
        assert [sorted(g) for g in groups] == [
            sorted(g) for g in run.dump_groups()
        ]
        for group in groups:
            for path in group:
                assert os.path.exists(path)


class TestRelocation:
    def test_moved_spool_stitches_byte_identically(self, tmp_path):
        spool = tmp_path / "origin" / "spool"
        _spool_run(spool)
        before = canonical_profile_bytes(stitch_spool(str(spool)))

        # Simulate the rsync to another machine: copy the tree to a
        # different root, then remove the original entirely so any
        # stale absolute reference would fail loudly.
        relocated = tmp_path / "other-machine" / "data" / "spool"
        shutil.copytree(str(spool), str(relocated))
        shutil.rmtree(str(tmp_path / "origin"))

        after = canonical_profile_bytes(stitch_spool(str(relocated)))
        assert after == before

    def test_relocated_hierarchical_reduce(self, tmp_path):
        spool = tmp_path / "spool"
        _spool_run(spool)
        flat = canonical_profile_bytes(stitch_spool(str(spool)))
        relocated = tmp_path / "elsewhere"
        shutil.move(str(spool), str(relocated))
        assert canonical_profile_bytes(
            stitch_spool(str(relocated), group_size=2)
        ) == flat

    def test_relocated_v1_spool(self, tmp_path):
        spool = tmp_path / "spool"
        _spool_run(spool, profile_format="v1")
        before = canonical_profile_bytes(stitch_spool(str(spool)))
        relocated = tmp_path / "moved"
        shutil.move(str(spool), str(relocated))
        assert canonical_profile_bytes(
            stitch_spool(str(relocated))
        ) == before
