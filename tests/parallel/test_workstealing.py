"""The work-stealing shard scheduler: determinism under any steal
order, persistent pool reuse, start-method safety, error propagation.
"""

import multiprocessing
import random

import pytest

from repro.parallel.scheduler import (
    WorkStealingPool,
    WorkerError,
    default_start_method,
    effective_jobs,
    get_pool,
    shutdown_pools,
)


def _square(value):
    return value * value


def _boom(value):
    if value % 2:
        raise ValueError(f"bad item {value}")
    return value


def _sleep_id(value):
    import time

    time.sleep(0.01 * (value % 3))
    return value


class TestWorkStealingPool:
    def test_results_in_item_order(self):
        with WorkStealingPool(3) as pool:
            assert pool.run(_square, range(20)) == [i * i for i in range(20)]

    def test_uneven_tasks_still_ordered(self):
        # Tasks deliberately finish out of submission order; results
        # must come back indexed like the input regardless.
        with WorkStealingPool(4) as pool:
            assert pool.run(_sleep_id, range(12)) == list(range(12))

    def test_randomized_steal_order_is_invisible(self):
        # The tentpole guarantee: the steal order (here forced via the
        # submission permutation) never changes what the caller sees.
        items = list(range(16))
        rng = random.Random(1234)
        with WorkStealingPool(4) as pool:
            baseline = pool.run(_square, items)
            for _ in range(5):
                order = list(range(len(items)))
                rng.shuffle(order)
                assert pool.run(_square, items, submit_order=order) == baseline

    def test_submit_order_must_be_permutation(self):
        with WorkStealingPool(2) as pool:
            with pytest.raises(ValueError):
                pool.run(_square, range(4), submit_order=[0, 1, 1, 2])

    def test_empty_items(self):
        with WorkStealingPool(2) as pool:
            assert pool.run(_square, []) == []

    def test_worker_error_carries_remote_traceback(self):
        with WorkStealingPool(2) as pool:
            with pytest.raises(WorkerError) as caught:
                pool.run(_boom, range(6))
            # Lowest failing index wins deterministically (1, 3, 5 fail).
            assert caught.value.index == 1
            assert "bad item 1" in str(caught.value)
            assert "ValueError" in caught.value.remote_traceback
            # A task failure must not poison the pool.
            assert pool.run(_square, range(4)) == [0, 1, 4, 9]

    def test_close_is_idempotent(self):
        pool = WorkStealingPool(2)
        assert pool.run(_square, [3]) == [9]
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.run(_square, [1])

    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="platform has no spawn start method",
    )
    def test_spawn_start_method(self):
        # Tasks pickle by reference, so the pool must work under spawn
        # (the forkserver/spawn-safety requirement).  Use a stdlib
        # callable: importable in any child regardless of test layout.
        import math

        with WorkStealingPool(2, start_method="spawn") as pool:
            assert pool.start_method == "spawn"
            assert pool.run(math.sqrt, [0.0, 1.0, 4.0, 9.0]) == [
                0.0, 1.0, 2.0, 3.0,
            ]


class TestSharedPool:
    def test_pool_persists_across_runs(self):
        # The satellite fix for parallel_gain_over_1job < 1: startup is
        # paid once, so consecutive runs reuse the same worker PIDs.
        pool = get_pool(2)
        try:
            pids_before = sorted(pool.worker_pids())
            pool.run(_square, range(8))
            pool.run(_square, range(8))
            assert get_pool(2) is pool
            assert sorted(pool.worker_pids()) == pids_before
        finally:
            shutdown_pools()

    def test_dead_pool_is_replaced(self):
        pool = get_pool(2)
        try:
            pool.close()
            replacement = get_pool(2)
            assert replacement is not pool
            assert replacement.run(_square, [5]) == [25]
        finally:
            shutdown_pools()

    def test_default_start_method_is_available(self):
        assert default_start_method() in multiprocessing.get_all_start_methods()

    def test_effective_jobs(self):
        assert effective_jobs(3) == 3
        assert effective_jobs(0) >= 1
        assert effective_jobs(None) >= 1


class TestShardRunnerStealOrder:
    def test_sharded_run_identical_under_random_steal_order(self, tmp_path):
        # End-to-end: a 4-shard Haboob run spools byte-identical dumps
        # and stitches to identical bytes no matter the submission
        # permutation driving the steal order.
        import hashlib

        from repro.parallel import (
            canonical_profile_bytes,
            plan_shards,
            run_shards,
            shutdown_pools,
        )

        def digest(spool):
            plan = plan_shards(
                "haboob", seed=11, clients=12, shards=4, duration=2.0,
                spool_dir=str(spool), profile_format="v2",
            )
            order = list(range(4))
            random.Random(spool.name).shuffle(order)
            run = run_shards(plan, jobs=2, submit_order=order)
            return hashlib.sha256(
                canonical_profile_bytes(run.stitch(jobs=2))
            ).hexdigest()

        try:
            digests = {digest(tmp_path / f"run{i}") for i in range(3)}
        finally:
            shutdown_pools()
        assert len(digests) == 1
