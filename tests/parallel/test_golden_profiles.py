"""Golden end-to-end digests: kernel speedups must not move a byte.

These SHA-256 digests of canonical v2 profile bytes were captured on
the pre-timer-wheel kernel (a heap of event objects with per-event
ordering).  They pin the complete simulation semantics — scheduling
order, RNG draw order, lock-grant order, synopsis allocation — through
the two full applications.  If a kernel or hot-path change moves any of
these bytes, it changed simulation *behaviour*, not just speed, and the
digest here must only be updated with a semantic change that is
understood and intended.

``canonical_profile_bytes`` is hash-seed and process independent, so
the digests are stable across machines and PYTHONHASHSEED values.
"""

import hashlib

from repro.apps.haboob import HaboobConfig, HaboobServer
from repro.apps.tpcw import TpcwSystem
from repro.core.stitch import stitch_profiles
from repro.parallel import canonical_profile_bytes
from repro.sim import Kernel, Rng
from repro.workloads import HttpClientPool, WebTrace

TPCW_DIGEST = "922c7eced0cce374cfe84f398542d2e076aa3f90a60ebe7250dbbcb20bf2304b"
HABOOB_DIGEST = "9c4be995d922e792a7757edc16d7932715124d346508d02eec587b4e81cdfd79"


def test_tpcw_profile_bytes_match_pre_rewrite_golden():
    system = TpcwSystem(clients=12, seed=1234)
    results = system.run(duration=10.0, warmup=2.0)
    digest = hashlib.sha256(canonical_profile_bytes(results.stitch())).hexdigest()
    assert digest == TPCW_DIGEST


def test_haboob_profile_bytes_match_pre_rewrite_golden():
    kernel = Kernel()
    trace = WebTrace(Rng(23), objects=2000, requests_per_connection_mean=4.0)
    server = HaboobServer(kernel, trace, config=HaboobConfig(cache_bytes=256 * 1024))
    server.start()
    clients = HttpClientPool(kernel, server.listener, trace, clients=5)
    clients.start()
    kernel.run(until=4.0)
    profile = stitch_profiles([server.stage_runtime])
    digest = hashlib.sha256(canonical_profile_bytes(profile)).hexdigest()
    assert digest == HABOOB_DIGEST
