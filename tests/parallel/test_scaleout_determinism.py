"""Scale-out determinism: sharded output is a pure function of the plan.

Three guarantees, each load-bearing for trusting a profile produced on
N cores:

1. **Scheduling independence** — the same 4-shard plan executed with 1
   worker and with several workers yields byte-identical shard dumps
   and a byte-identical merged profile (after canonical ordering).
2. **Parallel stitch == serial stitch** — the map-reduce presentation
   phase produces exactly the profile a serial fold produces.
3. **Serial equivalence** — a ``shards=1`` plan writes dumps that are
   byte-for-byte the files the legacy in-process path writes, in both
   formats.
"""

import hashlib

from repro.apps.tpcw import TpcwSystem
from repro.core.persist import PROFILE_FORMATS
from repro.parallel import (
    canonical_profile_bytes,
    parallel_stitch,
    plan_shards,
    run_shards,
    stitch_spool,
)

SEED = 42
CLIENTS = 20
DURATION = 20.0
WARMUP = 5.0


def _run(tmp_path, shards, jobs, tag):
    spool = str(tmp_path / f"spool-{tag}")
    plan = plan_shards(
        "tpcw",
        seed=SEED,
        clients=CLIENTS,
        shards=shards,
        duration=DURATION,
        warmup=WARMUP,
        spool_dir=spool,
        profile_format="v2",
    )
    return run_shards(plan, jobs=jobs), spool


def _file_hashes(run):
    return [
        hashlib.sha256(open(path, "rb").read()).hexdigest()
        for result in run.results
        for path in result.dump_paths
    ]


def _stage_weights(profile):
    weights = {}
    for (stage, _), cct in profile.entries.items():
        weights[stage] = weights.get(stage, 0.0) + cct.total_weight()
    return weights


def test_jobs_do_not_change_the_output(tmp_path):
    """4 shards, 1 worker vs 2 workers: identical everything."""
    serial, _ = _run(tmp_path, shards=4, jobs=1, tag="serial")
    pooled, _ = _run(tmp_path, shards=4, jobs=2, tag="pooled")

    assert _file_hashes(serial) == _file_hashes(pooled)
    assert serial.throughput() == pooled.throughput()
    assert serial.served() == pooled.served()
    assert serial.crosstalk_wait_ms() == pooled.crosstalk_wait_ms()
    assert serial.db_cpu_share() == pooled.db_cpu_share()

    a = serial.stitch(jobs=1)
    b = pooled.stitch(jobs=2)
    assert canonical_profile_bytes(a) == canonical_profile_bytes(b)
    # Exactly the same per-stage weights, not just approximately.
    assert _stage_weights(a) == _stage_weights(b)


def test_parallel_stitch_equals_serial_stitch(tmp_path):
    run, spool = _run(tmp_path, shards=4, jobs=1, tag="stitch")
    groups = run.dump_groups()
    serial = parallel_stitch(groups, jobs=1)
    pooled = parallel_stitch(groups, jobs=3)
    assert canonical_profile_bytes(serial) == canonical_profile_bytes(pooled)
    # The spool manifest reconstructs the same groups.
    from_manifest = stitch_spool(spool, jobs=2)
    assert canonical_profile_bytes(from_manifest) == canonical_profile_bytes(serial)


def test_single_shard_matches_legacy_serial_path(tmp_path):
    """--shards 1 is byte-identical to the in-process run, per format."""
    for profile_format in PROFILE_FORMATS:
        system = TpcwSystem(clients=CLIENTS, seed=SEED)
        system.run(duration=DURATION, warmup=WARMUP)
        legacy_dir = tmp_path / f"legacy-{profile_format}"
        legacy = system.save_profiles(str(legacy_dir), profile_format)

        plan = plan_shards(
            "tpcw",
            seed=SEED,
            clients=CLIENTS,
            shards=1,
            duration=DURATION,
            warmup=WARMUP,
            spool_dir=str(tmp_path / f"sharded-{profile_format}"),
            profile_format=profile_format,
        )
        run = run_shards(plan, jobs=1)
        sharded = run.results[0].dump_paths
        assert len(sharded) == len(legacy)
        legacy_by_name = {
            path.rsplit("/", 1)[-1]: path for path in legacy.values()
        }
        for path in sharded:
            name = path.rsplit("/", 1)[-1]
            with open(path, "rb") as a, open(legacy_by_name[name], "rb") as b:
                assert a.read() == b.read(), (profile_format, name)


def test_rerun_is_byte_reproducible(tmp_path):
    """Same plan, fresh processes: identical dumps (no hidden state)."""
    first, _ = _run(tmp_path, shards=2, jobs=2, tag="first")
    second, _ = _run(tmp_path, shards=2, jobs=2, tag="second")
    assert _file_hashes(first) == _file_hashes(second)


def test_openloop_shards_are_deterministic(tmp_path):
    """The open-loop workload shards like the closed-loop ones: same
    plan, any job count, byte-identical dumps and aggregates."""
    params = {
        "arrival_rate": 300.0,
        "total_clients": 600,
        "diurnal_amplitude": 0.4,
        "diurnal_period": 5.0,
        "flash_crowds": [[1.0, 1.0, 2.0]],
        "think": {"distribution": "pareto", "alpha": 1.5, "minimum": 0.05},
    }

    def run(tag, jobs):
        plan = plan_shards(
            "openloop",
            seed=13,
            clients=600,
            shards=4,
            duration=4.0,
            params=params,
            spool_dir=str(tmp_path / tag),
            profile_format="v2",
        )
        return run_shards(plan, jobs=jobs)

    serial = run("serial", jobs=1)
    pooled = run("pooled", jobs=2)
    assert _file_hashes(serial) == _file_hashes(pooled)
    assert serial.sessions_started() == pooled.sessions_started()
    assert serial.sessions_finished() == pooled.sessions_finished()
    assert serial.served() == pooled.served()
    assert serial.mean_response() == pooled.mean_response()
    assert serial.sessions_started() == 600  # the budget, exactly
    assert canonical_profile_bytes(serial.stitch()) == canonical_profile_bytes(
        pooled.stitch(jobs=2, group_size=2)
    )


def test_parallel_load_ships_stages_across_the_pool(tmp_path):
    """Loaded StageRuntimes must pickle back from pool workers (the
    default crosstalk classifier was once a lambda and couldn't)."""
    from repro.parallel import parallel_load

    system = TpcwSystem(clients=10, seed=7)
    system.run(duration=5.0, warmup=1.0)
    paths = list(system.save_profiles(str(tmp_path), "v2").values())
    serial = parallel_load(paths, jobs=1)
    pooled = parallel_load(paths, jobs=2)
    assert [stage.name for stage in pooled] == [stage.name for stage in serial]
    for a, b in zip(serial, pooled):
        assert a.total_weight() == b.total_weight()
