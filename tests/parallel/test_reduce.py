"""Hierarchical reduce: exactness, associativity, streaming artifacts.

The load-bearing property: shard→group→global must be byte-identical
to the flat all-shards reduce for *every* group size, v1 and v2 dumps
alike.  Cross-shard (stage, context) collisions make the merged
weights sums of floats from different shards, and float addition is
not associative — these tests prove the Shewchuk-partials accumulator
erases the grouping from the result.
"""

import hashlib
import math
import random

import pytest

from repro.parallel import (
    canonical_profile_bytes,
    hierarchical_stitch,
    parallel_stitch,
    plan_shards,
    run_shards,
)
from repro.parallel.reduce import (
    ProfileAccumulator,
    default_group_size,
    grow_partials,
    plan_groups,
)

SHARDS = 5


def _run(tmp_path, profile_format):
    plan = plan_shards(
        "haboob",
        seed=42,
        clients=5 * SHARDS,
        shards=SHARDS,
        duration=2.5,
        spool_dir=str(tmp_path / profile_format),
        profile_format=profile_format,
    )
    return run_shards(plan, jobs=1)


class TestGrowPartials:
    def test_matches_fsum_exactly(self):
        rng = random.Random(99)
        values = [rng.uniform(0, 1) * 10 ** rng.randint(-12, 12)
                  for _ in range(500)]
        partials = []
        for value in values:
            grow_partials(partials, value)
        assert math.fsum(partials) == math.fsum(values)

    def test_grouping_invariant(self):
        # The non-associativity witness: naive addition differs between
        # groupings, the partials representation does not.
        values = [0.1] * 10 + [1e16, 1.0, -1e16] + [0.3] * 7
        for split in range(1, len(values)):
            left, right = [], []
            for value in values[:split]:
                grow_partials(left, value)
            for value in values[split:]:
                grow_partials(right, value)
            merged = list(left)
            for value in right:
                grow_partials(merged, value)
            assert math.fsum(merged) == math.fsum(values)

    def test_single_value_identity(self):
        # fsum([w]) == w: single-contributor entries keep their bytes.
        for value in (0.1, 1.7e-300, 12345.678):
            partials = []
            grow_partials(partials, value)
            assert math.fsum(partials) == value


class TestPlanGroups:
    def test_contiguous_cover(self):
        groups = plan_groups(10, 3)
        assert groups == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]

    def test_group_size_one(self):
        assert plan_groups(3, 1) == [[0], [1], [2]]

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            plan_groups(4, 0)

    def test_default_is_about_sqrt(self):
        assert default_group_size(64) == 8
        assert default_group_size(2) == 2


@pytest.mark.parametrize("profile_format", ["v1", "v2"])
class TestAssociativity:
    def test_every_group_size_matches_flat(self, tmp_path, profile_format):
        run = _run(tmp_path, profile_format)
        groups = run.dump_groups()
        flat = parallel_stitch(groups)
        flat_bytes = canonical_profile_bytes(flat)
        for group_size in range(1, SHARDS + 1):
            merged = hierarchical_stitch(groups, group_size=group_size)
            assert canonical_profile_bytes(merged) == flat_bytes, (
                f"group_size={group_size} diverged from flat reduce"
            )
            assert merged.synopsis_refs == flat.synopsis_refs
            assert merged.unresolved_refs == flat.unresolved_refs

    def test_sharded_run_stitch_group_size(self, tmp_path, profile_format):
        run = _run(tmp_path, profile_format)
        flat = canonical_profile_bytes(run.stitch())
        assert canonical_profile_bytes(run.stitch(group_size=0)) == flat
        assert canonical_profile_bytes(run.stitch(group_size=2)) == flat


class TestAccumulator:
    def test_feeding_order_is_invisible(self, tmp_path):
        run = _run(tmp_path, "v2")
        profiles = [
            parallel_stitch([group]) for group in run.dump_groups()
        ]
        from repro.parallel.stitching import _tag_unresolved

        tagged = [
            _tag_unresolved(profile, f"@shard{index}")
            for index, profile in enumerate(profiles)
        ]
        orders = [list(range(len(tagged)))]
        rng = random.Random(5)
        for _ in range(3):
            order = list(range(len(tagged)))
            rng.shuffle(order)
            orders.append(order)
        digests = set()
        for order in orders:
            accumulator = ProfileAccumulator()
            for index in order:
                accumulator.add_profile(tagged[index])
            digests.add(hashlib.sha256(
                canonical_profile_bytes(accumulator.finalize())
            ).hexdigest())
        assert len(digests) == 1

    def test_write_absorb_round_trip(self, tmp_path):
        run = _run(tmp_path, "v2")
        accumulator = ProfileAccumulator()
        for index, group in enumerate(run.dump_groups()):
            from repro.parallel.stitching import _stitch_group, _tag_unresolved

            accumulator.add_profile(
                _tag_unresolved(_stitch_group((group, True)), f"@shard{index}")
            )
        direct = canonical_profile_bytes(accumulator.finalize())

        artifact = str(tmp_path / "group.wdr")
        written = accumulator.write(artifact)
        assert written > 0
        restored = ProfileAccumulator()
        restored.absorb_file(artifact)
        assert canonical_profile_bytes(restored.finalize()) == direct

    def test_absorb_rejects_wrong_magic(self, tmp_path):
        from repro.core.persist import write_frame

        bogus = str(tmp_path / "bogus.wdr")
        with open(bogus, "wb") as handle:
            write_frame(handle, ["not", "a", "reduce", "file"])
        accumulator = ProfileAccumulator()
        with pytest.raises(ValueError):
            accumulator.absorb_file(bogus)

    def test_absorb_rejects_truncated(self, tmp_path):
        run = _run(tmp_path, "v2")
        accumulator = ProfileAccumulator()
        from repro.parallel.stitching import _stitch_group

        accumulator.add_profile(_stitch_group((run.dump_groups()[0], True)))
        artifact = str(tmp_path / "group.wdr")
        accumulator.write(artifact)
        with open(artifact, "rb") as handle:
            blob = handle.read()
        clipped = str(tmp_path / "clipped.wdr")
        with open(clipped, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        with pytest.raises(ValueError):
            ProfileAccumulator().absorb_file(clipped)


class TestHierarchicalStats:
    def test_stats_describe_the_tree(self, tmp_path):
        run = _run(tmp_path, "v2")
        stats = {}
        hierarchical_stitch(run.dump_groups(), group_size=2, stats=stats)
        assert stats["group_size"] == 2
        assert stats["groups"] == 3  # ceil(5 / 2)
        assert len(stats["group_walls"]) == 3
        assert all(wall >= 0 for wall in stats["group_walls"])
        assert all(size > 0 for size in stats["group_bytes"])
        assert stats["parent_fold_s"] >= 0

    def test_reduce_dir_keeps_artifacts(self, tmp_path):
        run = _run(tmp_path, "v2")
        reduce_dir = tmp_path / "reduce"
        hierarchical_stitch(
            run.dump_groups(), group_size=2, reduce_dir=str(reduce_dir)
        )
        artifacts = sorted(p.name for p in reduce_dir.iterdir())
        assert artifacts == [
            "group-0000.wdr", "group-0001.wdr", "group-0002.wdr",
        ]

    def test_parallel_reduce_matches_serial(self, tmp_path):
        from repro.parallel import shutdown_pools

        run = _run(tmp_path, "v2")
        groups = run.dump_groups()
        serial = canonical_profile_bytes(
            hierarchical_stitch(groups, jobs=1, group_size=2)
        )
        try:
            parallel = canonical_profile_bytes(
                hierarchical_stitch(groups, jobs=2, group_size=2)
            )
        finally:
            shutdown_pools()
        assert parallel == serial
