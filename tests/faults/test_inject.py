"""Fault injector: determinism, endpoint wiring, crash scheduling."""

import pytest

from repro.channels import Connection, Endpoint, Message, Recv, Send
from repro.faults import FaultInjector, FaultPlan, FaultRule, install_faults
from repro.sim import Kernel


def _drain(kernel, endpoint, horizon=5.0):
    """Run the kernel and return the messages delivered to ``endpoint``."""
    received = []

    def sink():
        while True:
            message = yield Recv(endpoint)
            received.append(message)

    thread = kernel.spawn(sink(), name="sink")
    thread.daemon = True
    kernel.run(until=horizon)
    return received


def test_install_faults_sets_kernel_hook():
    kernel = Kernel()
    injector = install_faults(kernel, "drop=0.5", seed=7)
    assert kernel.faults is injector
    assert injector.seed == 7


def test_attach_returns_none_when_no_rule_matches():
    kernel = Kernel()
    install_faults(kernel, "drop=0.5,match=mysql")
    endpoint = Endpoint(kernel, name="squid.to_client")
    assert endpoint._faults is None


def test_drop_everything():
    kernel = Kernel()
    injector = install_faults(kernel, "drop=1.0")
    endpoint = Endpoint(kernel, name="wire")
    for i in range(10):
        endpoint.send(Message(i, 1))
    received = _drain(kernel, endpoint)
    assert received == []
    assert injector.messages_seen == 10
    assert injector.dropped == 10


def test_duplicate_everything():
    kernel = Kernel()
    injector = install_faults(kernel, "dup=1.0")
    endpoint = Endpoint(kernel, name="wire")
    for i in range(5):
        endpoint.send(Message(i, 1))
    received = _drain(kernel, endpoint)
    assert len(received) == 10
    assert injector.duplicated == 5


def test_delay_defers_delivery():
    kernel = Kernel()
    install_faults(kernel, "delay=1.0:0.5")
    endpoint = Endpoint(kernel, name="wire")
    endpoint.send(Message("late", 1))
    # Nothing is receivable before the injected delay elapses.
    kernel.run(until=0.4)
    assert not endpoint.readable
    kernel.run(until=0.6)
    assert endpoint.try_recv().payload == "late"


def test_reorder_lets_later_messages_overtake():
    kernel = Kernel()
    # Deterministically reorder the first message far enough that the
    # second (sent fault-free by probability 0 after the rule stops
    # matching nothing — we instead just send both under the rule and
    # check arrival order differs from send order for some seed).
    install_faults(kernel, "reorder=1.0:0.1", seed=3)
    endpoint = Endpoint(kernel, name="wire")
    endpoint.send(Message("first", 1))
    endpoint.send(Message("second", 1))
    received = _drain(kernel, endpoint)
    assert {m.payload for m in received} == {"first", "second"}
    # With both messages uniformly delayed in [0, 0.1), at least one
    # seed-determined ordering exists; assert the run is deterministic
    # rather than a specific order (covered by the determinism test).
    assert len(received) == 2


def test_same_seed_reproduces_identical_fault_decisions():
    def run(seed):
        kernel = Kernel()
        injector = install_faults(kernel, "drop=0.3,dup=0.2,reorder=0.2", seed=seed)
        endpoint = Endpoint(kernel, name="wire")
        for i in range(200):
            endpoint.send(Message(i, 1))
        received = _drain(kernel, endpoint)
        return injector.report(), [m.payload for m in received]

    report_a, order_a = run(11)
    report_b, order_b = run(11)
    assert report_a == report_b
    assert order_a == order_b
    report_c, order_c = run(12)
    assert (report_c, order_c) != (report_a, order_a)


def test_rng_streams_keyed_by_attach_order_not_name():
    """Two endpoints with the same name still get distinct streams."""
    kernel = Kernel()
    install_faults(kernel, "drop=0.5", seed=0)
    a = Endpoint(kernel, name="wire")
    b = Endpoint(kernel, name="wire")
    draws_a = [a._faults.rng.random() for _ in range(5)]
    draws_b = [b._faults.rng.random() for _ in range(5)]
    assert draws_a != draws_b


def test_fault_free_endpoint_behaviour_unchanged():
    """With no injector, send/recv is the original synchronous path."""
    kernel = Kernel()
    conn = Connection(kernel)
    conn.to_server.send(Message("hello", 5))
    assert conn.to_server.try_recv().payload == "hello"


class _CrashTarget:
    def __init__(self):
        self.crashed_with = []

    def crash(self, restart_after=None):
        self.crashed_with.append(restart_after)


def test_schedule_crashes_fires_at_virtual_time():
    kernel = Kernel()
    injector = install_faults(kernel, "crash=web@2.0+0.5")
    target = _CrashTarget()
    assert injector.schedule_crashes(kernel, {"web": target}) == 1
    kernel.run(until=1.9)
    assert target.crashed_with == []
    kernel.run(until=2.1)
    assert target.crashed_with == [0.5]
    assert injector.crashes_fired == 1


def test_schedule_crashes_unknown_stage_raises():
    kernel = Kernel()
    injector = install_faults(kernel, "crash=nosuch@1")
    with pytest.raises(KeyError):
        injector.schedule_crashes(kernel, {"web": _CrashTarget()})


def test_report_shape():
    injector = FaultInjector(FaultPlan([FaultRule(drop=0.1)]), seed=0)
    report = injector.report()
    assert set(report) == {
        "messages_seen",
        "dropped",
        "duplicated",
        "reordered",
        "delayed",
        "crashes",
    }
    assert all(value == 0 for value in report.values())
