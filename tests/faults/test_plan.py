"""Fault-plan parsing: spec strings, JSON, dicts, and strictness."""

import json

import pytest

from repro.faults import CrashSpec, FaultPlan, FaultRule, FaultSpecError
from repro.faults.plan import DEFAULT_DELAY, DEFAULT_REORDER_WINDOW


def test_parse_spec_string_full_grammar():
    plan = FaultPlan.parse(
        "drop=0.01,dup=0.02,reorder=0.05:0.02,match=mysql;crash=tomcat@30+1.0"
    )
    assert len(plan.rules) == 1
    rule = plan.rules[0]
    assert rule.match == "mysql"
    assert rule.drop == 0.01
    assert rule.duplicate == 0.02
    assert rule.reorder == 0.05
    assert rule.reorder_window == 0.02
    assert len(plan.crashes) == 1
    crash = plan.crashes[0]
    assert crash.stage == "tomcat"
    assert crash.at == 30.0
    assert crash.restart == 1.0


def test_parse_defaults_for_unscoped_amounts():
    plan = FaultPlan.parse("reorder=0.1,delay=0.2")
    rule = plan.rules[0]
    assert rule.match is None
    assert rule.reorder_window == DEFAULT_REORDER_WINDOW
    assert rule.delay == 0.2
    assert rule.delay_amount == DEFAULT_DELAY


def test_parse_crash_without_restart():
    plan = FaultPlan.parse("crash=mysql@12.5")
    assert plan.crashes[0].restart is None
    assert not plan.is_noop


def test_parse_dict_form():
    plan = FaultPlan.parse(
        {
            "rules": [{"match": "mysql", "drop": 0.01, "dup": 0.01}],
            "crashes": [{"stage": "tomcat", "at": 30.0, "restart": 1.0}],
        }
    )
    assert plan.rules[0].drop == 0.01
    assert plan.rules[0].duplicate == 0.01
    assert plan.crashes[0].stage == "tomcat"


def test_parse_json_file(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps({"rules": [{"drop": 0.5}]}))
    plan = FaultPlan.parse(str(path))
    assert plan.rules[0].drop == 0.5


def test_parse_passes_through_existing_plan():
    plan = FaultPlan([FaultRule(drop=0.1)])
    assert FaultPlan.parse(plan) is plan


@pytest.mark.parametrize(
    "spec",
    [
        "drop=1.5",  # probability out of range
        "drop=abc",  # not a number
        "frobnicate=0.1",  # unknown key
        "drop",  # missing value
        "crash=tomcat",  # missing @time
        "crash=tomcat@-1",  # negative time
        "reorder=0.1:-0.5",  # negative window
    ],
)
def test_malformed_specs_raise(spec):
    with pytest.raises(FaultSpecError):
        FaultPlan.parse(spec)


def test_unknown_dict_keys_raise():
    with pytest.raises(FaultSpecError):
        FaultPlan.parse({"rules": [{"dorp": 0.01}]})
    with pytest.raises(FaultSpecError):
        FaultPlan.parse({"rulez": []})
    with pytest.raises(FaultSpecError):
        FaultPlan.parse({"crashes": [{"stage": "x", "at": 1.0, "when": 2}]})


def test_is_noop():
    assert FaultPlan().is_noop
    assert FaultPlan.parse("drop=0.0").is_noop
    assert not FaultPlan.parse("drop=0.001").is_noop
    assert not FaultPlan.parse("crash=x@1").is_noop


def test_rule_for_first_matching_non_noop_rule_wins():
    plan = FaultPlan(
        [
            FaultRule(match="mysql", drop=0.0),  # noop: skipped
            FaultRule(match="mysql", drop=0.2),
            FaultRule(match=None, drop=0.1),
        ]
    )
    assert plan.rule_for("tpcw#3.to_mysql").drop == 0.2
    assert plan.rule_for("tomcat.listener").drop == 0.1


def test_rule_for_returns_none_without_match():
    plan = FaultPlan([FaultRule(match="mysql", drop=0.2)])
    assert plan.rule_for("squid#1.to_client") is None


def test_crash_spec_validation():
    with pytest.raises(FaultSpecError):
        CrashSpec("x", at=-1.0)
    with pytest.raises(FaultSpecError):
        CrashSpec("x", at=1.0, restart=-0.5)
