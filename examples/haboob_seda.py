"""The Haboob case study (§8.3): per-stage-path profiling in SEDA.

Runs the SEDA web server under a web trace and prints Fig 10's result:
the WriteStage's CPU split between the cache-hit path and the
cache-miss path through the stage graph.

Run:  python examples/haboob_seda.py
"""

from repro.analysis import context_shares, render_stage_profile
from repro.apps.haboob import HaboobServer
from repro.core.context import TransactionContext
from repro.sim import Kernel, Rng
from repro.workloads import HttpClientPool, WebTrace


def main() -> None:
    kernel = Kernel()
    # Corpus much larger than the page cache: both stage paths stay hot.
    trace = WebTrace(Rng(23), objects=5000, requests_per_connection_mean=4.0)
    from repro.apps.haboob import HaboobConfig

    server = HaboobServer(
        kernel, trace, config=HaboobConfig(cache_bytes=2 * 1024 * 1024)
    )
    server.start()
    clients = HttpClientPool(kernel, server.listener, trace, clients=6)
    clients.start()
    kernel.run(until=4.0)

    print(f"served {server.responses_sent} responses at "
          f"{server.throughput_mbps():.1f} Mb/s; page cache hit ratio "
          f"{server.page_cache.hit_ratio:.0%}")
    print()
    print(render_stage_profile(server.stage_runtime, min_share=1.0))
    print()
    shares = context_shares(server.stage_runtime)
    hit = sum(
        share
        for ctxt, share in shares.items()
        if ctxt.elements
        and ctxt.elements[-1] == "WriteStage"
        and "MissStage" not in ctxt.elements
    )
    miss = sum(
        share
        for ctxt, share in shares.items()
        if ctxt.elements
        and ctxt.elements[-1] == "WriteStage"
        and "MissStage" in ctxt.elements
    )
    print(f"WriteStage via cache-hit path:  {hit:5.1f}% of CPU")
    print(f"WriteStage via cache-miss path: {miss:5.1f}% of CPU")


if __name__ == "__main__":
    main()
