"""The Apache case study (§8.1): transaction flow through shared memory.

Runs the Apache-like threaded server under a synthetic web trace while
Whodunit emulates its critical sections, then shows:

- the detected transaction flow from the listener's ``ap_queue_push``
  to the workers (Fig 8's dashed edge),
- the memory allocator correctly classified as *not* transaction flow,
- the transactional profile of the server, and
- the cost of emulating the queue's critical sections (Table 3).

Run:  python examples/apache_shared_memory.py
"""

from repro.analysis import render_stage_profile
from repro.apps.httpd import HttpdServer
from repro.sim import Kernel, Rng
from repro.vm import Emulator, Machine
from repro.vm.programs import BoundedQueue
from repro.workloads import HttpClientPool, WebTrace


def run_server():
    kernel = Kernel()
    trace = WebTrace(Rng(7), objects=300, requests_per_connection_mean=3.0)
    server = HttpdServer(kernel, trace)
    server.start()
    clients = HttpClientPool(kernel, server.listener_socket, trace, clients=6)
    clients.start()
    kernel.run(until=3.0)
    return server


def show_flow(server: HttpdServer) -> None:
    detector = server.region.detector
    print("=== lock classifications (flow detection, §3) ===")
    for lock, classification in detector.classifications().items():
        name = getattr(lock, "name", lock)
        print(f"  {name:<28} -> {classification}")
    print()
    print("=== transaction flow edges (producer context -> consumer) ===")
    seen = set()
    for context, consumer in detector.flow_edges():
        key = (context, consumer)
        if key in seen:
            continue
        seen.add(key)
        if len(seen) > 6:
            break
        print(f"  {context!r} -> thread tid={consumer}")


def show_emulation_cost(server: HttpdServer) -> None:
    print()
    print("=== emulation cost of the queue critical sections (Table 3) ===")
    machine = Machine()
    queue = BoundedQueue(machine.memory)
    emulator = Emulator()
    for label, program, args in [
        ("ap_queue_push", queue.push_program, (1, 2)),
        ("ap_queue_pop", queue.pop_program, ()),
    ]:
        machine.registers("t").load_arguments(*args)
        direct = emulator.run(program, machine, "t", mode="direct")
        emulator.invalidate_cache()
        machine.registers("t").load_arguments(*args)
        first = emulator.run(program, machine, "t")
        machine.registers("t").load_arguments(*args)
        cached = emulator.run(program, machine, "t")
        print(
            f"  {label:<16} direct {direct.cycles:8.1f}  "
            f"translate+emulate {first.cycles:9.1f}  "
            f"emulate-only {cached.cycles:9.1f} cycles"
        )


def main() -> None:
    server = run_server()
    print(f"served {server.requests_served} requests, "
          f"{server.bytes_sent / 1e6:.1f} MB, "
          f"throughput {server.throughput_mbps():.1f} Mb/s")
    print()
    show_flow(server)
    print()
    print(render_stage_profile(server.stage, min_share=1.0))
    show_emulation_cost(server)


if __name__ == "__main__":
    main()
