"""Quickstart: transactional profiling of a two-stage RPC application.

Builds the paper's §5 example — a caller with two transaction paths
(``foo`` and ``bar``) invoking an RPC service on a second stage — then
profiles it with Whodunit and prints the stitched end-to-end profile:
the callee's call-path tree appears once per caller context (Fig 7).

Run:  python examples/quickstart.py
"""

from repro.analysis import render_stitched_profile
from repro.channels import Connection
from repro.channels.rpc import call, recv_request, send_response
from repro.core import StageRuntime, stitch_profiles, work
from repro.sim import CPU, CurrentThread, Kernel
from repro.sim.process import frame


def main() -> None:
    kernel = Kernel()
    connection = Connection(kernel, latency=100e-6)

    caller_stage = StageRuntime("caller")
    callee_stage = StageRuntime("callee")
    caller_cpu = CPU(kernel, name="caller-cpu")
    callee_cpu = CPU(kernel, name="callee-cpu")

    def caller():
        thread = yield CurrentThread()
        with frame(thread, "main_caller"):
            # Two different transaction paths reach the same RPC service.
            for procedure, repeats in [("foo", 3), ("bar", 1)]:
                with frame(thread, procedure):
                    with frame(thread, "rpc_call"):
                        for _ in range(repeats):
                            yield from work(thread, caller_cpu, 1e-3)
                            yield from call(
                                thread,
                                connection.to_server,
                                connection.to_client,
                                payload=procedure,
                                size=256,
                            )

    def callee():
        thread = yield CurrentThread()
        thread.daemon = True
        with frame(thread, "main_callee"):
            with frame(thread, "svc_run"):
                while True:
                    request = yield from recv_request(thread, connection.to_server)
                    with frame(thread, "dispatch"):
                        with frame(thread, "callee_rpc_svc"):
                            # bar's requests are 4x as expensive.
                            cost = 2e-3 if request.payload == "foo" else 8e-3
                            yield from work(thread, callee_cpu, cost)
                    yield from send_response(
                        thread, connection.to_client, request, "result", 1024
                    )

    kernel.spawn(caller(), name="caller", stage=caller_stage)
    kernel.spawn(callee(), name="callee", stage=callee_stage)
    kernel.run(until=5.0)

    profile = stitch_profiles([caller_stage, callee_stage])
    print(render_stitched_profile(profile))
    print()
    print("Note how stage 'callee' keeps two separate trees, one per")
    print("caller context — a flat profiler would merge them and hide")
    print("that 'bar' is the expensive path despite being called once.")


if __name__ == "__main__":
    main()
