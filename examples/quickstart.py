"""Quickstart: transactional profiling of a two-stage RPC application.

Builds the paper's §5 example — a caller with two transaction paths
(``foo`` and ``bar``) invoking an RPC service on a second stage — then
profiles it with Whodunit and prints the stitched end-to-end profile:
the callee's call-path tree appears once per caller context (Fig 7).

Run:  python examples/quickstart.py [trace.json]

With a file argument it also records a live telemetry trace of the run
and writes it in Chrome trace-event format — open it in Perfetto
(https://ui.perfetto.dev) to see the RPC hops on a timeline.
"""

import sys
from typing import Optional

from repro import telemetry
from repro.analysis import render_stitched_profile
from repro.channels import Connection
from repro.channels.rpc import call, recv_request, send_response
from repro.core import StageRuntime, stitch_profiles, work
from repro.sim import CPU, CurrentThread, Kernel
from repro.sim.process import frame


def main(trace_out: Optional[str] = None) -> None:
    if trace_out:
        telemetry.install("spans")
    kernel = Kernel()
    connection = Connection(kernel, latency=100e-6)

    caller_stage = StageRuntime("caller")
    callee_stage = StageRuntime("callee")
    caller_cpu = CPU(kernel, name="caller-cpu")
    callee_cpu = CPU(kernel, name="callee-cpu")

    def caller():
        thread = yield CurrentThread()
        with frame(thread, "main_caller"):
            # Two different transaction paths reach the same RPC service.
            for procedure, repeats in [("foo", 3), ("bar", 1)]:
                with frame(thread, procedure):
                    with frame(thread, "rpc_call"):
                        for _ in range(repeats):
                            yield from work(thread, caller_cpu, 1e-3)
                            yield from call(
                                thread,
                                connection.to_server,
                                connection.to_client,
                                payload=procedure,
                                size=256,
                            )

    def callee():
        thread = yield CurrentThread()
        thread.daemon = True
        with frame(thread, "main_callee"):
            with frame(thread, "svc_run"):
                while True:
                    request = yield from recv_request(thread, connection.to_server)
                    with frame(thread, "dispatch"):
                        with frame(thread, "callee_rpc_svc"):
                            # bar's requests are 4x as expensive.
                            cost = 2e-3 if request.payload == "foo" else 8e-3
                            yield from work(thread, callee_cpu, cost)
                    yield from send_response(
                        thread, connection.to_client, request, "result", 1024
                    )

    kernel.spawn(caller(), name="caller", stage=caller_stage)
    kernel.spawn(callee(), name="callee", stage=callee_stage)
    kernel.run(until=5.0)

    profile = stitch_profiles([caller_stage, callee_stage])
    print(render_stitched_profile(profile))
    print()
    print("Note how stage 'callee' keeps two separate trees, one per")
    print("caller context — a flat profiler would merge them and hide")
    print("that 'bar' is the expensive path despite being called once.")

    if trace_out:
        from repro.telemetry.export import write_chrome_trace

        tele = telemetry.active()
        write_chrome_trace(trace_out, tele.spans)
        print(f"\nwrote Perfetto-loadable trace "
              f"({tele.spans.completed} spans) to {trace_out}")
        telemetry.uninstall()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
