"""The TPC-W case study (§8.4): profile-guided optimisation end to end.

Runs the three-tier bookstore (Squid -> Tomcat -> MySQL-like database)
under the browsing mix, prints the Table-1-style per-interaction MySQL
CPU shares and crosstalk waits, then applies the paper's two
Whodunit-inspired optimisations and shows their effect:

- converting the ``item`` table to row-level locking (InnoDB) cuts
  AdminConfirm's response time, and
- caching BestSellers/SearchResult results lifts peak throughput.

Run:  python examples/tpcw_bookstore.py    (takes ~30s)

``telemetry_run`` additionally shows the live-telemetry layer: a short
run with spans + metrics enabled, exported as a Chrome trace-event file
you can open in Perfetto (https://ui.perfetto.dev).
"""

from typing import Optional

from repro import telemetry
from repro.analysis import render_crosstalk, render_telemetry
from repro.apps.db.locks import INNODB
from repro.apps.tpcw import TpcwSystem

CLIENTS = 120
DURATION = 120.0
WARMUP = 30.0


def profile_run() -> None:
    print(f"== profiling the original system ({CLIENTS} clients) ==")
    system = TpcwSystem(clients=CLIENTS, seed=17)
    results = system.run(duration=DURATION, warmup=WARMUP)
    print(f"throughput: {results.throughput_tpm():.0f} interactions/min, "
          f"db CPU {system.db.cpu.utilization():.0%} busy")
    print()
    print("MySQL CPU share and crosstalk per interaction (Table 1):")
    shares = results.db_cpu_share()
    waits = results.crosstalk_wait_ms()
    print(f"{'interaction':<22}{'CPU %':>8}{'crosstalk ms':>14}")
    for name in sorted(shares, key=lambda n: -shares.get(n, 0)):
        print(f"{name:<22}{shares.get(name, 0):>8.2f}{waits.get(name, 0):>14.2f}")
    print()
    print("Lock-wait pairs at the database (who waits on whom):")
    print(render_crosstalk(system.db.crosstalk, limit=8))


def optimised_runs() -> None:
    print()
    # Run at a client count past the original system's saturation knee
    # (~200, Fig 12) so the caching optimisation has headroom to show.
    clients = 250
    print(f"== applying the Whodunit-inspired optimisations ({clients} clients) ==")
    base = TpcwSystem(clients=clients, seed=18)
    base_results = base.run(duration=DURATION, warmup=WARMUP)
    inno = TpcwSystem(clients=clients, seed=18, item_engine=INNODB)
    inno_results = inno.run(duration=DURATION, warmup=WARMUP)
    cached = TpcwSystem(clients=clients, seed=18, caching=True)
    cached_results = cached.run(duration=DURATION, warmup=WARMUP)

    admin_before = base_results.mean_response("AdminConfirm") * 1000
    admin_after = inno_results.mean_response("AdminConfirm") * 1000
    print(f"AdminConfirm mean response: {admin_before:.0f} ms (MyISAM) -> "
          f"{admin_after:.0f} ms (InnoDB item table)")
    print(f"throughput: {base_results.throughput_tpm():.0f} tpm (original) -> "
          f"{cached_results.throughput_tpm():.0f} tpm "
          f"(BestSellers/SearchResult caching)")


def telemetry_run(
    trace_out: str,
    clients: int = 10,
    duration: float = 5.0,
    warmup: float = 1.0,
    metrics_out: Optional[str] = None,
) -> "telemetry.Telemetry":
    """Short TPC-W run with live telemetry; writes a Perfetto trace."""
    from repro.telemetry.export import write_chrome_trace, write_prometheus

    tele = telemetry.install("full")
    try:
        system = TpcwSystem(clients=clients, seed=17)
        system.run(duration=duration, warmup=warmup)
        write_chrome_trace(trace_out, tele.spans)
        print(f"wrote Perfetto-loadable trace "
              f"({tele.spans.completed} spans) to {trace_out}")
        if metrics_out:
            write_prometheus(metrics_out, tele.metrics)
            print(f"wrote Prometheus metrics to {metrics_out}")
        print()
        print(render_telemetry(tele))
        return tele
    finally:
        telemetry.uninstall()


def main() -> None:
    profile_run()
    optimised_runs()


if __name__ == "__main__":
    main()
