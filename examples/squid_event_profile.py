"""The Squid case study (§8.2): event contexts split cache hits/misses.

Runs the event-driven proxy in front of an origin server and prints the
transactional profile.  The headline observation of Fig 9: the
``commHandleWrite`` handler appears under *two* transaction contexts —
after ``[httpAccept, clientReadRequest]`` for cache hits and after
``[httpAccept, clientReadRequest, httpReadReply]`` for misses — a
distinction no regular profiler makes.

Run:  python examples/squid_event_profile.py
"""

from repro.analysis import context_shares, render_stage_profile
from repro.apps.proxy import OriginServer, SquidProxy
from repro.core.context import TransactionContext
from repro.sim import Kernel, Rng
from repro.workloads import HttpClientPool, WebTrace

HIT_WRITE = TransactionContext(
    ("httpAccept", "clientReadRequest", "commHandleWrite")
)
MISS_WRITE = TransactionContext(
    ("httpAccept", "clientReadRequest", "httpReadReply", "commHandleWrite")
)


def main() -> None:
    kernel = Kernel()
    # A corpus much larger than the proxy cache, as with the Rice trace:
    # zipf popularity then yields a realistic hit/miss split.
    trace = WebTrace(Rng(11), objects=5000, requests_per_connection_mean=4.0)
    origin = OriginServer(kernel, size_of=lambda key: trace.size_of(key[1]))
    origin.start()
    from repro.apps.proxy import SquidConfig

    squid = SquidProxy(
        kernel, origin.listener, config=SquidConfig(cache_bytes=4 * 1024 * 1024)
    )
    squid.start()
    clients = HttpClientPool(kernel, squid.listener, trace, clients=6)
    clients.start()
    kernel.run(until=4.0)

    print(
        f"proxy served {squid.responses_sent} responses at "
        f"{squid.throughput_mbps():.1f} Mb/s; cache hit ratio "
        f"{squid.cache.hit_ratio:.0%}"
    )
    print()
    print(render_stage_profile(squid.stage, min_share=1.0))
    print()
    shares = context_shares(squid.stage)
    hit = shares.get(HIT_WRITE, 0.0)
    miss = shares.get(MISS_WRITE, 0.0)
    print(f"commHandleWrite via the cache-hit path:  {hit:5.1f}% of CPU")
    print(f"commHandleWrite via the cache-miss path: {miss:5.1f}% of CPU")
    print("A regular profiler reports one commHandleWrite number; the")
    print("transactional profile separates time by how the request got there.")


if __name__ == "__main__":
    main()
