"""Replay a real access log through the proxy and profile it.

The paper replays a trace from Rice CS's web server; that trace is
private, so the other examples use a synthetic one.  This example shows
the path a downstream user with a real log takes: parse a common-log-
format file, replay it through the Squid-like proxy, and read the
transactional profile.

Run:  python examples/replay_access_log.py [path/to/access.log]
"""

import pathlib
import sys

from repro.analysis import render_stage_profile
from repro.apps.proxy import OriginServer, SquidConfig, SquidProxy
from repro.sim import Kernel
from repro.workloads import HttpClientPool, ReplayTrace, parse_log

DEFAULT_LOG = pathlib.Path(__file__).parent / "data" / "sample_access.log"


def main(log_path: str = None) -> None:
    if log_path is None:
        log_path = str(DEFAULT_LOG)
    records = parse_log(log_path)
    trace = ReplayTrace(records)
    print(
        f"loaded {len(records)} requests over {trace.distinct_objects} "
        f"objects ({trace.total_corpus_bytes() / 1e6:.1f} MB corpus) "
        f"from {log_path}"
    )

    kernel = Kernel()
    origin = OriginServer(kernel, size_of=lambda key: trace.size_of(key[1]))
    origin.start()
    squid = SquidProxy(
        kernel,
        origin.listener,
        config=SquidConfig(cache_bytes=2 * 1024 * 1024),
    )
    squid.start()
    clients = HttpClientPool(kernel, squid.listener, trace, clients=4)
    clients.start()
    kernel.run(until=3.0)

    print(
        f"replayed {squid.responses_sent} responses at "
        f"{squid.throughput_mbps():.1f} Mb/s; cache hit ratio "
        f"{squid.cache.hit_ratio:.0%}"
    )
    print()
    print(render_stage_profile(squid.stage, min_share=1.0))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
