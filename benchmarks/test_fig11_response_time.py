"""Fig 11: response times of AdminConfirm, BestSellers and SearchResult
under the original and optimised systems, 50–450 concurrent clients.

Paper result: converting the item table to InnoDB cuts AdminConfirm's
average response time by 9–72% (640 ms -> 550 ms at 100 clients);
caching BestSellers/SearchResult results cuts their response times
dramatically once the database saturates; original response times grow
to tens of seconds at 450+ clients.
"""

import pytest

from benchharness import fmt, print_table, run_once

from repro.apps.db.locks import INNODB
from repro.apps.tpcw import TpcwSystem

CLIENT_COUNTS = [50, 100, 200, 300, 450]
DURATION = 240.0
WARMUP = 40.0
SEED = 42


def run_fig11():
    rows = {}
    for clients in CLIENT_COUNTS:
        original = TpcwSystem(clients=clients, seed=SEED).run(DURATION, WARMUP)
        innodb = TpcwSystem(clients=clients, seed=SEED, item_engine=INNODB).run(
            DURATION, WARMUP
        )
        cached = TpcwSystem(clients=clients, seed=SEED, caching=True).run(
            DURATION, WARMUP
        )
        rows[clients] = {
            "ac_orig": original.mean_response("AdminConfirm") * 1000,
            "ac_inno": innodb.mean_response("AdminConfirm") * 1000,
            "bs_orig": original.mean_response("BestSellers") * 1000,
            "bs_cache": cached.mean_response("BestSellers") * 1000,
            "sr_orig": original.mean_response("SearchResult") * 1000,
            "sr_cache": cached.mean_response("SearchResult") * 1000,
        }
    return rows


def test_fig11_response_times(benchmark):
    rows = run_once(benchmark, run_fig11)
    table = []
    for clients in CLIENT_COUNTS:
        r = rows[clients]
        table.append(
            [
                clients,
                fmt(r["ac_orig"], 0),
                fmt(r["ac_inno"], 0),
                fmt(r["bs_orig"], 0),
                fmt(r["bs_cache"], 0),
                fmt(r["sr_orig"], 0),
                fmt(r["sr_cache"], 0),
            ]
        )
    print_table(
        "Fig 11 — mean response time (ms): AdminConfirm (MyISAM vs InnoDB), "
        "BestSellers & SearchResult (original vs cached)",
        [
            "clients",
            "AC orig",
            "AC InnoDB",
            "BS orig",
            "BS cached",
            "SR orig",
            "SR cached",
        ],
        table,
    )

    # Shape assertions -------------------------------------------------
    # 1. Original response times blow up past saturation (~200 clients),
    #    reaching tens of seconds at 450 (paper's y-axis tops at 45 s).
    assert rows[450]["bs_orig"] > 10 * rows[50]["bs_orig"]
    assert rows[450]["bs_orig"] > 5000
    # 2. The InnoDB conversion improves AdminConfirm under load.
    improvements = [
        (rows[c]["ac_orig"] - rows[c]["ac_inno"]) / rows[c]["ac_orig"]
        for c in CLIENT_COUNTS
        if rows[c]["ac_orig"] > 0
    ]
    assert max(improvements) > 0.09  # at least the paper's lower bound
    # 3. Caching keeps BestSellers/SearchResult fast at high load.
    assert rows[450]["bs_cache"] < rows[450]["bs_orig"] / 3
    assert rows[450]["sr_cache"] < rows[450]["sr_orig"] / 3
    # 4. At low load everything is sub-second except heavy AdminConfirm.
    assert rows[50]["bs_orig"] < 1500
