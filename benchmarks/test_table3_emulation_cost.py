"""Table 3: execution cost of Apache's queue critical sections under the
three execution modes.

Paper result (machine cycles): ap_queue_push 131.64 direct / 62508
translate+emulate / 11606.8 emulate-only; ap_queue_pop 109.72 / 40852 /
12118.  The shape: emulation costs ~2 orders of magnitude more than
direct execution, and the first (translating) run costs several times
the cached-translation runs — QEMU's translation cache amortises.
"""

from benchharness import fmt, print_table, run_once

from repro.vm import Emulator, Machine
from repro.vm.programs import BoundedQueue

PAPER = {
    "ap_queue_push": (131.64, 62508.0, 11606.8),
    "ap_queue_pop": (109.72, 40852.0, 12118.0),
}


def measure():
    machine = Machine()
    queue = BoundedQueue(machine.memory)
    out = {}
    for name, program, args in [
        ("ap_queue_push", queue.push_program, (7, 8)),
        ("ap_queue_pop", queue.pop_program, ()),
    ]:
        emulator = Emulator()
        machine.registers("t").load_arguments(*args)
        direct = emulator.run(program, machine, "t", mode="direct")
        machine.registers("t").load_arguments(*args)
        first = emulator.run(program, machine, "t")  # translates
        machine.registers("t").load_arguments(*args)
        cached = emulator.run(program, machine, "t")  # cache hit
        out[name] = (direct.cycles, first.cycles, cached.cycles)
    return out


def test_table3_critical_section_execution_cost(benchmark):
    measured = run_once(benchmark, measure)
    rows = []
    for name in ("ap_queue_push", "ap_queue_pop"):
        p_direct, p_first, p_cached = PAPER[name]
        m_direct, m_first, m_cached = measured[name]
        rows.append(
            [
                name,
                f"{p_direct:.0f} / {m_direct:.0f}",
                f"{p_first:.0f} / {m_first:.0f}",
                f"{p_cached:.0f} / {m_cached:.0f}",
            ]
        )
    print_table(
        "Table 3 — critical-section cost in cycles (paper / measured)",
        ["critical section", "direct", "translate+emulate", "emulate only"],
        rows,
    )

    for name, (direct, first, cached) in measured.items():
        # Shape: direct is ~tens-to-low-hundreds of cycles; emulation is
        # ~2 orders of magnitude costlier; translation multiplies the
        # first run several-fold, as in the paper's three columns.
        assert 30 < direct < 400
        assert cached > 30 * direct
        assert first > 3 * cached
        assert 3_000 < cached < 40_000
        assert 15_000 < first < 150_000


def test_table3_translation_cache_amortises(benchmark):
    """Repeated emulated executions converge to the emulate-only cost."""

    def run_many():
        machine = Machine()
        queue = BoundedQueue(machine.memory)
        emulator = Emulator()
        costs = []
        for i in range(50):
            machine.registers("t").load_arguments(i, i)
            costs.append(emulator.run(queue.push_program, machine, "t").cycles)
        return costs

    costs = run_once(benchmark, run_many)
    assert costs[0] > costs[1]
    assert len(set(costs[1:])) == 1  # stable post-translation cost
    mean_cost = sum(costs) / len(costs)
    print(
        f"\namortised cost over 50 pushes: {mean_cost:.0f} cycles "
        f"(first {costs[0]:.0f}, steady-state {costs[1]:.0f})"
    )
