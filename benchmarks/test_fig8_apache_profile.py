"""Fig 8 + §8.1: transactional profile of Apache; MySQL's counter.

Paper result: Whodunit detects transaction flow through Apache's shared
connection queue (listener -> workers) and establishes contexts across
it — the worker-side profile (ap_process_connection subtree, ~22.7% per
worker in the paper's figure; the large majority of the stage in
aggregate) is annotated with the listener's ap_queue_push context, while
the listener's accept path (~2.4%) stays local.  The synchronized
allocator is detected but correctly not classified as flow.  In MySQL,
the shared statistics counter is detected and correctly rejected: no
transaction flow at all.
"""

from benchharness import fmt, print_table, run_once

from repro.apps.db import Database, QueryPlan, Table
from repro.apps.httpd import HttpdServer
from repro.core.context import TransactionContext
from repro.core.flow import FLOW, NO_FLOW_ALLOCATOR, NO_FLOW_STATEFUL
from repro.core.profiler import LOCAL
from repro.sim import CurrentThread, Delay, Kernel, Rng
from repro.workloads import HttpClientPool, WebTrace

PUSH_CTXT = TransactionContext(("main", "listener_thread", "ap_queue_push"))


def run_apache():
    kernel = Kernel()
    trace = WebTrace(Rng(7), objects=400, requests_per_connection_mean=3.0)
    server = HttpdServer(kernel, trace)
    server.start()
    clients = HttpClientPool(kernel, server.listener_socket, trace, clients=6)
    clients.start()
    kernel.run(until=5.0)
    return server


def run_mysql_counter():
    kernel = Kernel()
    db = Database(kernel)
    db.add_table(Table("item"))
    plan = QueryPlan("q", reads=("item",), cpu_cost=1e-4)

    def client(index):
        thread = yield CurrentThread()
        yield Delay(index * 1e-3)
        for _ in range(20):
            yield from db.execute(thread, plan)

    for i in range(4):
        kernel.spawn(client(i), stage=db.stage)
    kernel.run()
    return db


def test_fig8_apache_transactional_profile(benchmark):
    server = run_once(benchmark, run_apache)
    stage = server.stage
    total = stage.total_weight()
    flow_cct = stage.ccts[PUSH_CTXT]
    local_cct = stage.ccts[LOCAL]

    worker_path = ("main", "worker_thread", "ap_process_connection")
    listener_path = ("main", "listener_thread")
    worker_share = 100 * flow_cct.inclusive_weight_of(worker_path) / total
    listener_share = 100 * local_cct.inclusive_weight_of(listener_path) / total
    sendfile_share = (
        100 * flow_cct.inclusive_weight_of(worker_path + ("sendfile",)) / total
    )
    queue_roles = server.region.detector.roles.for_lock(server.queue.mutex)
    alloc_roles = server.region.detector.roles.for_lock(server.alloc_mutex)

    print_table(
        "Fig 8 — Apache transactional profile (flow through shared memory)",
        ["measure", "paper", "measured"],
        [
            ["fd_queue classification", "flow detected", queue_roles.classification],
            ["allocator classification", "not flow", alloc_roles.classification],
            ["listener (local) share", "~2.4%", fmt(listener_share, 1) + "%"],
            [
                "workers under push context",
                "bulk of stage (22.7%/worker)",
                fmt(worker_share, 1) + "%",
            ],
            ["  of which sendfile", "large", fmt(sendfile_share, 1) + "%"],
        ],
    )

    assert queue_roles.classification == FLOW
    assert alloc_roles.classification == NO_FLOW_ALLOCATOR
    assert worker_share > 50.0
    assert 0.0 < listener_share < 25.0


def test_fig8_mysql_counter_is_not_flow(benchmark):
    db = run_once(benchmark, run_mysql_counter)
    classification = db.region.detector.roles.for_lock(db.stats_mutex).classification
    print_table(
        "§8.1 — MySQL shared counter",
        ["measure", "paper", "measured"],
        [
            ["counter classification", "detected, not flow", classification],
            ["flow edges in MySQL", "none", len(db.region.detector.flow_edges())],
        ],
    )
    assert classification == NO_FLOW_STATEFUL
    assert db.region.detector.flow_edges() == []
