"""Fig 12: TPC-W throughput with and without result caching, 50–500
concurrent clients, browsing mix.

Paper result: without caching the database CPU saturates around 200
clients at a peak of 1184 interactions/minute; with caching, throughput
rises almost linearly to about 450 clients and peaks at 3376 — close to
3x the original peak.
"""

from benchharness import fmt, print_table, run_once

from repro.apps.tpcw import TpcwSystem

CLIENT_COUNTS = [50, 100, 150, 200, 300, 450, 500]
DURATION = 180.0
WARMUP = 40.0
SEED = 42


def run_fig12():
    out = {}
    for clients in CLIENT_COUNTS:
        original = TpcwSystem(clients=clients, seed=SEED)
        cached = TpcwSystem(clients=clients, seed=SEED, caching=True)
        r_orig = original.run(DURATION, WARMUP)
        r_cache = cached.run(DURATION, WARMUP)
        out[clients] = {
            "orig": r_orig.throughput_tpm(),
            "cache": r_cache.throughput_tpm(),
            "orig_util": original.db.cpu.utilization(),
            "cache_util": cached.db.cpu.utilization(),
        }
    return out


def test_fig12_throughput_with_and_without_caching(benchmark):
    curves = run_once(benchmark, run_fig12)
    table = [
        [
            clients,
            fmt(curves[clients]["orig"], 0),
            fmt(curves[clients]["cache"], 0),
            fmt(100 * curves[clients]["orig_util"], 0) + "%",
            fmt(100 * curves[clients]["cache_util"], 0) + "%",
        ]
        for clients in CLIENT_COUNTS
    ]
    print_table(
        "Fig 12 — throughput (interactions/min), browsing mix "
        "(paper: original peaks 1184 @ ~200 clients; cached peaks 3376 @ ~450)",
        ["clients", "original", "cached", "db util (orig)", "db util (cached)"],
        table,
    )

    orig_peak = max(curves[c]["orig"] for c in CLIENT_COUNTS)
    cache_peak = max(curves[c]["cache"] for c in CLIENT_COUNTS)

    # Shape assertions -------------------------------------------------
    # 1. The original system saturates near 200 clients: beyond it,
    #    throughput stays flat (within 15% of the 200-client value).
    t200 = curves[200]["orig"]
    for clients in (300, 450, 500):
        assert curves[clients]["orig"] < t200 * 1.15
    # 2. The original peak is in the neighbourhood of the paper's 1184.
    assert 800 < orig_peak < 1600
    # 3. Caching keeps scaling well past the original knee...
    assert curves[450]["cache"] > t200 * 1.8
    # ...for a peak ~2-4x the original's (paper: 2.85x).
    assert 2.0 < cache_peak / orig_peak < 4.5
    # 4. The original system's bottleneck is the database CPU.
    assert curves[450]["orig_util"] > 0.9
