"""Hot-path microbenchmarks: kernel event throughput and stitch scaling.

Unlike the paper-reproduction benchmarks, this file tracks the *speed of
the simulator and presentation phase themselves*, seeding the repo's
perf trajectory.  Results are written to ``BENCH_hotpaths.json`` at the
repository root so successive PRs can compare numbers.

Set ``PERF_SMOKE=1`` (as the CI workflow does) to run with reduced
iteration counts.
"""

import gc
import json
import os
import time
from pathlib import Path

from benchharness import fmt, print_table, run_once

from repro.core.context import SynopsisRef, TransactionContext
from repro.core.profiler import StageRuntime
from repro.core.stitch import resolve_context, stitch_profiles
from repro.sim import Delay, Kernel

SMOKE = os.environ.get("PERF_SMOKE") == "1"

KERNEL_EVENTS = 20_000 if SMOKE else 200_000
KERNEL_THREADS = 2_000 if SMOKE else 10_000
STITCH_LABELS = 1_000 if SMOKE else 1_500
CHAIN_DEPTH = 64

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json"


def _record(key, value):
    """Merge one result into BENCH_hotpaths.json.

    Every write re-stamps the machine (CPU count) and workload knobs:
    a BENCH file from a 1-core laptop and one from a 4-core CI runner
    are only comparable if they say which is which.
    """
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data[key] = value
    data["smoke"] = SMOKE
    data["cpu_count"] = os.cpu_count()
    data["settings"] = {
        "kernel_events": KERNEL_EVENTS,
        "kernel_threads": KERNEL_THREADS,
        "stitch_labels": STITCH_LABELS,
        "chain_depth": CHAIN_DEPTH,
    }
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_kernel_event_throughput(benchmark):
    def run():
        kernel = Kernel()
        counter = [0]

        def tick():
            counter[0] += 1

        for index in range(KERNEL_EVENTS):
            kernel.schedule(index * 1e-6, tick)
        start = time.perf_counter()
        kernel.run()
        elapsed = time.perf_counter() - start
        assert counter[0] == KERNEL_EVENTS
        return elapsed

    elapsed = run_once(benchmark, run)
    events_per_sec = KERNEL_EVENTS / elapsed
    _record(
        "kernel_event_throughput",
        {"events": KERNEL_EVENTS, "seconds": elapsed, "events_per_sec": events_per_sec},
    )
    print(f"\nkernel: {KERNEL_EVENTS} events in {fmt(elapsed, 3)}s "
          f"({events_per_sec:,.0f} events/s)")
    assert events_per_sec > 100_000


def test_kernel_same_time_batch_dispatch(benchmark):
    """Dense same-timestamp batches: one heap op serves a whole bucket,

    so this must be faster per event than the distinct-time case."""

    def run():
        kernel = Kernel()
        counter = [0]

        def tick():
            counter[0] += 1

        batch = 1_000
        for index in range(KERNEL_EVENTS):
            kernel.schedule((index // batch) * 1e-3, tick)
        start = time.perf_counter()
        kernel.run()
        elapsed = time.perf_counter() - start
        assert counter[0] == KERNEL_EVENTS
        return elapsed

    elapsed = run_once(benchmark, run)
    events_per_sec = KERNEL_EVENTS / elapsed
    _record(
        "kernel_batch_dispatch",
        {"events": KERNEL_EVENTS, "seconds": elapsed, "events_per_sec": events_per_sec},
    )
    print(f"\nbatch dispatch: {KERNEL_EVENTS} events in {fmt(elapsed, 3)}s "
          f"({events_per_sec:,.0f} events/s)")


def test_kernel_timer_set_cancel_churn(benchmark):
    """The RPC RetryPolicy pattern: set a timeout per operation and

    cancel nearly every one before it fires (the dominant kernel
    workload of the TPC-W application)."""

    def run():
        kernel = Kernel()

        def never():  # pragma: no cover - every timer is cancelled
            raise AssertionError("cancelled timer fired")

        start = time.perf_counter()
        for index in range(KERNEL_EVENTS):
            kernel.schedule(1.0 + (index & 1023) * 1e-3, never).cancel()
        kernel.run()
        elapsed = time.perf_counter() - start
        assert kernel.pending_events() == 0
        return elapsed

    elapsed = run_once(benchmark, run)
    timers_per_sec = KERNEL_EVENTS / elapsed
    _record(
        "kernel_timer_churn",
        {"timers": KERNEL_EVENTS, "seconds": elapsed, "timers_per_sec": timers_per_sec},
    )
    print(f"\ntimer churn: {KERNEL_EVENTS} set+cancel in {fmt(elapsed, 3)}s "
          f"({timers_per_sec:,.0f} timers/s)")


def test_kernel_thread_churn_stays_bounded(benchmark):
    """Spawn/retire many short-lived threads; the registry must not grow."""

    def run():
        kernel = Kernel()

        def short_lived():
            yield Delay(1e-4)

        for index in range(KERNEL_THREADS):
            kernel.schedule(index * 1e-5, kernel.spawn, short_lived())
        start = time.perf_counter()
        kernel.run()
        elapsed = time.perf_counter() - start
        assert len(kernel._threads) == 0
        return elapsed

    elapsed = run_once(benchmark, run)
    _record(
        "kernel_thread_churn",
        {"threads": KERNEL_THREADS, "seconds": elapsed,
         "threads_per_sec": KERNEL_THREADS / elapsed},
    )
    print(f"\nthread churn: {KERNEL_THREADS} threads in {fmt(elapsed, 3)}s")


def _build_stages(labels, chain_depth):
    """A web stage with a deep synopsis chain and a db stage whose CCT

    dictionary holds ``labels`` distinct labels all referencing it.
    """
    web = StageRuntime("web")
    previous = web.synopses.synopsis(TransactionContext(("accept", "dispatch")))
    for level in range(chain_depth):
        previous = web.synopses.synopsis(
            TransactionContext((SynopsisRef("web", previous), f"hop{level}"))
        )
    db = StageRuntime("db")
    for index in range(labels):
        label = TransactionContext(
            (SynopsisRef("web", previous), f"query{index}")
        )
        db.cct_for(label).record_sample(("svc", f"q{index}"), 1.0)
    return web, db


def test_stitch_memoization_speedup(benchmark):
    """Stitching >=1k labels must be >=5x faster than per-label resolution."""

    def run():
        web, db = _build_stages(STITCH_LABELS, CHAIN_DEPTH)
        by_name = {"web": web, "db": db}

        # Unmemoized baseline: resolve every label with no shared cache,
        # re-walking the 64-hop chain once per label (the old behavior).
        # Collect before each timed section so garbage from earlier
        # benchmarks cannot trigger a GC pause inside one measurement
        # and skew the ratio.
        gc.collect()
        start = time.perf_counter()
        baseline = [
            resolve_context(label, by_name, None) for label in db.ccts
        ]
        unmemoized = time.perf_counter() - start

        gc.collect()
        start = time.perf_counter()
        profile = stitch_profiles([web, db])
        memoized = time.perf_counter() - start

        resolved = set(baseline)
        assert set(profile.contexts_of("db")) == resolved
        return unmemoized, memoized

    unmemoized, memoized = run_once(benchmark, run)
    speedup = unmemoized / memoized
    _record(
        "stitch_memoization",
        {
            "labels": STITCH_LABELS,
            "chain_depth": CHAIN_DEPTH,
            "unmemoized_seconds": unmemoized,
            "memoized_seconds": memoized,
            "speedup": speedup,
        },
    )
    print_table(
        "stitch hot path — memoized resolution",
        ["labels", "unmemoized (s)", "memoized (s)", "speedup"],
        [[STITCH_LABELS, fmt(unmemoized, 4), fmt(memoized, 4), fmt(speedup, 1)]],
    )
    assert speedup >= 5.0


def test_context_share_scaling(benchmark):
    """context_share over n contexts is O(n) with the stage-weight cache."""

    def run():
        web, db = _build_stages(STITCH_LABELS, 1)
        profile = stitch_profiles([web, db])
        contexts = profile.contexts_of("db")
        start = time.perf_counter()
        shares = [profile.context_share("db", context) for context in contexts]
        elapsed = time.perf_counter() - start
        assert abs(sum(shares) - 1.0) < 1e-6
        return elapsed

    elapsed = run_once(benchmark, run)
    _record(
        "context_share",
        {"contexts": STITCH_LABELS, "seconds": elapsed},
    )
    print(f"\ncontext_share over {STITCH_LABELS} contexts: {fmt(elapsed, 4)}s")
