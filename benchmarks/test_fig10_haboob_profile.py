"""Fig 10: transactional profile of Haboob (SEDA) under the web workload.

Paper result: the stage graph ListenStage -> HttpServer -> ReadStage ->
HttpRecv -> CacheStage -> {WriteStage | MissStage -> FileIO ->
WriteStage}; WriteStage dominates CPU with 37.65% via the cache-hit
path and 46.58% via the cache-miss path — two separate contexts for the
same stage, which a regular profiler cannot produce.
"""

from benchharness import fmt, print_table, run_once

from repro.apps.haboob import HaboobConfig, HaboobServer
from repro.core.context import TransactionContext
from repro.sim import Kernel, Rng
from repro.workloads import HttpClientPool, WebTrace

HIT_WRITE = TransactionContext(
    ("ListenStage", "HttpServer", "ReadStage", "HttpRecv", "CacheStage", "WriteStage")
)
MISS_WRITE = TransactionContext(
    (
        "ListenStage",
        "HttpServer",
        "ReadStage",
        "HttpRecv",
        "CacheStage",
        "MissStage",
        "FileIOStage",
        "WriteStage",
    )
)


def run_haboob():
    kernel = Kernel()
    trace = WebTrace(Rng(23), objects=5000, requests_per_connection_mean=4.0)
    server = HaboobServer(
        kernel,
        trace,
        config=HaboobConfig(
            cache_bytes=384 * 1024,
            read_cost=8e-6,
            parse_cost=6e-6,
            cache_lookup_cost=5e-6,
            miss_cost=12e-6,
        ),
    )
    server.start()
    clients = HttpClientPool(kernel, server.listener, trace, clients=6)
    clients.start()
    kernel.run(until=6.0)
    return server


def test_fig10_haboob_transactional_profile(benchmark):
    server = run_once(benchmark, run_haboob)
    runtime = server.stage_runtime
    total = runtime.total_weight()

    def share(label):
        cct = runtime.ccts.get(label)
        return 100.0 * cct.total_weight() / total if cct else 0.0

    def stage_share(stage_name):
        return sum(
            100.0 * cct.total_weight() / total
            for label, cct in runtime.ccts.items()
            if label.elements and label.elements[-1] == stage_name
        )

    rows = [
        ["WriteStage (hit path)", "37.65%", fmt(share(HIT_WRITE), 1) + "%"],
        ["WriteStage (miss path)", "46.58%", fmt(share(MISS_WRITE), 1) + "%"],
        ["ListenStage", "1.6%", fmt(stage_share("ListenStage"), 1) + "%"],
        ["ReadStage", "1.89%", fmt(stage_share("ReadStage"), 1) + "%"],
        ["HttpRecv", "1.29%", fmt(stage_share("HttpRecv"), 1) + "%"],
        ["CacheStage", "1.89%", fmt(stage_share("CacheStage"), 1) + "%"],
        ["MissStage", "3.56%", fmt(stage_share("MissStage"), 1) + "%"],
        ["page-cache hit ratio", "(not reported)", fmt(100 * server.page_cache.hit_ratio, 0) + "%"],
    ]
    print_table(
        "Fig 10 — Haboob transactional profile",
        ["stage (context path)", "paper", "measured"],
        rows,
    )

    hit, miss = share(HIT_WRITE), share(MISS_WRITE)
    # Shape: WriteStage dominates through both paths; both substantial.
    assert hit + miss > 50.0
    assert hit > 10.0
    assert miss > 10.0
    # Both canonical paths exist and no context contains a loop.
    for label in runtime.ccts:
        assert len(set(label.elements)) == len(label.elements)
