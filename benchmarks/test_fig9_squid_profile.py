"""Fig 9: transactional profile of Squid under the web workload.

Paper result: the event-handler contexts of the proxy form the graph
httpAccept -> clientReadRequest -> {commHandleWrite (hit, 28.2%),
httpReadReply (14.5%) -> commHandleWrite (miss, 11.5%)}, with
commConnectHandle tiny (1.1%).  The headline: commHandleWrite appears
in two transaction contexts distinguishing cache hits from misses.
"""

from benchharness import fmt, print_table, run_once

from repro.apps.proxy import OriginServer, SquidConfig, SquidProxy
from repro.core.context import TransactionContext
from repro.sim import Kernel, Rng
from repro.workloads import HttpClientPool, WebTrace

ACCEPT = TransactionContext(("httpAccept",))
READ = TransactionContext(("httpAccept", "clientReadRequest"))
HIT_WRITE = TransactionContext(("httpAccept", "clientReadRequest", "commHandleWrite"))
READ_REPLY = TransactionContext(("httpAccept", "clientReadRequest", "httpReadReply"))
MISS_WRITE = TransactionContext(
    ("httpAccept", "clientReadRequest", "httpReadReply", "commHandleWrite")
)


def run_squid():
    kernel = Kernel()
    trace = WebTrace(Rng(11), objects=5000, requests_per_connection_mean=4.0)
    origin = OriginServer(kernel, size_of=lambda key: trace.size_of(key[1]))
    origin.start()
    squid = SquidProxy(
        kernel,
        origin.listener,
        config=SquidConfig(
            cache_bytes=2 * 1024 * 1024,
            read_request_cost=12e-6,
            reply_per_byte_cost=3.0e-9,
            write_per_byte_cost=2.0e-9,
        ),
    )
    squid.start()
    clients = HttpClientPool(kernel, squid.listener, trace, clients=6)
    clients.start()
    kernel.run(until=6.0)
    return squid


def test_fig9_squid_transactional_profile(benchmark):
    squid = run_once(benchmark, run_squid)
    stage = squid.stage
    total = stage.total_weight()

    def share(label):
        cct = stage.ccts.get(label)
        return 100.0 * cct.total_weight() / total if cct else 0.0

    connect_share = sum(
        100.0 * cct.total_weight() / total
        for label, cct in stage.ccts.items()
        if "commConnectHandle" in label.elements
    )
    rows = [
        ["httpAccept", "6.1%", fmt(share(ACCEPT), 1) + "%"],
        ["clientReadRequest", "38.5%", fmt(share(READ), 1) + "%"],
        ["commHandleWrite (hit path)", "28.2%", fmt(share(HIT_WRITE), 1) + "%"],
        ["httpReadReply", "14.5%", fmt(share(READ_REPLY), 1) + "%"],
        ["commHandleWrite (miss path)", "11.5%", fmt(share(MISS_WRITE), 1) + "%"],
        ["commConnectHandle (all ctxts)", "1.1%", fmt(connect_share, 1) + "%"],
        ["cache hit ratio", "(not reported)", fmt(100 * squid.cache.hit_ratio, 0) + "%"],
    ]
    print_table("Fig 9 — Squid transactional profile", ["handler context", "paper", "measured"], rows)

    # Shape assertions: the two commHandleWrite contexts both exist and
    # the hit path outweighs the miss path (zipf-popular objects hit).
    assert share(HIT_WRITE) > 5.0
    assert share(MISS_WRITE) > 1.0
    assert share(HIT_WRITE) > share(MISS_WRITE)
    # commConnectHandle is small thanks to persistent origin connections.
    assert connect_share < 5.0
    # Every context is one of the expected handler sequences.
    for label in stage.ccts:
        assert label.elements[0] == "httpAccept"
