"""Print the deltas between two BENCH_*.json files.

::

    python benchmarks/trend.py old_BENCH_hotpaths.json BENCH_hotpaths.json

Nested objects are flattened to dotted keys; numeric values get an
absolute and percentage delta, everything else a changed/unchanged
marker.  Keys present in only one file are listed as added/removed.
Use it to eyeball a perf trajectory across PRs::

    git show HEAD~1:BENCH_scaleout.json > /tmp/before.json
    python benchmarks/trend.py /tmp/before.json BENCH_scaleout.json

With ``--gate KEY:RATIO`` (repeatable) the comparison becomes a
regression gate: exit non-zero unless ``new[KEY] >= RATIO * old[KEY]``.
CI uses this to fail a PR that slows a hot path below the committed
baseline, with RATIO < 1 absorbing runner-to-runner variance::

    python benchmarks/trend.py /tmp/before.json BENCH_hotpaths.json \
        --gate kernel_event_throughput.events_per_sec:0.5

With ``--history OUT.json`` the positional arguments become an ordered
series of snapshots (two or more) and the tool emits a compact history
document instead of a pairwise report: one entry per snapshot with its
label and flattened numeric metrics.  ``repro diff --html`` feeds this
document to the report's trend sparklines::

    git show HEAD~2:BENCH_hotpaths.json > /tmp/h0.json
    git show HEAD~1:BENCH_hotpaths.json > /tmp/h1.json
    python benchmarks/trend.py --history /tmp/history.json \
        /tmp/h0.json /tmp/h1.json BENCH_hotpaths.json
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict


def flatten(value: Any, prefix: str = "") -> Dict[str, Any]:
    """``{"a": {"b": 1}} -> {"a.b": 1}``; lists become indexed keys."""
    out: Dict[str, Any] = {}
    if isinstance(value, dict):
        for key, child in value.items():
            out.update(flatten(child, f"{prefix}{key}."))
    elif isinstance(value, list):
        for index, child in enumerate(value):
            out.update(flatten(child, f"{prefix}{index}."))
    else:
        out[prefix[:-1]] = value
    return out


def render_delta(old: Any, new: Any) -> str:
    if isinstance(old, (int, float)) and isinstance(new, (int, float)) \
            and not isinstance(old, bool) and not isinstance(new, bool):
        delta = new - old
        if old:
            return f"{old:g} -> {new:g}  ({delta:+g}, {100.0 * delta / old:+.1f}%)"
        return f"{old:g} -> {new:g}  ({delta:+g})"
    if old == new:
        return f"{old!r} (unchanged)"
    return f"{old!r} -> {new!r}"


def check_gate(old: Dict[str, Any], new: Dict[str, Any], gate: str) -> bool:
    """One ``KEY:RATIO`` gate; returns True when it passes.

    A key missing from the old file passes (nothing to regress from); a
    key missing from the new file fails (the metric disappeared).
    """
    key, _, ratio_text = gate.rpartition(":")
    if not key:
        raise SystemExit(f"malformed --gate {gate!r} (want KEY:RATIO)")
    ratio = float(ratio_text)
    if key not in old:
        print(f"gate {key}: no baseline, skipped")
        return True
    if key not in new:
        print(f"gate {key}: FAIL — metric missing from new results")
        return False
    floor = ratio * old[key]
    ok = new[key] >= floor
    verdict = "ok" if ok else "FAIL"
    print(
        f"gate {key}: {verdict} — {new[key]:g} vs floor {floor:g} "
        f"({ratio:g} x baseline {old[key]:g})"
    )
    return ok


def trend(old_path: str, new_path: str, gates=()) -> int:
    with open(old_path, "r", encoding="utf-8") as handle:
        old = flatten(json.load(handle))
    with open(new_path, "r", encoding="utf-8") as handle:
        new = flatten(json.load(handle))

    width = max((len(key) for key in set(old) | set(new)), default=0)
    for key in sorted(set(old) & set(new)):
        print(f"{key:<{width}}  {render_delta(old[key], new[key])}")
    for key in sorted(set(new) - set(old)):
        print(f"{key:<{width}}  added: {new[key]!r}")
    for key in sorted(set(old) - set(new)):
        print(f"{key:<{width}}  removed (was {old[key]!r})")
    failed = [gate for gate in gates if not check_gate(old, new, gate)]
    return 1 if failed else 0


def emit_history(paths, out_path: str) -> int:
    """Fold an ordered run of snapshot files into one history document.

    Only numeric leaves survive (sparklines can't draw strings); labels
    are the snapshot file basenames, which CI names after the commit.
    """
    import os

    series = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            flat = flatten(json.load(handle))
        metrics = {
            key: value
            for key, value in flat.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        label = os.path.basename(path)
        for suffix in (".json",):
            if label.endswith(suffix):
                label = label[: -len(suffix)]
        series.append({"label": label, "metrics": metrics})
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump({"series": series}, handle, separators=(",", ":"))
    keys = set()
    for entry in series:
        keys.update(entry["metrics"])
    print(
        f"history: {len(series)} snapshot(s), {len(keys)} metric(s) "
        f"-> {out_path}"
    )
    return 0


def main(argv) -> int:
    paths = []
    gates = []
    history = None
    arguments = iter(argv[1:])
    for argument in arguments:
        if argument == "--gate":
            gates.append(next(arguments, ""))
        elif argument.startswith("--gate="):
            gates.append(argument[len("--gate="):])
        elif argument == "--history":
            history = next(arguments, None)
        elif argument.startswith("--history="):
            history = argument[len("--history="):]
        else:
            paths.append(argument)
    if history is not None:
        if not history or not paths:
            print(__doc__.strip(), file=sys.stderr)
            return 2
        return emit_history(paths, history)
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    return trend(paths[0], paths[1], gates)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
