"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs
the corresponding experiment on the simulated substrate, prints the
same rows/series the paper reports, and asserts the *shape* of the
result (who wins, by roughly what factor, where crossovers fall).
Absolute numbers differ from the paper's testbed by design.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence


def run_once(benchmark, fn: Callable):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def print_table(title: str, header: Sequence[str], rows: List[Sequence]) -> None:
    """Print a paper-style table."""
    print()
    print(f"### {title}")
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))


def fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"
