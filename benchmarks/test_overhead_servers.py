"""§9.2 / §9.3: Whodunit's throughput overhead on Apache, Squid, Haboob.

Paper result: profiling costs 2.3% of Apache's peak throughput (393.64
-> 384.58 Mb/s) despite repeated critical-section emulation, because
QEMU's translation cache amortises; Squid loses ~5.5% (262.27 ->
247.85 Mb/s) and Haboob ~4.2% (31.16 -> 29.84 Mb/s).
"""

from benchharness import fmt, print_table, run_once

from repro.apps.haboob import HaboobConfig, HaboobServer
from repro.apps.httpd import HttpdServer
from repro.apps.proxy import OriginServer, SquidProxy
from repro.core.profiler import ProfilerMode
from repro.sim import Kernel, Rng
from repro.workloads import HttpClientPool, WebTrace

SIM_SECONDS = 5.0
PAPER = {
    "apache": (393.64, 384.58, 2.3),
    "squid": (262.27, 247.85, 5.5),
    "haboob": (31.16, 29.84, 4.2),
}


def run_apache(mode):
    kernel = Kernel()
    trace = WebTrace(Rng(7), objects=400, requests_per_connection_mean=3.0)
    server = HttpdServer(kernel, trace, mode=mode)
    server.start()
    HttpClientPool(kernel, server.listener_socket, trace, clients=8).start()
    kernel.run(until=SIM_SECONDS)
    return server.throughput_mbps()


def run_squid(mode):
    kernel = Kernel()
    trace = WebTrace(Rng(11), objects=2000, requests_per_connection_mean=4.0)
    origin = OriginServer(kernel, size_of=lambda key: trace.size_of(key[1]))
    origin.start()
    squid = SquidProxy(kernel, origin.listener, mode=mode)
    squid.start()
    HttpClientPool(kernel, squid.listener, trace, clients=8).start()
    kernel.run(until=SIM_SECONDS)
    return squid.throughput_mbps()


def run_haboob(mode):
    kernel = Kernel()
    # A corpus the page cache fully holds after warmup: peak throughput
    # is then CPU-bound (as in the paper's 31 Mb/s measurement), so the
    # profiler's CPU overhead is what moves the number.  A large cold
    # corpus would make the disk the bottleneck and hide it.
    trace = WebTrace(Rng(23), objects=400, requests_per_connection_mean=4.0)
    server = HaboobServer(
        kernel, trace, mode=mode, config=HaboobConfig(cache_bytes=96 * 1024 * 1024)
    )
    server.start()
    pool = HttpClientPool(kernel, server.listener, trace, clients=8)
    pool.start()
    # Warm the cache, then measure steady-state throughput.
    kernel.run(until=3.0)
    warm_bytes = server.bytes_sent
    kernel.run(until=3.0 + SIM_SECONDS)
    return (server.bytes_sent - warm_bytes) * 8 / SIM_SECONDS / 1e6


def run_all():
    out = {}
    for name, runner in [
        ("apache", run_apache),
        ("squid", run_squid),
        ("haboob", run_haboob),
    ]:
        off = runner(ProfilerMode.OFF)
        on = runner(ProfilerMode.WHODUNIT)
        out[name] = (off, on)
    return out


def test_server_profiling_overheads(benchmark):
    out = run_once(benchmark, run_all)
    rows = []
    for name, (off, on) in out.items():
        p_off, p_on, p_pct = PAPER[name]
        pct = 100 * (off - on) / off
        rows.append(
            [
                name,
                f"{p_off:.1f} -> {p_on:.1f} ({p_pct}%)",
                f"{off:.1f} -> {on:.1f} ({pct:.1f}%)",
            ]
        )
    print_table(
        "§9.2/§9.3 — peak throughput (Mb/s) unprofiled -> Whodunit",
        ["server", "paper", "measured"],
        rows,
    )

    for name, (off, on) in out.items():
        overhead = (off - on) / off
        # Shape: single-digit percent overhead on every server.
        assert 0.0 <= overhead < 0.12, (name, overhead)
    # Apache's overhead stays small because emulation is amortised by
    # the translation cache and only runs on new connections.
    apache_overhead = (out["apache"][0] - out["apache"][1]) / out["apache"][0]
    assert apache_overhead < 0.08
