"""Table 2 + §9.1: profiler overhead on TPC-W peak throughput.

Paper result (interactions/minute at peak): no profiling 1184, csprof
1151, Whodunit 1150, gprof 898 — i.e. sampling costs <3%, Whodunit adds
<0.1% on top of csprof, per-call instrumentation costs ~24%.  At peak,
92.52 MB of data vs 0.95 MB of transaction-context synopses crossed the
wires: ~1% communication overhead.
"""

from benchharness import fmt, print_table, run_once

from repro.apps.tpcw import TpcwSystem
from repro.core.profiler import ProfilerMode

PAPER = {
    ProfilerMode.OFF: 1184,
    ProfilerMode.CSPROF: 1151,
    ProfilerMode.WHODUNIT: 1150,
    ProfilerMode.GPROF: 898,
}
CLIENTS = 250  # past the saturation knee: peak throughput
DURATION = 180.0
WARMUP = 40.0


def run_table2():
    out = {}
    for mode in (
        ProfilerMode.OFF,
        ProfilerMode.CSPROF,
        ProfilerMode.WHODUNIT,
        ProfilerMode.GPROF,
    ):
        system = TpcwSystem(clients=CLIENTS, seed=42, profiler_mode=mode)
        results = system.run(DURATION, WARMUP)
        out[mode] = {
            "tpm": results.throughput_tpm(),
            "comm": results.comm_overhead(),
        }
    return out


def test_table2_peak_throughput_under_profilers(benchmark):
    out = run_once(benchmark, run_table2)
    baseline = out[ProfilerMode.OFF]["tpm"]
    rows = []
    for mode in (
        ProfilerMode.OFF,
        ProfilerMode.CSPROF,
        ProfilerMode.WHODUNIT,
        ProfilerMode.GPROF,
    ):
        tpm = out[mode]["tpm"]
        overhead = 100 * (baseline - tpm) / baseline
        rows.append(
            [mode.value, PAPER[mode], fmt(tpm, 0), fmt(overhead, 1) + "%"]
        )
    print_table(
        "Table 2 — peak TPC-W throughput (interactions/min) under profilers",
        ["profiler", "paper tpm", "measured tpm", "overhead"],
        rows,
    )

    csprof = out[ProfilerMode.CSPROF]["tpm"]
    whodunit = out[ProfilerMode.WHODUNIT]["tpm"]
    gprof = out[ProfilerMode.GPROF]["tpm"]

    # Shape: csprof cheap (<6%), Whodunit ~= csprof (within 2%), gprof
    # far more expensive (>12% and clearly the worst).
    assert csprof > baseline * 0.94
    assert abs(whodunit - csprof) < baseline * 0.02
    assert gprof < baseline * 0.88
    assert gprof < whodunit

    # §9.1: communication overhead of piggy-backed synopses ~1%.
    comm = out[ProfilerMode.WHODUNIT]["comm"]
    ratio = comm["context_bytes"] / comm["data_bytes"]
    print(
        f"\n§9.1 — communication: {comm['data_bytes'] / 1e6:.2f} MB data, "
        f"{comm['context_bytes'] / 1e6:.3f} MB context "
        f"({100 * ratio:.2f}%; paper ~1%)"
    )
    assert 0.0 < ratio < 0.02
    # And an untracked run piggy-backs nothing.
    assert out[ProfilerMode.CSPROF]["comm"]["context_bytes"] == 0
