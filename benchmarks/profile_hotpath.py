"""Profile the transaction hot path end-to-end (the perf-work harness).

Runs the seeded TPC-W and open-loop workloads under ``cProfile`` and
``tracemalloc`` and prints top-N tables of cumulative time, self time
and allocation sites.  This is the harness the hot-path optimisation
work is driven from: every per-transaction cost attacked in
``docs/performance.md`` (synopsis composites, context hashing, thread
shell recycling, batched SEDA dequeue, span allocation) first showed up
at the top of these tables.

Not a pytest benchmark — run it directly::

    PYTHONPATH=src python benchmarks/profile_hotpath.py            # both
    PYTHONPATH=src python benchmarks/profile_hotpath.py tpcw
    PYTHONPATH=src python benchmarks/profile_hotpath.py openloop --top 25
    PYTHONPATH=src python benchmarks/profile_hotpath.py tpcw --telemetry spans

The workloads are deterministic (fixed seeds), so two runs of the same
tree profile the same virtual execution and tables diff cleanly across
commits.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from benchharness import fmt, print_table  # noqa: E402


def run_tpcw(clients: int = 60, duration: float = 40.0, warmup: float = 5.0):
    """The telemetry benchmark's TPC-W workload (seed 23)."""
    from repro.apps.tpcw import TpcwSystem

    system = TpcwSystem(clients=clients, seed=23)
    return system.run(duration=duration, warmup=warmup)


def run_openloop(sessions: int = 4000, duration: float = 120.0, rate: float = 60.0):
    """The scale-out benchmark's open-loop Haboob workload (seed 42)."""
    from repro.apps.haboob import HaboobConfig, HaboobServer
    from repro.sim import Kernel, Rng
    from repro.workloads import OpenLoopClientPool, WebTrace

    kernel = Kernel()
    trace = WebTrace(Rng(42), objects=2000)
    server = HaboobServer(
        kernel, trace, config=HaboobConfig(cache_bytes=512 * 1024)
    )
    server.start()
    pool = OpenLoopClientPool(
        kernel,
        server.listener,
        trace,
        arrival_rate=rate,
        rng=Rng(42).stream("openloop"),
        max_sessions=sessions,
        record_log=False,
    )
    pool.start()
    kernel.run(until=duration)
    return pool


WORKLOADS = {"tpcw": run_tpcw, "openloop": run_openloop}


def _stat_rows(stats: pstats.Stats, sort: str, top: int):
    stats.sort_stats(sort)
    rows = []
    for func in stats.fcn_list[:top]:  # type: ignore[attr-defined]
        cc, nc, tt, ct, _ = stats.stats[func]  # type: ignore[attr-defined]
        filename, line, name = func
        where = f"{Path(filename).name}:{line}" if line else filename
        rows.append([name, where, nc, fmt(tt, 3), fmt(ct, 3)])
    return rows


def profile_workload(name: str, top: int, telemetry_mode: str) -> None:
    from repro import telemetry

    run = WORKLOADS[name]
    if telemetry_mode != "off":
        telemetry.install(telemetry_mode)
    profiler = cProfile.Profile()
    tracemalloc.start(10)
    try:
        profiler.enable()
        run()
        profiler.disable()
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
        telemetry.uninstall()

    stats = pstats.Stats(profiler)
    for sort, title in (("cumulative", "cumulative time"), ("tottime", "self time")):
        print_table(
            f"{name} — top {top} by {title} (telemetry={telemetry_mode})",
            ["function", "where", "calls", "self s", "cum s"],
            _stat_rows(stats, sort, top),
        )

    alloc_rows = []
    for stat in snapshot.statistics("lineno")[:top]:
        frame = stat.traceback[0]
        alloc_rows.append([
            f"{Path(frame.filename).name}:{frame.lineno}",
            stat.count,
            f"{stat.size / 1024.0:.1f} KiB",
        ])
    print_table(
        f"{name} — top {top} allocation sites (tracemalloc)",
        ["site", "blocks", "size"],
        alloc_rows,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "workload",
        nargs="*",
        choices=[*WORKLOADS, []],
        default=list(WORKLOADS),
        help="workloads to profile (default: all)",
    )
    parser.add_argument("--top", type=int, default=20, help="rows per table")
    parser.add_argument(
        "--telemetry",
        choices=("off", "spans", "full"),
        default="off",
        help="telemetry mode to profile under (default off)",
    )
    args = parser.parse_args(argv)
    for name in args.workload or list(WORKLOADS):
        profile_workload(name, args.top, args.telemetry)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
