"""Ablations of Whodunit's design choices (DESIGN.md §5).

Not from the paper's evaluation — these quantify the design decisions
the paper makes implicitly:

1. deterministic vs stochastic sampling: the profiles agree;
2. 4-byte synopses vs shipping full contexts: bytes saved;
3. QEMU's translation cache: server overhead with the cache disabled;
4. loop pruning: context growth on persistent connections without it.
"""

from benchharness import fmt, print_table, run_once

from repro.apps.httpd import HttpdServer
from repro.apps.tpcw import TpcwSystem
from repro.core.context import TransactionContext
from repro.core.profiler import ProfilerMode
from repro.events import Event, EventLoop
from repro.sim import Kernel, Rng
from repro.workloads import HttpClientPool, WebTrace


# ----------------------------------------------------------------------
# 1. Sampling ablation
# ----------------------------------------------------------------------
def run_sampling_ablation():
    def run(deterministic):
        kernel = Kernel()
        trace = WebTrace(Rng(7), objects=300, requests_per_connection_mean=3.0)
        server = HttpdServer(kernel, trace)
        server.stage.deterministic = deterministic
        server.start()
        HttpClientPool(kernel, server.listener_socket, trace, clients=6).start()
        kernel.run(until=4.0)
        stage = server.stage
        total = stage.total_weight()
        return {
            label: cct.total_weight() / total for label, cct in stage.ccts.items()
        }

    return run(True), run(False)


def test_ablation_deterministic_vs_stochastic_sampling(benchmark):
    det, sto = run_once(benchmark, run_sampling_ablation)
    rows = []
    for label in det:
        rows.append(
            [
                str(label)[:48],
                fmt(100 * det[label], 2) + "%",
                fmt(100 * sto.get(label, 0.0), 2) + "%",
            ]
        )
    print_table(
        "Ablation — context shares under deterministic vs stochastic sampling",
        ["context", "deterministic", "stochastic"],
        rows,
    )
    for label, det_share in det.items():
        if det_share > 0.02:
            assert abs(sto.get(label, 0.0) - det_share) < 0.05


# ----------------------------------------------------------------------
# 2. Synopsis ablation
# ----------------------------------------------------------------------
def run_synopsis_ablation():
    system = TpcwSystem(clients=60, seed=42)
    results = system.run(duration=60.0, warmup=20.0)
    stages = [system.squid.stage, system.tomcat.stage, system.db.stage]
    synopsis_bytes = sum(s.comm_context_bytes for s in stages)
    full_bytes = sum(s.comm_context_bytes_full for s in stages)
    data_bytes = sum(s.comm_data_bytes for s in stages)
    return synopsis_bytes, full_bytes, data_bytes


def test_ablation_synopses_vs_full_contexts(benchmark):
    synopsis_bytes, full_bytes, data_bytes = run_once(
        benchmark, run_synopsis_ablation
    )
    print_table(
        "Ablation — piggy-backed bytes: 4-byte synopses vs full contexts",
        ["scheme", "bytes", "% of data"],
        [
            ["synopses (paper §7.4)", synopsis_bytes, fmt(100 * synopsis_bytes / data_bytes, 3) + "%"],
            ["full contexts", full_bytes, fmt(100 * full_bytes / data_bytes, 3) + "%"],
        ],
    )
    assert full_bytes > 5 * synopsis_bytes


# ----------------------------------------------------------------------
# 3. Translation-cache ablation
# ----------------------------------------------------------------------
def run_cache_ablation():
    def run(cache_on):
        kernel = Kernel()
        trace = WebTrace(Rng(7), objects=300, requests_per_connection_mean=3.0)
        server = HttpdServer(kernel, trace)
        server.region.emulator.cache_translations = cache_on
        server.start()
        HttpClientPool(kernel, server.listener_socket, trace, clients=8).start()
        kernel.run(until=4.0)
        return server.throughput_mbps()

    baseline = run_off_profile()
    return baseline, run(True), run(False)


def run_off_profile():
    kernel = Kernel()
    trace = WebTrace(Rng(7), objects=300, requests_per_connection_mean=3.0)
    server = HttpdServer(kernel, trace, mode=ProfilerMode.OFF)
    server.start()
    HttpClientPool(kernel, server.listener_socket, trace, clients=8).start()
    kernel.run(until=4.0)
    return server.throughput_mbps()


def test_ablation_translation_cache(benchmark):
    baseline, cached, uncached = run_once(benchmark, run_cache_ablation)
    print_table(
        "Ablation — Apache throughput (Mb/s): translation cache on vs off",
        ["configuration", "Mb/s", "overhead vs unprofiled"],
        [
            ["unprofiled", fmt(baseline, 1), "-"],
            ["whodunit, cache on", fmt(cached, 1), fmt(100 * (baseline - cached) / baseline, 1) + "%"],
            ["whodunit, cache off", fmt(uncached, 1), fmt(100 * (baseline - uncached) / baseline, 1) + "%"],
        ],
    )
    assert cached > uncached  # the cache pays for itself
    # §9.2's small overhead depends on the cache.
    assert (baseline - cached) / baseline < 0.10


# ----------------------------------------------------------------------
# 4. Loop-pruning ablation
# ----------------------------------------------------------------------
def run_pruning_ablation():
    def run(prune):
        kernel = Kernel()
        loop = EventLoop(kernel, prune_loops=prune, collapse_repeats=prune)
        from repro.core.profiler import StageRuntime

        stage = StageRuntime("ev")
        kernel.spawn(loop.run(), stage=stage)
        requests = {"n": 0, "longest": 0}

        def note(lp):
            requests["longest"] = max(requests["longest"], len(lp.curr_tran_ctxt))

        def read_handler(lp, ev):
            note(lp)
            lp.event_add(Event("write_handler", write_handler))
            return
            yield  # pragma: no cover

        def write_handler(lp, ev):
            note(lp)
            requests["n"] += 1
            if requests["n"] < 200:
                lp.event_add(Event("read_handler", read_handler))
            else:
                lp.stop()
            return
            yield  # pragma: no cover

        def accept_handler(lp, ev):
            note(lp)
            lp.event_add(Event("read_handler", read_handler))
            return
            yield  # pragma: no cover

        loop.event_add(Event("accept_handler", accept_handler))
        kernel.run()
        return requests["n"], requests["longest"]

    # With pruning the final context length stays bounded; without it
    # the context grows linearly with the number of requests served on
    # the persistent connection.
    pruned_n, pruned_len = run(True)
    unpruned_n, unpruned_len = run(False)
    return (pruned_n, pruned_len), (unpruned_n, unpruned_len)


def test_ablation_loop_pruning(benchmark):
    (pruned_n, pruned_len), (unpruned_n, unpruned_len) = run_once(
        benchmark, run_pruning_ablation
    )
    print_table(
        "Ablation — longest event context after 200 requests on one connection",
        ["pruning", "requests", "context length"],
        [
            ["on (paper §4.1)", pruned_n, pruned_len],
            ["off", unpruned_n, unpruned_len],
        ],
    )
    assert pruned_len <= 3
    assert unpruned_len > 100
