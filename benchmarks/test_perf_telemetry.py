"""Telemetry overhead: off vs spans vs full on the TPC-W system.

The live-telemetry layer promises *zero cost when off* and modest cost
when on.  This benchmark runs the same three-tier TPC-W workload under
all three modes, wall-timing each, and writes ``BENCH_telemetry.json``
at the repository root so CI can reject regressions of the disabled
path.

Set ``PERF_SMOKE=1`` (as the CI workflow does) to run a shorter
workload.
"""

import json
import os
import time
from pathlib import Path

from benchharness import fmt, print_table, run_once

from repro import telemetry
from repro.apps.tpcw import TpcwSystem

SMOKE = os.environ.get("PERF_SMOKE") == "1"

CLIENTS = 20 if SMOKE else 60
DURATION = 10.0 if SMOKE else 40.0
WARMUP = 2.0 if SMOKE else 5.0

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"


def _run_mode(mode):
    """Wall-time one TPC-W run under the given telemetry mode."""
    if mode != "off":
        telemetry.install(mode)
    try:
        system = TpcwSystem(clients=CLIENTS, seed=23)
        start = time.perf_counter()
        results = system.run(duration=DURATION, warmup=WARMUP)
        elapsed = time.perf_counter() - start
        throughput = results.throughput_tpm()
        tele = telemetry.active()
        spans = tele.spans.completed if tele else 0
        return elapsed, throughput, spans
    finally:
        telemetry.uninstall()


# Resident-CCT bound for the live-stitcher row: deliberately smaller
# than the workload's context count so the LRU actually evicts and the
# row reflects checkpoint-spill pressure, not just in-memory appends.
LIVE_RESIDENT = 12

# Span-ring bound for the live row: the stitcher streams spans rather
# than reading them back, so retention can be a small ring — which also
# lets the recorder recycle evicted span shells (the StitchingSink
# declares ``retains_spans = False``).
LIVE_SPAN_RING = 1024


def _run_live(checkpoint_dir):
    """Wall-time the same run with the online streaming stitcher
    attached (spans mode + StitchingSink + interval checkpoints)."""
    from repro.live import attach_collector

    tele = telemetry.install("spans", span_capacity=LIVE_SPAN_RING)
    try:
        collector = attach_collector(
            tele,
            directory=checkpoint_dir,
            interval=2.0,
            max_resident=LIVE_RESIDENT,
        )
        system = TpcwSystem(clients=CLIENTS, seed=23)
        start = time.perf_counter()
        results = system.run(duration=DURATION, warmup=WARMUP)
        collector.finalize()
        elapsed = time.perf_counter() - start
        return elapsed, results.throughput_tpm(), collector
    finally:
        telemetry.uninstall()


def test_telemetry_overhead(benchmark, tmp_path):
    def run():
        out = {}
        for mode in ("off", "spans", "full"):
            elapsed, throughput, spans = _run_mode(mode)
            out[mode] = {
                "seconds": elapsed,
                "throughput_tpm": throughput,
                "spans": spans,
            }
        elapsed, throughput, collector = _run_live(str(tmp_path / "live"))
        out["live_stitcher"] = {
            "seconds": elapsed,
            "throughput_tpm": throughput,
            "spans": collector.spans_seen,
            "events": collector.events_absorbed,
            "events_per_sec": collector.events_absorbed / elapsed,
            "peak_resident": collector.peak_resident,
            "evictions": collector.evictions,
            "revivals": collector.revivals,
            "checkpoints": collector.checkpoints_written,
            "completeness": collector.completeness(),
        }
        return out

    out = run_once(benchmark, run)
    off = out["off"]["seconds"]
    for mode in ("spans", "full", "live_stitcher"):
        out[mode]["overhead_pct"] = 100.0 * (out[mode]["seconds"] / off - 1.0)
        # Reciprocal form (off wall / mode wall, 1.0 = free): higher is
        # better, so ``trend.py --gate`` can put a floor under it — the
        # CI spans-overhead gate row reads this key.
        out[mode]["speed_vs_off"] = off / out[mode]["seconds"]
    out["clients"] = CLIENTS
    out["duration"] = DURATION
    out["live_resident"] = LIVE_RESIDENT
    out["live_span_ring"] = LIVE_SPAN_RING
    out["smoke"] = SMOKE
    RESULTS_PATH.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")

    print_table(
        "telemetry overhead — TPC-W wall time",
        ["mode", "seconds", "spans", "overhead %"],
        [
            [
                mode,
                fmt(out[mode]["seconds"], 3),
                out[mode]["spans"],
                fmt(out[mode].get("overhead_pct", 0.0), 1),
            ]
            for mode in ("off", "spans", "full", "live_stitcher")
        ],
    )
    live = out["live_stitcher"]
    print_table(
        "live stitcher — streaming absorption under eviction",
        ["events/s", "peak resident", "evictions", "checkpoints"],
        [[
            fmt(live["events_per_sec"], 0),
            live["peak_resident"],
            live["evictions"],
            live["checkpoints"],
        ]],
    )

    # Telemetry must not perturb the simulation itself: the virtual-time
    # outcome is identical in all modes (deterministic seed) — including
    # with the online stitcher consuming the profile-event stream.
    assert out["off"]["throughput_tpm"] == out["spans"]["throughput_tpm"]
    assert out["off"]["throughput_tpm"] == out["full"]["throughput_tpm"]
    assert out["off"]["throughput_tpm"] == live["throughput_tpm"]
    # Telemetry on actually records something.
    assert out["full"]["spans"] > 0
    # The live row measured real bounded-memory behaviour: the LRU
    # bound held and eviction was actually exercised.
    assert live["events"] > 0
    assert live["peak_resident"] <= LIVE_RESIDENT
    assert live["evictions"] > 0
    assert live["completeness"] == 1.0
    # Enabled modes stay within a generous envelope (wall clocks on CI
    # are noisy; the committed-baseline comparison guards the off path).
    assert out["full"]["seconds"] < off * 3.0
