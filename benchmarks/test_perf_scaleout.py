"""Scale-out benchmark: work-stealing shards + hierarchical reduce.

Measures the headline numbers of the cluster-shaped runtime and writes
them to ``BENCH_scaleout.json`` at the repository root:

- **run+stitch wall time**: legacy single-system serial path vs a
  4-shard plan executed with 1 worker and with 4 workers on the
  persistent work-stealing pool.  The ≥2.5x speedup assertion only
  fires when the machine actually has the cores
  (``os.cpu_count() >= SHARDS``) — on a 1-core box a process pool
  can't beat serial and pretending otherwise would poison the
  trajectory.  The recorded ``cpu_count`` keeps BENCH files comparable
  across machines.  Per-shard wall skew (max/mean) quantifies the
  straggler spread work stealing absorbs.
- **pool reuse**: the same sharded run against a cold pool (workers
  must be forked) and a warm one (the session pool) — the satellite
  fix for ``parallel_gain_over_1job < 1``.
- **reduce tree**: group-merge walls, artifact bytes and the parent
  fold time of the hierarchical shard→group→global reduce, plus the
  proof that its output is byte-identical to the flat reduce.
- **open-loop million**: ≥1,000,000 simulated clients (sessions)
  generated across 8 shards by the non-homogeneous Poisson generator
  (diurnal curve + flash crowd + Pareto think times), spooled and
  stitched end to end.  ``PERF_SMOKE=1`` scales the population down
  for CI.
- **dump bytes**: v1 vs v2 for the same run; gated at ≥5x.
- **determinism proof**: the canonical SHA-256 of the merged 4-shard
  profile, asserted byte-identical between the 1-worker and 4-worker
  executions.

Set ``PERF_SMOKE=1`` (as the CI workflow does) for a smaller workload.
"""

import hashlib
import json
import os
import time
from pathlib import Path

from benchharness import fmt, print_table, run_once

from repro.apps.tpcw import TpcwSystem
from repro.core.persist import dump_size
from repro.core.stitch import stitch_profiles
from repro.parallel import (
    canonical_profile_bytes,
    get_pool,
    hierarchical_stitch,
    plan_shards,
    run_shards,
    shutdown_pools,
)

SMOKE = os.environ.get("PERF_SMOKE") == "1"

SHARDS = 4
JOBS = 4
SEED = 42
# 200 clients (50 per shard): the hot-path overhaul absorbs a ~1.7x
# bigger deployment in comparable wall time, so the recorded workload
# grew with it.  ``settings`` stamps the size into BENCH_scaleout.json
# every run — throughput_tpm values are only comparable at equal
# settings (the benchmark-honesty contract).
CLIENTS = 40 if SMOKE else 200
DURATION = 30.0 if SMOKE else 90.0
WARMUP = 5.0 if SMOKE else 15.0

#: The open-loop population row: a million simulated clients, spread
#: over 8 shards (smoke-scaled for CI).
MILLION_SHARDS = 8
MILLION_CLIENTS = 40_000 if SMOKE else 1_000_000
MILLION_RATE = 20_000.0  # sessions per virtual second, population-wide
MILLION_DURATION = (MILLION_CLIENTS / MILLION_RATE) * 1.3

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_scaleout.json"


def _record(key, value):
    """Merge one result into BENCH_scaleout.json, stamping the machine
    and workload settings every run (the benchmark-honesty contract)."""
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data[key] = value
    data["smoke"] = SMOKE
    data["cpu_count"] = os.cpu_count()
    data["settings"] = {
        "shards": SHARDS,
        "jobs": JOBS,
        "seed": SEED,
        "clients": CLIENTS,
        "duration": DURATION,
        "warmup": WARMUP,
    }
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _legacy_serial():
    """The pre-scale-out path: one system, in-process serial stitch."""
    start = time.perf_counter()
    system = TpcwSystem(clients=CLIENTS, seed=SEED)
    results = system.run(duration=DURATION, warmup=WARMUP)
    stitch_profiles(system.stages_by_name.values())
    wall = time.perf_counter() - start
    return system, results, wall


def _sharded(tmp_path, jobs):
    spool = str(tmp_path / f"spool-j{jobs}")
    start = time.perf_counter()
    plan = plan_shards(
        "tpcw",
        seed=SEED,
        clients=CLIENTS,
        shards=SHARDS,
        duration=DURATION,
        warmup=WARMUP,
        spool_dir=spool,
        profile_format="v2",
    )
    run = run_shards(plan, jobs=jobs)
    profile = run.stitch(jobs=jobs)
    wall = time.perf_counter() - start
    return run, profile, wall


def test_scaleout_run_and_stitch(benchmark, tmp_path):
    def experiment():
        _, _, serial_wall = _legacy_serial()
        run_1, profile_1, sharded_serial_wall = _sharded(tmp_path, jobs=1)
        # Warm the session pool first: its startup is a once-per-session
        # cost by design, not part of a run's wall time.
        get_pool(JOBS).run(_noop, [0])
        run_n, profile_n, sharded_parallel_wall = _sharded(tmp_path, jobs=JOBS)
        return (serial_wall, sharded_serial_wall, sharded_parallel_wall,
                run_1, profile_1, run_n, profile_n)

    (serial_wall, sharded_serial_wall, sharded_parallel_wall,
     run_1, profile_1, run_n, profile_n) = run_once(benchmark, experiment)

    # -- determinism proof (scheduling independence) -------------------
    bytes_1 = canonical_profile_bytes(profile_1)
    bytes_n = canonical_profile_bytes(profile_n)
    assert bytes_1 == bytes_n, "parallel stitch diverged from serial stitch"
    assert run_1.throughput() == run_n.throughput()
    proof = hashlib.sha256(bytes_1).hexdigest()

    cpu_count = os.cpu_count() or 1
    speedup = serial_wall / sharded_parallel_wall
    parallel_gain = sharded_serial_wall / sharded_parallel_wall
    gates_asserted = cpu_count >= SHARDS
    skip_reason = None
    if not gates_asserted:
        skip_reason = (
            f"cpu_count {cpu_count} < {SHARDS} shards: a process pool "
            "cannot beat serial without the cores; wall numbers recorded "
            "honestly, speedup gates not asserted"
        )

    print_table(
        "scale-out: run + stitch wall time",
        ["path", "wall s", "vs serial"],
        [
            ["legacy serial", fmt(serial_wall, 3), "1.00x"],
            [f"{SHARDS} shards, 1 job", fmt(sharded_serial_wall, 3),
             f"{serial_wall / sharded_serial_wall:.2f}x"],
            [f"{SHARDS} shards, {JOBS} jobs", fmt(sharded_parallel_wall, 3),
             f"{speedup:.2f}x"],
        ],
    )
    print(f"determinism proof (canonical sha256): {proof}")
    print(f"cpu_count={cpu_count}, shard skew x{run_n.wall_skew():.2f}")

    _record(
        "run_stitch",
        {
            "serial_wall_s": serial_wall,
            "sharded_serial_wall_s": sharded_serial_wall,
            "sharded_parallel_wall_s": sharded_parallel_wall,
            "speedup_vs_serial": speedup,
            "parallel_gain_over_1job": parallel_gain,
            "shard_walls_s": run_n.shard_walls(),
            "shard_wall_skew": run_n.wall_skew(),
            "throughput_tpm": run_n.throughput(),
            "determinism_sha256": proof,
            "parallel_equals_serial": bytes_1 == bytes_n,
            "gates_asserted": gates_asserted,
            "gate_skip_reason": skip_reason,
        },
    )

    # The ≥2.5x headline needs ≥SHARDS real cores; assert it only
    # there, record honestly everywhere (the recorded skip reason says
    # exactly why a BENCH file carries unasserted numbers).
    if gates_asserted:
        assert speedup >= 2.5, (
            f"expected >=2.5x run+stitch speedup at {SHARDS} shards/{JOBS} "
            f"jobs on a {cpu_count}-core machine, got {speedup:.2f}x"
        )
        assert parallel_gain > 1.0, (
            f"{JOBS} jobs must beat 1 job on a {cpu_count}-core machine, "
            f"got {parallel_gain:.2f}x"
        )
    else:
        print(f"gate skipped: {skip_reason}")
        # Softened floor for core-starved machines: extra jobs may not
        # *help* without cores, but pool dispatch overhead must never
        # make the multi-job path pathologically slower than one job.
        assert parallel_gain > 0.5, (
            f"{JOBS} jobs are {1 / parallel_gain:.2f}x slower than 1 job "
            f"on a {cpu_count}-core machine — pool overhead, not core "
            "starvation"
        )


def _noop(value):
    return value


def _pool_reuse_plan(tmp_path, tag):
    return plan_shards(
        "haboob",
        seed=SEED,
        clients=16,
        shards=SHARDS,
        duration=3.0,
        spool_dir=str(tmp_path / f"reuse-{tag}"),
        profile_format="v2",
    )


def test_scaleout_pool_reuse(benchmark, tmp_path):
    """Cold pool (fork workers, then run) vs the warm session pool."""

    def experiment():
        shutdown_pools()
        start = time.perf_counter()
        run_shards(_pool_reuse_plan(tmp_path, "cold"), jobs=JOBS)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        run_shards(_pool_reuse_plan(tmp_path, "warm"), jobs=JOBS)
        warm = time.perf_counter() - start
        return cold, warm

    cold, warm = run_once(benchmark, experiment)
    gain = cold / warm

    print_table(
        "pool reuse: identical sharded runs",
        ["pool state", "wall s", "gain"],
        [
            ["cold (forks workers)", fmt(cold, 3), "1.00x"],
            ["warm (session pool)", fmt(warm, 3), f"{gain:.2f}x"],
        ],
    )
    _record(
        "pool_reuse",
        {
            "cold_wall_s": cold,
            "warm_wall_s": warm,
            "pool_reuse_gain": gain,
        },
    )
    # The warm run must not be slower beyond noise: pool startup is the
    # whole difference between the two runs.
    assert gain > 0.8, f"warm pool slower than cold pool ({gain:.2f}x)"


def test_scaleout_reduce_tree(benchmark, tmp_path):
    """Hierarchical shard→group→global vs the flat reduce, same spool."""

    def experiment():
        plan = plan_shards(
            "haboob",
            seed=SEED,
            clients=4 * SHARDS,
            shards=4 * SHARDS,  # enough shards for a real tree
            duration=3.0,
            spool_dir=str(tmp_path / "tree"),
            profile_format="v2",
        )
        run = run_shards(plan, jobs=1)
        groups = run.dump_groups()
        start = time.perf_counter()
        flat = run.stitch()
        flat_wall = time.perf_counter() - start
        stats = {}
        start = time.perf_counter()
        tree = hierarchical_stitch(groups, group_size=0, stats=stats)
        tree_wall = time.perf_counter() - start
        return flat, flat_wall, tree, tree_wall, stats

    flat, flat_wall, tree, tree_wall, stats = run_once(benchmark, experiment)
    identical = canonical_profile_bytes(flat) == canonical_profile_bytes(tree)
    assert identical, "hierarchical reduce diverged from flat reduce"

    print_table(
        "reduce tree: flat vs hierarchical (same bytes out)",
        ["path", "wall s", "parent fold s"],
        [
            ["flat all-shards", fmt(flat_wall, 4), fmt(flat_wall, 4)],
            [f"{stats['groups']} groups of {stats['group_size']}",
             fmt(tree_wall, 4), fmt(stats["parent_fold_s"], 4)],
        ],
    )
    _record(
        "reduce_tree",
        {
            "shards": 4 * SHARDS,
            "group_size": stats["group_size"],
            "groups": stats["groups"],
            "flat_wall_s": flat_wall,
            "tree_wall_s": tree_wall,
            "group_walls_s": stats["group_walls"],
            "group_bytes": stats["group_bytes"],
            "parent_fold_s": stats["parent_fold_s"],
            "tree_equals_flat": identical,
        },
    )


def test_scaleout_openloop_million(benchmark, tmp_path):
    """≥1M simulated clients across shards — the north-star row."""

    params = {
        "arrival_rate": MILLION_RATE,
        "total_clients": MILLION_CLIENTS,
        "diurnal_amplitude": 0.3,
        "diurnal_period": 20.0,
        "flash_crowds": [[10.0, 5.0, 2.0]],
        "think": {"distribution": "pareto", "alpha": 1.5, "minimum": 0.01},
        "objects": 500,
        "record_log": False,
    }

    def experiment():
        plan = plan_shards(
            "openloop",
            seed=SEED,
            clients=MILLION_CLIENTS,
            shards=MILLION_SHARDS,
            duration=MILLION_DURATION,
            params=params,
            spool_dir=str(tmp_path / "openloop"),
            profile_format="v2",
        )
        jobs = min(JOBS, MILLION_SHARDS)
        start = time.perf_counter()
        run = run_shards(plan, jobs=jobs)
        run_wall = time.perf_counter() - start
        start = time.perf_counter()
        profile = run.stitch(jobs=jobs, group_size=0)
        stitch_wall = time.perf_counter() - start
        return run, run_wall, profile, stitch_wall

    run, run_wall, profile, stitch_wall = run_once(benchmark, experiment)
    started = run.sessions_started()
    rate = started / run_wall

    print_table(
        f"open-loop population across {MILLION_SHARDS} shards",
        ["metric", "value"],
        [
            ["simulated clients (sessions)", started],
            ["sessions finished", run.sessions_finished()],
            ["responses served", run.served()],
            ["run wall s", fmt(run_wall, 2)],
            ["sessions / wall s", fmt(rate, 0)],
            ["mean response ms", fmt(run.mean_response() * 1000, 2)],
            ["shard skew", f"x{run.wall_skew():.2f}"],
            ["stitched contexts", len(profile.entries)],
        ],
    )
    _record(
        "openloop_million",
        {
            "simulated_clients": started,
            "planned_clients": MILLION_CLIENTS,
            "shards": MILLION_SHARDS,
            "sessions_finished": run.sessions_finished(),
            "responses_served": run.served(),
            "run_wall_s": run_wall,
            "sessions_per_wall_s": rate,
            "mean_response_ms": run.mean_response() * 1000,
            "shard_wall_skew": run.wall_skew(),
            "stitch_wall_s": stitch_wall,
            "stitched_contexts": len(profile.entries),
            "arrival_rate": MILLION_RATE,
            "diurnal_amplitude": params["diurnal_amplitude"],
            "flash_crowds": params["flash_crowds"],
            "think": params["think"],
        },
    )
    assert started >= MILLION_CLIENTS, (
        f"planned {MILLION_CLIENTS} sessions, generated only {started}"
    )


def test_scaleout_dump_size(benchmark):
    def experiment():
        system, _, _ = _legacy_serial()
        stages = list(system.stages_by_name.values())
        v1 = sum(dump_size(stage, "v1") for stage in stages)
        v2 = sum(dump_size(stage, "v2") for stage in stages)
        per_stage = {
            name: [dump_size(stage, "v1"), dump_size(stage, "v2")]
            for name, stage in system.stages_by_name.items()
        }
        return v1, v2, per_stage

    v1, v2, per_stage = run_once(benchmark, experiment)
    ratio = v1 / v2

    print_table(
        "profile dump size (same run)",
        ["stage", "v1 bytes", "v2 bytes", "ratio"],
        [[name, a, b, f"{a / b:.2f}x"] for name, (a, b) in per_stage.items()]
        + [["total", v1, v2, f"{ratio:.2f}x"]],
    )

    _record(
        "dump_size",
        {
            "v1_bytes": v1,
            "v2_bytes": v2,
            "ratio": ratio,
            "per_stage": per_stage,
        },
    )
    assert ratio >= 5.0, f"v2 must be >=5x smaller than v1, got {ratio:.2f}x"
