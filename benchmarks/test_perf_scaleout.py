"""Scale-out benchmark: sharded run + parallel stitch vs the serial path.

Measures the three headline numbers of the scale-out layer and writes
them to ``BENCH_scaleout.json`` at the repository root:

- **run+stitch wall time**: legacy single-system serial path vs a
  4-shard plan executed with 1 worker and with 4 workers.  The ≥2x
  speedup assertion only fires when the machine actually has the
  cores (``os.cpu_count() >= SHARDS``) — on a 1-core box a process
  pool can't beat serial and pretending otherwise would poison the
  trajectory.  The recorded ``cpu_count`` keeps BENCH files comparable
  across machines.
- **dump bytes**: v1 vs v2 for the same run; gated at ≥5x.
- **determinism proof**: the canonical SHA-256 of the merged 4-shard
  profile, asserted byte-identical between the 1-worker and 4-worker
  executions (the parallel-stitch == serial-stitch CI gate).

Set ``PERF_SMOKE=1`` (as the CI workflow does) for a smaller workload.
"""

import hashlib
import json
import os
import time
from pathlib import Path

from benchharness import fmt, print_table, run_once

from repro.apps.tpcw import TpcwSystem
from repro.core.persist import dump_size
from repro.core.stitch import stitch_profiles
from repro.parallel import canonical_profile_bytes, plan_shards, run_shards

SMOKE = os.environ.get("PERF_SMOKE") == "1"

SHARDS = 4
JOBS = 4
SEED = 42
CLIENTS = 40 if SMOKE else 120
DURATION = 30.0 if SMOKE else 90.0
WARMUP = 5.0 if SMOKE else 15.0

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_scaleout.json"


def _record(key, value):
    """Merge one result into BENCH_scaleout.json, stamping the machine
    and workload settings every run (the benchmark-honesty contract)."""
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data[key] = value
    data["smoke"] = SMOKE
    data["cpu_count"] = os.cpu_count()
    data["settings"] = {
        "shards": SHARDS,
        "jobs": JOBS,
        "seed": SEED,
        "clients": CLIENTS,
        "duration": DURATION,
        "warmup": WARMUP,
    }
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _legacy_serial():
    """The pre-scale-out path: one system, in-process serial stitch."""
    start = time.perf_counter()
    system = TpcwSystem(clients=CLIENTS, seed=SEED)
    results = system.run(duration=DURATION, warmup=WARMUP)
    stitch_profiles(system.stages_by_name.values())
    wall = time.perf_counter() - start
    return system, results, wall


def _sharded(tmp_path, jobs):
    spool = str(tmp_path / f"spool-j{jobs}")
    start = time.perf_counter()
    plan = plan_shards(
        "tpcw",
        seed=SEED,
        clients=CLIENTS,
        shards=SHARDS,
        duration=DURATION,
        warmup=WARMUP,
        spool_dir=spool,
        profile_format="v2",
    )
    run = run_shards(plan, jobs=jobs)
    profile = run.stitch(jobs=jobs)
    wall = time.perf_counter() - start
    return run, profile, wall


def test_scaleout_run_and_stitch(benchmark, tmp_path):
    def experiment():
        _, _, serial_wall = _legacy_serial()
        run_1, profile_1, sharded_serial_wall = _sharded(tmp_path, jobs=1)
        run_n, profile_n, sharded_parallel_wall = _sharded(tmp_path, jobs=JOBS)
        return (serial_wall, sharded_serial_wall, sharded_parallel_wall,
                run_1, profile_1, run_n, profile_n)

    (serial_wall, sharded_serial_wall, sharded_parallel_wall,
     run_1, profile_1, run_n, profile_n) = run_once(benchmark, experiment)

    # -- determinism proof (scheduling independence) -------------------
    bytes_1 = canonical_profile_bytes(profile_1)
    bytes_n = canonical_profile_bytes(profile_n)
    assert bytes_1 == bytes_n, "parallel stitch diverged from serial stitch"
    assert run_1.throughput() == run_n.throughput()
    proof = hashlib.sha256(bytes_1).hexdigest()

    cpu_count = os.cpu_count() or 1
    speedup = serial_wall / sharded_parallel_wall
    parallel_gain = sharded_serial_wall / sharded_parallel_wall

    print_table(
        "scale-out: run + stitch wall time",
        ["path", "wall s", "vs serial"],
        [
            ["legacy serial", fmt(serial_wall, 3), "1.00x"],
            [f"{SHARDS} shards, 1 job", fmt(sharded_serial_wall, 3),
             f"{serial_wall / sharded_serial_wall:.2f}x"],
            [f"{SHARDS} shards, {JOBS} jobs", fmt(sharded_parallel_wall, 3),
             f"{speedup:.2f}x"],
        ],
    )
    print(f"determinism proof (canonical sha256): {proof}")
    print(f"cpu_count={cpu_count}")

    _record(
        "run_stitch",
        {
            "serial_wall_s": serial_wall,
            "sharded_serial_wall_s": sharded_serial_wall,
            "sharded_parallel_wall_s": sharded_parallel_wall,
            "speedup_vs_serial": speedup,
            "parallel_gain_over_1job": parallel_gain,
            "throughput_tpm": run_n.throughput(),
            "determinism_sha256": proof,
            "parallel_equals_serial": bytes_1 == bytes_n,
        },
    )

    # The ≥2x headline needs ≥SHARDS real cores; assert it only there,
    # record honestly everywhere.
    if cpu_count >= SHARDS:
        assert speedup >= 2.0, (
            f"expected >=2x run+stitch speedup at {SHARDS} shards/{JOBS} jobs "
            f"on a {cpu_count}-core machine, got {speedup:.2f}x"
        )


def test_scaleout_dump_size(benchmark):
    def experiment():
        system, _, _ = _legacy_serial()
        stages = list(system.stages_by_name.values())
        v1 = sum(dump_size(stage, "v1") for stage in stages)
        v2 = sum(dump_size(stage, "v2") for stage in stages)
        per_stage = {
            name: [dump_size(stage, "v1"), dump_size(stage, "v2")]
            for name, stage in system.stages_by_name.items()
        }
        return v1, v2, per_stage

    v1, v2, per_stage = run_once(benchmark, experiment)
    ratio = v1 / v2

    print_table(
        "profile dump size (same run)",
        ["stage", "v1 bytes", "v2 bytes", "ratio"],
        [[name, a, b, f"{a / b:.2f}x"] for name, (a, b) in per_stage.items()]
        + [["total", v1, v2, f"{ratio:.2f}x"]],
    )

    _record(
        "dump_size",
        {
            "v1_bytes": v1,
            "v2_bytes": v2,
            "ratio": ratio,
            "per_stage": per_stage,
        },
    )
    assert ratio >= 5.0, f"v2 must be >=5x smaller than v1, got {ratio:.2f}x"
