"""Table 1: MySQL CPU profile (%) and mean crosstalk wait per TPC-W
interaction, browsing mix, 100 concurrent clients.

Paper result (abridged): BestSellers 51.50% / SearchResult 43.28% /
NewProducts 3.29% of MySQL CPU; AdminConfirm has the largest mean
crosstalk wait (93.76 ms), BuyConfirm next (68.55 ms), with the common
read-only interactions around a millisecond.
"""

from benchharness import fmt, print_table, run_once

from repro.apps.tpcw import INTERACTIONS, TpcwSystem

PAPER_CPU = {
    "AdminConfirm": 0.82,
    "AdminRequest": 0.00,
    "BestSellers": 51.50,
    "BuyConfirm": 0.04,
    "BuyRequest": 0.03,
    "CustomerRegistration": 0.00,
    "Home": 0.57,
    "NewProducts": 3.29,
    "OrderDisplay": 0.01,
    "ProductDetail": 0.22,
    "SearchRequest": 0.16,
    "SearchResult": 43.28,
    "ShoppingCart": 0.07,
}
PAPER_WAIT = {
    "AdminConfirm": 93.76,
    "AdminRequest": 6.68,
    "BestSellers": 22.16,
    "BuyConfirm": 68.55,
    "BuyRequest": 0.11,
    "CustomerRegistration": 0.01,
    "Home": 1.51,
    "NewProducts": 1.59,
    "OrderDisplay": 0.09,
    "ProductDetail": 0.66,
    "SearchRequest": 1.15,
    "SearchResult": 5.52,
    "ShoppingCart": 0.86,
}


def run_table1():
    # AdminConfirm is 0.09% of the mix, so its crosstalk mean needs a
    # long run to have any instances at all (n≈10 at 900 s); the paper's
    # own AdminConfirm column carries the same small-n noise.
    system = TpcwSystem(clients=100, seed=43)
    results = system.run(duration=900.0, warmup=60.0)
    return system, results


def test_table1_mysql_profile_and_crosstalk(benchmark):
    system, results = run_once(benchmark, run_table1)
    shares = results.db_cpu_share()
    waits = results.crosstalk_wait_ms()

    rows = []
    for name in sorted(INTERACTIONS):
        if name == "OrderInquiry":  # the paper's table omits it
            continue
        rows.append(
            [
                name,
                fmt(PAPER_CPU[name], 2),
                fmt(shares.get(name, 0.0), 2),
                fmt(PAPER_WAIT[name], 2),
                fmt(waits.get(name, 0.0), 2),
            ]
        )
    print_table(
        "Table 1 — MySQL CPU profile (%) and mean crosstalk wait (ms), "
        "browsing mix, 100 clients",
        ["interaction", "CPU% paper", "CPU% measured", "wait paper", "wait measured"],
        rows,
    )

    # -- CPU distribution shape ---------------------------------------
    assert 40 < shares["BestSellers"] < 62
    assert 33 < shares["SearchResult"] < 54
    assert 1 < shares["NewProducts"] < 8
    assert shares.get("Home", 0) < 3
    assert shares.get("ProductDetail", 0) < 2
    # BestSellers and SearchResult together dominate as in the paper.
    assert shares["BestSellers"] + shares["SearchResult"] > 80

    # -- crosstalk shape ------------------------------------------------
    writers = max(waits.get("AdminConfirm", 0), waits.get("BuyConfirm", 0))
    readers = max(
        waits.get("Home", 0),
        waits.get("ProductDetail", 0),
        waits.get("SearchRequest", 0),
    )
    assert writers > 10.0  # tens of ms, as in the paper
    assert readers < 10.0
    assert writers > 5 * max(readers, 0.1)
