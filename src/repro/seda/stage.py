"""The SEDA middleware analog: stages, stage queues, context tracking.

This is Fig 5 of the paper, executable.  Stage queues carry a
transaction-context field on every element; a stage worker thread
dequeues an element, computes its current context by appending the
stage's name (collapsing repeats and pruning loops exactly as for
events), runs the stage handler, and any element it enqueues downstream
inherits its current context.  Applications built on this middleware —
the Haboob-like server of :mod:`repro.apps.haboob` — need no
modification for transactional profiling.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Iterator, List, Optional, TYPE_CHECKING

from repro import telemetry as _telemetry
from repro.core.context import TransactionContext
from repro.sim.process import CurrentThread, SimThread, Syscall, frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel


class StageEvent:
    """A queue element with its transaction-context field (Fig 5).

    ``enqueued_at`` is stamped by telemetry-enabled queues so the
    dequeuing worker can report queue wait time; it stays ``None`` when
    telemetry is off.
    """

    __slots__ = ("payload", "tran_ctxt", "enqueued_at")

    def __init__(self, payload: Any, tran_ctxt: Optional[TransactionContext] = None):
        self.payload = payload
        self.tran_ctxt = tran_ctxt or TransactionContext.empty()
        self.enqueued_at: Optional[float] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StageEvent {self.payload!r} ctxt={self.tran_ctxt!r}>"


class StageQueue:
    """A FIFO queue connecting consecutive stages.

    With ``capacity=None`` the queue is unbounded.  A bounded queue
    implements SEDA's admission control: when full, :meth:`enqueue`
    rejects the element (returns False) so the upstream stage can shed
    load instead of letting queues grow without bound — the mechanism
    behind SEDA's "well-conditioned" behaviour under overload.
    """

    __slots__ = (
        "kernel",
        "name",
        "capacity",
        "_elements",
        "_waiters",
        "enqueued",
        "rejected",
        "_tele",
        "_tele_depth",
        "_tele_enqueued",
        "_tele_rejected",
    )

    def __init__(
        self,
        kernel: "Kernel",
        name: str = "stage_queue",
        capacity: Optional[int] = None,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive or None")
        self.kernel = kernel
        self.name = name
        self.capacity = capacity
        self._elements: Deque[StageEvent] = deque()
        self._waiters: Deque[SimThread] = deque()
        self.enqueued = 0
        self.rejected = 0
        # Captured once: a queue built while telemetry is off costs
        # nothing per element.
        tele = _telemetry.ACTIVE
        self._tele = tele
        if tele is not None and tele.wants_metrics:
            m = tele.metrics
            self._tele_depth = m.gauge(
                "repro_seda_queue_depth", "buffered elements", queue=name
            )
            self._tele_enqueued = m.counter(
                "repro_seda_enqueued_total", "elements admitted", queue=name
            )
            self._tele_rejected = m.counter(
                "repro_seda_rejected_total",
                "elements rejected by admission control",
                queue=name,
            )
        else:
            self._tele_depth = None
            self._tele_enqueued = None
            self._tele_rejected = None

    def enqueue(self, element: StageEvent) -> bool:
        """Fig 5's ``enqueue``: deliver to a blocked worker or buffer.

        Returns False (and drops the element) when a bounded queue is
        full — SEDA admission control.
        """
        tele_enqueued = self._tele_enqueued
        if self._tele is not None:
            element.enqueued_at = self.kernel.now
        waiters = self._waiters
        while waiters:
            waiter = waiters.popleft()
            if not waiter.alive:
                # The worker crashed while blocked here; the element must
                # go to a surviving worker (or the buffer), not vanish.
                continue
            self.enqueued += 1
            if tele_enqueued is not None:
                tele_enqueued.inc()
            self.kernel.resume(waiter, element)
            return True
        elements = self._elements
        if self.capacity is not None and len(elements) >= self.capacity:
            self.rejected += 1
            if self._tele_rejected is not None:
                self._tele_rejected.inc()
            return False
        self.enqueued += 1
        elements.append(element)
        if tele_enqueued is not None:
            tele_enqueued.inc()
            self._tele_depth.set(len(elements))
        return True

    def __len__(self) -> int:
        return len(self._elements)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StageQueue {self.name} depth={len(self._elements)}>"


class Dequeue(Syscall):
    """Block until the stage queue has an element; result is the element.

    With ``batch > 1`` a non-empty queue yields a *list* of up to
    ``batch`` buffered elements in FIFO order — one worker wakeup
    drains a run of ready items instead of paying a schedule/resume
    round trip per element.  ``share`` is the stage's worker-pool
    size: a worker only takes its fair share of the backlog
    (``len // share``, at least one element) so one wakeup never
    starves sibling workers of ready elements and stage parallelism
    is preserved.  A worker parked on an empty queue is still handed
    a single element by :meth:`StageQueue.enqueue`, so batch
    consumers must accept both shapes (see
    :meth:`SedaStage._worker_loop`).
    """

    __slots__ = ("queue", "batch", "share")

    def __init__(self, queue: StageQueue, batch: int = 1, share: int = 1):
        self.queue = queue
        self.batch = batch
        self.share = share if share > 0 else 1

    def execute(self, kernel: "Kernel", thread: SimThread) -> None:
        queue = self.queue
        elements = queue._elements
        if elements:
            batch = self.batch
            if batch > 1 and len(elements) > 1:
                take = len(elements) // self.share
                if take < 1:
                    take = 1
                elif take > batch:
                    take = batch
                if take > 1:
                    result = [elements.popleft() for _ in range(take)]
                else:
                    result = elements.popleft()
            else:
                result = elements.popleft()
            if queue._tele_depth is not None:
                queue._tele_depth.set(len(elements))
            kernel.resume(thread, result)
        else:
            thread.blocked_on = self
            queue._waiters.append(thread)

    def __repr__(self) -> str:
        return f"Dequeue({self.queue.name})"


class SedaStage:
    """One SEDA stage: an input queue and a pool of worker threads.

    The handler is a generator ``handler(stage, thread, payload)``
    yielding simulation syscalls.  It sends work downstream with
    :meth:`enqueue`, which stamps the element with the worker's current
    transaction context (Fig 5 line 12).
    """

    def __init__(
        self,
        kernel: "Kernel",
        name: str,
        handler: Callable[["SedaStage", SimThread, Any], Iterator],
        workers: int = 1,
        stage_runtime: Any = None,
        prune_loops: bool = True,
        queue_capacity: Optional[int] = None,
        dequeue_batch: int = 8,
    ):
        self.kernel = kernel
        self.name = name
        self.handler = handler
        self.workers = workers
        self.stage_runtime = stage_runtime
        self.prune_loops = prune_loops
        # Max ready elements one worker wakeup drains (1 = classic
        # element-per-wakeup dispatch).
        self.dequeue_batch = max(1, dequeue_batch)
        self.input_queue = StageQueue(kernel, f"{name}.in", capacity=queue_capacity)
        self.threads: List[SimThread] = []
        self.processed = 0
        self.crashes = 0
        self.restarts = 0
        self.lost_elements = 0
        tele = _telemetry.ACTIVE
        self._tele = tele
        if tele is not None and tele.wants_metrics:
            m = tele.metrics
            self._tele_wait = m.histogram(
                "repro_seda_queue_wait_seconds",
                "virtual time an element waits in the stage input queue",
                stage=name,
            )
            self._tele_service = m.histogram(
                "repro_seda_service_seconds",
                "virtual time a worker spends handling one element",
                stage=name,
            )
        else:
            self._tele_wait = None
            self._tele_service = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the stage's worker threads."""
        for i in range(self.workers):
            thread = self.kernel.spawn(
                self._worker_loop(),
                name=f"{self.name}-{i}",
                stage=self.stage_runtime,
            )
            thread.daemon = True
            self.threads.append(thread)

    def _worker_loop(self) -> Iterator:
        thread = yield CurrentThread()
        tele = self._tele
        queue = self.input_queue
        prune = self.prune_loops
        name = self.name
        # One reusable (stateless) Dequeue syscall per worker: the
        # per-element allocation was measurable on stage-heavy runs.
        deq = Dequeue(queue, batch=self.dequeue_batch, share=self.workers)
        with frame(thread, "stage_loop"):
            while True:
                batch = yield deq
                if batch.__class__ is not list:
                    batch = (batch,)
                index = 0
                try:
                    for index, element in enumerate(batch):
                        # Fig 5 lines 5-6: current context = concat(
                        # element context, current stage), normalised
                        # per §4.1/§4.2.
                        thread.tran_ctxt = element.tran_ctxt.append(
                            name, prune=prune
                        )
                        self.processed += 1
                        span = None
                        if tele is not None:
                            now = self.kernel.now
                            wait = (
                                now - element.enqueued_at
                                if element.enqueued_at is not None
                                else 0.0
                            )
                            if self._tele_wait is not None:
                                self._tele_wait.observe(wait)
                            span = tele.spans.begin(
                                name,
                                "seda.stage",
                                name,
                                now,
                                thread=thread.tid,
                                attrs={"queue_wait": wait},
                            )
                        closing = False
                        try:
                            with frame(thread, name):
                                yield from self.handler(
                                    self, thread, element.payload
                                )
                        except GeneratorExit:
                            # The worker is being destroyed while
                            # suspended — a stage crash, or the
                            # interpreter finalizing the generator at
                            # garbage-collection time.  The element
                            # never completed, and GC can fire at an
                            # arbitrary point of the host program (even
                            # mid-iteration of the span recorder's own
                            # structures), so emitting telemetry from
                            # here would both fake a completion and
                            # mutate live state out of virtual time.
                            closing = True
                            raise
                        finally:
                            thread.tran_ctxt = None
                            if span is not None and not closing:
                                tele.spans.end(span, self.kernel.now)
                                if self._tele_service is not None:
                                    self._tele_service.observe(span.duration)
                except GeneratorExit:
                    # Killed mid-batch: the unprocessed tail returns to
                    # the queue front (the in-flight element is lost,
                    # as in element-per-wakeup dispatch), so crash
                    # accounting counts exactly the same losses.
                    for rest in reversed(batch[index + 1 :]):
                        queue._elements.appendleft(rest)
                    raise

    # ------------------------------------------------------------------
    def crash(self, restart_after: Optional[float] = None) -> None:
        """Fail-stop the stage: kill every worker thread mid-flight.

        Elements buffered in the input queue (the crashed process's
        memory) are lost, and the attached profiler runtime loses its
        volatile bookkeeping — in particular the synopsis-table
        mappings, which is what makes pre-crash synopses *unresolvable*
        during stitching rather than aliasable.  With ``restart_after``
        a fresh worker pool is spawned that much virtual time later;
        the lost mappings stay lost (restart is not recovery).

        Limitation: a worker killed while holding a simulated mutex
        never releases it; crash points should sit at stage boundaries,
        not inside critical sections.
        """
        self.crashes += 1
        for thread in self.threads:
            if thread.alive:
                thread.finish(None)
        self.threads = []
        queue = self.input_queue
        self.lost_elements += len(queue._elements)
        queue._elements.clear()
        # Dead workers parked in Dequeue must not linger in the waiter
        # list: enqueue() skips them but never frees them, so repeated
        # crash/restart cycles would grow the deque without bound.
        if queue._waiters:
            queue._waiters = deque(w for w in queue._waiters if w.alive)
        if queue._tele_depth is not None:
            queue._tele_depth.set(0)
        runtime = self.stage_runtime
        if runtime is not None:
            runtime_crash = getattr(runtime, "crash", None)
            if runtime_crash is not None:
                runtime_crash()
        if restart_after is not None:
            self.kernel.schedule(restart_after, self.restart)

    def restart(self) -> None:
        """Spawn a fresh worker pool after a crash."""
        self.restarts += 1
        self.start()

    # ------------------------------------------------------------------
    def enqueue(self, thread: SimThread, queue: StageQueue, payload: Any) -> bool:
        """Fig 5's ``enqueue_elem``: stamp and enqueue downstream work.

        Returns False when the downstream queue rejected the element
        (admission control on a bounded queue).
        """
        context = thread.tran_ctxt or TransactionContext.empty()
        return queue.enqueue(StageEvent(payload, context))

    def inject(self, payload: Any) -> bool:
        """Enqueue external work (no transaction context yet)."""
        return self.input_queue.enqueue(StageEvent(payload))
