"""SEDA: staged event-driven architecture with transaction tracking (§4.2)."""

from repro.seda.stage import Dequeue, SedaStage, StageEvent, StageQueue

__all__ = ["SedaStage", "StageQueue", "StageEvent", "Dequeue"]
