"""Simulated stream sockets: endpoints, connections, listeners.

An :class:`Endpoint` is one direction of a connection: senders enqueue
messages that become visible to the receiver after the channel latency;
receivers block until data arrives.  :class:`Connection` pairs two
endpoints; :class:`Listener` is a server socket with an accept queue.
Endpoints support data observers so event loops (Squid) can be woken by
arriving data instead of blocking a thread per connection.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, TYPE_CHECKING

from repro import telemetry as _telemetry
from repro.channels.message import Message
from repro.sim.process import SimThread, Syscall

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel


class _TimedOut:
    """Sentinel a :class:`Recv` with a timeout resolves to on expiry."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "TIMED_OUT"


#: Returned by ``yield Recv(endpoint, timeout=...)`` when the timeout
#: fires before a message arrives.
TIMED_OUT = _TimedOut()


class Endpoint:
    """One direction of a simulated stream channel.

    ``latency`` models propagation delay; ``bandwidth`` (bytes/second,
    ``None`` = infinite) models link capacity: transmissions serialise
    on the link, so a large body delays everything queued behind it.
    """

    __slots__ = (
        "kernel",
        "latency",
        "bandwidth",
        "_name",
        "_buffer",
        "_receivers",
        "_link_free_at",
        "observers",
        "delivered_messages",
        "delivered_bytes",
        "_tele_messages",
        "_tele_bytes",
        "_faults",
    )

    def __init__(
        self,
        kernel: "Kernel",
        latency: float = 0.0,
        name: object = "endpoint",
        bandwidth: Optional[float] = None,
    ):
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError("bandwidth must be positive or None")
        self.kernel = kernel
        self.latency = latency
        self.bandwidth = bandwidth
        self._name = name
        self._buffer: Deque[Message] = deque()
        self._receivers: Deque[SimThread] = deque()
        self._link_free_at = 0.0
        self.observers: List[Callable[["Endpoint"], None]] = []
        self.delivered_messages = 0
        self.delivered_bytes = 0
        # Shared (unlabeled) channel counters, captured at construction
        # so delivery costs one None-check when telemetry is off.
        tele = _telemetry.ACTIVE
        if tele is not None and tele.wants_metrics:
            self._tele_messages = tele.channel_messages
            self._tele_bytes = tele.channel_bytes
        else:
            self._tele_messages = None
            self._tele_bytes = None
        # Fault injection, captured once like telemetry: a fault-free
        # run pays a single None-check per send.
        faults = getattr(kernel, "faults", None)
        self._faults = faults.attach(self) if faults is not None else None

    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Enqueue a message; it becomes receivable after transmission

        (if bandwidth-limited) plus the propagation latency.
        """
        kernel = self.kernel
        delay = self.latency
        if self.bandwidth is not None:
            now = kernel.now
            start = self._link_free_at
            if now > start:
                start = now
            free = start + message.size / self.bandwidth
            self._link_free_at = free
            delay = (free - now) + self.latency
        faults = self._faults
        if faults is not None:
            for extra in faults.deliveries(message):
                kernel.schedule(delay + extra, self._deliver, message)
            return
        if delay > 0:
            kernel.schedule(delay, self._deliver, message)
        else:
            self._deliver(message)

    def _deliver(self, message: Message) -> None:
        self.delivered_messages += 1
        self.delivered_bytes += message.size
        tele_messages = self._tele_messages
        if tele_messages is not None:
            tele_messages.inc()
            self._tele_bytes.inc(message.size)
        receivers = self._receivers
        while receivers:
            receiver = receivers.popleft()
            if not receiver.alive:
                # A crashed thread consumes nothing: fall through to the
                # next live receiver, or buffer the message.
                continue
            blocked = receiver.blocked_on
            timer = getattr(blocked, "timer", None)
            if timer is not None:
                timer.cancel()
            self.kernel.resume(receiver, message)
            return
        self._buffer.append(message)
        for observer in self.observers:
            observer(self)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Endpoint name, built lazily for connection-owned endpoints.

        :class:`Connection` passes a ``(base, conn_id, suffix)`` tuple
        instead of a formatted string — session-per-connection workloads
        open connections by the hundreds of thousands and the names are
        only ever read by reprs and error messages.
        """
        name = self._name
        if name.__class__ is not str:
            base, conn_id, suffix = name
            name = self._name = f"{base}#{conn_id}{suffix}"
        return name

    @name.setter
    def name(self, value: str) -> None:
        self._name = value

    @property
    def readable(self) -> bool:
        return bool(self._buffer)

    def try_recv(self) -> Optional[Message]:
        """Non-blocking receive (event loops poll with this)."""
        if self._buffer:
            return self._buffer.popleft()
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Endpoint {self.name} buffered={len(self._buffer)}>"


class Send(Syscall):
    """Send a message on an endpoint (never blocks: infinite buffers)."""

    __slots__ = ("endpoint", "message")

    def __init__(self, endpoint: Endpoint, message: Message):
        self.endpoint = endpoint
        self.message = message

    def execute(self, kernel: "Kernel", thread: SimThread) -> None:
        self.endpoint.send(self.message)
        kernel.resume(thread, None)

    def __repr__(self) -> str:
        return f"Send({self.endpoint.name})"


class Recv(Syscall):
    """Block until a message is available on the endpoint.

    With ``timeout`` (virtual seconds), the wait is bounded by a kernel
    timer: if nothing arrives in time the thread is resumed with the
    :data:`TIMED_OUT` sentinel instead of a message.  The timer is
    cancelled on delivery, so a served receive leaves no heap garbage.
    """

    __slots__ = ("endpoint", "timeout", "timer")

    def __init__(self, endpoint: Endpoint, timeout: Optional[float] = None):
        if timeout is not None and timeout < 0:
            raise ValueError("negative receive timeout")
        self.endpoint = endpoint
        self.timeout = timeout
        self.timer = None

    def execute(self, kernel: "Kernel", thread: SimThread) -> None:
        message = self.endpoint.try_recv()
        if message is not None:
            kernel.resume(thread, message)
            return
        thread.blocked_on = self
        self.endpoint._receivers.append(thread)
        if self.timeout is not None:
            self.timer = kernel.schedule(self.timeout, self._expire, kernel, thread)

    def _expire(self, kernel: "Kernel", thread: SimThread) -> None:
        # Identity check: the thread may since have been resumed and be
        # blocked on a different (even same-endpoint) syscall.
        if thread.blocked_on is not self:
            return
        try:
            self.endpoint._receivers.remove(thread)
        except ValueError:  # pragma: no cover - defensive
            pass
        kernel.resume(thread, TIMED_OUT)

    def __repr__(self) -> str:
        if self.timeout is not None:
            return f"Recv({self.endpoint.name}, timeout={self.timeout})"
        return f"Recv({self.endpoint.name})"


class Connection:
    """A bidirectional connection between a client and a server.

    The client sends on / the server receives from ``to_server``, and
    vice versa for ``to_client``.
    """

    __slots__ = ("conn_id", "_base", "_name", "to_server", "to_client")

    _next_id = 0

    def __init__(self, kernel: "Kernel", latency: float = 0.0, name: str = "conn"):
        conn_id = self.conn_id = Connection._next_id
        Connection._next_id = conn_id + 1
        # Names are derived lazily (see Endpoint.name): a connect is a
        # hot operation in session-per-connection workloads and the
        # three per-connection f-strings dominated its cost.
        self._base = name
        self._name = None
        self.to_server = Endpoint(kernel, latency, (name, conn_id, ".to_server"))
        self.to_client = Endpoint(kernel, latency, (name, conn_id, ".to_client"))

    @property
    def name(self) -> str:
        name = self._name
        if name is None:
            name = self._name = f"{self._base}#{self.conn_id}"
        return name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Connection {self.name}>"


class Listener:
    """A listening server socket with an accept queue."""

    __slots__ = (
        "kernel",
        "latency",
        "name",
        "_backlog",
        "_acceptors",
        "observers",
        "accepted_count",
    )

    def __init__(self, kernel: "Kernel", latency: float = 0.0, name: str = "listener"):
        self.kernel = kernel
        self.latency = latency
        self.name = name
        self._backlog: Deque[Connection] = deque()
        self._acceptors: Deque[SimThread] = deque()
        self.observers: List[Callable[["Listener"], None]] = []
        self.accepted_count = 0

    def connect(self) -> Connection:
        """Client side: create a new connection and queue it for accept."""
        connection = Connection(self.kernel, self.latency, self.name)
        if self._acceptors:
            acceptor = self._acceptors.popleft()
            self.accepted_count += 1
            self.kernel.resume(acceptor, connection)
        else:
            self._backlog.append(connection)
            for observer in self.observers:
                observer(self)
        return connection

    @property
    def readable(self) -> bool:
        return bool(self._backlog)

    def try_accept(self) -> Optional[Connection]:
        if self._backlog:
            self.accepted_count += 1
            return self._backlog.popleft()
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Listener {self.name} backlog={len(self._backlog)}>"


class Accept(Syscall):
    """Block until a client connects; result is the :class:`Connection`."""

    __slots__ = ("listener",)

    def __init__(self, listener: Listener):
        self.listener = listener

    def execute(self, kernel: "Kernel", thread: SimThread) -> None:
        connection = self.listener.try_accept()
        if connection is not None:
            kernel.resume(thread, connection)
        else:
            thread.blocked_on = self
            self.listener._acceptors.append(thread)

    def __repr__(self) -> str:
        return f"Accept({self.listener.name})"
