"""Shared-memory channels backed by the VM (§3, §7.2).

:class:`SharedMemoryRegion` bundles a process's VM machine, emulator and
flow detector.  :class:`SharedQueue` is the application-facing queue the
Apache-like server uses: its push/pop critical sections execute as VM
programs, emulated (with flow-detection hooks and emulation cycle costs)
while the profiler tracks the lock, natively once the lock is classified
no-flow or when profiling is off — exactly the execution-mode policy of
§7.2 whose cost Table 3 and §9.2 quantify.

On a successful consumption, the popped values' producer context is
handed to the consuming thread (§3.5): from then on, its profile samples
land in the CCT labeled with the producer's context.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.core.flow import FlowDetector
from repro.core.flow.detector import WindowHooks
from repro.sim.cpu import CPU, UseCPU
from repro.sim.process import SimThread
from repro.sim.sync import Acquire, Condition, Mutex, Notify, Release, Wait
from repro.vm.assembler import Program
from repro.vm.emulator import DIRECT, CostModel, Emulator
from repro.vm.machine import Machine
from repro.vm.programs import BoundedQueue


class SharedMemoryRegion:
    """One process's shared memory, emulator and flow detector."""

    def __init__(
        self,
        cpu: CPU,
        detector: Optional[FlowDetector] = None,
        cost_model: Optional[CostModel] = None,
    ):
        self.cpu = cpu
        self.machine = Machine()
        self.emulator = Emulator(cost_model)
        self.detector = detector or FlowDetector()

    # ------------------------------------------------------------------
    def _tracking(self, thread: SimThread) -> bool:
        stage = thread.stage
        return stage is not None and stage.tracking

    def run_critical_section(
        self,
        thread: SimThread,
        lock: Mutex,
        program: Program,
        args: Sequence[int] = (),
    ) -> Iterator:
        """Execute a critical-section program while holding ``lock``.

        The caller must already hold ``lock``.  Consumes CPU for the
        cycles the execution cost in the applicable mode (emulation
        while the lock is tracked, native otherwise).  Returns the
        :class:`WindowHooks` for the post-critical-section use window,
        or ``None`` when the section ran natively.
        """
        machine = self.machine
        machine.registers(thread.tid).load_arguments(*args)

        # One hoisted guard decides the execution mode for the whole
        # hop; the emulated branch is the only one that touches the
        # detector again.
        stage = thread.stage
        if (
            stage is not None
            and stage.tracking
            and self.detector.mode_for(lock) != DIRECT
        ):
            context = stage.context_at_send(thread)
            cs = self.detector.enter_cs(lock, thread.tid, context)
            result = self.emulator.run(program, machine, thread.tid, hooks=cs)
            window: Optional[WindowHooks] = self.detector.exit_cs(cs)
        else:
            result = self.emulator.run(program, machine, thread.tid, mode=DIRECT)
            window = None
        cpu = self.cpu
        yield UseCPU(cpu, cpu.seconds_for_cycles(result.cycles))
        return window

    def run_use_window(
        self,
        thread: SimThread,
        window: Optional[WindowHooks],
        use_program: Program,
    ) -> Iterator:
        """Run the consumer's first post-critical-section instructions.

        With window hooks attached, any use of a context-carrying value
        is a consumption: the producer's transaction context is handed
        to ``thread`` (§3.5).  Returns the consume events.
        """
        if window is not None:
            result = self.emulator.run(
                use_program, self.machine, thread.tid, hooks=window
            )
            consumed = window.consumed
        else:
            result = self.emulator.run(
                use_program, self.machine, thread.tid, mode=DIRECT
            )
            consumed = []
        yield UseCPU(self.cpu, self.cpu.seconds_for_cycles(result.cycles))
        if consumed:
            thread.tran_ctxt = consumed[0].context
        return consumed

    def registers_of(self, thread: SimThread):
        return self.machine.registers(thread.tid)


class SharedQueue:
    """The Apache 2.x ``fd_queue``: a mutex, a condvar, VM push/pop.

    ``push`` stores a two-word element (``sd``, ``p``) and signals;
    ``pop`` blocks while empty, then removes an element and — via the
    flow detector — inherits the pushing thread's transaction context.
    """

    def __init__(
        self,
        region: SharedMemoryRegion,
        capacity: int = 64,
        name: str = "fd_queue",
    ):
        self.region = region
        self.capacity = capacity
        self.layout = BoundedQueue(region.machine.memory, capacity)
        self.mutex = Mutex(f"{name}.one_big_mutex")
        self.not_empty = Condition(self.mutex, f"{name}.not_empty")
        self.pushes = 0
        self.pops = 0

    # ------------------------------------------------------------------
    def length(self) -> int:
        return self.layout.length(self.region.machine.memory)

    def push(self, thread: SimThread, sd: int, p: int) -> Iterator:
        """``ap_queue_push``: append an element, waking one worker."""
        yield Acquire(self.mutex)
        if self.length() >= self.capacity:
            yield Release(self.mutex)
            raise OverflowError(f"{self.mutex.name}: queue full")
        yield from self.region.run_critical_section(
            thread, self.mutex, self.layout.push_program, (sd, p)
        )
        self.pushes += 1
        yield Notify(self.not_empty)
        yield Release(self.mutex)

    def pop(self, thread: SimThread) -> Iterator:
        """``ap_queue_pop``: block until non-empty, then remove.

        Returns ``(sd, p)``.  After this, the calling thread executes
        with the producer's transaction context.
        """
        yield Acquire(self.mutex)
        while self.length() == 0:
            yield Wait(self.not_empty)
        window = yield from self.region.run_critical_section(
            thread, self.mutex, self.layout.pop_program, ()
        )
        self.pops += 1
        regs = self.region.registers_of(thread)
        sd, p = regs.read(0), regs.read(1)
        yield Release(self.mutex)
        # The consumer uses the values right after leaving the critical
        # section — the MAX-instruction window of §7.2.
        yield from self.region.run_use_window(thread, window, self.layout.use_program)
        return sd, p
