"""Whodunit's send/receive wrappers for messages (§5, §7.4).

These generator helpers wrap the raw :class:`~repro.channels.socket`
operations with the synopsis protocol:

- a *request* carries the 4-byte synopsis of the sender's transaction
  context at the send point;
- a *response* carries ``synopsis(request) # synopsis(callee call
  path)``, letting the caller recognise its own prefix and switch back
  to the CCT the request originated from;
- both directions update the per-stage data/context byte counters used
  for §9.1's communication-overhead measurement.

A stage whose profiler is off (or csprof/gprof — no transaction
tracking) piggy-backs nothing, exactly like an uninstrumented binary.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro import telemetry as _telemetry
from repro.channels.message import Message
from repro.channels.socket import Endpoint, Recv, Send, TIMED_OUT
from repro.core.synopsis import CompositeSynopsis
from repro.sim.process import SimThread


class RpcTimeout(Exception):
    """A call exhausted its retry budget without a matching response."""

    def __init__(self, endpoint_name: str, attempts: int, waited: float):
        super().__init__(
            f"no response on {endpoint_name} after {attempts} attempt(s) "
            f"({waited:.6g}s of virtual time)"
        )
        self.endpoint_name = endpoint_name
        self.attempts = attempts
        self.waited = waited


class RetryPolicy:
    """Timeout/retry knobs for :func:`call` (virtual-time, kernel timers).

    Attempt ``n`` (0-based) waits ``min(timeout * backoff**n,
    max_timeout)`` for its response — capped exponential backoff — and a
    timed-out attempt retransmits the *same* request message (same
    payload, same piggy-backed synopsis), so a retry is idempotent at
    the synopsis-protocol level: however many copies the network
    delivers, they all carry one request synopsis and the caller matches
    exactly one response to it.
    """

    __slots__ = ("timeout", "retries", "backoff", "max_timeout")

    def __init__(
        self,
        timeout: float = 0.25,
        retries: int = 3,
        backoff: float = 2.0,
        max_timeout: Optional[float] = None,
    ):
        if timeout <= 0:
            raise ValueError("retry timeout must be positive")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if max_timeout is not None and max_timeout < timeout:
            raise ValueError("max_timeout must be >= timeout")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_timeout = max_timeout

    def timeout_for(self, attempt: int) -> float:
        value = self.timeout * (self.backoff ** attempt)
        if self.max_timeout is not None:
            value = min(value, self.max_timeout)
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RetryPolicy(timeout={self.timeout}, retries={self.retries}, "
            f"backoff={self.backoff}, max_timeout={self.max_timeout})"
        )


def _stage(thread: SimThread):
    return thread.stage


def send_request(
    thread: SimThread,
    endpoint: Endpoint,
    payload: Any,
    size: int,
) -> Iterator:
    """Send a request, piggy-backing the sender's context synopsis."""
    stage = _stage(thread)
    synopsis = stage.send_request(thread) if stage is not None else None
    origin = stage.name if stage is not None else None
    message = Message.acquire(payload, size, origin=origin, synopsis=synopsis)
    if stage is not None:
        stage.account_message(size, message.context_bytes())
    tele = _telemetry.ACTIVE
    if tele is not None:
        attrs = {"size": size}
        if synopsis is not None:
            # The 4-byte synopsis *is* the trace handle: the receiving
            # hop will join this span's trace through it.
            attrs["synopsis"] = synopsis
        span = tele.spans.instant(
            "send_request",
            "channel.send",
            origin,
            thread.kernel.now,
            thread=thread.tid,
            attrs=attrs,
        )
        if synopsis is not None:
            tele.spans.register_synopsis(origin, synopsis, span)
        if tele.rpc_requests is not None:
            tele.rpc_requests.inc()
    yield Send(endpoint, message)
    return message


def recv_request(thread: SimThread, endpoint: Endpoint) -> Iterator:
    """Receive a request; the callee adopts the sender's context."""
    message = yield Recv(endpoint)
    stage = _stage(thread)
    if stage is not None and message.origin is not None:
        stage.receive_request(thread, message.origin, message.synopsis)
    return message


def send_response(
    thread: SimThread,
    endpoint: Endpoint,
    request: Message,
    payload: Any,
    size: int,
) -> Iterator:
    """Respond to ``request`` with the composite response synopsis."""
    stage = _stage(thread)
    composite = None
    if stage is not None and request.synopsis is not None:
        composite = stage.send_response(thread, request.synopsis)
    origin = stage.name if stage is not None else None
    message = Message.acquire(payload, size, origin=origin, synopsis=composite)
    if stage is not None:
        stage.account_message(size, message.context_bytes())
    tele = _telemetry.ACTIVE
    if tele is not None:
        tele.spans.instant(
            "send_response",
            "channel.send",
            origin,
            thread.kernel.now,
            thread=thread.tid,
            attrs={"size": size},
        )
        if tele.rpc_responses is not None:
            tele.rpc_responses.inc()
    yield Send(endpoint, message)
    return message


def recv_response(
    thread: SimThread,
    endpoint: Endpoint,
    expected: Optional[int] = None,
    timeout: Optional[float] = None,
) -> Iterator:
    """Receive a response; the caller switches back to the CCT its

    request originated from (identified by the composite's prefix).

    The composite is validated *before* it is adopted:

    - a response whose prefix was not allocated by this stage (a foreign
      or corrupted composite) is a protocol violation — counted, never
      adopted;
    - with ``expected`` (the request synopsis of the call in flight), a
      mismatched own-prefix composite (a stale or duplicate response to
      an earlier, retried request) is likewise counted and *discarded*,
      and the receive continues within the remaining ``timeout`` budget.

    With ``timeout`` (virtual seconds) the whole wait — across any
    discarded stale responses — is bounded; :data:`TIMED_OUT` is
    returned on expiry.
    """
    stage = _stage(thread)
    kernel = thread.kernel
    deadline = None if timeout is None else kernel.now + timeout
    while True:
        remaining = None
        if deadline is not None:
            remaining = deadline - kernel.now
            if remaining <= 0:
                return TIMED_OUT
        message = yield Recv(endpoint, timeout=remaining)
        if message is TIMED_OUT:
            return TIMED_OUT
        composite = message.synopsis
        if stage is None or not stage.tracking or composite is None:
            return message
        if not isinstance(composite, CompositeSynopsis):
            # A bare request synopsis (or garbage) where a composite
            # belongs: a misrouted message, never a response of ours.
            stage.note_violation("malformed-response")
            return message
        if not stage.synopses.is_own_prefix(composite):
            stage.note_violation("foreign-response")
            if expected is not None:
                continue
            return message
        if expected is not None and composite.prefix != expected:
            stage.note_violation("stale-response")
            continue
        stage.receive_response(thread, composite)
        return message


def resend_request(
    thread: SimThread,
    endpoint: Endpoint,
    message: Message,
) -> Iterator:
    """Retransmit an already-built request message verbatim.

    The same :class:`Message` object — same payload, same piggy-backed
    synopsis — goes back on the wire, so the callee's response carries
    the original request synopsis and stitching sees one transaction no
    matter how many copies were sent.
    """
    stage = _stage(thread)
    if stage is not None:
        stage.account_message(message.size, message.context_bytes())
        stage.note_retransmit(thread)
    tele = _telemetry.ACTIVE
    if tele is not None:
        tele.spans.instant(
            "resend_request",
            "channel.send",
            message.origin,
            thread.kernel.now,
            thread=thread.tid,
            attrs={"size": message.size},
        )
    yield Send(endpoint, message)
    return message


def call(
    thread: SimThread,
    to_server: Endpoint,
    from_server: Endpoint,
    payload: Any,
    size: int,
    retry: Optional[RetryPolicy] = None,
) -> Iterator:
    """Convenience RPC: send a request and wait for its response.

    Without ``retry`` the wait is unbounded (the original, lossless-
    transport behaviour).  With a :class:`RetryPolicy`, each attempt
    waits ``retry.timeout_for(attempt)`` of virtual time, a timed-out
    attempt retransmits the same request message, and exhausting the
    budget abandons the request (releasing its profiler bookkeeping)
    and raises :class:`RpcTimeout`.
    """
    tele = _telemetry.ACTIVE
    kernel = thread.kernel
    started = kernel.now
    message = yield from send_request(thread, to_server, payload, size)
    expected = message.synopsis if isinstance(message.synopsis, int) else None
    if retry is None:
        response = yield from recv_response(thread, from_server, expected=expected)
        if tele is not None and tele.rpc_roundtrip is not None:
            tele.rpc_roundtrip.observe(kernel.now - started)
        # The request message is done: the server consumed it and the
        # matching response arrived (release is refcount-vetoed, so an
        # endpoint still holding a duplicate keeps the shell alive).
        message.release()
        return response
    for attempt in range(retry.retries + 1):
        if attempt:
            yield from resend_request(thread, to_server, message)
        response = yield from recv_response(
            thread,
            from_server,
            expected=expected,
            timeout=retry.timeout_for(attempt),
        )
        if response is not TIMED_OUT:
            if tele is not None and tele.rpc_roundtrip is not None:
                tele.rpc_roundtrip.observe(kernel.now - started)
            message.release()
            return response
    stage = _stage(thread)
    if stage is not None and expected is not None:
        stage.abandon_request(expected)
    raise RpcTimeout(to_server.name, retry.retries + 1, kernel.now - started)


def serve_one(
    thread: SimThread,
    from_client: Endpoint,
    to_client: Endpoint,
    handler,
) -> Iterator:
    """Receive one request, run ``handler(request)`` (a generator

    returning ``(payload, size)``), and respond.
    """
    request = yield from recv_request(thread, from_client)
    payload, size = yield from handler(request)
    yield from send_response(thread, to_client, request, payload, size)
    return request
