"""Whodunit's send/receive wrappers for messages (§5, §7.4).

These generator helpers wrap the raw :class:`~repro.channels.socket`
operations with the synopsis protocol:

- a *request* carries the 4-byte synopsis of the sender's transaction
  context at the send point;
- a *response* carries ``synopsis(request) # synopsis(callee call
  path)``, letting the caller recognise its own prefix and switch back
  to the CCT the request originated from;
- both directions update the per-stage data/context byte counters used
  for §9.1's communication-overhead measurement.

A stage whose profiler is off (or csprof/gprof — no transaction
tracking) piggy-backs nothing, exactly like an uninstrumented binary.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro import telemetry as _telemetry
from repro.channels.message import Message
from repro.channels.socket import Endpoint, Recv, Send
from repro.sim.process import SimThread


def _stage(thread: SimThread):
    return thread.stage


def send_request(
    thread: SimThread,
    endpoint: Endpoint,
    payload: Any,
    size: int,
) -> Iterator:
    """Send a request, piggy-backing the sender's context synopsis."""
    stage = _stage(thread)
    synopsis = stage.send_request(thread) if stage is not None else None
    origin = stage.name if stage is not None else None
    message = Message(payload, size, origin=origin, synopsis=synopsis)
    if stage is not None:
        stage.account_message(size, message.context_bytes())
    tele = _telemetry.ACTIVE
    if tele is not None:
        span = tele.spans.instant(
            "send_request",
            "channel.send",
            origin,
            thread.kernel.now,
            thread=thread.tid,
            attrs={"size": size},
        )
        if synopsis is not None:
            # The 4-byte synopsis *is* the trace handle: the receiving
            # hop will join this span's trace through it.
            span.attrs["synopsis"] = synopsis
            tele.spans.register_synopsis(origin, synopsis, span)
        if tele.rpc_requests is not None:
            tele.rpc_requests.inc()
    yield Send(endpoint, message)
    return message


def recv_request(thread: SimThread, endpoint: Endpoint) -> Iterator:
    """Receive a request; the callee adopts the sender's context."""
    message = yield Recv(endpoint)
    stage = _stage(thread)
    if stage is not None and message.origin is not None:
        stage.receive_request(thread, message.origin, message.synopsis)
    return message


def send_response(
    thread: SimThread,
    endpoint: Endpoint,
    request: Message,
    payload: Any,
    size: int,
) -> Iterator:
    """Respond to ``request`` with the composite response synopsis."""
    stage = _stage(thread)
    composite = None
    if stage is not None and request.synopsis is not None:
        composite = stage.send_response(thread, request.synopsis)
    origin = stage.name if stage is not None else None
    message = Message(payload, size, origin=origin, synopsis=composite)
    if stage is not None:
        stage.account_message(size, message.context_bytes())
    tele = _telemetry.ACTIVE
    if tele is not None:
        tele.spans.instant(
            "send_response",
            "channel.send",
            origin,
            thread.kernel.now,
            thread=thread.tid,
            attrs={"size": size},
        )
        if tele.rpc_responses is not None:
            tele.rpc_responses.inc()
    yield Send(endpoint, message)
    return message


def recv_response(thread: SimThread, endpoint: Endpoint) -> Iterator:
    """Receive a response; the caller switches back to the CCT its

    request originated from (identified by the composite's prefix).
    """
    message = yield Recv(endpoint)
    stage = _stage(thread)
    if stage is not None:
        stage.receive_response(thread, message.synopsis)
    return message


def call(
    thread: SimThread,
    to_server: Endpoint,
    from_server: Endpoint,
    payload: Any,
    size: int,
) -> Iterator:
    """Convenience RPC: send a request and wait for its response."""
    tele = _telemetry.ACTIVE
    started = thread.kernel.now if tele is not None else 0.0
    yield from send_request(thread, to_server, payload, size)
    response = yield from recv_response(thread, from_server)
    if tele is not None and tele.rpc_roundtrip is not None:
        tele.rpc_roundtrip.observe(thread.kernel.now - started)
    return response


def serve_one(
    thread: SimThread,
    from_client: Endpoint,
    to_client: Endpoint,
    handler,
) -> Iterator:
    """Receive one request, run ``handler(request)`` (a generator

    returning ``(payload, size)``), and respond.
    """
    request = yield from recv_request(thread, from_client)
    payload, size = yield from handler(request)
    yield from send_response(thread, to_client, request, payload, size)
    return request
