"""Inter-stage communication substrates.

- :mod:`repro.channels.message` / :mod:`repro.channels.socket` —
  simulated stream channels with latency, the sockets/pipes of §5;
- :mod:`repro.channels.rpc` — Whodunit's send/receive wrappers that
  piggy-back transaction-context synopses on messages (§7.4);
- :mod:`repro.channels.shared_queue` — the VM-backed shared-memory
  queue whose critical sections are emulated for flow detection (§3,
  §7.2).
"""

from repro.channels.message import Message
from repro.channels.socket import (
    Accept,
    Connection,
    Endpoint,
    Listener,
    Recv,
    Send,
    TIMED_OUT,
)
from repro.channels.rpc import (
    RetryPolicy,
    RpcTimeout,
    call,
    recv_request,
    recv_response,
    resend_request,
    send_request,
    send_response,
)
from repro.channels.shared_queue import SharedMemoryRegion, SharedQueue

__all__ = [
    "Message",
    "Endpoint",
    "Connection",
    "Listener",
    "Send",
    "Recv",
    "Accept",
    "TIMED_OUT",
    "RetryPolicy",
    "RpcTimeout",
    "call",
    "send_request",
    "recv_request",
    "send_response",
    "recv_response",
    "resend_request",
    "SharedMemoryRegion",
    "SharedQueue",
]
