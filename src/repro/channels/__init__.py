"""Inter-stage communication substrates.

- :mod:`repro.channels.message` / :mod:`repro.channels.socket` —
  simulated stream channels with latency, the sockets/pipes of §5;
- :mod:`repro.channels.rpc` — Whodunit's send/receive wrappers that
  piggy-back transaction-context synopses on messages (§7.4);
- :mod:`repro.channels.shared_queue` — the VM-backed shared-memory
  queue whose critical sections are emulated for flow detection (§3,
  §7.2).
"""

from repro.channels.message import Message
from repro.channels.socket import (
    Accept,
    Connection,
    Endpoint,
    Listener,
    Recv,
    Send,
)
from repro.channels.rpc import (
    recv_request,
    recv_response,
    send_request,
    send_response,
)
from repro.channels.shared_queue import SharedMemoryRegion, SharedQueue

__all__ = [
    "Message",
    "Endpoint",
    "Connection",
    "Listener",
    "Send",
    "Recv",
    "Accept",
    "send_request",
    "recv_request",
    "send_response",
    "recv_response",
    "SharedMemoryRegion",
    "SharedQueue",
]
