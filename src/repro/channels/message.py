"""Messages exchanged between stages.

A message carries an application payload, its size in bytes (for
communication-overhead accounting, §9.1) and — when Whodunit tracking is
on — a piggy-backed transaction-context synopsis: a plain int for
requests, a :class:`~repro.core.synopsis.CompositeSynopsis` for
responses, or ``None`` when the sending stage does not profile.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.synopsis import SYNOPSIS_BYTES, CompositeSynopsis


class Message:
    """One application-level message on a channel.

    ``last`` supports chunked transfers: a multi-chunk response sets
    ``last=False`` on every chunk but the final one, so a streaming
    receiver (the proxy's ``httpReadReply``) knows when the body is
    complete without peeking into the payload.
    """

    __slots__ = ("payload", "size", "origin", "synopsis", "last")

    def __init__(
        self,
        payload: Any,
        size: int = 0,
        origin: Optional[str] = None,
        synopsis: Any = None,
        last: bool = True,
    ):
        if size < 0:
            raise ValueError("negative message size")
        self.payload = payload
        self.size = size
        self.origin = origin
        self.synopsis = synopsis
        self.last = last

    def context_bytes(self) -> int:
        """Bytes of piggy-backed context information on the wire."""
        if self.synopsis is None:
            return 0
        if isinstance(self.synopsis, CompositeSynopsis):
            return self.synopsis.wire_size()
        return SYNOPSIS_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Message {self.payload!r} size={self.size} "
            f"origin={self.origin} syn={self.synopsis!r}>"
        )
