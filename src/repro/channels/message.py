"""Messages exchanged between stages.

A message carries an application payload, its size in bytes (for
communication-overhead accounting, §9.1) and — when Whodunit tracking is
on — a piggy-backed transaction-context synopsis: a plain int for
requests, a :class:`~repro.core.synopsis.CompositeSynopsis` for
responses, or ``None`` when the sending stage does not profile.
"""

from __future__ import annotations

import sys
from typing import Any, List, Optional

from repro.core.synopsis import SYNOPSIS_BYTES, CompositeSynopsis

# Recycled Message shells (see Message.acquire / Message.release).
_FREELIST_MAX = 512
_freelist: List["Message"] = []
# References a shell has at release() time when only the releasing
# caller still holds it: the caller's local, the call frame's ``self``
# slot, and getrefcount's own argument.  Anything higher means another
# handle is live (an endpoint buffer holding a duplicate in flight, a
# test fixture) and the shell must not be recycled.
_RELEASE_REFS = 3
_getrefcount = sys.getrefcount


class Message:
    """One application-level message on a channel.

    ``last`` supports chunked transfers: a multi-chunk response sets
    ``last=False`` on every chunk but the final one, so a streaming
    receiver (the proxy's ``httpReadReply``) knows when the body is
    complete without peeking into the payload.
    """

    __slots__ = ("payload", "size", "origin", "synopsis", "last")

    def __init__(
        self,
        payload: Any,
        size: int = 0,
        origin: Optional[str] = None,
        synopsis: Any = None,
        last: bool = True,
    ):
        if size < 0:
            raise ValueError("negative message size")
        self.payload = payload
        self.size = size
        self.origin = origin
        self.synopsis = synopsis
        self.last = last

    @classmethod
    def acquire(
        cls,
        payload: Any,
        size: int = 0,
        origin: Optional[str] = None,
        synopsis: Any = None,
        last: bool = True,
    ) -> "Message":
        """A message shell, recycled from the freelist when one exists.

        Behaviourally identical to the constructor; the send wrappers
        use it so churn-heavy workloads reuse shells released by
        :meth:`release` instead of allocating per send.
        """
        if _freelist:
            if size < 0:
                raise ValueError("negative message size")
            message = _freelist.pop()
            message.payload = payload
            message.size = size
            message.origin = origin
            message.synopsis = synopsis
            message.last = last
            return message
        return cls(payload, size, origin=origin, synopsis=synopsis, last=last)

    def release(self) -> bool:
        """Declare this message dead; recycle its shell if safe.

        The caller promises not to touch the object afterwards.  The
        shell only reaches the freelist when no *other* reference is
        live (refcount veto), so an endpoint buffer still holding a
        duplicate in flight keeps the shell out of circulation.  Every
        field is scrubbed before pooling — reuse is field-clean.
        Returns True when the shell was recycled.
        """
        if (
            _getrefcount(self) == _RELEASE_REFS
            and len(_freelist) < _FREELIST_MAX
        ):
            self.payload = None
            self.size = 0
            self.origin = None
            self.synopsis = None
            self.last = True
            _freelist.append(self)
            return True
        return False

    def context_bytes(self) -> int:
        """Bytes of piggy-backed context information on the wire."""
        if self.synopsis is None:
            return 0
        if isinstance(self.synopsis, CompositeSynopsis):
            return self.synopsis.wire_size()
        return SYNOPSIS_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Message {self.payload!r} size={self.size} "
            f"origin={self.origin} syn={self.synopsis!r}>"
        )
