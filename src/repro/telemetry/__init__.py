"""Live telemetry: transaction spans, runtime metrics, trace export.

Whodunit reconstructs transactions *post-mortem*; this package observes
the very same flows *online*.  It reuses the machinery the profiler
already threads through every layer — transaction contexts, 4-byte
synopses, stage runtimes — to emit structured spans (one trace per
transaction, joined across stages by the synopsis chain) and runtime
metrics, streamed to sinks as virtual time advances and exportable as
Chrome trace-event JSON (Perfetto), OTLP-style JSON, or Prometheus
text.

Design rule: **zero cost when off**.  There is a single module-level
switch (:data:`ACTIVE`); instrumented constructors capture it once, so
a disabled run executes at most one ``is None`` test per already-heavy
operation and *nothing at all* in per-event hot loops (the kernel and
CPU capture the switch at construction time).  Enable it *before*
building the simulated system::

    from repro import telemetry
    tele = telemetry.install("full")        # or "spans"
    system = TpcwSystem(...)
    system.run(...)
    export.write_chrome_trace("t.json", tele.spans)
    telemetry.uninstall()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Optional

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.spans import Span, SpanRecorder
from repro.telemetry.sinks import (
    CallbackSink,
    CollectingSink,
    JsonLinesSink,
    StitchingSink,
    TelemetrySink,
)

MODES = ("off", "spans", "full")


class Telemetry:
    """The active telemetry state: a span recorder plus (in ``full``
    mode) a metrics registry with the shared hot-path instruments
    pre-created so instrumentation sites never pay a registry lookup.
    """

    def __init__(self, mode: str = "full", span_capacity: Optional[int] = None):
        if mode not in ("spans", "full"):
            raise ValueError(f"telemetry mode must be 'spans' or 'full', got {mode!r}")
        self.mode = mode
        self.wants_metrics = mode == "full"
        self.spans = SpanRecorder(capacity=span_capacity)
        self.metrics = MetricsRegistry()
        if self.wants_metrics:
            m = self.metrics
            self.channel_messages = m.counter(
                "repro_channel_messages_total", "messages delivered on channels"
            )
            self.channel_bytes = m.counter(
                "repro_channel_bytes_total", "payload bytes delivered on channels"
            )
            self.rpc_requests = m.counter(
                "repro_rpc_requests_total", "RPC requests sent"
            )
            self.rpc_responses = m.counter(
                "repro_rpc_responses_total", "RPC responses sent"
            )
            self.rpc_roundtrip = m.histogram(
                "repro_rpc_roundtrip_seconds", "RPC round-trip virtual time"
            )
            self.spans.pending_gauge = m.gauge(
                "repro_telemetry_pending_synopses",
                "registered send-span synopses awaiting adoption (LRU-bounded)",
            )
            self.spans.error_counter = m.counter(
                "repro_telemetry_sink_errors_total",
                "sinks detached after raising from a telemetry callback",
            )
        else:
            self.channel_messages = None
            self.channel_bytes = None
            self.rpc_requests = None
            self.rpc_responses = None
            self.rpc_roundtrip = None

    def add_sink(self, sink: TelemetrySink) -> None:
        self.spans.add_sink(sink)

    @property
    def sink_errors(self) -> int:
        """Sinks detached after raising from a telemetry callback."""
        return self.spans.sink_errors

    def close(self) -> None:
        """Flush and close every attached sink (idempotent)."""
        self.spans.close_sinks()


# The single module-level switch.  ``None`` = telemetry off.
ACTIVE: Optional[Telemetry] = None


def install(mode: str = "full", span_capacity: Optional[int] = None) -> Optional[Telemetry]:
    """Enable telemetry globally; returns the active :class:`Telemetry`.

    ``mode='off'`` uninstalls and returns ``None``.  Objects built
    *before* install captured the previous switch and stay
    uninstrumented — enable telemetry before constructing the system.
    """
    global ACTIVE
    if mode == "off":
        ACTIVE = None
        return None
    ACTIVE = Telemetry(mode, span_capacity=span_capacity)
    return ACTIVE


def uninstall() -> None:
    """Disable telemetry globally (closing any attached sinks)."""
    global ACTIVE
    previous, ACTIVE = ACTIVE, None
    if previous is not None:
        previous.close()


def active() -> Optional[Telemetry]:
    return ACTIVE


@contextmanager
def enabled(mode: str = "full", span_capacity: Optional[int] = None):
    """Scoped enable (tests): installs on entry, uninstalls on exit."""
    tele = install(mode, span_capacity=span_capacity)
    try:
        yield tele
    finally:
        uninstall()


def admit(stage: str, kernel: Any, attrs: Optional[Dict[str, Any]] = None) -> None:
    """Record a request-admission event at a server's front door.

    Called by the ``apps/*`` accept loops; a no-op when telemetry is
    off.  Emits an instant span and (in full mode) bumps the per-stage
    admission counter.
    """
    tele = ACTIVE
    if tele is None:
        return
    tele.spans.instant("admit", "app.admission", stage, kernel.now, attrs=attrs)
    if tele.wants_metrics:
        tele.metrics.counter(
            "repro_requests_admitted_total", "requests admitted by server", stage=stage
        ).inc()


__all__ = [
    "ACTIVE",
    "DEFAULT_BUCKETS",
    "CallbackSink",
    "CollectingSink",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLinesSink",
    "MetricsRegistry",
    "MODES",
    "Span",
    "SpanRecorder",
    "StitchingSink",
    "Telemetry",
    "TelemetrySink",
    "active",
    "admit",
    "enabled",
    "install",
    "uninstall",
]
