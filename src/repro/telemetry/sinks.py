"""Streaming telemetry sinks.

A sink observes spans *as virtual time advances*: the recorder calls
``on_span`` the moment each span completes, during the simulation run,
rather than handing over a batch at teardown.  This is what makes the
telemetry layer *live* — a sink can stream to a file, feed a dashboard,
or trip an alert while the run is still going.
"""

from __future__ import annotations

import json
from typing import Any, Callable, List, Optional

from repro.telemetry.spans import Span


class TelemetrySink:
    """Base streaming sink; subclass and override :meth:`on_span`."""

    def on_span(self, span: Span) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush/teardown; called by the CLI when a run finishes."""


class CollectingSink(TelemetrySink):
    """Buffers every span it sees (tests, ad-hoc inspection)."""

    def __init__(self):
        self.spans: List[Span] = []

    def on_span(self, span: Span) -> None:
        self.spans.append(span)


class CallbackSink(TelemetrySink):
    """Invokes ``fn(span)`` per span — the cheapest custom sink."""

    def __init__(self, fn: Callable[[Span], None]):
        self._fn = fn

    def on_span(self, span: Span) -> None:
        self._fn(span)


class JsonLinesSink(TelemetrySink):
    """Streams one JSON object per completed span to a file.

    The line format mirrors the OTLP-style span dump (ids rendered as
    hex strings) so a line-oriented consumer can follow a run live with
    ``tail -f``.
    """

    def __init__(self, path_or_file: Any):
        if hasattr(path_or_file, "write"):
            self._file = path_or_file
            self._owns = False
        else:
            self._file = open(path_or_file, "w", encoding="utf-8")
            self._owns = True

    def on_span(self, span: Span) -> None:
        record = {
            "traceId": f"{span.trace_id:032x}",
            "spanId": f"{span.span_id:016x}",
            "parentSpanId": f"{span.parent_id:016x}" if span.parent_id else None,
            "name": span.name,
            "category": span.category,
            "stage": span.stage,
            "start": span.start,
            "end": span.end,
            "attrs": span.attrs,
            "links": [
                {"traceId": f"{t:032x}", "spanId": f"{s:016x}"}
                for t, s in span.links
            ],
        }
        self._file.write(json.dumps(record) + "\n")

    def close(self) -> None:
        self._file.flush()
        if self._owns:
            self._file.close()
