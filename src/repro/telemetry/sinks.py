"""Streaming telemetry sinks.

A sink observes spans *as virtual time advances*: the recorder calls
``on_span`` the moment each span completes, during the simulation run,
rather than handing over a batch at teardown.  This is what makes the
telemetry layer *live* — a sink can stream to a file, feed a dashboard,
or trip an alert while the run is still going.

Sink contract
-------------

* ``on_span(span)`` — required; called once per completed span.
* ``on_profile_event(event)`` — optional; only called on sinks that set
  ``wants_profile_events = True``.  Profile events are the raw profiler
  stream (CPU samples, synopsis mints, crash amnesia, crosstalk waits)
  that the online stitcher consumes; span-only sinks never see them.
* ``flush()`` / ``close()`` — both idempotent; ``close`` implies a
  final flush.  Every sink is a context manager (``__exit__`` closes),
  so CLI paths no longer rely on interpreter exit to flush trace files.
* ``pressure()`` — optional backpressure signal: an integer amount of
  buffered-but-unprocessed work.  The recorder never blocks on it, but
  a cooperating producer (see :class:`repro.live.LiveCollector`) uses
  it to make the *producer* pay for absorption once a high watermark is
  crossed instead of queueing without bound.

A sink that raises from any callback is detached by the recorder and
counted in ``sink_errors`` — one bad sink must never crash the kernel
hot path (see :meth:`repro.telemetry.spans.SpanRecorder._emit`).
"""

from __future__ import annotations

import json
from typing import Any, Callable, List, Optional, Tuple

from repro.telemetry.spans import Span


class TelemetrySink:
    """Base streaming sink; subclass and override :meth:`on_span`."""

    #: Set True to additionally receive raw profiler events via
    #: :meth:`on_profile_event` (samples/synopses/crashes/crosstalk).
    wants_profile_events = False

    #: Whether the sink may keep a reference to a span after ``on_span``
    #: returns.  True (the conservative default) disables the recorder's
    #: span-shell pool; sinks that only *serialize or count* each span
    #: set this to False so a bounded recorder can recycle evicted
    #: shells (a per-span refcount veto still guards against stragglers).
    retains_spans = True

    def on_span(self, span: Span) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def on_profile_event(self, event: Tuple[Any, ...]) -> None:
        """Raw profiler event; only called when ``wants_profile_events``."""

    def flush(self) -> None:
        """Push buffered output downstream; safe to call repeatedly."""

    def close(self) -> None:
        """Flush/teardown; idempotent.  Called by the recorder/CLI when
        a run finishes (and by ``__exit__``)."""

    def pressure(self) -> int:
        """Buffered-but-unprocessed work (backpressure signal); 0 = none."""
        return 0

    def __enter__(self) -> "TelemetrySink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class CollectingSink(TelemetrySink):
    """Buffers every span it sees (tests, ad-hoc inspection)."""

    def __init__(self):
        self.spans: List[Span] = []

    def on_span(self, span: Span) -> None:
        self.spans.append(span)


class CallbackSink(TelemetrySink):
    """Invokes ``fn(span)`` per span — the cheapest custom sink."""

    def __init__(self, fn: Callable[[Span], None]):
        self._fn = fn

    def on_span(self, span: Span) -> None:
        self._fn(span)


class JsonLinesSink(TelemetrySink):
    """Streams one JSON object per completed span to a file.

    The line format mirrors the OTLP-style span dump (ids rendered as
    hex strings) so a line-oriented consumer can follow a run live with
    ``tail -f``.

    Explicit lifecycle: ``flush()`` pushes buffered lines to the OS,
    ``close()`` flushes and (for a path the sink opened itself) closes
    the file; both are idempotent, and the sink works as a context
    manager::

        with JsonLinesSink("trace.jsonl") as sink:
            telemetry.active().add_sink(sink)
            system.run(...)
        # file flushed and closed here, not at interpreter exit
    """

    # Each span is serialized inside on_span; nothing is kept.
    retains_spans = False

    def __init__(self, path_or_file: Any):
        if hasattr(path_or_file, "write"):
            self._file = path_or_file
            self._owns = False
        else:
            self._file = open(path_or_file, "w", encoding="utf-8")
            self._owns = True
        self._closed = False
        self.lines_written = 0

    def on_span(self, span: Span) -> None:
        if self._closed:
            return
        record = {
            "traceId": f"{span.trace_id:032x}",
            "spanId": f"{span.span_id:016x}",
            "parentSpanId": f"{span.parent_id:016x}" if span.parent_id else None,
            "name": span.name,
            "category": span.category,
            "stage": span.stage,
            "start": span.start,
            "end": span.end,
            "attrs": span.attrs,
            "links": [
                {"traceId": f"{t:032x}", "spanId": f"{s:016x}"}
                for t, s in span.links
            ],
        }
        self._file.write(json.dumps(record) + "\n")
        self.lines_written += 1

    @property
    def closed(self) -> bool:
        return self._closed

    def flush(self) -> None:
        if not self._closed:
            self._file.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._file.flush()
        if self._owns:
            self._file.close()


class StitchingSink(TelemetrySink):
    """Feeds spans *and* raw profiler events to an online stitcher.

    The sink itself is a thin forwarder so the telemetry layer stays
    free of profiler imports; the heavy lifting (shadow stages, LRU,
    checkpoints, queries) lives in :class:`repro.live.LiveCollector`.
    ``pressure()`` reports the collector's pending-event backlog, which
    is how the backpressure contract reaches the recorder's callers.
    """

    wants_profile_events = True
    # The collector inspects each span's category and drops it.
    retains_spans = False

    def __init__(self, collector: Any):
        self.collector = collector

    def on_span(self, span: Span) -> None:
        self.collector.on_span(span)

    def on_profile_event(self, event: Tuple[Any, ...]) -> None:
        self.collector.on_profile_event(event)

    def pressure(self) -> int:
        return self.collector.pending_events

    def flush(self) -> None:
        self.collector.drain()

    def close(self) -> None:
        self.collector.drain()
