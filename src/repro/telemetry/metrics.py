"""Runtime metrics: counters, gauges, bounded histograms, registry.

The registry is deliberately tiny and dependency-free: instruments are
plain Python objects mutated in place, and the Prometheus text
exposition in :mod:`repro.telemetry.export` renders a point-in-time
snapshot.  Instruments are identified by ``(name, labels)``; asking the
registry for the same identity twice returns the same object, so
instrumentation sites can be written without coordinating ownership.

Histograms are *bounded*: a fixed, configurable bucket layout chosen at
construction, one count cell per bucket plus an overflow cell, so a
histogram's footprint never grows with the number of observations —
the property the ROADMAP's heavy-traffic north star requires of any
always-on instrument.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

# Default latency-style buckets (seconds): 1us .. 10s, log-spaced.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0,
)

LabelSet = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Base class: a named instrument with a frozen label set."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.help = help
        self.labels: LabelSet = _label_key(labels or {})


class Counter(Metric):
    """Monotonically increasing value."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Optional[Dict[str, str]] = None):
        super().__init__(name, help, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge(Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Optional[Dict[str, str]] = None):
        super().__init__(name, help, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram(Metric):
    """Bounded histogram with inclusive upper-bound buckets.

    ``buckets`` is the strictly increasing sequence of finite upper
    bounds; an implicit +Inf overflow bucket is appended.  Following the
    Prometheus convention, a value lands in the first bucket whose upper
    bound is >= the value (boundary values are *included*); values above
    the last finite bound land in the overflow bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Dict[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds: Tuple[float, ...] = bounds
        # One cell per finite bound plus the +Inf overflow cell.
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` rows, ending with +Inf."""
        rows: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            rows.append((bound, running))
        rows.append((float("inf"), running + self.counts[-1]))
        return rows

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in; bucket layouts must match exactly."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bucket layouts: "
                f"{self.bounds} vs {other.bounds}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.sum += other.sum
        self.count += other.count


class MetricsRegistry:
    """Get-or-create instrument store keyed by ``(name, labels)``."""

    def __init__(self):
        self._metrics: Dict[Tuple[str, LabelSet], Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, labels: Dict[str, str], **kwargs):
        key = (name, _label_key(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help, labels, **kwargs)
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def collect(self) -> List[Metric]:
        """All instruments, grouped by family name (stable order)."""
        return sorted(
            self._metrics.values(), key=lambda m: (m.name, m.labels)
        )

    def families(self) -> List[Tuple[str, List[Metric]]]:
        """``(name, instruments)`` per family, registry-sorted."""
        out: Dict[str, List[Metric]] = {}
        for metric in self.collect():
            out.setdefault(metric.name, []).append(metric)
        return sorted(out.items())

    # ------------------------------------------------------------------
    # Cross-process merging (sharded runs)
    # ------------------------------------------------------------------
    def snapshot(self) -> List[Dict]:
        """A plain-data snapshot of every instrument, for IPC.

        Shard workers return this from their process; the parent folds
        the snapshots into its own registry with :meth:`absorb` so a
        sharded run reports one merged metrics view post-hoc.
        """
        rows: List[Dict] = []
        for metric in self.collect():
            row: Dict = {
                "name": metric.name,
                "kind": metric.kind,
                "help": metric.help,
                "labels": dict(metric.labels),
            }
            if isinstance(metric, Histogram):
                row["bounds"] = list(metric.bounds)
                row["counts"] = list(metric.counts)
                row["sum"] = metric.sum
                row["count"] = metric.count
            else:
                row["value"] = metric.value
            rows.append(row)
        return rows

    def absorb(self, rows: Iterable[Dict]) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and gauges accumulate (a merged gauge like in-flight
        requests is the sum over shards); histogram bucket counts add
        cell-wise and require identical bucket layouts.
        """
        for row in rows:
            kind = row["kind"]
            labels = row["labels"]
            if kind == "counter":
                self.counter(row["name"], row["help"], **labels).inc(row["value"])
            elif kind == "gauge":
                self.gauge(row["name"], row["help"], **labels).inc(row["value"])
            elif kind == "histogram":
                histogram = self.histogram(
                    row["name"], row["help"], buckets=row["bounds"], **labels
                )
                if tuple(row["bounds"]) != histogram.bounds:
                    raise ValueError(
                        f"cannot absorb histogram {row['name']!r}: bucket "
                        f"layouts differ"
                    )
                for index, count in enumerate(row["counts"]):
                    histogram.counts[index] += count
                histogram.sum += row["sum"]
                histogram.count += row["count"]
            else:
                raise ValueError(f"cannot absorb metric kind {kind!r}")

    def __len__(self) -> int:
        return len(self._metrics)
