"""Standard-format exporters for spans and metrics.

Three formats:

- :func:`to_chrome_trace` — Chrome trace-event JSON (the
  ``traceEvents`` array format), loadable in Perfetto / ``chrome://
  tracing``.  Each stage becomes a process (with a process_name
  metadata event); complete spans are ``ph="X"`` events, instants are
  ``ph="i"``; virtual time maps to microseconds.
- :func:`to_otlp_json` — an OTLP-style JSON span dump
  (``resourceSpans`` → ``scopeSpans`` → ``spans`` with hex trace/span
  ids, span links, and nanosecond timestamps).
- :func:`prometheus_text` — Prometheus text exposition of a
  :class:`~repro.telemetry.metrics.MetricsRegistry` snapshot.

Virtual time zero maps to Unix time zero; runs are deterministic, so
keeping timestamps anchored at the virtual epoch makes exports
byte-for-byte reproducible across identical seeds.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.spans import Span, SpanRecorder


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def chrome_trace_events(recorder: SpanRecorder) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for a recorder's completed spans."""
    pids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []

    def pid_for(stage: Any) -> int:
        key = stage if stage is not None else "<none>"
        pid = pids.get(key)
        if pid is None:
            pid = len(pids) + 1
            pids[key] = pid
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "ts": 0,
                    "name": "process_name",
                    "args": {"name": key},
                }
            )
        return pid

    for span in recorder.spans:
        pid = pid_for(span.stage)
        tid = span.thread if span.thread is not None else 0
        args: Dict[str, Any] = {
            "trace": f"{span.trace_id:032x}",
            "span": f"{span.span_id:016x}",
        }
        if span.attrs:
            args.update(span.attrs)
        if span.links:
            args["links"] = [
                {"trace": f"{t:032x}", "span": f"{s:016x}"} for t, s in span.links
            ]
        base = {
            "name": span.name,
            "cat": span.category,
            "pid": pid,
            "tid": tid,
            "ts": span.start * 1e6,
            "args": args,
        }
        if span.is_instant:
            base["ph"] = "i"
            base["s"] = "t"
        else:
            base["ph"] = "X"
            base["dur"] = span.duration * 1e6
        events.append(base)
    return events


def to_chrome_trace(recorder: SpanRecorder) -> Dict[str, Any]:
    return {
        "traceEvents": chrome_trace_events(recorder),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.telemetry", "clock": "virtual"},
    }


def write_chrome_trace(path: str, recorder: SpanRecorder) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(recorder), handle, indent=1)


# ----------------------------------------------------------------------
# OTLP-style JSON span dump
# ----------------------------------------------------------------------
def _otlp_attrs(attrs: Dict[str, Any]) -> List[Dict[str, Any]]:
    out = []
    for key, value in attrs.items():
        if isinstance(value, bool):
            typed = {"boolValue": value}
        elif isinstance(value, int):
            typed = {"intValue": str(value)}
        elif isinstance(value, float):
            typed = {"doubleValue": value}
        else:
            typed = {"stringValue": str(value)}
        out.append({"key": key, "value": typed})
    return out


def _otlp_span(span: Span) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        "traceId": f"{span.trace_id:032x}",
        "spanId": f"{span.span_id:016x}",
        "name": span.name,
        "kind": "SPAN_KIND_INTERNAL",
        "startTimeUnixNano": str(int(round(span.start * 1e9))),
        "endTimeUnixNano": str(int(round((span.end or span.start) * 1e9))),
        "attributes": _otlp_attrs({"category": span.category, **span.attrs}),
    }
    if span.parent_id:
        record["parentSpanId"] = f"{span.parent_id:016x}"
    if span.links:
        record["links"] = [
            {"traceId": f"{t:032x}", "spanId": f"{s:016x}"} for t, s in span.links
        ]
    return record


def to_otlp_json(recorder: SpanRecorder) -> Dict[str, Any]:
    by_stage: Dict[Any, List[Span]] = {}
    for span in recorder.spans:
        by_stage.setdefault(span.stage or "<none>", []).append(span)
    resource_spans = []
    for stage, spans in sorted(by_stage.items()):
        resource_spans.append(
            {
                "resource": {
                    "attributes": _otlp_attrs({"service.name": stage}),
                },
                "scopeSpans": [
                    {
                        "scope": {"name": "repro.telemetry"},
                        "spans": [_otlp_span(span) for span in spans],
                    }
                ],
            }
        )
    return {"resourceSpans": resource_spans}


def write_otlp_trace(path: str, recorder: SpanRecorder) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_otlp_json(recorder), handle, indent=1)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _fmt_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _fmt_labels(labels: Iterable, extra: Dict[str, str] = None) -> str:
    pairs = [f'{k}="{v}"' for k, v in labels]
    for k, v in (extra or {}).items():
        pairs.append(f'{k}="{v}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for name, family in registry.families():
        first = family[0]
        if first.help:
            lines.append(f"# HELP {name} {first.help}")
        lines.append(f"# TYPE {name} {first.kind}")
        for metric in family:
            if isinstance(metric, (Counter, Gauge)):
                lines.append(
                    f"{name}{_fmt_labels(metric.labels)} {_fmt_value(metric.value)}"
                )
            elif isinstance(metric, Histogram):
                for bound, cumulative in metric.cumulative():
                    le = _fmt_labels(metric.labels, {"le": _fmt_value(bound)})
                    lines.append(f"{name}_bucket{le} {cumulative}")
                labels = _fmt_labels(metric.labels)
                lines.append(f"{name}_sum{labels} {_fmt_value(metric.sum)}")
                lines.append(f"{name}_count{labels} {metric.count}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(path: str, registry: MetricsRegistry) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(registry))
