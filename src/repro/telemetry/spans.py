"""Structured spans: one trace per transaction, live, in virtual time.

A :class:`Span` is a named interval of virtual time attributed to a
stage and (optionally) a simulated thread.  Spans form traces exactly
the way Whodunit's transaction contexts do: when a stage sends a
request it registers the 4-byte synopsis it piggy-backed, and when the
callee's receive wrapper adopts that synopsis the hop span *joins the
sender's trace* and records a span link back to the send span.  The
synopsis chain therefore doubles as the trace id — no second
propagation mechanism is needed, which is the whole point of building
telemetry on top of the paper's context machinery.

Completed spans are delivered to streaming sinks the moment they end
(i.e. as virtual time advances), not at teardown; the recorder also
retains them (optionally ring-buffered) for batch exporters.
"""

from __future__ import annotations

import sys
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

# A span popped off the retention ring with no external handles has
# exactly two references: the popping local and getrefcount's argument.
# Anything higher means a sink or caller still holds the object and the
# recorder must not recycle it (see SpanRecorder._emit).
_FREE_SPAN_REFS = 2
_SPAN_POOL_MAX = 512
_getrefcount = sys.getrefcount


class Span:
    """One interval (or instant) of virtual time in a trace."""

    __slots__ = (
        "span_id",
        "trace_id",
        "parent_id",
        "name",
        "category",
        "stage",
        "thread",
        "start",
        "end",
        "_attrs",
        "_links",
    )

    def __init__(
        self,
        span_id: int,
        trace_id: int,
        name: str,
        category: str,
        stage: Optional[str],
        thread: Optional[int],
        start: float,
        parent_id: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.stage = stage
        self.thread = thread
        self.start = start
        self.end: Optional[float] = None
        # attrs/links materialise lazily: most spans carry neither, and
        # a dict plus a list per span is the dominant allocation cost of
        # spans-mode telemetry.
        self._attrs = attrs
        self._links: Optional[List[Tuple[int, int]]] = None

    def _reinit(
        self,
        span_id: int,
        trace_id: int,
        name: str,
        category: str,
        stage: Optional[str],
        thread: Optional[int],
        start: float,
        parent_id: Optional[int],
        attrs: Optional[Dict[str, Any]],
    ) -> None:
        """Re-arm a recycled shell from the recorder's span pool.

        Every slot is overwritten (reuse-after-release is field-clean);
        lazy attrs/links reset to the unmaterialised state.
        """
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.stage = stage
        self.thread = thread
        self.start = start
        self.end = None
        self._attrs = attrs
        self._links = None

    @property
    def attrs(self) -> Dict[str, Any]:
        attrs = self._attrs
        if attrs is None:
            attrs = self._attrs = {}
        return attrs

    @property
    def links(self) -> List[Tuple[int, int]]:
        """(trace_id, span_id) pairs — e.g. the send span a synopsis
        chain joined this span to."""
        links = self._links
        if links is None:
            links = self._links = []
        return links

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def is_instant(self) -> bool:
        return self.end is not None and self.end == self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.name} cat={self.category} trace={self.trace_id} "
            f"id={self.span_id} [{self.start:.6f}..{self.end}]>"
        )


class SpanRecorder:
    """Collects spans as the simulation runs.

    ``capacity`` bounds the retained completed-span list (a ring buffer
    of the most recent spans; ``None`` retains everything).  Streaming
    sinks see every span regardless of retention.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        synopsis_capacity: Optional[int] = 65536,
    ):
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self._next_span_id = 1
        self._next_trace_id = 1
        # Per-thread stacks of open spans: parentage for nested work.
        self._stacks: Dict[int, List[Span]] = {}
        # (origin stage, synopsis value) -> (trace_id, span_id) of the
        # send span, so the receiving hop joins the sender's trace.
        # LRU-bounded: a workload minting contexts forever (and hence
        # fresh synopsis values forever) must not grow this map without
        # bound; the least-recently-touched registration is retired once
        # ``synopsis_capacity`` is exceeded (None = unbounded).  A plain
        # dict is the LRU: insertion order is recency (delete+reinsert
        # refreshes), eviction pops the oldest key — measurably cheaper
        # per touch than OrderedDict.move_to_end.
        self._synopsis_index: Dict[Tuple[str, int], Tuple[int, int]] = {}
        self._synopsis_capacity = synopsis_capacity
        # Recycled Span shells (see _emit).  Recycling only engages when
        # the retention ring is bounded (evicted spans are provably
        # unreachable from the recorder) AND every attached sink
        # declares ``retains_spans = False``; a refcount veto at pop
        # time catches any other live handle.
        self._span_pool: List[Span] = []
        self._pool_ok = capacity is not None and capacity > 0
        self._recycle = self._pool_ok
        self.synopses_evicted = 0
        # Size gauge, installed by the telemetry hub when metrics are on.
        self.pending_gauge: Optional[Any] = None
        # Sink-error counter, installed by the hub when metrics are on.
        self.error_counter: Optional[Any] = None
        self._sinks: List[Any] = []
        # Subset of sinks that opted into raw profiler events.
        self._profile_sinks: List[Any] = []
        self.dropped = 0
        self.completed = 0
        self.sink_errors = 0

    # ------------------------------------------------------------------
    # Sinks
    # ------------------------------------------------------------------
    def add_sink(self, sink: Any) -> None:
        """Attach a streaming sink (see :mod:`repro.telemetry.sinks`)."""
        self._sinks.append(sink)
        if getattr(sink, "wants_profile_events", False):
            self._profile_sinks.append(sink)
        self._update_recycle()

    def detach_sink(self, sink: Any) -> None:
        """Remove a sink from all dispatch lists (no-op if absent)."""
        if sink in self._sinks:
            self._sinks.remove(sink)
        if sink in self._profile_sinks:
            self._profile_sinks.remove(sink)
        self._update_recycle()

    def _update_recycle(self) -> None:
        """Span recycling is safe only while no attached sink may hold
        on to spans past ``on_span`` (``retains_spans`` defaults to
        True, so unknown sinks disable the pool)."""
        self._recycle = self._pool_ok and all(
            getattr(sink, "retains_spans", True) is False
            for sink in self._sinks
        )

    def _quarantine(self, failed: List[Any]) -> None:
        """Detach sinks that raised; the hot path must survive them."""
        for sink in failed:
            self.sink_errors += 1
            if self.error_counter is not None:
                self.error_counter.inc()
            self.detach_sink(sink)
            try:
                sink.close()
            except Exception:
                pass

    def _emit(self, span: Span) -> None:
        self.completed += 1
        spans = self._spans
        capacity = spans.maxlen
        recycled = None
        if capacity is not None and len(spans) == capacity:
            self.dropped += 1
            if self._recycle:
                recycled = spans.popleft()
        spans.append(span)
        sinks = self._sinks
        if sinks:
            failed = None
            for sink in sinks:
                try:
                    sink.on_span(span)
                except Exception:
                    if failed is None:
                        failed = []
                    failed.append(sink)
            if failed is not None:
                self._quarantine(failed)
        if recycled is not None and _getrefcount(recycled) == _FREE_SPAN_REFS:
            # Nothing outside this frame holds the evicted span: its
            # shell can be re-armed for a future begin()/instant().
            # Any surviving handle (a test, a slow exporter) fails the
            # refcount check and the shell is simply dropped.
            pool = self._span_pool
            if len(pool) < _SPAN_POOL_MAX:
                pool.append(recycled)

    # ------------------------------------------------------------------
    # Raw profiler events (online stitching)
    # ------------------------------------------------------------------
    def profile_emitter(self) -> Optional[Any]:
        """Bound dispatch method, or ``None`` when no sink wants the
        profiler stream — instrumentation sites capture this once at
        construction so a span-only run pays nothing per sample."""
        return self.emit_profile_event if self._profile_sinks else None

    def emit_profile_event(self, event: Any) -> None:
        """Fan a raw profiler event out to opted-in sinks (hardened)."""
        failed = None
        for sink in self._profile_sinks:
            try:
                sink.on_profile_event(event)
            except Exception:
                if failed is None:
                    failed = []
                failed.append(sink)
        if failed is not None:
            self._quarantine(failed)

    def flush_sinks(self) -> None:
        """Flush every attached sink (errors detach, never propagate)."""
        failed = None
        for sink in list(self._sinks):
            try:
                sink.flush()
            except Exception:
                if failed is None:
                    failed = []
                failed.append(sink)
        if failed is not None:
            self._quarantine(failed)

    def close_sinks(self) -> None:
        """Close every attached sink once; errors are counted, not raised."""
        sinks, self._sinks, self._profile_sinks = self._sinks, [], []
        self._update_recycle()
        for sink in sinks:
            try:
                sink.close()
            except Exception:
                self.sink_errors += 1
                if self.error_counter is not None:
                    self.error_counter.inc()

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def new_trace_id(self) -> int:
        trace_id = self._next_trace_id
        self._next_trace_id += 1
        return trace_id

    def _new_span(
        self,
        name: str,
        category: str,
        stage: Optional[str],
        thread: Optional[int],
        t: float,
        trace_id: int,
        parent_id: Optional[int],
        attrs: Optional[Dict[str, Any]],
    ) -> Span:
        """Allocate a span, re-arming a pooled shell when one exists."""
        span_id = self._next_span_id
        self._next_span_id = span_id + 1
        pool = self._span_pool
        if pool:
            span = pool.pop()
            span._reinit(
                span_id, trace_id, name, category, stage, thread, t,
                parent_id, attrs,
            )
            return span
        return Span(
            span_id, trace_id, name, category, stage, thread, t,
            parent_id=parent_id, attrs=attrs,
        )

    def begin(
        self,
        name: str,
        category: str,
        stage: Optional[str],
        t: float,
        thread: Optional[int] = None,
        trace_id: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Open a span at virtual time ``t``.

        When ``thread`` is given the span nests under that thread's
        innermost open span (inheriting its trace) and is pushed on the
        thread's stack; close it with :meth:`end`.
        """
        parent_id = None
        if thread is not None:
            stack = self._stacks.get(thread)
            if stack:
                parent = stack[-1]
                parent_id = parent.span_id
                if trace_id is None:
                    trace_id = parent.trace_id
        if trace_id is None:
            trace_id = self.new_trace_id()
        span = self._new_span(
            name, category, stage, thread, t, trace_id, parent_id, attrs
        )
        if thread is not None:
            self._stacks.setdefault(thread, []).append(span)
        return span

    def end(self, span: Span, t: float) -> Span:
        """Close ``span`` at virtual time ``t`` and stream it to sinks."""
        span.end = t
        if span.thread is not None:
            stack = self._stacks.get(span.thread)
            if stack and span in stack:
                # Tolerate out-of-order ends on exception paths: drop
                # the span and everything stacked above it.
                while stack and stack[-1] is not span:
                    stack.pop()
                if stack:
                    stack.pop()
                if not stack:
                    self._stacks.pop(span.thread, None)
        self._emit(span)
        return span

    def instant(
        self,
        name: str,
        category: str,
        stage: Optional[str],
        t: float,
        thread: Optional[int] = None,
        trace_id: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
        adopt: Optional[Tuple[str, int]] = None,
    ) -> Span:
        """Record a zero-duration span (an event) at virtual time ``t``.

        ``adopt=(origin, synopsis)`` joins the span to the trace that
        registered that synopsis *before* it is streamed to sinks, so
        live consumers never see a hop without its link.
        """
        parent_id = None
        if thread is not None:
            stack = self._stacks.get(thread)
            if stack:
                parent = stack[-1]
                parent_id = parent.span_id
                if trace_id is None:
                    trace_id = parent.trace_id
        if trace_id is None:
            trace_id = self.new_trace_id()
        span = self._new_span(
            name, category, stage, thread, t, trace_id, parent_id, attrs
        )
        if adopt is not None:
            self.adopt_synopsis(adopt[0], adopt[1], span)
        span.end = t
        self._emit(span)
        return span

    # ------------------------------------------------------------------
    # Synopsis chains as trace ids (§7.4 meets tracing)
    # ------------------------------------------------------------------
    def register_synopsis(self, origin: str, value: int, span: Span) -> None:
        """Remember that ``span`` sent synopsis ``value`` from ``origin``.

        A later :meth:`adopt_synopsis` at the receiving stage joins the
        receiver's span into this span's trace.
        """
        index = self._synopsis_index
        key = (origin, value)
        if key in index:
            # Delete-then-reinsert moves the key to the recent end of
            # the dict's insertion order (the recency order).
            del index[key]
        index[key] = (span.trace_id, span.span_id)
        capacity = self._synopsis_capacity
        if capacity is not None and len(index) > capacity:
            del index[next(iter(index))]
            self.synopses_evicted += 1
        if self.pending_gauge is not None:
            self.pending_gauge.set(len(index))

    def adopt_synopsis(self, origin: str, value: int, span: Span) -> bool:
        """Join ``span`` to the trace that sent ``(origin, value)``.

        Returns True when the synopsis was known: the span switches to
        the sender's trace id and records a link to the send span.
        Unknown synopses (e.g. the sender's recorder was off, or the
        registration was LRU-retired) leave the span in its own trace.
        The entry stays registered — the same synopsis value is adopted
        once per request reusing its context — but is marked recently
        used so hot synopses outlive idle ones.
        """
        index = self._synopsis_index
        key = (origin, value)
        found = index.get(key)
        if found is None:
            return False
        del index[key]
        index[key] = found
        trace_id, send_span_id = found
        span.trace_id = trace_id
        links = span._links
        if links is None:
            links = span._links = []
        links.append((trace_id, send_span_id))
        return True

    @property
    def pending_synopses(self) -> int:
        """Registered send-span synopses awaiting (re-)adoption."""
        return len(self._synopsis_index)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """Completed spans, oldest first."""
        return list(self._spans)

    def by_category(self, category: str) -> List[Span]:
        # Snapshot before filtering: a GC-time finalizer that emits a
        # span must not invalidate the deque iterator under our feet.
        return [s for s in tuple(self._spans) if s.category == category]

    def traces(self) -> Dict[int, List[Span]]:
        """Completed spans grouped by trace id."""
        out: Dict[int, List[Span]] = {}
        for span in tuple(self._spans):
            out.setdefault(span.trace_id, []).append(span)
        return out

    def open_spans(self) -> int:
        return sum(len(stack) for stack in self._stacks.values())

    def __len__(self) -> int:
        return len(self._spans)
