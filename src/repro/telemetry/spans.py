"""Structured spans: one trace per transaction, live, in virtual time.

A :class:`Span` is a named interval of virtual time attributed to a
stage and (optionally) a simulated thread.  Spans form traces exactly
the way Whodunit's transaction contexts do: when a stage sends a
request it registers the 4-byte synopsis it piggy-backed, and when the
callee's receive wrapper adopts that synopsis the hop span *joins the
sender's trace* and records a span link back to the send span.  The
synopsis chain therefore doubles as the trace id — no second
propagation mechanism is needed, which is the whole point of building
telemetry on top of the paper's context machinery.

Completed spans are delivered to streaming sinks the moment they end
(i.e. as virtual time advances), not at teardown; the recorder also
retains them (optionally ring-buffered) for batch exporters.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Deque, Dict, List, Optional, Tuple


class Span:
    """One interval (or instant) of virtual time in a trace."""

    __slots__ = (
        "span_id",
        "trace_id",
        "parent_id",
        "name",
        "category",
        "stage",
        "thread",
        "start",
        "end",
        "attrs",
        "links",
    )

    def __init__(
        self,
        span_id: int,
        trace_id: int,
        name: str,
        category: str,
        stage: Optional[str],
        thread: Optional[int],
        start: float,
        parent_id: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.stage = stage
        self.thread = thread
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = attrs or {}
        # (trace_id, span_id) pairs — e.g. the send span a synopsis
        # chain joined this span to.
        self.links: List[Tuple[int, int]] = []

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def is_instant(self) -> bool:
        return self.end is not None and self.end == self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.name} cat={self.category} trace={self.trace_id} "
            f"id={self.span_id} [{self.start:.6f}..{self.end}]>"
        )


class SpanRecorder:
    """Collects spans as the simulation runs.

    ``capacity`` bounds the retained completed-span list (a ring buffer
    of the most recent spans; ``None`` retains everything).  Streaming
    sinks see every span regardless of retention.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        synopsis_capacity: Optional[int] = 65536,
    ):
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self._next_span_id = 1
        self._next_trace_id = 1
        # Per-thread stacks of open spans: parentage for nested work.
        self._stacks: Dict[int, List[Span]] = {}
        # (origin stage, synopsis value) -> (trace_id, span_id) of the
        # send span, so the receiving hop joins the sender's trace.
        # LRU-bounded: a workload minting contexts forever (and hence
        # fresh synopsis values forever) must not grow this map without
        # bound; the least-recently-touched registration is retired once
        # ``synopsis_capacity`` is exceeded (None = unbounded).
        self._synopsis_index: "OrderedDict[Tuple[str, int], Tuple[int, int]]" = (
            OrderedDict()
        )
        self._synopsis_capacity = synopsis_capacity
        self.synopses_evicted = 0
        # Size gauge, installed by the telemetry hub when metrics are on.
        self.pending_gauge: Optional[Any] = None
        # Sink-error counter, installed by the hub when metrics are on.
        self.error_counter: Optional[Any] = None
        self._sinks: List[Any] = []
        # Subset of sinks that opted into raw profiler events.
        self._profile_sinks: List[Any] = []
        self.dropped = 0
        self.completed = 0
        self.sink_errors = 0

    # ------------------------------------------------------------------
    # Sinks
    # ------------------------------------------------------------------
    def add_sink(self, sink: Any) -> None:
        """Attach a streaming sink (see :mod:`repro.telemetry.sinks`)."""
        self._sinks.append(sink)
        if getattr(sink, "wants_profile_events", False):
            self._profile_sinks.append(sink)

    def detach_sink(self, sink: Any) -> None:
        """Remove a sink from all dispatch lists (no-op if absent)."""
        if sink in self._sinks:
            self._sinks.remove(sink)
        if sink in self._profile_sinks:
            self._profile_sinks.remove(sink)

    def _quarantine(self, failed: List[Any]) -> None:
        """Detach sinks that raised; the hot path must survive them."""
        for sink in failed:
            self.sink_errors += 1
            if self.error_counter is not None:
                self.error_counter.inc()
            self.detach_sink(sink)
            try:
                sink.close()
            except Exception:
                pass

    def _emit(self, span: Span) -> None:
        self.completed += 1
        if self._spans.maxlen is not None and len(self._spans) == self._spans.maxlen:
            self.dropped += 1
        self._spans.append(span)
        failed = None
        for sink in self._sinks:
            try:
                sink.on_span(span)
            except Exception:
                if failed is None:
                    failed = []
                failed.append(sink)
        if failed is not None:
            self._quarantine(failed)

    # ------------------------------------------------------------------
    # Raw profiler events (online stitching)
    # ------------------------------------------------------------------
    def profile_emitter(self) -> Optional[Any]:
        """Bound dispatch method, or ``None`` when no sink wants the
        profiler stream — instrumentation sites capture this once at
        construction so a span-only run pays nothing per sample."""
        return self.emit_profile_event if self._profile_sinks else None

    def emit_profile_event(self, event: Any) -> None:
        """Fan a raw profiler event out to opted-in sinks (hardened)."""
        failed = None
        for sink in self._profile_sinks:
            try:
                sink.on_profile_event(event)
            except Exception:
                if failed is None:
                    failed = []
                failed.append(sink)
        if failed is not None:
            self._quarantine(failed)

    def flush_sinks(self) -> None:
        """Flush every attached sink (errors detach, never propagate)."""
        failed = None
        for sink in list(self._sinks):
            try:
                sink.flush()
            except Exception:
                if failed is None:
                    failed = []
                failed.append(sink)
        if failed is not None:
            self._quarantine(failed)

    def close_sinks(self) -> None:
        """Close every attached sink once; errors are counted, not raised."""
        sinks, self._sinks, self._profile_sinks = self._sinks, [], []
        for sink in sinks:
            try:
                sink.close()
            except Exception:
                self.sink_errors += 1
                if self.error_counter is not None:
                    self.error_counter.inc()

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def new_trace_id(self) -> int:
        trace_id = self._next_trace_id
        self._next_trace_id += 1
        return trace_id

    def begin(
        self,
        name: str,
        category: str,
        stage: Optional[str],
        t: float,
        thread: Optional[int] = None,
        trace_id: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Open a span at virtual time ``t``.

        When ``thread`` is given the span nests under that thread's
        innermost open span (inheriting its trace) and is pushed on the
        thread's stack; close it with :meth:`end`.
        """
        parent_id = None
        if thread is not None:
            stack = self._stacks.get(thread)
            if stack:
                parent = stack[-1]
                parent_id = parent.span_id
                if trace_id is None:
                    trace_id = parent.trace_id
        if trace_id is None:
            trace_id = self.new_trace_id()
        span = Span(
            self._next_span_id, trace_id, name, category, stage, thread, t,
            parent_id=parent_id, attrs=attrs,
        )
        self._next_span_id += 1
        if thread is not None:
            self._stacks.setdefault(thread, []).append(span)
        return span

    def end(self, span: Span, t: float) -> Span:
        """Close ``span`` at virtual time ``t`` and stream it to sinks."""
        span.end = t
        if span.thread is not None:
            stack = self._stacks.get(span.thread)
            if stack and span in stack:
                # Tolerate out-of-order ends on exception paths: drop
                # the span and everything stacked above it.
                while stack and stack[-1] is not span:
                    stack.pop()
                if stack:
                    stack.pop()
                if not stack:
                    self._stacks.pop(span.thread, None)
        self._emit(span)
        return span

    def instant(
        self,
        name: str,
        category: str,
        stage: Optional[str],
        t: float,
        thread: Optional[int] = None,
        trace_id: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
        adopt: Optional[Tuple[str, int]] = None,
    ) -> Span:
        """Record a zero-duration span (an event) at virtual time ``t``.

        ``adopt=(origin, synopsis)`` joins the span to the trace that
        registered that synopsis *before* it is streamed to sinks, so
        live consumers never see a hop without its link.
        """
        parent_id = None
        if thread is not None:
            stack = self._stacks.get(thread)
            if stack:
                parent = stack[-1]
                parent_id = parent.span_id
                if trace_id is None:
                    trace_id = parent.trace_id
        if trace_id is None:
            trace_id = self.new_trace_id()
        span = Span(
            self._next_span_id, trace_id, name, category, stage, thread, t,
            parent_id=parent_id, attrs=attrs,
        )
        self._next_span_id += 1
        if adopt is not None:
            self.adopt_synopsis(adopt[0], adopt[1], span)
        span.end = t
        self._emit(span)
        return span

    # ------------------------------------------------------------------
    # Synopsis chains as trace ids (§7.4 meets tracing)
    # ------------------------------------------------------------------
    def register_synopsis(self, origin: str, value: int, span: Span) -> None:
        """Remember that ``span`` sent synopsis ``value`` from ``origin``.

        A later :meth:`adopt_synopsis` at the receiving stage joins the
        receiver's span into this span's trace.
        """
        index = self._synopsis_index
        key = (origin, value)
        if key in index:
            index.move_to_end(key)
        index[key] = (span.trace_id, span.span_id)
        capacity = self._synopsis_capacity
        if capacity is not None and len(index) > capacity:
            index.popitem(last=False)
            self.synopses_evicted += 1
        if self.pending_gauge is not None:
            self.pending_gauge.set(len(index))

    def adopt_synopsis(self, origin: str, value: int, span: Span) -> bool:
        """Join ``span`` to the trace that sent ``(origin, value)``.

        Returns True when the synopsis was known: the span switches to
        the sender's trace id and records a link to the send span.
        Unknown synopses (e.g. the sender's recorder was off, or the
        registration was LRU-retired) leave the span in its own trace.
        The entry stays registered — the same synopsis value is adopted
        once per request reusing its context — but is marked recently
        used so hot synopses outlive idle ones.
        """
        index = self._synopsis_index
        key = (origin, value)
        found = index.get(key)
        if found is None:
            return False
        index.move_to_end(key)
        trace_id, send_span_id = found
        span.trace_id = trace_id
        span.links.append((trace_id, send_span_id))
        return True

    @property
    def pending_synopses(self) -> int:
        """Registered send-span synopses awaiting (re-)adoption."""
        return len(self._synopsis_index)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """Completed spans, oldest first."""
        return list(self._spans)

    def by_category(self, category: str) -> List[Span]:
        # Snapshot before filtering: a GC-time finalizer that emits a
        # span must not invalidate the deque iterator under our feet.
        return [s for s in tuple(self._spans) if s.category == category]

    def traces(self) -> Dict[int, List[Span]]:
        """Completed spans grouped by trace id."""
        out: Dict[int, List[Span]] = {}
        for span in tuple(self._spans):
            out.setdefault(span.trace_id, []).append(span)
        return out

    def open_spans(self) -> int:
        return sum(len(stack) for stack in self._stacks.values())

    def __len__(self) -> int:
        return len(self._spans)
