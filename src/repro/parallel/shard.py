"""Deterministic workload sharding.

A *shard* is an independent slice of a workload: its own client
population, its own complete simulated system (all tiers), its own
seeded RNG streams.  The shard plan is a pure function of the run
parameters, so the same ``(seed, clients, shards)`` triple always
yields the same shard specs — and therefore, because each shard's
simulation is self-contained and seeded, the same profile dumps —
regardless of how many worker processes execute them or in what order.

Seed derivation uses CRC32 (like :class:`repro.sim.rng.Rng.stream`),
never ``hash()``: Python randomises string hashing per process, which
would silently break cross-process reproducibility.  A single-shard
plan passes the run seed through *unchanged*, which is what keeps the
``--shards 1`` path byte-identical to the legacy serial path.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List

#: Workload kinds the runner knows how to execute.
WORKLOADS = ("tpcw", "haboob", "openloop")


def derive_shard_seed(seed: int, index: int, shards: int) -> int:
    """The deterministic seed for shard ``index`` of ``shards``.

    With one shard the run seed passes through unchanged (serial
    equivalence); otherwise each shard gets an independent stream
    derived from the run seed, the shard index and the shard count, so
    re-planning with a different N reshuffles every shard's stream
    instead of silently reusing a prefix.
    """
    if shards == 1:
        return seed
    return zlib.crc32(f"shard:{seed}:{index}/{shards}".encode()) & 0x7FFFFFFF


def partition_clients(clients: int, shards: int) -> List[int]:
    """Split a client population into near-equal shard populations.

    The remainder goes to the lowest shard indices; the sizes always
    sum to ``clients``.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    if clients < shards:
        raise ValueError(
            f"cannot spread {clients} clients over {shards} shards"
        )
    base, extra = divmod(clients, shards)
    return [base + (1 if index < extra else 0) for index in range(shards)]


@dataclass
class ShardSpec:
    """Everything a worker process needs to run one shard."""

    workload: str
    index: int
    shards: int
    seed: int
    clients: int
    duration: float
    warmup: float = 0.0
    #: Workload-specific keyword arguments (mix, caching, objects, ...).
    params: Dict[str, Any] = field(default_factory=dict)
    #: Where to dump this shard's per-stage profiles ("" = don't dump).
    spool_dir: str = ""
    profile_format: str = "v2"
    #: Telemetry mode to install inside the worker ("off", "spans", "full").
    telemetry_mode: str = "off"
    #: Parent directory for live-collector checkpoints ("" = no live
    #: collection); each shard checkpoints under ``shard-NNNN/``.
    live_dir: str = ""
    #: Virtual seconds between live checkpoints.
    live_interval: float = 5.0
    #: LRU bound on resident live CCTs (0 = unbounded).
    live_resident: int = 512


@dataclass
class ShardPlan:
    """An ordered, deterministic list of shard specs for one run."""

    workload: str
    seed: int
    clients: int
    shards: int
    duration: float
    warmup: float
    specs: List[ShardSpec]

    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)


def plan_shards(
    workload: str,
    seed: int,
    clients: int,
    shards: int,
    duration: float,
    warmup: float = 0.0,
    params: Dict[str, Any] = None,
    spool_dir: str = "",
    profile_format: str = "v2",
    telemetry_mode: str = "off",
    live_dir: str = "",
    live_interval: float = 5.0,
    live_resident: int = 512,
) -> ShardPlan:
    """Build the deterministic shard plan for a run."""
    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}; one of {WORKLOADS}")
    populations = partition_clients(clients, shards)
    specs = [
        ShardSpec(
            workload=workload,
            index=index,
            shards=shards,
            seed=derive_shard_seed(seed, index, shards),
            clients=populations[index],
            duration=duration,
            warmup=warmup,
            params=dict(params or {}),
            spool_dir=spool_dir,
            profile_format=profile_format,
            telemetry_mode=telemetry_mode,
            live_dir=live_dir,
            live_interval=live_interval,
            live_resident=live_resident,
        )
        for index in range(shards)
    ]
    return ShardPlan(
        workload=workload,
        seed=seed,
        clients=clients,
        shards=shards,
        duration=duration,
        warmup=warmup,
        specs=specs,
    )
