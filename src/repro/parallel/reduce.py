"""Hierarchical two-level profile reduce: shard → group → global.

The flat map-reduce presentation phase stitches each shard in a worker
but folds *every* shard profile in the parent, so parent-side merge
cost grows linearly with the shard count.  At cluster scale that fold
becomes the new straggler.  The two-level reduce keeps it sublinear:
shards are partitioned into contiguous *groups*, each group is merged
inside a worker (which also did the expensive load+stitch), and the
parent only folds the G ≈ √N group artifacts, streaming them frame by
frame from the spool instead of loading whole files.

**Exactness is what makes the tree legal.**  Shard profiles share
fully-resolved contexts (that is the point of cross-shard
aggregation), so reducing means adding floats — and float addition is
not associative: ``(a+b)+c`` and ``a+(b+c)`` can differ in the last
ulp, which would make the merged profile depend on the group size.
The reduce therefore never adds weights directly.  Every accumulation
goes through Shewchuk error-free partials (:func:`grow_partials` — the
algorithm inside ``math.fsum``): a node's weight is carried as a short
list of non-overlapping floats whose *exact* real sum equals the exact
sum of every contribution, and is rounded exactly once, at
:meth:`ProfileAccumulator.finalize`, with ``math.fsum``.  Since the
partials represent the exact sum regardless of how contributions were
grouped, **every grouping — including the flat one — produces
byte-identical output** (asserted for every group size in
``tests/parallel/test_reduce.py``).

Group artifacts are framed like v2 profile dumps (magic ``WDR2``): one
tables frame (interned strings, resolution tallies, entry count)
followed by one frame per profile entry, so the parent folds one entry
at a time in bounded memory.
"""

from __future__ import annotations

import math
import os
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.cct import CallingContextTree
from repro.core.context import TransactionContext
from repro.core.persist import (
    _Interner,
    _v2_decode_context,
    _v2_encode_context,
    read_frame,
    write_frame,
)
from repro.core.stitch import StitchedProfile

#: Frame magic for reduce-tree group artifacts (header layout shared
#: with v2 profile dumps: magic, u32 version, u32 payload length).
REDUCE_MAGIC = b"WDR2"
REDUCE_VERSION = 1

#: Group artifact filename pattern inside a spool's ``reduce/`` dir.
GROUP_FILE = "group-{index:04d}.wdr"


def grow_partials(partials: List[float], value: float) -> None:
    """Add ``value`` into Shewchuk partials in place, without error.

    Maintains the invariant that ``sum(partials)`` computed in exact
    real arithmetic equals the exact sum of every value ever grown in
    (the partials are non-overlapping doubles).  This is the
    accumulation loop used by ``math.fsum``; rounding happens only when
    the caller finally collapses the partials with ``fsum``.
    """
    x = value
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    del partials[i:]
    partials.append(x)


class _PartialNode:
    """A CCT node whose weight is exact partials, not one rounded float."""

    __slots__ = ("partials", "call_count", "children")

    def __init__(self):
        self.partials: List[float] = []
        self.call_count = 0
        self.children: Dict[str, "_PartialNode"] = {}

    def child(self, name: str) -> "_PartialNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = _PartialNode()
        return node


class ProfileAccumulator:
    """Order-invariant exact accumulation of stitched profiles.

    Feed it whole profiles (:meth:`add_profile`), streamed group-file
    entries (:meth:`absorb_file`), or both; :meth:`finalize` rounds
    each node exactly once.  Any feeding order and any grouping of the
    same contributions produce identical output bytes.
    """

    def __init__(self):
        self.entries: Dict[Tuple[str, TransactionContext], _PartialNode] = {}
        self.synopsis_refs = 0
        self.unresolved_refs = 0

    def _root(self, stage: str, context: TransactionContext) -> _PartialNode:
        key = (stage, context)
        node = self.entries.get(key)
        if node is None:
            node = self.entries[key] = _PartialNode()
        return node

    # -- feeding -------------------------------------------------------
    def add_profile(self, profile: StitchedProfile) -> None:
        for (stage, context), cct in profile.entries.items():
            stack = [(self._root(stage, context), cct.root)]
            while stack:
                node, src = stack.pop()
                if src.self_weight:
                    grow_partials(node.partials, src.self_weight)
                node.call_count += src.call_count
                for name, src_child in src.children.items():
                    stack.append((node.child(name), src_child))
        self.synopsis_refs += profile.synopsis_refs
        self.unresolved_refs += profile.unresolved_refs

    def _absorb_rows(self, root: _PartialNode, parents, names,
                     partials_column, counts) -> None:
        nodes: List[_PartialNode] = []
        for parent, name, partials, count in zip(
            parents, names, partials_column, counts
        ):
            node = root if parent < 0 else nodes[parent].child(name)
            for value in partials:
                grow_partials(node.partials, value)
            node.call_count += count
            nodes.append(node)

    def absorb_file(self, source: str) -> None:
        """Stream one group artifact into the accumulator, frame-wise."""
        with open(source, "rb") as handle:
            header = read_frame(handle, magic=REDUCE_MAGIC,
                                version=REDUCE_VERSION)
            if header is None:
                raise ValueError(f"empty reduce artifact {source!r}")
            strings, synopsis_refs, unresolved_refs, entry_count = header
            self.synopsis_refs += synopsis_refs
            self.unresolved_refs += unresolved_refs
            for _ in range(entry_count):
                entry = read_frame(handle, magic=REDUCE_MAGIC,
                                   version=REDUCE_VERSION)
                if entry is None:
                    raise ValueError(f"truncated reduce artifact {source!r}")
                stage_id, context_cells, parents, name_ids, partials, counts = entry
                self._absorb_rows(
                    self._root(
                        strings[stage_id],
                        _v2_decode_context(context_cells, strings),
                    ),
                    parents,
                    [strings[name_id] for name_id in name_ids],
                    partials,
                    counts,
                )

    # -- persistence ---------------------------------------------------
    @staticmethod
    def _rows(root: _PartialNode):
        """Canonical pre-order rows (children in sorted name order)."""
        rows: List[Tuple[int, str, List[float], int]] = []
        stack: List[Tuple[_PartialNode, str, int]] = [(root, "", -1)]
        while stack:
            node, name, parent = stack.pop()
            index = len(rows)
            rows.append((parent, name, node.partials, node.call_count))
            for child_name in sorted(node.children, reverse=True):
                stack.append((node.children[child_name], child_name, index))
        return rows

    def write(self, destination: str) -> int:
        """Persist as a streamable group artifact; returns bytes written.

        JSON floats round-trip exactly (shortest-repr encode, exact
        decode), so the partials survive the file unrounded.
        """
        strings = _Interner()
        entry_documents: List[List[Any]] = []
        for (stage, context), root in self.entries.items():
            rows = self._rows(root)
            entry_documents.append([
                strings.intern(stage),
                _v2_encode_context(context, strings),
                [row[0] for row in rows],
                [strings.intern(row[1]) for row in rows],
                [row[2] for row in rows],
                [row[3] for row in rows],
            ])
        written = 0
        with open(destination, "wb") as handle:
            written += write_frame(
                handle,
                [strings.values, self.synopsis_refs, self.unresolved_refs,
                 len(entry_documents)],
                magic=REDUCE_MAGIC, version=REDUCE_VERSION,
            )
            for document in entry_documents:
                written += write_frame(handle, document,
                                       magic=REDUCE_MAGIC,
                                       version=REDUCE_VERSION)
        return written

    # -- rounding ------------------------------------------------------
    def finalize(self) -> StitchedProfile:
        """Round every node exactly once and build the merged profile."""
        profile = StitchedProfile()
        for (stage, context), root in self.entries.items():
            cct = CallingContextTree(context)
            stack = [(cct.root, root)]
            while stack:
                dst, src = stack.pop()
                if src.partials:
                    dst.self_weight = math.fsum(src.partials)
                dst.call_count = src.call_count
                for name, src_child in src.children.items():
                    stack.append((dst.child(name), src_child))
            profile.entries[(stage, context)] = cct
        profile.synopsis_refs = self.synopsis_refs
        profile.unresolved_refs = self.unresolved_refs
        return profile


# ----------------------------------------------------------------------
# The reduce tree
# ----------------------------------------------------------------------
def plan_groups(count: int, group_size: int) -> List[List[int]]:
    """Contiguous shard-index groups: ``[[0..g-1], [g..2g-1], ...]``."""
    if group_size < 1:
        raise ValueError("group size must be >= 1")
    return [
        list(range(start, min(start + group_size, count)))
        for start in range(0, count, group_size)
    ]


def default_group_size(count: int) -> int:
    """≈√N groups of ≈√N shards keeps both reduce levels balanced."""
    return max(2, math.ceil(math.sqrt(count)))


def reduce_group_task(task) -> Tuple[str, float, int]:
    """Worker: stitch one group's shards, merge them, spool the artifact.

    ``task`` is ``(shard_indices, dump_groups, strict, out_path)``;
    returns ``(out_path, wall_seconds, entry_count)``.  Top-level so the
    work-stealing pool can ship it under any start method.
    """
    from repro.parallel.stitching import _stitch_group, _tag_unresolved

    shard_indices, dump_groups, strict, out_path = task
    start = time.perf_counter()
    accumulator = ProfileAccumulator()
    for shard_index, paths in zip(shard_indices, dump_groups):
        profile = _tag_unresolved(
            _stitch_group((paths, strict)), f"@shard{shard_index}"
        )
        accumulator.add_profile(profile)
    accumulator.write(out_path)
    return out_path, time.perf_counter() - start, len(accumulator.entries)


def hierarchical_stitch(
    groups: Sequence[Sequence[str]],
    jobs: int = 1,
    group_size: int = 0,
    strict: bool = True,
    reduce_dir: Optional[str] = None,
    pool=None,
    stats: Optional[Dict[str, Any]] = None,
) -> StitchedProfile:
    """Two-level reduce over per-shard dump groups.

    Byte-identical to :func:`repro.parallel.stitching.parallel_stitch`
    over the same groups, for every ``group_size`` (see module
    docstring).  ``group_size=0`` picks ≈√N.  ``reduce_dir`` keeps the
    group artifacts (default: a temporary directory); pass ``stats`` to
    receive group walls, artifact bytes and the parent fold time.
    """
    groups = [list(group) for group in groups]
    if len(groups) <= 1:
        from repro.parallel.stitching import parallel_stitch

        return parallel_stitch(groups, jobs=jobs, strict=strict)
    if not group_size:
        group_size = default_group_size(len(groups))
    slices = plan_groups(len(groups), group_size)
    scratch = None
    if reduce_dir is None:
        scratch = tempfile.TemporaryDirectory(prefix="whodunit-reduce-")
        reduce_dir = scratch.name
    os.makedirs(reduce_dir, exist_ok=True)
    try:
        tasks = []
        for group_index, shard_indices in enumerate(slices):
            tasks.append((
                shard_indices,
                [groups[index] for index in shard_indices],
                strict,
                os.path.join(reduce_dir, GROUP_FILE.format(index=group_index)),
            ))
        if pool is None and jobs > 1 and len(tasks) > 1:
            from repro.parallel.scheduler import get_pool

            pool = get_pool(jobs)
        if pool is None or len(tasks) <= 1:
            results = [reduce_group_task(task) for task in tasks]
        else:
            results = pool.run(reduce_group_task, tasks)
        fold_start = time.perf_counter()
        accumulator = ProfileAccumulator()
        for path, _, _ in results:  # task order == group-index order
            accumulator.absorb_file(path)
        merged = accumulator.finalize()
        if stats is not None:
            stats["group_size"] = group_size
            stats["groups"] = len(slices)
            stats["group_walls"] = [wall for _, wall, _ in results]
            stats["group_bytes"] = [
                os.path.getsize(path) for path, _, _ in results
            ]
            stats["parent_fold_s"] = time.perf_counter() - fold_start
        return merged
    finally:
        if scratch is not None:
            scratch.cleanup()
