"""Multi-core scale-out: sharded simulation and the parallel
presentation phase.

Whodunit's workflow (§7.1) is embarrassingly parallel on both ends:
profile *collection* happens independently per stage process, and the
post-mortem *presentation* phase independently resolves each dump
before one deterministic merge.  This package exploits both:

- :mod:`repro.parallel.shard` deterministically partitions a TPC-W or
  Haboob workload into N independent shards (per-shard seeds derived
  from the run seed and shard index);
- :mod:`repro.parallel.scheduler` is a persistent work-stealing
  process pool: workers are started once per session and steal shard
  tasks from one shared queue, so stragglers delay only themselves and
  pool startup is never paid per run;
- :mod:`repro.parallel.runner` executes the shards across that pool,
  spooling per-stage profile dumps and returning plain-data summaries
  that merge post-hoc (including telemetry metrics);
- :mod:`repro.parallel.stitching` is the map-reduce presentation
  phase: workers load and pre-resolve dump groups in parallel, an
  exact shard-ordered reduce merges the stitched profiles, so output
  is byte-identical no matter how the work was scheduled;
- :mod:`repro.parallel.reduce` is the hierarchical
  shard → group → global reduce tree, byte-identical to the flat
  reduce at every group size thanks to error-free (Shewchuk) weight
  accumulation.

See ``docs/performance.md`` for the sharding model and determinism
guarantees.
"""

from repro.parallel.shard import (
    ShardPlan,
    ShardSpec,
    derive_shard_seed,
    partition_clients,
    plan_shards,
)
from repro.parallel.runner import ShardResult, ShardedRun, run_shards
from repro.parallel.scheduler import (
    WorkStealingPool,
    WorkerError,
    effective_jobs,
    get_pool,
    shutdown_pools,
)
from repro.parallel.reduce import (
    ProfileAccumulator,
    default_group_size,
    hierarchical_stitch,
    plan_groups,
)
from repro.parallel.stitching import (
    canonical_profile_bytes,
    parallel_load,
    parallel_stitch,
    spool_groups,
    stitch_spool,
)

__all__ = [
    "ProfileAccumulator",
    "ShardPlan",
    "ShardResult",
    "ShardSpec",
    "ShardedRun",
    "WorkStealingPool",
    "WorkerError",
    "canonical_profile_bytes",
    "default_group_size",
    "derive_shard_seed",
    "effective_jobs",
    "get_pool",
    "hierarchical_stitch",
    "parallel_load",
    "parallel_stitch",
    "partition_clients",
    "plan_groups",
    "plan_shards",
    "run_shards",
    "shutdown_pools",
    "spool_groups",
    "stitch_spool",
]
