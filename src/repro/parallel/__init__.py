"""Multi-core scale-out: sharded simulation and the parallel
presentation phase.

Whodunit's workflow (§7.1) is embarrassingly parallel on both ends:
profile *collection* happens independently per stage process, and the
post-mortem *presentation* phase independently resolves each dump
before one deterministic merge.  This package exploits both:

- :mod:`repro.parallel.shard` deterministically partitions a TPC-W or
  Haboob workload into N independent shards (per-shard seeds derived
  from the run seed and shard index);
- :mod:`repro.parallel.runner` executes the shards across a process
  pool, spooling per-stage profile dumps and returning plain-data
  summaries that merge post-hoc (including telemetry metrics);
- :mod:`repro.parallel.stitching` is the map-reduce presentation
  phase: workers load and pre-resolve dump groups in parallel, a
  shard-ordered reduce merges the stitched profiles, so output is
  byte-identical no matter how the work was scheduled.

See ``docs/performance.md`` for the sharding model and determinism
guarantees.
"""

from repro.parallel.shard import (
    ShardPlan,
    ShardSpec,
    derive_shard_seed,
    partition_clients,
    plan_shards,
)
from repro.parallel.runner import ShardResult, ShardedRun, run_shards
from repro.parallel.stitching import (
    canonical_profile_bytes,
    parallel_load,
    parallel_stitch,
    stitch_spool,
)

__all__ = [
    "ShardPlan",
    "ShardResult",
    "ShardSpec",
    "ShardedRun",
    "canonical_profile_bytes",
    "derive_shard_seed",
    "parallel_load",
    "parallel_stitch",
    "partition_clients",
    "plan_shards",
    "run_shards",
    "stitch_spool",
]
