"""The parallel presentation phase: map-reduce profile stitching.

The map step loads one *group* of stage dumps (one shard's tiers — a
self-contained resolution universe) and stitches it in a worker from
the shared work-stealing pool (:mod:`repro.parallel.scheduler`); the
reduce folds the per-group profiles through the exact accumulator from
:mod:`repro.parallel.reduce`, so the merged profile is a pure function
of the dump set — independent of worker count, scheduling, completion
order, *and* reduce-tree shape (the hierarchical shard→group→global
reduce produces byte-identical output).  The determinism proof in the
scale-out benchmark serialises the merged profile with
:func:`canonical_profile_bytes` and compares runs byte-for-byte.

For a flat list of dumps that resolve against each other (the classic
single-run, multi-tier layout), :func:`parallel_load` parallelises just
the load/decode step and the caller stitches the loaded stages
serially — resolution needs every synopsis table in one place.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Sequence, Tuple

from repro.core.context import TransactionContext, UnresolvedRef
from repro.core.stitch import StitchedProfile, stitch_profiles

#: Kept in sync with repro.parallel.runner.MANIFEST_NAME (no import to
#: keep worker pickling light).
MANIFEST_NAME = "manifest.json"


def _pool(jobs: int):
    """The shared session pool (persistent; startup paid once)."""
    from repro.parallel.scheduler import get_pool

    return get_pool(jobs)


# ----------------------------------------------------------------------
# Map workers (top-level for pickling)
# ----------------------------------------------------------------------
def _load_one(path: str):
    from repro.core.persist import load_stage

    return load_stage(path)


def _stitch_group(task: Tuple[Sequence[str], bool]) -> StitchedProfile:
    paths, strict = task
    stages = [_load_one(path) for path in paths]
    return stitch_profiles(stages, strict=strict)


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def parallel_load(paths: Sequence[str], jobs: int = 1) -> List:
    """Load dumps (v1 or v2) with up to ``jobs`` worker processes.

    Results come back in input order regardless of scheduling.
    """
    paths = list(paths)
    if jobs <= 1 or len(paths) <= 1:
        return [_load_one(path) for path in paths]
    return _pool(jobs).run(_load_one, paths)


def _tag_unresolved(profile: StitchedProfile, tag: str) -> StitchedProfile:
    """Qualify UnresolvedRef origins with the shard they came from.

    Synopsis values are only unique *within* a shard's stages: without
    the qualifier, unresolved placeholders from different shards could
    spuriously collide (same origin name, same 32-bit value, different
    transactions) and merge weights that belong to distinct contexts.
    Fully resolved contexts contain no refs and merge by value, which
    is exactly what cross-shard aggregation wants.
    """
    if not any(
        isinstance(element, UnresolvedRef)
        for _, context in profile.entries
        for element in context
    ):
        return profile
    tagged = StitchedProfile()
    for (stage, context), cct in profile.entries.items():
        elements = [
            UnresolvedRef(f"{element.origin}{tag}", element.value)
            if isinstance(element, UnresolvedRef)
            else element
            for element in context
        ]
        tagged.add(stage, TransactionContext(elements), cct)
    tagged.synopsis_refs = profile.synopsis_refs
    tagged.unresolved_refs = profile.unresolved_refs
    return tagged


def parallel_stitch(
    groups: Sequence[Sequence[str]],
    jobs: int = 1,
    strict: bool = True,
    pool=None,
) -> StitchedProfile:
    """Stitch dump groups in parallel and reduce deterministically.

    Each group is one self-contained resolution universe (one shard's
    per-stage dumps).  With a single group this degenerates to the
    serial presentation phase.  The multi-group reduce goes through the
    exact accumulator, so it is byte-identical to
    :func:`repro.parallel.reduce.hierarchical_stitch` over the same
    groups at any group size.
    """
    groups = [list(group) for group in groups]
    tasks = [(group, strict) for group in groups]
    if pool is None and jobs > 1 and len(tasks) > 1:
        pool = _pool(jobs)
    if pool is None or len(tasks) <= 1:
        profiles = [_stitch_group(task) for task in tasks]
    else:
        profiles = pool.run(_stitch_group, tasks)
    if len(groups) <= 1:
        # Single resolution universe: plain clone-merge, no shard
        # tagging — the classic serial presentation phase.
        merged = StitchedProfile()
        for profile in profiles:
            merged.merge(profile)
        return merged
    from repro.parallel.reduce import ProfileAccumulator

    accumulator = ProfileAccumulator()
    for index, profile in enumerate(profiles):
        accumulator.add_profile(_tag_unresolved(profile, f"@shard{index}"))
    return accumulator.finalize()


def spool_groups(spool_dir: str) -> List[List[str]]:
    """Per-shard dump path groups from a spool manifest, in shard order.

    The manifest stores only manifest-relative paths, so a spool
    directory rsync'd to another machine resolves against its new
    location with no rewriting.
    """
    manifest_path = os.path.join(spool_dir, MANIFEST_NAME)
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    return [
        [os.path.join(spool_dir, group["dir"], name) for name in group["files"]]
        for group in sorted(manifest["groups"], key=lambda g: g["index"])
    ]


def stitch_spool(
    spool_dir: str,
    jobs: int = 1,
    strict: bool = True,
    group_size: Optional[int] = None,
    stats=None,
) -> StitchedProfile:
    """Stitch a spool directory written by :func:`repro.parallel.runner.
    run_shards`, using its manifest to group dumps per shard.

    ``group_size=None`` runs the flat map-reduce; any integer (0 for
    the ≈√N default) routes through the hierarchical two-level reduce —
    output bytes are identical either way.
    """
    groups = spool_groups(spool_dir)
    if group_size is None:
        return parallel_stitch(groups, jobs=jobs, strict=strict)
    from repro.parallel.reduce import hierarchical_stitch

    return hierarchical_stitch(
        groups, jobs=jobs, group_size=group_size, strict=strict, stats=stats
    )


def canonical_profile_bytes(profile: StitchedProfile) -> bytes:
    """A canonical byte serialisation of a stitched profile.

    Entries are sorted by ``(stage, repr(context))`` and each CCT is
    flattened to its canonical pre-order rows, so two profiles with the
    same content — however they were produced — serialise to identical
    bytes.  Floats use Python's shortest-exact repr via the JSON
    encoder: byte equality means bit-exact weights.
    """
    entries = []
    for (stage, context), cct in sorted(
        profile.entries.items(), key=lambda item: (item[0][0], repr(item[0][1]))
    ):
        entries.append([stage, repr(context), cct.root.to_rows()])
    document = {
        "entries": entries,
        "synopsis_refs": profile.synopsis_refs,
        "unresolved_refs": profile.unresolved_refs,
    }
    return json.dumps(document, separators=(",", ":")).encode("utf-8")
