"""Sharded workload execution across a process pool.

Each shard runs a *complete* simulated deployment (every tier, its own
kernel, its own seeded RNG streams) inside one worker process, dumps
its per-stage profiles to a spool directory, and returns a plain-data
:class:`ShardResult`.  The parent merges results post-hoc — throughput
sums, response-time averages weighted by completions, crosstalk totals,
telemetry metric snapshots — always folding in shard-index order so the
merged view is independent of worker scheduling.

``jobs=1`` runs the shards sequentially in-process through the *same*
code path, which is both the degenerate case and the determinism
baseline: an N-job run must produce byte-identical dumps and merged
output to the 1-job run of the same plan.

Workers snapshot and restore the module-level telemetry switch so a
shard always runs with exactly the telemetry mode its spec names,
independent of whatever the parent process had installed at fork time.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import telemetry as _telemetry
from repro.parallel.shard import ShardPlan, ShardSpec

#: Dump file suffix per profile format.
DUMP_SUFFIX = {"v1": ".profile.json", "v2": ".profile.wdp"}

MANIFEST_NAME = "manifest.json"


@dataclass
class ShardResult:
    """Plain-data summary of one executed shard (picklable)."""

    index: int
    seed: int
    clients: int
    wall_seconds: float
    window: Tuple[float, float]
    served: int
    throughput: float
    interactions: Dict[str, List[float]] = field(default_factory=dict)
    db_cpu_weights: Dict[str, float] = field(default_factory=dict)
    crosstalk: Dict[str, List[float]] = field(default_factory=dict)
    comm: Tuple[int, int] = (0, 0)
    dump_paths: List[str] = field(default_factory=list)
    dump_bytes: int = 0
    span_count: int = 0
    metrics: List[Dict[str, Any]] = field(default_factory=list)
    extra: Dict[str, Any] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Worker functions (top-level: must pickle across the process pool)
# ----------------------------------------------------------------------
def _dump_stages(spec: ShardSpec, stages_by_name) -> Tuple[List[str], int]:
    """Spool the shard's per-stage dumps; returns (paths, total bytes)."""
    if not spec.spool_dir:
        return [], 0
    from repro.core.persist import save_stage

    shard_dir = os.path.join(spec.spool_dir, f"shard-{spec.index:04d}")
    os.makedirs(shard_dir, exist_ok=True)
    suffix = DUMP_SUFFIX[spec.profile_format]
    paths: List[str] = []
    total = 0
    for name, stage in stages_by_name.items():
        path = os.path.join(shard_dir, f"{name}{suffix}")
        save_stage(stage, path, profile_format=spec.profile_format)
        paths.append(path)
        total += os.path.getsize(path)
    return paths, total


def _collect_telemetry(tele) -> Tuple[int, List[Dict[str, Any]]]:
    if tele is None:
        return 0, []
    metrics = tele.metrics.snapshot() if tele.wants_metrics else []
    return len(tele.spans.spans), metrics


def _run_tpcw_shard(spec: ShardSpec) -> ShardResult:
    from repro.apps.db.locks import INNODB, MYISAM
    from repro.apps.tpcw import TpcwSystem
    from repro.channels.rpc import RetryPolicy

    params = spec.params
    retry = None
    if params.get("fault_plan") and params.get("retries", 0) > 0:
        retry = RetryPolicy(
            timeout=params.get("retry_timeout", 0.25),
            retries=params["retries"],
        )
    start = time.perf_counter()
    system = TpcwSystem(
        clients=spec.clients,
        caching=params.get("caching", False),
        item_engine=INNODB if params.get("innodb") else MYISAM,
        seed=spec.seed,
        mix=params.get("mix", "browsing"),
        think_mean=params.get("think_mean", 7.0),
        db_connections=params.get("db_connections", 24),
        fault_plan=params.get("fault_plan"),
        fault_seed=params.get("fault_seed", 0) + spec.index,
        retry=retry,
    )
    results = system.run(duration=spec.duration, warmup=spec.warmup)
    wall = time.perf_counter() - start

    interactions: Dict[str, List[float]] = {}
    for tx_type, tx_start, tx_end in results.log.records:
        cell = interactions.setdefault(tx_type, [0, 0.0])
        cell[0] += 1
        cell[1] += tx_end - tx_start
    crosstalk = {
        name: [cell[0], system.db.crosstalk.total_wait_of(name)]
        for name, cell in interactions.items()
    }
    comm = results.comm_overhead()
    dump_paths, dump_bytes = _dump_stages(spec, system.stages_by_name)
    return ShardResult(
        index=spec.index,
        seed=spec.seed,
        clients=spec.clients,
        wall_seconds=wall,
        window=(results.window_start, results.window_end),
        served=results.log.completions_in(
            results.window_start, results.window_end
        ),
        throughput=results.throughput_tpm(),
        interactions=interactions,
        db_cpu_weights=results.db_cpu_weights(),
        crosstalk=crosstalk,
        comm=(comm["data_bytes"], comm["context_bytes"]),
        dump_paths=dump_paths,
        dump_bytes=dump_bytes,
        extra={
            "db_utilization": system.db.cpu.utilization(),
            "stitch_completeness": (
                results.stitch_completeness()
                if system.faults is not None
                else 1.0
            ),
        },
    )


def _run_haboob_shard(spec: ShardSpec) -> ShardResult:
    from repro.apps.haboob import HaboobConfig, HaboobServer
    from repro.sim import Kernel, Rng
    from repro.workloads import HttpClientPool, WebTrace

    params = spec.params
    start = time.perf_counter()
    kernel = Kernel()
    trace = WebTrace(Rng(spec.seed), objects=params.get("objects", 2000))
    server = HaboobServer(
        kernel,
        trace,
        config=HaboobConfig(
            cache_bytes=params.get("cache_kb", 512) * 1024
        ),
    )
    server.start()
    HttpClientPool(
        kernel, server.listener, trace, clients=spec.clients
    ).start()
    kernel.run(until=spec.duration)
    wall = time.perf_counter() - start
    dump_paths, dump_bytes = _dump_stages(spec, server.stages_by_name)
    return ShardResult(
        index=spec.index,
        seed=spec.seed,
        clients=spec.clients,
        wall_seconds=wall,
        window=(0.0, spec.duration),
        served=server.responses_sent,
        throughput=server.throughput_mbps(),
        comm=(server.stage_runtime.comm_data_bytes,
              server.stage_runtime.comm_context_bytes),
        dump_paths=dump_paths,
        dump_bytes=dump_bytes,
        extra={"hit_ratio": server.page_cache.hit_ratio},
    )


_WORKLOAD_RUNNERS = {
    "tpcw": _run_tpcw_shard,
    "haboob": _run_haboob_shard,
}


def run_one_shard(spec: ShardSpec) -> ShardResult:
    """Execute one shard, isolated from the caller's telemetry state."""
    previous = _telemetry.ACTIVE
    tele = None
    try:
        if spec.telemetry_mode != "off":
            tele = _telemetry.install(spec.telemetry_mode)
        else:
            _telemetry.ACTIVE = None
        result = _WORKLOAD_RUNNERS[spec.workload](spec)
        result.span_count, result.metrics = _collect_telemetry(tele)
        return result
    finally:
        _telemetry.ACTIVE = previous


# ----------------------------------------------------------------------
# The sharded run
# ----------------------------------------------------------------------
class ShardedRun:
    """Merged view over the results of one sharded execution."""

    def __init__(self, plan: ShardPlan, results: List[ShardResult],
                 wall_seconds: float, jobs: int):
        self.plan = plan
        self.results = results
        self.wall_seconds = wall_seconds
        self.jobs = jobs

    # -- merged measurements -------------------------------------------
    def throughput(self) -> float:
        return sum(result.throughput for result in self.results)

    def served(self) -> int:
        return sum(result.served for result in self.results)

    def mean_response(self, interaction: Optional[str] = None) -> float:
        count = 0
        total = 0.0
        for result in self.results:
            for name, (n, resp_sum) in result.interactions.items():
                if interaction is None or name == interaction:
                    count += n
                    total += resp_sum
        return total / count if count else 0.0

    def interaction_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.results:
            for name, (n, _) in result.interactions.items():
                counts[name] = counts.get(name, 0) + n
        return counts

    def db_cpu_share(self) -> Dict[str, float]:
        weights: Dict[str, float] = {}
        for result in self.results:
            for name, weight in result.db_cpu_weights.items():
                weights[name] = weights.get(name, 0.0) + weight
        total = sum(weights.values())
        if total == 0:
            return {}
        return {name: 100.0 * w / total for name, w in weights.items()}

    def crosstalk_wait_ms(self) -> Dict[str, float]:
        merged: Dict[str, List[float]] = {}
        for result in self.results:
            for name, (count, wait) in result.crosstalk.items():
                cell = merged.setdefault(name, [0, 0.0])
                cell[0] += count
                cell[1] += wait
        return {
            name: 1000.0 * wait / count
            for name, (count, wait) in merged.items()
            if count
        }

    def merged_metrics(self):
        """One registry holding every shard's telemetry metrics."""
        from repro.telemetry.metrics import MetricsRegistry

        registry = MetricsRegistry()
        for result in self.results:
            registry.absorb(result.metrics)
        return registry

    def span_count(self) -> int:
        return sum(result.span_count for result in self.results)

    def dump_bytes(self) -> int:
        return sum(result.dump_bytes for result in self.results)

    def dump_groups(self) -> List[List[str]]:
        """Per-shard dump path groups, in shard order (stitch input)."""
        return [list(result.dump_paths) for result in self.results]

    # -- presentation phase --------------------------------------------
    def stitch(self, jobs: int = 1, strict: bool = True):
        """Map-reduce the spooled dumps into one merged profile."""
        from repro.parallel.stitching import parallel_stitch

        return parallel_stitch(self.dump_groups(), jobs=jobs, strict=strict)


def _write_manifest(plan: ShardPlan, results: List[ShardResult]) -> Optional[str]:
    spool = plan.specs[0].spool_dir if plan.specs else ""
    if not spool:
        return None
    manifest = {
        "workload": plan.workload,
        "seed": plan.seed,
        "clients": plan.clients,
        "shards": plan.shards,
        "duration": plan.duration,
        "warmup": plan.warmup,
        "profile_format": plan.specs[0].profile_format,
        "groups": [
            {
                "index": result.index,
                "seed": result.seed,
                "clients": result.clients,
                "files": [os.path.basename(p) for p in result.dump_paths],
                "dir": f"shard-{result.index:04d}",
            }
            for result in results
        ],
    }
    path = os.path.join(spool, MANIFEST_NAME)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    return path


def run_shards(plan: ShardPlan, jobs: int = 1) -> ShardedRun:
    """Execute every shard of ``plan`` with up to ``jobs`` processes.

    ``jobs=1`` runs in-process (no pool); results always come back in
    shard-index order either way, so every downstream merge is
    scheduling-independent.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    specs = list(plan.specs)
    for spec in specs:
        if spec.spool_dir:
            os.makedirs(spec.spool_dir, exist_ok=True)
    start = time.perf_counter()
    if jobs == 1 or len(specs) <= 1:
        results = [run_one_shard(spec) for spec in specs]
    else:
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        with context.Pool(processes=min(jobs, len(specs))) as pool:
            # Pool.map preserves input order: results land in shard order
            # no matter which worker finished first.
            results = pool.map(run_one_shard, specs, chunksize=1)
    wall = time.perf_counter() - start
    _write_manifest(plan, results)
    return ShardedRun(plan, results, wall, jobs)
