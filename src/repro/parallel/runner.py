"""Sharded workload execution across a process pool.

Each shard runs a *complete* simulated deployment (every tier, its own
kernel, its own seeded RNG streams) inside one worker process, dumps
its per-stage profiles to a spool directory, and returns a plain-data
:class:`ShardResult`.  The parent merges results post-hoc — throughput
sums, response-time averages weighted by completions, crosstalk totals,
telemetry metric snapshots — always folding in shard-index order so the
merged view is independent of worker scheduling.

``jobs=1`` runs the shards sequentially in-process through the *same*
code path, which is both the degenerate case and the determinism
baseline: an N-job run must produce byte-identical dumps and merged
output to the 1-job run of the same plan.

Workers snapshot and restore the module-level telemetry switch so a
shard always runs with exactly the telemetry mode its spec names,
independent of whatever the parent process had installed at fork time.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import telemetry as _telemetry
from repro.parallel.shard import ShardPlan, ShardSpec

#: Dump file suffix per profile format.
DUMP_SUFFIX = {"v1": ".profile.json", "v2": ".profile.wdp"}

MANIFEST_NAME = "manifest.json"


@dataclass
class ShardResult:
    """Plain-data summary of one executed shard (picklable)."""

    index: int
    seed: int
    clients: int
    wall_seconds: float
    window: Tuple[float, float]
    served: int
    throughput: float
    interactions: Dict[str, List[float]] = field(default_factory=dict)
    db_cpu_weights: Dict[str, float] = field(default_factory=dict)
    crosstalk: Dict[str, List[float]] = field(default_factory=dict)
    comm: Tuple[int, int] = (0, 0)
    dump_paths: List[str] = field(default_factory=list)
    dump_bytes: int = 0
    span_count: int = 0
    metrics: List[Dict[str, Any]] = field(default_factory=list)
    extra: Dict[str, Any] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Worker functions (top-level: must pickle across the process pool)
# ----------------------------------------------------------------------
def _dump_stages(spec: ShardSpec, stages_by_name) -> Tuple[List[str], int]:
    """Spool the shard's per-stage dumps; returns (paths, total bytes)."""
    if not spec.spool_dir:
        return [], 0
    from repro.core.persist import save_stage

    shard_dir = os.path.join(spec.spool_dir, f"shard-{spec.index:04d}")
    os.makedirs(shard_dir, exist_ok=True)
    suffix = DUMP_SUFFIX[spec.profile_format]
    paths: List[str] = []
    total = 0
    for name, stage in stages_by_name.items():
        path = os.path.join(shard_dir, f"{name}{suffix}")
        save_stage(stage, path, profile_format=spec.profile_format)
        paths.append(path)
        total += os.path.getsize(path)
    return paths, total


def _collect_telemetry(tele) -> Tuple[int, List[Dict[str, Any]]]:
    if tele is None:
        return 0, []
    metrics = tele.metrics.snapshot() if tele.wants_metrics else []
    return len(tele.spans.spans), metrics


def _run_tpcw_shard(spec: ShardSpec) -> ShardResult:
    from repro.apps.db.locks import INNODB, MYISAM
    from repro.apps.tpcw import TpcwSystem
    from repro.channels.rpc import RetryPolicy

    params = spec.params
    retry = None
    if params.get("fault_plan") and params.get("retries", 0) > 0:
        retry = RetryPolicy(
            timeout=params.get("retry_timeout", 0.25),
            retries=params["retries"],
        )
    start = time.perf_counter()
    system = TpcwSystem(
        clients=spec.clients,
        caching=params.get("caching", False),
        item_engine=INNODB if params.get("innodb") else MYISAM,
        seed=spec.seed,
        mix=params.get("mix", "browsing"),
        think_mean=params.get("think_mean", 7.0),
        db_connections=params.get("db_connections", 24),
        fault_plan=params.get("fault_plan"),
        fault_seed=params.get("fault_seed", 0) + spec.index,
        retry=retry,
    )
    results = system.run(duration=spec.duration, warmup=spec.warmup)
    wall = time.perf_counter() - start

    interactions: Dict[str, List[float]] = {}
    for tx_type, tx_start, tx_end in results.log.records:
        cell = interactions.setdefault(tx_type, [0, 0.0])
        cell[0] += 1
        cell[1] += tx_end - tx_start
    crosstalk = {
        name: [cell[0], system.db.crosstalk.total_wait_of(name)]
        for name, cell in interactions.items()
    }
    comm = results.comm_overhead()
    dump_paths, dump_bytes = _dump_stages(spec, system.stages_by_name)
    return ShardResult(
        index=spec.index,
        seed=spec.seed,
        clients=spec.clients,
        wall_seconds=wall,
        window=(results.window_start, results.window_end),
        served=results.log.completions_in(
            results.window_start, results.window_end
        ),
        throughput=results.throughput_tpm(),
        interactions=interactions,
        db_cpu_weights=results.db_cpu_weights(),
        crosstalk=crosstalk,
        comm=(comm["data_bytes"], comm["context_bytes"]),
        dump_paths=dump_paths,
        dump_bytes=dump_bytes,
        extra={
            "db_utilization": system.db.cpu.utilization(),
            "stitch_completeness": (
                results.stitch_completeness()
                if system.faults is not None
                else 1.0
            ),
        },
    )


def _run_haboob_shard(spec: ShardSpec) -> ShardResult:
    from repro.apps.haboob import HaboobConfig, HaboobServer
    from repro.sim import Kernel, Rng
    from repro.workloads import HttpClientPool, WebTrace

    params = spec.params
    start = time.perf_counter()
    kernel = Kernel()
    trace = WebTrace(Rng(spec.seed), objects=params.get("objects", 2000))
    server = HaboobServer(
        kernel,
        trace,
        config=HaboobConfig(
            cache_bytes=params.get("cache_kb", 512) * 1024
        ),
    )
    server.start()
    HttpClientPool(
        kernel, server.listener, trace, clients=spec.clients
    ).start()
    kernel.run(until=spec.duration)
    wall = time.perf_counter() - start
    dump_paths, dump_bytes = _dump_stages(spec, server.stages_by_name)
    return ShardResult(
        index=spec.index,
        seed=spec.seed,
        clients=spec.clients,
        wall_seconds=wall,
        window=(0.0, spec.duration),
        served=server.responses_sent,
        throughput=server.throughput_mbps(),
        comm=(server.stage_runtime.comm_data_bytes,
              server.stage_runtime.comm_context_bytes),
        dump_paths=dump_paths,
        dump_bytes=dump_bytes,
        extra={"hit_ratio": server.page_cache.hit_ratio},
    )


def _run_openloop_shard(spec: ShardSpec) -> ShardResult:
    """One slice of an open-loop population against its own Haboob tier.

    ``spec.clients`` is this shard's *session budget* (its slice of the
    simulated-client population); the arrival rate in
    ``params["arrival_rate"]`` is the population-wide rate, scaled here
    by the shard's share of the population, so N shards jointly emit
    the planned non-homogeneous Poisson process.  Per-transaction logs
    stay off by default (``params["record_log"]``) — a million-session
    shard returns O(1) aggregates, not a million log records.
    """
    from repro.apps.haboob import HaboobConfig, HaboobServer
    from repro.sim import Kernel, Rng
    from repro.workloads import OpenLoopClientPool, WebTrace
    from repro.workloads.openloop import RateCurve, ThinkTime

    params = spec.params
    total_clients = params.get("total_clients") or spec.clients * spec.shards
    share = spec.clients / total_clients if total_clients else 1.0
    base_rate = params.get("arrival_rate", 100.0) * share
    curve = None
    if params.get("diurnal_amplitude") or params.get("flash_crowds"):
        curve = RateCurve(
            base_rate=base_rate,
            diurnal_amplitude=params.get("diurnal_amplitude", 0.0),
            diurnal_period=params.get("diurnal_period", 86400.0),
            flash_crowds=tuple(
                tuple(crowd) for crowd in params.get("flash_crowds", ())
            ),
        )
    think = None
    if params.get("think"):
        think = ThinkTime(**params["think"])

    start = time.perf_counter()
    kernel = Kernel()
    trace = WebTrace(Rng(spec.seed), objects=params.get("objects", 2000))
    server = HaboobServer(
        kernel,
        trace,
        config=HaboobConfig(cache_bytes=params.get("cache_kb", 512) * 1024),
    )
    server.start()
    pool = OpenLoopClientPool(
        kernel,
        server.listener,
        trace,
        arrival_rate=base_rate,
        rng=Rng(spec.seed).stream("openloop"),
        rate_curve=curve,
        think=think,
        max_sessions=spec.clients,
        record_log=params.get("record_log", False),
    )
    pool.start()
    kernel.run(until=spec.duration)
    wall = time.perf_counter() - start
    dump_paths, dump_bytes = _dump_stages(spec, server.stages_by_name)
    return ShardResult(
        index=spec.index,
        seed=spec.seed,
        clients=spec.clients,
        wall_seconds=wall,
        window=(0.0, spec.duration),
        served=server.responses_sent,
        throughput=server.throughput_mbps(),
        interactions={
            "GET": [pool.completed_requests, pool.response_sum]
        },
        comm=(server.stage_runtime.comm_data_bytes,
              server.stage_runtime.comm_context_bytes),
        dump_paths=dump_paths,
        dump_bytes=dump_bytes,
        extra={
            "hit_ratio": server.page_cache.hit_ratio,
            "sessions_started": pool.sessions_started,
            "sessions_finished": pool.sessions_finished,
            "offered_rate": base_rate,
            "mean_response": pool.mean_response(),
        },
    )


_WORKLOAD_RUNNERS = {
    "tpcw": _run_tpcw_shard,
    "haboob": _run_haboob_shard,
    "openloop": _run_openloop_shard,
}


def run_one_shard(spec: ShardSpec) -> ShardResult:
    """Execute one shard, isolated from the caller's telemetry state.

    A spec with ``live_dir`` set attaches an online streaming stitcher
    (:mod:`repro.live`) before the system is built — upgrading a
    telemetry mode of ``off`` to ``spans``, since the collector rides
    the profile-event stream — and finalizes it (drain + last
    checkpoint) into ``live_dir/shard-NNNN/`` when the shard ends, so
    the parent (or ``live-report``) can fold the per-shard state.
    """
    previous = _telemetry.ACTIVE
    tele = None
    collector = None
    try:
        mode = spec.telemetry_mode
        if mode == "off" and spec.live_dir:
            mode = "spans"
        if mode != "off":
            tele = _telemetry.install(mode)
        else:
            _telemetry.ACTIVE = None
        if spec.live_dir:
            from repro.live import attach_collector

            shard_live = os.path.join(
                spec.live_dir, f"shard-{spec.index:04d}"
            )
            collector = attach_collector(
                tele,
                directory=shard_live,
                interval=spec.live_interval,
                max_resident=spec.live_resident or None,
            )
        result = _WORKLOAD_RUNNERS[spec.workload](spec)
        result.span_count, result.metrics = _collect_telemetry(tele)
        if collector is not None:
            collector.finalize()
            result.extra["live"] = {
                "dir": collector.directory,
                "samples": collector.samples,
                "events": collector.events_absorbed,
                "peak_resident": collector.peak_resident,
                "evictions": collector.evictions,
                "sink_errors": tele.sink_errors,
            }
        return result
    finally:
        if tele is not None:
            tele.close()
        _telemetry.ACTIVE = previous


# ----------------------------------------------------------------------
# The sharded run
# ----------------------------------------------------------------------
class ShardedRun:
    """Merged view over the results of one sharded execution."""

    def __init__(self, plan: ShardPlan, results: List[ShardResult],
                 wall_seconds: float, jobs: int):
        self.plan = plan
        self.results = results
        self.wall_seconds = wall_seconds
        self.jobs = jobs

    # -- merged measurements -------------------------------------------
    def throughput(self) -> float:
        return sum(result.throughput for result in self.results)

    def served(self) -> int:
        return sum(result.served for result in self.results)

    def sessions_started(self) -> int:
        """Total simulated clients spawned (open-loop runs)."""
        return sum(
            result.extra.get("sessions_started", 0)
            for result in self.results
        )

    def sessions_finished(self) -> int:
        return sum(
            result.extra.get("sessions_finished", 0)
            for result in self.results
        )

    def mean_response(self, interaction: Optional[str] = None) -> float:
        count = 0
        total = 0.0
        for result in self.results:
            for name, (n, resp_sum) in result.interactions.items():
                if interaction is None or name == interaction:
                    count += n
                    total += resp_sum
        return total / count if count else 0.0

    def interaction_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.results:
            for name, (n, _) in result.interactions.items():
                counts[name] = counts.get(name, 0) + n
        return counts

    def db_cpu_share(self) -> Dict[str, float]:
        weights: Dict[str, float] = {}
        for result in self.results:
            for name, weight in result.db_cpu_weights.items():
                weights[name] = weights.get(name, 0.0) + weight
        total = sum(weights.values())
        if total == 0:
            return {}
        return {name: 100.0 * w / total for name, w in weights.items()}

    def crosstalk_wait_ms(self) -> Dict[str, float]:
        merged: Dict[str, List[float]] = {}
        for result in self.results:
            for name, (count, wait) in result.crosstalk.items():
                cell = merged.setdefault(name, [0, 0.0])
                cell[0] += count
                cell[1] += wait
        return {
            name: 1000.0 * wait / count
            for name, (count, wait) in merged.items()
            if count
        }

    def merged_metrics(self):
        """One registry holding every shard's telemetry metrics."""
        from repro.telemetry.metrics import MetricsRegistry

        registry = MetricsRegistry()
        for result in self.results:
            registry.absorb(result.metrics)
        return registry

    def span_count(self) -> int:
        return sum(result.span_count for result in self.results)

    def dump_bytes(self) -> int:
        return sum(result.dump_bytes for result in self.results)

    def dump_groups(self) -> List[List[str]]:
        """Per-shard dump path groups, in shard order (stitch input)."""
        return [list(result.dump_paths) for result in self.results]

    def shard_walls(self) -> List[float]:
        """Per-shard wall seconds, in shard order."""
        return [result.wall_seconds for result in self.results]

    def wall_skew(self) -> float:
        """Straggler factor: slowest shard wall over mean shard wall.

        1.0 means perfectly even shards; the gap between this and the
        observed speedup is what work stealing recovers versus static
        chunking (a straggler delays only itself, never a chunk-mate).
        """
        walls = self.shard_walls()
        if not walls:
            return 1.0
        mean = sum(walls) / len(walls)
        return max(walls) / mean if mean else 1.0

    # -- presentation phase --------------------------------------------
    def stitch(self, jobs: int = 1, strict: bool = True,
               group_size: Optional[int] = None, stats=None):
        """Map-reduce the spooled dumps into one merged profile.

        ``group_size=None`` is the flat reduce; any integer (0 for the
        ≈√N default) uses the hierarchical shard→group→global tree.
        Output bytes are identical either way.
        """
        if group_size is None:
            from repro.parallel.stitching import parallel_stitch

            return parallel_stitch(
                self.dump_groups(), jobs=jobs, strict=strict
            )
        from repro.parallel.reduce import hierarchical_stitch

        return hierarchical_stitch(
            self.dump_groups(), jobs=jobs, group_size=group_size,
            strict=strict, stats=stats,
        )


def _write_manifest(plan: ShardPlan, results: List[ShardResult]) -> Optional[str]:
    spool = plan.specs[0].spool_dir if plan.specs else ""
    if not spool:
        return None
    manifest = {
        "workload": plan.workload,
        "seed": plan.seed,
        "clients": plan.clients,
        "shards": plan.shards,
        "duration": plan.duration,
        "warmup": plan.warmup,
        "profile_format": plan.specs[0].profile_format,
        "groups": [
            {
                "index": result.index,
                "seed": result.seed,
                "clients": result.clients,
                "files": [os.path.basename(p) for p in result.dump_paths],
                "dir": f"shard-{result.index:04d}",
            }
            for result in results
        ],
    }
    path = os.path.join(spool, MANIFEST_NAME)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    return path


def run_shards(
    plan: ShardPlan,
    jobs: int = 1,
    submit_order: Optional[List[int]] = None,
    pool=None,
) -> ShardedRun:
    """Execute every shard of ``plan`` with up to ``jobs`` workers.

    ``jobs=1`` runs in-process (no pool); otherwise shards go onto the
    shared work-stealing pool (persistent across runs — startup cost is
    paid once per session).  Results always come back in shard-index
    order regardless of which worker stole which task, so every
    downstream merge is scheduling-independent; ``submit_order``
    permutes only the steal order (the determinism tests randomise it).
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    specs = list(plan.specs)
    for spec in specs:
        if spec.spool_dir:
            os.makedirs(spec.spool_dir, exist_ok=True)
    start = time.perf_counter()
    if pool is None and jobs > 1 and len(specs) > 1:
        from repro.parallel.scheduler import get_pool

        pool = get_pool(jobs)
    if pool is None or len(specs) <= 1:
        results = [run_one_shard(spec) for spec in specs]
    else:
        results = pool.run(run_one_shard, specs, submit_order=submit_order)
    wall = time.perf_counter() - start
    _write_manifest(plan, results)
    return ShardedRun(plan, results, wall, jobs)
