"""A persistent, work-stealing process pool for shard execution.

The original scale-out runner created a fresh ``multiprocessing.Pool``
per run and carved the shard list into static ``map`` chunks.  That
shape loses twice at cluster scale: pool startup (fork/exec plus module
imports under spawn) is paid on *every* run, and a straggler shard
serialises its whole chunk behind it.

:class:`WorkStealingPool` fixes both.  Workers are long-lived processes
started once per session; every task goes onto one shared queue, and an
idle worker *steals* the next task the moment it finishes its previous
one — so an unlucky shard delays only itself, never a statically
assigned neighbour.  Results carry their task index and the parent
folds them **in index order**, which keeps every downstream merge a
pure function of the plan no matter which worker finished first (the
determinism tests randomise the submission order on purpose).

Start-method safety: tasks are ``(index, function, payload)`` tuples
where the function is a *top-level importable* — pickled by reference,
so the pool works identically under ``fork``, ``forkserver`` and
``spawn``.  The default prefers ``fork`` where the platform offers it
(cheapest startup); tests exercise ``spawn`` explicitly.

Use :func:`get_pool` for the shared session pool (created on first use,
reused by the shard runner *and* the reduce phase, closed at interpreter
exit) or instantiate :class:`WorkStealingPool` directly for an isolated
one.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import queue
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


class WorkerError(RuntimeError):
    """A task raised inside a worker; carries the remote traceback."""

    def __init__(self, index: int, message: str, remote_traceback: str):
        super().__init__(
            f"task {index} failed in worker: {message}\n{remote_traceback}"
        )
        self.index = index
        self.remote_traceback = remote_traceback


def _worker_main(task_queue, result_queue) -> None:
    """Worker loop: steal the next task, run it, post the result.

    Top-level (not a closure) so the function reference pickles under
    every start method.  ``None`` is the shutdown sentinel.
    """
    while True:
        task = task_queue.get()
        if task is None:
            return
        index, fn, payload = task
        try:
            result_queue.put((index, True, fn(payload)))
        except BaseException as exc:  # noqa: BLE001 - must cross the pipe
            result_queue.put(
                (index, False, (repr(exc), traceback.format_exc()))
            )


def default_start_method() -> str:
    """``fork`` where the platform has it, else the platform default."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else multiprocessing.get_start_method()


class WorkStealingPool:
    """Long-lived worker processes pulling tasks from one shared queue."""

    def __init__(self, workers: int, start_method: Optional[str] = None):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.start_method = start_method or default_start_method()
        self._context = multiprocessing.get_context(self.start_method)
        self.workers = workers
        self._tasks = self._context.Queue()
        self._results = self._context.Queue()
        self._processes = [
            self._context.Process(
                target=_worker_main,
                args=(self._tasks, self._results),
                name=f"whodunit-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for process in self._processes:
            process.start()
        self._closed = False

    # ------------------------------------------------------------------
    def worker_pids(self) -> List[int]:
        """Live worker PIDs (stable across runs — the reuse proof)."""
        return [p.pid for p in self._processes if p.pid is not None]

    def alive(self) -> bool:
        return not self._closed and all(p.is_alive() for p in self._processes)

    # ------------------------------------------------------------------
    def run(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        submit_order: Optional[Sequence[int]] = None,
    ) -> List[Any]:
        """Execute ``fn`` over ``items``; results come back in item order.

        ``submit_order`` permutes only the order tasks enter the shared
        queue (and therefore the steal order) — the returned list is
        always indexed like ``items``.  The determinism tests drive this
        with random permutations to prove scheduling independence.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        items = list(items)
        if not items:
            return []
        order = list(submit_order) if submit_order is not None else range(
            len(items)
        )
        if submit_order is not None and sorted(order) != list(range(len(items))):
            raise ValueError("submit_order must permute range(len(items))")
        for index in order:
            self._tasks.put((index, fn, items[index]))
        results: List[Any] = [None] * len(items)
        failures: List[Tuple[int, str, str]] = []
        pending = len(items)
        while pending:
            try:
                index, ok, payload = self._results.get(timeout=1.0)
            except queue.Empty:
                dead = [p for p in self._processes if not p.is_alive()]
                if dead:
                    self._closed = True
                    raise RuntimeError(
                        f"{len(dead)} worker(s) died with "
                        f"{pending} task(s) outstanding: "
                        + ", ".join(
                            f"{p.name} (exitcode {p.exitcode})" for p in dead
                        )
                    )
                continue
            pending -= 1
            if ok:
                results[index] = payload
            else:
                failures.append((index, payload[0], payload[1]))
        if failures:
            # Lowest task index wins: the raised error is deterministic
            # even when several tasks fail in racing workers.
            index, message, remote = min(failures)
            raise WorkerError(index, message, remote)
        return results

    # ------------------------------------------------------------------
    def close(self, timeout: float = 5.0) -> None:
        """Shut the workers down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._processes:
            try:
                self._tasks.put(None)
            except (ValueError, OSError):  # queue already torn down
                break
        for process in self._processes:
            process.join(timeout=timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._tasks.close()
        self._results.close()

    def __enter__(self) -> "WorkStealingPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# The shared session pool
# ----------------------------------------------------------------------
#: (workers, start_method) -> pool.  One pool per shape, created on
#: first use and reused by every subsequent sharded run and reduce in
#: the session, so startup cost is paid once — not once per run.
_POOLS: Dict[Tuple[int, str], WorkStealingPool] = {}


def get_pool(
    workers: int, start_method: Optional[str] = None
) -> WorkStealingPool:
    """The session's shared pool for ``workers`` (created on first use).

    A pool whose workers died (a task hard-crashed a process) is
    replaced transparently on the next request.
    """
    method = start_method or default_start_method()
    key = (workers, method)
    pool = _POOLS.get(key)
    if pool is not None and pool.alive():
        return pool
    if pool is not None:
        pool.close()
    pool = WorkStealingPool(workers, start_method=method)
    _POOLS[key] = pool
    return pool


def shutdown_pools() -> None:
    """Close every shared pool (tests and interpreter exit)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.close()


atexit.register(shutdown_pools)


def effective_jobs(jobs: Optional[int]) -> int:
    """``jobs`` with 0/None meaning "one per CPU"."""
    if jobs:
        return jobs
    return os.cpu_count() or 1
