"""Open-loop workload generation: Poisson session arrivals.

The paper's client emulators are closed-loop (a fixed number of
emulated browsers).  An open-loop generator is the standard complement
for latency-vs-offered-load studies: sessions arrive at a fixed rate
regardless of how the server is coping, so response times diverge as
the offered load approaches capacity instead of self-throttling.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.channels.message import Message
from repro.channels.socket import Listener, Recv, Send
from repro.sim import Kernel
from repro.sim.process import CurrentThread
from repro.sim.rng import Rng
from repro.workloads.clients import CLOSE, REQUEST_BYTES, TxLog
from repro.workloads.webtrace import WebTrace


class OpenLoopClientPool:
    """Spawns one session thread per Poisson arrival."""

    def __init__(
        self,
        kernel: Kernel,
        listener: Listener,
        trace: WebTrace,
        arrival_rate: float,
        rng: Optional[Rng] = None,
    ):
        if arrival_rate <= 0:
            raise ValueError("arrival rate must be positive")
        self.kernel = kernel
        self.listener = listener
        self.trace = trace
        self.arrival_rate = arrival_rate
        self.rng = rng or Rng(7)
        self.log = TxLog()
        self.bytes_received = 0
        self.sessions_started = 0
        self.sessions_finished = 0

    def start(self) -> None:
        generator = self.kernel.spawn(self._arrivals(), name="openloop-arrivals")
        generator.daemon = True

    def _arrivals(self) -> Iterator:
        yield CurrentThread()
        from repro.sim import Delay

        arrival_rng = self.rng.stream("arrivals")
        while True:
            yield Delay(arrival_rng.expovariate(self.arrival_rate))
            self.sessions_started += 1
            session = self.kernel.spawn(
                self._session(), name=f"session-{self.sessions_started}"
            )
            session.daemon = True

    def _session(self) -> Iterator:
        yield CurrentThread()
        connection = self.listener.connect()
        for obj in self.trace.session():
            start = self.kernel.now
            yield Send(
                connection.to_server,
                Message(("GET", obj.object_id), REQUEST_BYTES),
            )
            response = yield Recv(connection.to_client)
            self.bytes_received += response.size
            self.log.add("GET", start, self.kernel.now)
        yield Send(connection.to_server, Message((CLOSE, -1), 40))
        self.sessions_finished += 1
