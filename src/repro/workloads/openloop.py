"""Open-loop workload generation: Poisson session arrivals.

The paper's client emulators are closed-loop (a fixed number of
emulated browsers).  An open-loop generator is the standard complement
for latency-vs-offered-load studies: sessions arrive at a fixed rate
regardless of how the server is coping, so response times diverge as
the offered load approaches capacity instead of self-throttling.

Beyond the constant-rate Poisson process, the generator models the
shapes production traffic actually has:

- :class:`RateCurve` — a diurnal sinusoid plus :dfn:`flash crowds`
  (windows where the rate is multiplied), sampled with Lewis–Shedler
  thinning so the arrival process is an exact non-homogeneous Poisson
  process at the curve's rate;
- :class:`ThinkTime` — heavy-tailed (Pareto or lognormal) pauses
  between a session's requests, the documented shape of human
  dwell times;
- ``max_sessions`` — a hard session budget, which is how a
  "1,000,000 simulated clients" run is expressed: shard the budget
  deterministically (see ``repro.parallel.shard``) and let every shard
  generate its slice of the population at its slice of the rate;
- ``record_log=False`` — keep only O(1) aggregates instead of a
  per-transaction log, so a million-session shard's result stays small
  enough to ship back through a process pool.

All extensions are draw-for-draw compatible with the legacy constant
rate path: with no curve, no think time and no cap, the RNG consumes
exactly the same stream as before.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.channels.message import Message
from repro.channels.socket import Listener, Recv, Send
from repro.sim import Kernel
from repro.sim.process import CurrentThread
from repro.sim.rng import Rng
from repro.workloads.clients import CLOSE, REQUEST_BYTES, TxLog
from repro.workloads.webtrace import WebTrace


@dataclass(frozen=True)
class RateCurve:
    """A time-varying session arrival rate (sessions/second).

    ``rate(t) = base_rate · (1 + diurnal_amplitude · sin(2πt/period))
    · flash(t)`` where ``flash(t)`` is the largest multiplier of any
    flash-crowd window covering ``t`` (1.0 outside every window).
    Flash crowds are ``(start, duration, multiplier)`` triples in
    simulated seconds.
    """

    base_rate: float
    diurnal_amplitude: float = 0.0
    diurnal_period: float = 86400.0
    flash_crowds: Tuple[Tuple[float, float, float], ...] = ()

    def __post_init__(self):
        if self.base_rate <= 0:
            raise ValueError("base rate must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal amplitude must be in [0, 1)")
        if self.diurnal_period <= 0:
            raise ValueError("diurnal period must be positive")
        for start, duration, multiplier in self.flash_crowds:
            if duration <= 0 or multiplier <= 0:
                raise ValueError(
                    "flash crowds need positive duration and multiplier"
                )

    def flash_multiplier(self, t: float) -> float:
        multiplier = 1.0
        for start, duration, factor in self.flash_crowds:
            if start <= t < start + duration:
                multiplier = max(multiplier, factor)
        return multiplier

    def rate(self, t: float) -> float:
        diurnal = 1.0 + self.diurnal_amplitude * math.sin(
            2.0 * math.pi * t / self.diurnal_period
        )
        return self.base_rate * diurnal * self.flash_multiplier(t)

    def peak_rate(self) -> float:
        """An upper bound on ``rate(t)`` — the thinning envelope."""
        peak_flash = max(
            [1.0] + [factor for _, _, factor in self.flash_crowds]
        )
        return self.base_rate * (1.0 + self.diurnal_amplitude) * peak_flash

    def scaled(self, fraction: float) -> "RateCurve":
        """The same shape at ``fraction`` of the rate (shard slicing)."""
        return RateCurve(
            base_rate=self.base_rate * fraction,
            diurnal_amplitude=self.diurnal_amplitude,
            diurnal_period=self.diurnal_period,
            flash_crowds=self.flash_crowds,
        )


@dataclass(frozen=True)
class ThinkTime:
    """Per-request dwell-time distribution inside a session.

    ``none`` draws nothing (legacy back-to-back requests);
    ``exponential`` is the classic memoryless pause; ``pareto`` and
    ``lognormal`` are the heavy-tailed shapes measured for human think
    times — a few sessions pause for a very long time, which is exactly
    the straggler behaviour the work-stealing scheduler absorbs.
    """

    distribution: str = "none"
    mean: float = 1.0
    alpha: float = 1.5
    minimum: float = 0.1
    mu: float = 0.0
    sigma: float = 1.0

    _DISTRIBUTIONS = ("none", "exponential", "pareto", "lognormal")

    def __post_init__(self):
        if self.distribution not in self._DISTRIBUTIONS:
            raise ValueError(
                f"unknown think-time distribution {self.distribution!r};"
                f" one of {self._DISTRIBUTIONS}"
            )

    def sample(self, rng: Rng) -> float:
        if self.distribution == "exponential":
            return rng.expovariate(1.0 / self.mean)
        if self.distribution == "pareto":
            # Inverse-CDF Pareto: minimum · u^(-1/alpha), heavy-tailed
            # for alpha <= 2 (infinite variance below 2).
            return self.minimum * rng.random() ** (-1.0 / self.alpha)
        if self.distribution == "lognormal":
            return rng.lognormal(self.mu, self.sigma)
        return 0.0


class OpenLoopClientPool:
    """Spawns one session thread per (possibly non-homogeneous) Poisson
    arrival."""

    def __init__(
        self,
        kernel: Kernel,
        listener: Listener,
        trace: WebTrace,
        arrival_rate: Optional[float] = None,
        rng: Optional[Rng] = None,
        rate_curve: Optional[RateCurve] = None,
        think: Optional[ThinkTime] = None,
        max_sessions: Optional[int] = None,
        record_log: bool = True,
    ):
        if rate_curve is not None:
            arrival_rate = rate_curve.base_rate
        if arrival_rate is None or arrival_rate <= 0:
            raise ValueError("arrival rate must be positive")
        self.kernel = kernel
        self.listener = listener
        self.trace = trace
        self.arrival_rate = arrival_rate
        self.rate_curve = rate_curve
        self.think = think if think and think.distribution != "none" else None
        self.max_sessions = max_sessions
        self.record_log = record_log
        self.rng = rng or Rng(7)
        self.log = TxLog()
        self.bytes_received = 0
        self.sessions_started = 0
        self.sessions_finished = 0
        #: O(1) aggregates kept even when the per-transaction log is off.
        self.completed_requests = 0
        self.response_sum = 0.0
        self._think_rng = (
            self.rng.stream("think") if self.think is not None else None
        )

    def start(self) -> None:
        generator = self.kernel.spawn(self._arrivals(), name="openloop-arrivals")
        generator.daemon = True

    def mean_response(self) -> float:
        if not self.completed_requests:
            return 0.0
        return self.response_sum / self.completed_requests

    def _budget_left(self) -> bool:
        return (
            self.max_sessions is None
            or self.sessions_started < self.max_sessions
        )

    def _spawn_session(self) -> None:
        self.sessions_started += 1
        session = self.kernel.spawn(
            self._session(), name=f"session-{self.sessions_started}"
        )
        session.daemon = True

    def _arrivals(self) -> Iterator:
        yield CurrentThread()
        from repro.sim import Delay

        arrival_rng = self.rng.stream("arrivals")
        curve = self.rate_curve
        if curve is None:
            # Homogeneous Poisson — draw-for-draw the legacy stream.
            while self._budget_left():
                yield Delay(arrival_rng.expovariate(self.arrival_rate))
                self._spawn_session()
            return
        # Non-homogeneous Poisson via Lewis–Shedler thinning: draw
        # candidate arrivals at the peak rate, accept each with
        # probability rate(t)/peak.  The accepted process is exactly
        # Poisson at rate(t).
        peak = curve.peak_rate()
        while self._budget_left():
            yield Delay(arrival_rng.expovariate(peak))
            if arrival_rng.random() * peak <= curve.rate(self.kernel.now):
                self._spawn_session()

    def _session(self) -> Iterator:
        yield CurrentThread()
        from repro.sim import Delay

        connection = self.listener.connect()
        for obj in self.trace.session():
            start = self.kernel.now
            yield Send(
                connection.to_server,
                Message(("GET", obj.object_id), REQUEST_BYTES),
            )
            response = yield Recv(connection.to_client)
            self.bytes_received += response.size
            self.completed_requests += 1
            self.response_sum += self.kernel.now - start
            if self.record_log:
                self.log.add("GET", start, self.kernel.now)
            if self.think is not None:
                pause = self.think.sample(self._think_rng)
                if pause > 0:
                    yield Delay(pause)
        yield Send(connection.to_server, Message((CLOSE, -1), 40))
        self.sessions_finished += 1
