"""Closed-loop HTTP client emulators and transaction logging.

The client emulator drives any server exposing a
:class:`~repro.channels.socket.Listener`: each client connects, issues a
few requests per connection (per the trace), reads responses, closes,
optionally thinks, and reconnects — the paper's §9.2 workload.  Clients
are *stageless* (no profiler) since the paper never profiles the client
machines.

:class:`TxLog` records per-transaction completions for throughput and
response-time reporting (Figures 11 and 12).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.channels.message import Message
from repro.channels.socket import Listener, Recv, Send
from repro.sim import Delay, Kernel
from repro.sim.process import CurrentThread
from repro.sim.rng import Rng
from repro.workloads.webtrace import WebTrace

REQUEST_BYTES = 300  # typical GET header size
CLOSE = "close"


class TxLog:
    """Per-transaction completion records with reporting helpers."""

    def __init__(self):
        self.records: List[Tuple[Any, float, float]] = []

    def add(self, tx_type: Any, start: float, end: float) -> None:
        if end < start:
            raise ValueError("transaction ends before it starts")
        self.records.append((tx_type, start, end))

    # ------------------------------------------------------------------
    def count(self, tx_type: Any = None) -> int:
        if tx_type is None:
            return len(self.records)
        return sum(1 for t, _, _ in self.records if t == tx_type)

    def mean_response(self, tx_type: Any = None) -> float:
        latencies = [
            end - start
            for t, start, end in self.records
            if tx_type is None or t == tx_type
        ]
        return sum(latencies) / len(latencies) if latencies else 0.0

    def percentile_response(self, q: float, tx_type: Any = None) -> float:
        latencies = sorted(
            end - start
            for t, start, end in self.records
            if tx_type is None or t == tx_type
        )
        if not latencies:
            return 0.0
        index = min(len(latencies) - 1, int(q * len(latencies)))
        return latencies[index]

    def throughput(self, window_start: float, window_end: float) -> float:
        """Completions per second inside a measurement window."""
        if window_end <= window_start:
            return 0.0
        completed = sum(
            1 for _, _, end in self.records if window_start <= end <= window_end
        )
        return completed / (window_end - window_start)

    def completions_in(self, window_start: float, window_end: float, tx_type: Any = None) -> int:
        return sum(
            1
            for t, _, end in self.records
            if window_start <= end <= window_end
            and (tx_type is None or t == tx_type)
        )

    def types(self) -> List[Any]:
        return sorted({t for t, _, _ in self.records}, key=repr)


class HttpClientPool:
    """A pool of closed-loop clients replaying a web trace.

    Each client loops: connect → request/response × connection length →
    close → think.  Response payloads are echoed object ids; byte counts
    come from the trace's object sizes.
    """

    def __init__(
        self,
        kernel: Kernel,
        listener: Listener,
        trace: WebTrace,
        clients: int = 8,
        think_mean: float = 0.0,
        rng: Optional[Rng] = None,
        reconnect_delay: float = 50e-6,
    ):
        if reconnect_delay <= 0:
            # A zero-cost reconnect against a zero-latency server would
            # let a thinkless client loop forever without advancing
            # virtual time; the TCP setup delay also happens to be real.
            raise ValueError("reconnect_delay must be positive")
        self.kernel = kernel
        self.listener = listener
        self.trace = trace
        self.clients = clients
        self.think_mean = think_mean
        self.rng = rng or Rng(1)
        self.reconnect_delay = reconnect_delay
        self.log = TxLog()
        self.bytes_received = 0
        self.errors = 0
        # Object ids in request order (determinism/functional checks).
        self.requested: List[int] = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        for i in range(self.clients):
            thread = self.kernel.spawn(self._client_loop(i), name=f"client-{i}")
            thread.daemon = True

    def _client_loop(self, index: int) -> Iterator:
        yield CurrentThread()
        think_rng = self.rng.stream(f"think-{index}")
        # Desynchronise client start-up.
        yield Delay(think_rng.random() * 0.05)
        while True:
            yield Delay(self.reconnect_delay)  # TCP connection setup
            connection = self.listener.connect()
            for obj in self.trace.session():
                start = self.kernel.now
                self.requested.append(obj.object_id)
                yield Send(
                    connection.to_server,
                    Message(("GET", obj.object_id), REQUEST_BYTES),
                )
                response = yield Recv(connection.to_client)
                self.bytes_received += response.size
                self.log.add("GET", start, self.kernel.now)
            yield Send(connection.to_server, Message((CLOSE, -1), 40))
            if self.think_mean > 0:
                yield Delay(think_rng.expovariate(1.0 / self.think_mean))
