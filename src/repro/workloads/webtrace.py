"""Synthetic web trace modeled on the paper's Rice CS departmental trace.

The paper replays a trace collected at Rice's CS web server against
Apache, Squid and Haboob.  We do not have that trace; what the
evaluation relies on is only that it exercises the accept/read/write
paths with realistic object popularity (for cache hit/miss splits), a
heavy-tailed size distribution, and a mix of connection reuse (so that
new connections keep arriving and the shared-memory queue keeps being
exercised, §9.2).  A seeded Zipf-popularity, bounded-Pareto-size trace
reproduces exactly those properties.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.sim.rng import Rng


class WebObject:
    """One static web object."""

    __slots__ = ("object_id", "size")

    def __init__(self, object_id: int, size: int):
        self.object_id = object_id
        self.size = size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WebObject {self.object_id} {self.size}B>"


class WebTrace:
    """A reproducible synthetic web workload.

    Parameters
    ----------
    rng:
        Seeded random stream; the same seed yields the same trace.
    objects:
        Corpus size.
    zipf_alpha:
        Popularity skew (1.0 ≈ classic web traces).
    size_alpha, min_size, max_size:
        Bounded-Pareto body size distribution.
    requests_per_connection_mean:
        Geometric mean of HTTP requests issued per connection; the
        paper's §9.2 workload "open[s] new connections, send[s] a few
        HTTP requests over them, close[s] the connections".
    """

    def __init__(
        self,
        rng: Rng,
        objects: int = 2000,
        zipf_alpha: float = 1.0,
        size_alpha: float = 1.3,
        min_size: int = 512,
        max_size: int = 512 * 1024,
        requests_per_connection_mean: float = 5.0,
    ):
        self.rng = rng
        self.size_rng = rng.stream("sizes")
        self.pick_rng = rng.stream("popularity")
        self.conn_rng = rng.stream("connections")
        self.objects: List[WebObject] = [
            WebObject(i, int(self.size_rng.bounded_pareto(size_alpha, min_size, max_size)))
            for i in range(objects)
        ]
        self._zipf = self.pick_rng.zipf_table(objects, zipf_alpha)
        self.requests_per_connection_mean = requests_per_connection_mean

    # ------------------------------------------------------------------
    def object(self, object_id: int) -> WebObject:
        return self.objects[object_id]

    def size_of(self, object_id: int) -> int:
        return self.objects[object_id].size

    def next_object(self) -> WebObject:
        """Draw an object according to Zipf popularity."""
        return self.objects[self.pick_rng.zipf_pick(self._zipf)]

    def connection_length(self) -> int:
        """Number of requests the next connection will carry (>= 1)."""
        mean = self.requests_per_connection_mean
        if mean <= 1.0:
            return 1
        # Geometric with the requested mean.
        p = 1.0 / mean
        count = 1
        while self.conn_rng.random() > p:
            count += 1
        return count

    def session(self) -> Iterator[WebObject]:
        """Objects requested over one connection."""
        for _ in range(self.connection_length()):
            yield self.next_object()

    def total_corpus_bytes(self) -> int:
        return sum(o.size for o in self.objects)
