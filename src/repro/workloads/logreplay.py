"""Replay real web-server access logs as workloads.

The paper replays a trace collected at Rice CS's web server.  That
trace is not public, so our benchmarks use the synthetic
:class:`~repro.workloads.webtrace.WebTrace`; this module lets a
downstream user who *does* have an access log (Apache/nginx
common/combined log format) replay it instead: the parsed requests
define object identities, sizes and per-connection request runs.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional, Sequence, TextIO, Union

from repro.workloads.webtrace import WebObject

# Common Log Format:
#   host ident user [timestamp] "METHOD /path HTTP/x.y" status bytes ...
_CLF = re.compile(
    r'^(?P<host>\S+)\s+\S+\s+\S+\s+\[[^\]]*\]\s+'
    r'"(?P<method>\S+)\s+(?P<path>\S+)(?:\s+\S+)?"\s+'
    r"(?P<status>\d{3})\s+(?P<size>\d+|-)"
)


class LogRecord:
    """One parsed access-log line."""

    __slots__ = ("host", "method", "path", "status", "size")

    def __init__(self, host: str, method: str, path: str, status: int, size: int):
        self.host = host
        self.method = method
        self.path = path
        self.status = status
        self.size = size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LogRecord {self.method} {self.path} {self.status} {self.size}B>"


def parse_line(line: str) -> Optional[LogRecord]:
    """Parse one CLF/combined line; None for blank/malformed lines."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    match = _CLF.match(line)
    if match is None:
        return None
    size_text = match.group("size")
    return LogRecord(
        host=match.group("host"),
        method=match.group("method"),
        path=match.group("path"),
        status=int(match.group("status")),
        size=0 if size_text == "-" else int(size_text),
    )


def parse_log(source: Union[str, TextIO, Sequence[str]]) -> List[LogRecord]:
    """Parse a log file (path, file object, or iterable of lines)."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8", errors="replace") as handle:
            lines = handle.readlines()
    elif hasattr(source, "read"):
        lines = source.readlines()
    else:
        lines = list(source)
    records = []
    for line in lines:
        record = parse_line(line)
        if record is not None:
            records.append(record)
    return records


class ReplayTrace:
    """A :class:`WebTrace`-compatible workload built from an access log.

    - Each distinct path becomes one object; its size is the largest
      successful (2xx) transfer observed for it.
    - Requests replay in log order.
    - A *session* groups consecutive requests from the same client host
      (as the trace's persistent connections would), capped at
      ``max_requests_per_connection``.

    Exposes the subset of the WebTrace interface the servers and client
    pools consume: ``objects``, ``size_of``, ``next_object`` and
    ``session``.
    """

    def __init__(
        self,
        records: List[LogRecord],
        max_requests_per_connection: int = 8,
        only_successful: bool = True,
    ):
        if only_successful:
            records = [r for r in records if 200 <= r.status < 300]
        if not records:
            raise ValueError("no usable records in log")
        self.records = records
        self.max_requests_per_connection = max_requests_per_connection
        self._path_ids: Dict[str, int] = {}
        sizes: Dict[int, int] = {}
        self._request_ids: List[int] = []
        for record in records:
            object_id = self._path_ids.setdefault(record.path, len(self._path_ids))
            sizes[object_id] = max(sizes.get(object_id, 0), record.size)
            self._request_ids.append(object_id)
        self.objects = [
            WebObject(object_id, sizes[object_id])
            for object_id in range(len(self._path_ids))
        ]
        self._cursor = 0

    # ------------------------------------------------------------------
    # WebTrace-compatible surface
    # ------------------------------------------------------------------
    def object(self, object_id: int) -> WebObject:
        return self.objects[object_id]

    def size_of(self, object_id: int) -> int:
        return self.objects[object_id].size

    def next_object(self) -> WebObject:
        object_id = self._request_ids[self._cursor % len(self._request_ids)]
        self._cursor += 1
        return self.objects[object_id]

    def connection_length(self) -> int:
        """Length of the session starting at the current cursor."""
        start = self._cursor % len(self._request_ids)
        host = self.records[start].host
        length = 1
        index = start + 1
        while (
            index < len(self.records)
            and self.records[index].host == host
            and length < self.max_requests_per_connection
        ):
            length += 1
            index += 1
        return length

    def session(self) -> Iterator[WebObject]:
        for _ in range(self.connection_length()):
            yield self.next_object()

    def total_corpus_bytes(self) -> int:
        return sum(o.size for o in self.objects)

    @property
    def distinct_objects(self) -> int:
        return len(self.objects)
