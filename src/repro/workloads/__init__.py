"""Workload generation: web traces and closed-loop client emulators."""

from repro.workloads.webtrace import WebObject, WebTrace
from repro.workloads.clients import HttpClientPool, TxLog
from repro.workloads.openloop import OpenLoopClientPool, RateCurve, ThinkTime
from repro.workloads.logreplay import LogRecord, ReplayTrace, parse_log

__all__ = [
    "WebTrace",
    "WebObject",
    "HttpClientPool",
    "OpenLoopClientPool",
    "RateCurve",
    "ThinkTime",
    "TxLog",
    "ReplayTrace",
    "LogRecord",
    "parse_log",
]
