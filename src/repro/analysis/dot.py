"""Graphviz (dot) export of transactional profiles.

The paper presents its profiles as graphs: solid edges for procedure
calls, dashed edges for transaction contexts established by Whodunit,
triangles with CPU percentages (Figures 8–10).  These functions emit
the same structure as ``.dot`` text for rendering with graphviz.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.core.cct import CCTNode
from repro.core.context import TransactionContext
from repro.core.profiler import LOCAL, StageRuntime


def _quote(label: str) -> str:
    return '"' + label.replace('"', r"\"") + '"'


def _context_id(index: int) -> str:
    return f"ctx{index}"


def stage_profile_dot(stage: StageRuntime, min_share: float = 0.5) -> str:
    """One cluster per transaction context; solid call edges inside,

    dashed edges (the paper's flow edges) linking each context cluster
    to its root.
    """
    total = stage.total_weight()
    title = "stage " + stage.name
    if not stage.ccts:
        title += " (empty profile)"
    lines: List[str] = [
        "digraph transactional_profile {",
        "  rankdir=TB;",
        "  node [shape=box, fontsize=10];",
        f"  label={_quote(title)};",
    ]
    if total == 0:
        lines.append("}")
        return "\n".join(lines)

    ordered = sorted(stage.ccts.items(), key=lambda kv: -kv[1].total_weight())
    for index, (label, cct) in enumerate(ordered):
        share = 100.0 * cct.total_weight() / total if total else 0.0
        if share < min_share:
            continue
        cluster = _context_id(index)
        title = "local" if label == LOCAL else " -> ".join(
            e if isinstance(e, str) else repr(e) for e in label.elements
        )
        lines.append(f"  subgraph cluster_{cluster} {{")
        lines.append(f"    label={_quote(f'{title}  ({share:.1f}%)')};")
        lines.append("    style=dashed;")
        lines.extend(_emit_cct(cct.root, cluster, total, min_share))
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def _emit_cct(root: CCTNode, prefix: str, total: float, min_share: float) -> List[str]:
    lines: List[str] = []
    counter = [0]
    ids: Dict[int, str] = {}

    def node_id(node: CCTNode) -> str:
        key = id(node)
        if key not in ids:
            ids[key] = f"{prefix}_n{counter[0]}"
            counter[0] += 1
        return ids[key]

    def emit(node: CCTNode) -> None:
        for name in sorted(node.children):
            child = node.children[name]
            share = 100.0 * child.subtree_weight() / total if total else 0.0
            if share < min_share:
                continue
            label = f"{name}\\n{share:.1f}%"
            lines.append(f"    {node_id(child)} [label={_quote(label)}];")
            if not (node.parent is None and node.name == "<root>"):
                lines.append(f"    {node_id(node)} -> {node_id(child)};")
            emit(child)

    emit(root)
    return lines


def flow_graph_dot(edges: Iterable) -> str:
    """The Fig-7-style cross-stage graph as dot (dashed request edges)."""
    lines = [
        "digraph flow {",
        "  rankdir=LR;",
        "  node [shape=box, fontsize=10];",
    ]
    nodes = {}

    def node_for(stage: str, context: TransactionContext) -> str:
        key = (stage, context)
        if key not in nodes:
            nodes[key] = f"n{len(nodes)}"
            title = " -> ".join(
                e if isinstance(e, str) else repr(e) for e in context.elements
            )
            lines.append(
                f"  {nodes[key]} [label={_quote(stage + chr(10) + title)}];"
            )
        return nodes[key]

    edge_lines = []
    for edge in edges:
        src = node_for(edge.from_stage, edge.from_context)
        dst = node_for(edge.to_stage, edge.to_context)
        edge_lines.append(f"  {src} -> {dst} [style=dashed, label=request];")
    lines.extend(edge_lines)
    lines.append("}")
    return "\n".join(lines)
