"""Self-contained HTML report for ``repro diff --html``.

One file, zero network fetches: styles are inlined, charts are inline
SVG generated here.  The report shows the diff summary with its
confidence banner, per-stage deltas, top regression attribution, a
before/after flamegraph (icicle) pair for each top regressed context,
a crosstalk-delta heatmap, and — when a history document from
``benchmarks/trend.py --history`` is supplied — trend sparklines.
"""

from __future__ import annotations

import html
import json
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.diff import ContextDelta, ProfileDiff
from repro.core.cct import CCTNode

# -- geometry ----------------------------------------------------------
FLAME_WIDTH = 540
FLAME_ROW = 18
FLAME_MAX_DEPTH = 24
SPARK_WIDTH = 180
SPARK_HEIGHT = 36

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial, sans-serif;
       margin: 2em auto; max-width: 72em; color: #1c1e21; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 2em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #d0d4d9; padding: 0.3em 0.7em; text-align: left;
         font-size: 0.9em; }
th { background: #f2f4f6; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.pos { color: #b42318; } .neg { color: #157f3d; }
.banner { padding: 0.6em 1em; border-radius: 4px; margin: 1em 0; }
.banner.high { background: #e6f4ea; border: 1px solid #9fd3ae; }
.banner.low { background: #fdecea; border: 1px solid #f0a9a2; }
.ctx { font-family: ui-monospace, 'SF Mono', Menlo, Consolas, monospace;
       font-size: 0.85em; word-break: break-all; }
.flamepair { display: flex; gap: 1.5em; flex-wrap: wrap; margin: 0.8em 0 1.8em; }
.flamepair figure { margin: 0; }
.flamepair figcaption { font-size: 0.8em; color: #5a6069; margin-bottom: 0.3em; }
svg text { font-size: 10px; font-family: ui-monospace, Menlo, monospace; }
.spark { display: inline-block; margin: 0.4em 1.2em 0.4em 0; }
.spark .name { font-size: 0.75em; color: #5a6069; display: block; }
.muted { color: #5a6069; font-size: 0.85em; }
"""

_FLAME_COLORS = (
    "#e4593b", "#e8783c", "#ec953e", "#f0b040", "#d9822b",
    "#cf5b2e", "#e06a45", "#eb8a50",
)


def _esc(text: str) -> str:
    return html.escape(str(text), quote=True)


def _color_for(name: str) -> str:
    # zlib.crc32, not hash(): str hashing is salted per process and the
    # report must be byte-stable for identical inputs.
    return _FLAME_COLORS[zlib.crc32(name.encode("utf-8")) % len(_FLAME_COLORS)]


def _signed_class(value: float) -> str:
    if value > 0:
        return "pos"
    if value < 0:
        return "neg"
    return ""


# -- flamegraphs -------------------------------------------------------

def flamegraph_svg(
    root: Optional[CCTNode],
    total: float,
    width: int = FLAME_WIDTH,
) -> str:
    """One icicle-layout flamegraph (root at top) as inline SVG.

    ``total`` fixes the x-scale so a before/after pair of the same
    context shares one scale and the growth is visible as extra width.
    """
    if root is None or total <= 0:
        return (
            f'<svg width="{width}" height="{FLAME_ROW}" role="img">'
            f'<text x="4" y="13" fill="#5a6069">(no samples)</text></svg>'
        )

    rects: List[str] = []
    max_depth = [0]

    def layout(node: CCTNode, x: float, depth: int) -> None:
        if depth > FLAME_MAX_DEPTH:
            return
        cursor = x
        for name in sorted(
            node.children, key=lambda n: -node.children[n].subtree_weight()
        ):
            child = node.children[name]
            w = width * child.subtree_weight() / total
            if w < 1.0:
                cursor += w
                continue
            y = depth * FLAME_ROW
            max_depth[0] = max(max_depth[0], depth)
            share = 100.0 * child.subtree_weight() / total
            title = f"{name}: {child.subtree_weight():.3f} ({share:.1f}%)"
            rects.append(
                f'<g><rect x="{cursor:.1f}" y="{y}" width="{w:.1f}" '
                f'height="{FLAME_ROW - 1}" fill="{_color_for(name)}" '
                f'rx="1"><title>{_esc(title)}</title></rect>'
            )
            if w >= 30:
                label = name if len(name) * 6 < w else name[: max(1, int(w / 6) - 1)] + "…"
                rects.append(
                    f'<text x="{cursor + 3:.1f}" y="{y + 13}" '
                    f'fill="#fff">{_esc(label)}</text>'
                )
            rects.append("</g>")
            layout(child, cursor, depth + 1)
            cursor += w

    layout(root, 0.0, 0)
    height = (max_depth[0] + 1) * FLAME_ROW
    return (
        f'<svg width="{width}" height="{height}" role="img">'
        + "".join(rects)
        + "</svg>"
    )


def _flame_pair(diff: ProfileDiff, row: ContextDelta) -> str:
    before_cct = diff.before.profile.entries.get((row.stage, row.context))
    after_cct = diff.after.profile.entries.get((row.stage, row.context))
    # One shared scale: the heavier side fills the full width.
    scale = max(row.before, row.after) or 1.0
    parts = [f'<div class="flamepair">']
    for caption, cct, weight in (
        ("before", before_cct, row.before),
        ("after", after_cct, row.after),
    ):
        svg = flamegraph_svg(cct.root if cct else None, scale)
        parts.append(
            "<figure>"
            f"<figcaption>{caption} &mdash; {weight:.3f}</figcaption>"
            f"{svg}</figure>"
        )
    parts.append("</div>")
    return "".join(parts)


# -- crosstalk heatmap -------------------------------------------------

def _heat_color(value: float, peak: float) -> str:
    """White at zero, red for positive deltas, green for negative."""
    if peak <= 0 or value == 0:
        return "#ffffff"
    intensity = min(1.0, abs(value) / peak)
    # Lightest useful tint at ~0.15 so small deltas stay visible.
    alpha = 0.15 + 0.85 * intensity
    if value > 0:
        return f"rgba(180, 35, 24, {alpha:.2f})"
    return f"rgba(21, 127, 61, {alpha:.2f})"


def crosstalk_heatmap(diff: ProfileDiff) -> str:
    rows = diff.crosstalk_rows()
    if not rows:
        return '<p class="muted">No crosstalk recorded in either run.</p>'
    waiters = sorted({r[0] for r in rows})
    holders = sorted({r[1] for r in rows})
    deltas: Dict[Tuple[str, str], float] = {
        (waiter, holder): d_total for waiter, holder, _, d_total, _ in rows
    }
    peak = max(abs(v) for v in deltas.values()) or 1.0
    cells = ["<table><tr><th>waits-on &rarr;</th>"]
    for holder in holders:
        cells.append(f"<th>{_esc(holder)}</th>")
    cells.append("</tr>")
    for waiter in waiters:
        cells.append(f"<tr><th>{_esc(waiter)}</th>")
        for holder in holders:
            value = deltas.get((waiter, holder))
            if value is None:
                cells.append("<td></td>")
            else:
                cells.append(
                    f'<td class="num" style="background:'
                    f'{_heat_color(value, peak)}">{1000 * value:+.2f}ms</td>'
                )
        cells.append("</tr>")
    cells.append("</table>")
    cells.append(
        '<p class="muted">Cell = delta in total wait time '
        "(after &minus; before); red grew, green shrank.</p>"
    )
    return "".join(cells)


# -- trend sparklines --------------------------------------------------

def sparkline_svg(values: Sequence[float]) -> str:
    if len(values) < 2:
        return ""
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    step = SPARK_WIDTH / (len(values) - 1)
    points = " ".join(
        f"{i * step:.1f},{SPARK_HEIGHT - 4 - (SPARK_HEIGHT - 8) * (v - low) / span:.1f}"
        for i, v in enumerate(values)
    )
    last_x = (len(values) - 1) * step
    last_y = SPARK_HEIGHT - 4 - (SPARK_HEIGHT - 8) * (values[-1] - low) / span
    return (
        f'<svg width="{SPARK_WIDTH}" height="{SPARK_HEIGHT}" role="img">'
        f'<polyline points="{points}" fill="none" stroke="#3a6fb0" '
        f'stroke-width="1.5"/>'
        f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="2.5" fill="#b42318"/>'
        "</svg>"
    )


def trend_section(history: Optional[dict], limit: int = 12) -> str:
    """Sparklines from a ``trend.py --history`` document."""
    series = (history or {}).get("series") or []
    if len(series) < 2:
        return (
            '<p class="muted">No trend history supplied '
            "(generate one with <code>benchmarks/trend.py --history</code>)."
            "</p>"
        )
    keys: List[str] = []
    for entry in series:
        for key in entry.get("metrics", {}):
            if key not in keys:
                keys.append(key)
    parts = []
    for key in keys[:limit]:
        values = [
            entry["metrics"][key]
            for entry in series
            if key in entry.get("metrics", {})
        ]
        if len(values) < 2:
            continue
        parts.append(
            '<span class="spark">'
            f'<span class="name">{_esc(key)}</span>'
            f"{sparkline_svg(values)}"
            f'<span class="name">latest: {values[-1]:g}</span>'
            "</span>"
        )
    if not parts:
        return '<p class="muted">History has no plottable metrics.</p>'
    labels = " &rarr; ".join(_esc(entry.get("label", "?")) for entry in series)
    parts.append(f'<p class="muted">snapshots: {labels}</p>')
    return "".join(parts)


# -- the report --------------------------------------------------------

def _delta_cell(value: float, fmt: str = "{:+.3f}") -> str:
    return (
        f'<td class="num {_signed_class(value)}">{fmt.format(value)}</td>'
    )


def render_html_report(
    diff: ProfileDiff,
    top: int = 10,
    history: Optional[dict] = None,
    flame_pairs: int = 5,
    title: str = "repro diff",
) -> str:
    """The whole report as one self-contained HTML document."""
    confidence, reasons = diff.confidence()
    out: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}: differential transactional profile</h1>",
        "<p>"
        f"before: <code>{_esc(diff.before.source)}</code> "
        f"({_esc(diff.before.kind)})<br>"
        f"after: <code>{_esc(diff.after.source)}</code> "
        f"({_esc(diff.after.kind)})</p>",
    ]

    banner = [f"confidence: <strong>{confidence}</strong>"]
    banner.extend(_esc(reason) for reason in reasons)
    out.append(
        f'<div class="banner {confidence}">{"<br>".join(banner)}</div>'
    )

    out.append("<h2>Totals</h2><table>")
    out.append("<tr><th></th><th>before</th><th>after</th><th>delta</th></tr>")
    out.append(
        f'<tr><th>total weight</th><td class="num">{diff.total_before:.3f}'
        f'</td><td class="num">{diff.total_after:.3f}</td>'
        + _delta_cell(diff.total_delta)
        + "</tr>"
    )
    for stage, before, after, delta in diff.stage_rows():
        out.append(
            f'<tr><th>{_esc(stage)}</th><td class="num">{before:.3f}</td>'
            f'<td class="num">{after:.3f}</td>' + _delta_cell(delta) + "</tr>"
        )
    out.append("</table>")

    regressions = diff.top_regressions(top)
    out.append(f"<h2>Top {len(regressions)} regressions</h2>")
    if regressions:
        out.append(
            "<table><tr><th>stage</th><th>context</th><th>before</th>"
            "<th>after</th><th>delta</th><th>ratio</th>"
            "<th>share of growth</th></tr>"
        )
        for row in regressions:
            ratio = row.ratio
            out.append(
                f'<tr><td>{_esc(row.stage)}</td>'
                f'<td class="ctx">{_esc(row.label)}</td>'
                f'<td class="num">{row.before:.3f}</td>'
                f'<td class="num">{row.after:.3f}</td>'
                + _delta_cell(row.delta)
                + f'<td class="num">'
                + (f"{ratio:.2f}x" if ratio is not None else "new")
                + "</td>"
                f'<td class="num">{diff.growth_share(row):.1f}%</td></tr>'
            )
        out.append("</table>")
    else:
        out.append('<p class="muted">No regressions.</p>')

    improvements = diff.top_improvements(top)
    if improvements:
        out.append(f"<h2>Top {len(improvements)} improvements</h2>")
        out.append(
            "<table><tr><th>stage</th><th>context</th>"
            "<th>before</th><th>after</th><th>delta</th></tr>"
        )
        for row in improvements:
            out.append(
                f'<tr><td>{_esc(row.stage)}</td>'
                f'<td class="ctx">{_esc(row.label)}</td>'
                f'<td class="num">{row.before:.3f}</td>'
                f'<td class="num">{row.after:.3f}</td>'
                + _delta_cell(row.delta)
                + "</tr>"
            )
        out.append("</table>")

    for name, rows in (("Appeared", diff.appeared()), ("Vanished", diff.vanished())):
        if rows:
            out.append(f"<h2>{name} contexts ({len(rows)})</h2><ul>")
            for row in rows[:top]:
                weight = row.after if name == "Appeared" else row.before
                out.append(
                    f'<li><span class="ctx">{_esc(row.stage)}: '
                    f"{_esc(row.label)}</span> &mdash; {weight:.3f}</li>"
                )
            out.append("</ul>")

    flamed = [row for row in regressions[:flame_pairs]]
    if flamed:
        out.append("<h2>Flamegraph pairs (top regressed contexts)</h2>")
        for row in flamed:
            out.append(
                f'<p class="ctx">{_esc(row.stage)}: {_esc(row.label)} '
                f'&mdash; <span class="{_signed_class(row.delta)}">'
                f"{row.delta:+.3f}</span></p>"
            )
            out.append(_flame_pair(diff, row))

    out.append("<h2>Crosstalk delta heatmap</h2>")
    out.append(crosstalk_heatmap(diff))

    out.append("<h2>Benchmark trend</h2>")
    out.append(trend_section(history))

    out.append("</body></html>")
    return "\n".join(out)


def load_history(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
