"""Text rendering of transactional profiles.

The paper presents its results as annotated call-path trees with dashed
edges for transaction flow (Figures 8–10) and tables for crosstalk
(Table 1).  These functions produce the equivalent plain-text artifacts
from live :class:`~repro.core.profiler.StageRuntime` state or a
stitched profile.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.cct import CallingContextTree, CCTNode
from repro.core.context import TransactionContext
from repro.core.crosstalk import CrosstalkRecorder
from repro.core.profiler import LOCAL, StageRuntime
from repro.core.stitch import StitchedProfile


def _format_context(context: TransactionContext) -> str:
    if context.is_empty:
        return "<local>"
    return " --> ".join(
        element if isinstance(element, str) else repr(element)
        for element in context.elements
    )


def render_cct(
    cct: CallingContextTree,
    total: Optional[float] = None,
    min_share: float = 0.5,
    indent: str = "  ",
) -> str:
    """Render one CCT as an indented tree with inclusive percentages.

    ``total`` sets the denominator (defaults to the CCT's own weight);
    subtrees below ``min_share`` percent are elided.
    """
    denominator = total if total is not None else cct.total_weight()
    if denominator <= 0:
        return "(no samples)"
    lines: List[str] = []

    def visit(node: CCTNode, depth: int) -> None:
        for name in sorted(
            node.children,
            key=lambda n: -node.children[n].subtree_weight(),
        ):
            child = node.children[name]
            share = 100.0 * child.subtree_weight() / denominator
            if share < min_share:
                continue
            self_share = 100.0 * child.self_weight / denominator
            lines.append(
                f"{indent * depth}{name}  [{share:5.1f}%"
                + (f", self {self_share:.1f}%" if child.self_weight else "")
                + "]"
            )
            visit(child, depth + 1)

    visit(cct.root, 0)
    return "\n".join(lines) if lines else "(all subtrees below threshold)"


def render_stage_profile(stage: StageRuntime, min_share: float = 0.5) -> str:
    """Fig 8/9/10-style text: one tree per transaction context, with

    each context's share of the stage's total samples.
    """
    total = stage.total_weight()
    if not stage.ccts:
        return f"=== {stage.name}: (empty profile) ==="
    if total == 0:
        return f"=== {stage.name}: no samples ==="
    blocks: List[str] = [f"=== transactional profile of stage {stage.name} ==="]
    ordered = sorted(
        stage.ccts.items(), key=lambda item: -item[1].total_weight()
    )
    for label, cct in ordered:
        share = 100.0 * cct.total_weight() / total if total else 0.0
        if share < min_share:
            continue
        marker = "(local)" if label == LOCAL else "(flow)"
        blocks.append("")
        blocks.append(
            f"-- context {marker} {_format_context(label)}  [{share:.1f}% of stage]"
        )
        blocks.append(render_cct(cct, total=total, min_share=min_share))
    return "\n".join(blocks)


def render_stitched_profile(profile: StitchedProfile, min_share: float = 0.5) -> str:
    """End-to-end profile: per stage, per fully resolved context.

    A partial stitch (non-strict resolution left ``<unresolved:...>``
    placeholders after crash amnesia or missing dumps) is announced with
    its completeness ratio; a fully resolved profile renders exactly as
    before.
    """
    blocks: List[str] = ["=== end-to-end transactional profile ==="]
    if profile.unresolved_refs:
        blocks.append(
            f"(partial stitch: {profile.unresolved_refs} of "
            f"{profile.synopsis_refs} synopsis references unresolved; "
            f"completeness {100.0 * profile.completeness:.1f}%)"
        )
    if not profile.entries:
        blocks.append("(empty profile)")
        return "\n".join(blocks)
    for stage_name in profile.stages():
        stage_total = profile.stage_weight(stage_name)
        blocks.append("")
        blocks.append(f"## stage {stage_name}")
        if stage_total == 0:
            blocks.append("(no samples)")
            continue
        contexts = sorted(
            profile.contexts_of(stage_name),
            key=lambda c: -profile.cct(stage_name, c).total_weight(),
        )
        for context in contexts:
            cct = profile.cct(stage_name, context)
            share = 100.0 * cct.total_weight() / stage_total if stage_total else 0.0
            if share < min_share:
                continue
            blocks.append(
                f"-- context {_format_context(context)}  [{share:.1f}%]"
            )
            blocks.append(render_cct(cct, total=stage_total, min_share=min_share))
    return "\n".join(blocks)


def render_flow_graph(edges) -> str:
    """Fig 7-style arrows: which stage context invoked which."""
    if not edges:
        return "(no cross-stage flow recorded)"
    lines = ["=== cross-stage request edges ==="]
    for edge in edges:
        lines.append(
            f"{edge.from_stage} [{_format_context(edge.from_context)}]"
        )
        lines.append(
            f"    ==request==> {edge.to_stage} "
            f"[{_format_context(edge.to_context)}]"
        )
    return "\n".join(lines)


def render_fault_report(report: dict) -> str:
    """Fault-injection totals plus per-tier recovery counters."""
    lines = ["=== fault injection report ==="]
    injected = report.get("injected", {})
    if injected:
        lines.append(
            "injected: "
            + ", ".join(f"{key}={injected[key]}" for key in sorted(injected))
        )
    else:
        lines.append("injected: (none)")
    lines.append(
        f"client recovery: resends={report.get('client_resends', 0)} "
        f"reconnects={report.get('client_reconnects', 0)} "
        f"stale_responses={report.get('client_stale_responses', 0)}"
    )
    lines.append(f"db call timeouts: {report.get('db_timeouts', 0)}")
    for key in sorted(report):
        if key.endswith("_retransmits"):
            stage = key[: -len("_retransmits")]
            violations = report.get(f"{stage}_violations", {})
            violations_text = (
                ", ".join(f"{k}={v}" for k, v in sorted(violations.items()))
                or "none"
            )
            lines.append(
                f"stage {stage}: retransmits={report[key]} "
                f"abandoned={report.get(f'{stage}_abandoned', 0)} "
                f"crashes={report.get(f'{stage}_crashes', 0)} "
                f"violations: {violations_text}"
            )
    return "\n".join(lines)


def render_crosstalk(recorder: CrosstalkRecorder, limit: int = 20) -> str:
    """Crosstalk pair table: who waits on whom, for how long."""
    rows = recorder.pair_table()[:limit]
    if not rows:
        return "(no crosstalk recorded)"
    header = f"{'waiting':<24} {'holding':<24} {'count':>6} {'mean ms':>9} {'max ms':>9}"
    lines = [header, "-" * len(header)]
    for waiter, holder, count, mean, peak in rows:
        lines.append(
            f"{str(waiter):<24} {str(holder):<24} {count:>6} "
            f"{1000 * mean:>9.2f} {1000 * peak:>9.2f}"
        )
    return "\n".join(lines)
