"""Export profiles and experiment series as TSV for external plotting.

The benchmarks print paper-style tables; these helpers additionally let
users dump the underlying data — per-context profile weights, crosstalk
pairs, throughput/latency series — into tab-separated files that any
plotting tool ingests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, TextIO, Union

from repro.core.crosstalk import CrosstalkRecorder
from repro.core.profiler import StageRuntime

PathOrFile = Union[str, TextIO]


def _open(destination: PathOrFile):
    if isinstance(destination, str):
        return open(destination, "w", encoding="utf-8"), True
    return destination, False


def write_rows(destination: PathOrFile, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Write one TSV table."""
    handle, owned = _open(destination)
    try:
        handle.write("\t".join(str(h) for h in header) + "\n")
        for row in rows:
            handle.write("\t".join(str(cell) for cell in row) + "\n")
    finally:
        if owned:
            handle.close()


def export_stage_profile(stage: StageRuntime, destination: PathOrFile) -> None:
    """One row per (context, call path): self weight and shares."""
    total = stage.total_weight()
    rows: List[Sequence] = []
    for label, cct in sorted(
        stage.ccts.items(), key=lambda item: -item[1].total_weight()
    ):
        for path, weight in sorted(cct.flatten().items(), key=lambda i: -i[1]):
            share = 100.0 * weight / total if total else 0.0
            rows.append(
                [
                    repr(label),
                    " > ".join(path),
                    f"{weight:.6f}",
                    f"{share:.4f}",
                ]
            )
    write_rows(destination, ["context", "call_path", "samples", "share_pct"], rows)


def export_crosstalk(recorder: CrosstalkRecorder, destination: PathOrFile) -> None:
    """One row per ordered (waiter, holder) pair."""
    rows = [
        [str(waiter), str(holder), count, f"{1000 * mean:.4f}", f"{1000 * peak:.4f}"]
        for waiter, holder, count, mean, peak in recorder.pair_table()
    ]
    write_rows(
        destination,
        ["waiting", "holding", "count", "mean_ms", "max_ms"],
        rows,
    )


def export_series(
    destination: PathOrFile,
    x_name: str,
    series: Dict[str, Dict],
) -> None:
    """Export aligned series: ``{column: {x: y}}`` → one row per x."""
    xs = sorted({x for column in series.values() for x in column})
    header = [x_name] + list(series.keys())
    rows = [
        [x] + [series[name].get(x, "") for name in series]
        for x in xs
    ]
    write_rows(destination, header, rows)
