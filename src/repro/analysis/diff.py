"""Differential transactional profiling: ``repro diff``.

Whodunit's profiles answer "where did this run's time go?"; this module
answers the follow-up every performance regression hunt actually asks:
"where did the time go *that wasn't going there before*?".  Two stitched
profiles — any mix of v1/v2 dumps, spool directories or live-collector
checkpoints, loaded through :func:`repro.core.persist.load_run` — are
aligned on their canonical ``(stage, transaction context)`` keys and
compared entry by entry:

- per-context latency deltas (virtual CPU weight, the deterministic
  sample currency of the simulation),
- top-K regression attribution, by absolute delta or by share of the
  run's total growth,
- contexts that *appeared* or *vanished* between the runs,
- completeness-aware confidence: a diff of partial stitches (crash
  amnesia, dropped dumps, unresolved ``@shard`` references) is flagged
  rather than silently trusted,
- crosstalk pair deltas (who started waiting on whom).

The same engine backs the CI regression gate (``repro diff --gate``):
an identical-seed self-diff produces exactly-zero deltas and therefore
zero violations, so the gate is trivially stable under determinism.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.context import TransactionContext, UnresolvedRef
from repro.core.persist import RunProfile
from repro.core.stitch import StitchedProfile

#: Row statuses.
COMMON = "common"
APPEARED = "appeared"
VANISHED = "vanished"


def _context_label(context: TransactionContext) -> str:
    if context.is_empty:
        return "<local>"
    return " --> ".join(
        element if isinstance(element, str) else repr(element)
        for element in context.elements
    )


def _has_unresolved(context: TransactionContext) -> bool:
    return any(
        isinstance(element, UnresolvedRef) for element in context.elements
    )


class ContextDelta:
    """One aligned ``(stage, context)`` row of the diff."""

    __slots__ = (
        "stage",
        "context",
        "before",
        "after",
        "status",
        "share_before",
        "share_after",
    )

    def __init__(
        self,
        stage: str,
        context: TransactionContext,
        before: float,
        after: float,
        status: str,
        share_before: float,
        share_after: float,
    ):
        self.stage = stage
        self.context = context
        self.before = before
        self.after = after
        self.status = status
        self.share_before = share_before
        self.share_after = share_after

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def ratio(self) -> Optional[float]:
        """``after / before`` — None for appeared contexts (no baseline)."""
        if self.before == 0:
            return None
        return self.after / self.before

    @property
    def unresolved(self) -> bool:
        return _has_unresolved(self.context)

    @property
    def label(self) -> str:
        return _context_label(self.context)

    def to_dict(self) -> dict:
        doc = {
            "stage": self.stage,
            "context": self.label,
            "status": self.status,
            "before": self.before,
            "after": self.after,
            "delta": self.delta,
            "share_before_pct": self.share_before,
            "share_after_pct": self.share_after,
        }
        if self.ratio is not None:
            doc["ratio"] = self.ratio
        if self.unresolved:
            doc["unresolved"] = True
        return doc


class GateViolation:
    """One context that tripped the regression gate."""

    __slots__ = ("row", "reason")

    def __init__(self, row: ContextDelta, reason: str):
        self.row = row
        self.reason = reason

    def to_dict(self) -> dict:
        doc = self.row.to_dict()
        doc["reason"] = self.reason
        return doc


class ProfileDiff:
    """All aligned deltas between two runs, plus derived views.

    Rows are sorted deterministically: largest absolute delta first,
    ties broken by stage name and context repr (transaction contexts
    themselves are unordered).
    """

    def __init__(self, before: RunProfile, after: RunProfile):
        self.before = before
        self.after = after
        self.rows: List[ContextDelta] = self._align()

    # -- construction --------------------------------------------------

    def _align(self) -> List[ContextDelta]:
        a, b = self.before.profile, self.after.profile
        total_a = a.total_weight() or 0.0
        total_b = b.total_weight() or 0.0
        keys = set(a.entries) | set(b.entries)
        rows = []
        for stage, context in keys:
            before_cct = a.entries.get((stage, context))
            after_cct = b.entries.get((stage, context))
            before_w = before_cct.total_weight() if before_cct else 0.0
            after_w = after_cct.total_weight() if after_cct else 0.0
            if before_cct is None:
                status = APPEARED
            elif after_cct is None:
                status = VANISHED
            else:
                status = COMMON
            rows.append(
                ContextDelta(
                    stage,
                    context,
                    before_w,
                    after_w,
                    status,
                    100.0 * before_w / total_a if total_a else 0.0,
                    100.0 * after_w / total_b if total_b else 0.0,
                )
            )
        rows.sort(key=lambda r: (-abs(r.delta), r.stage, repr(r.context)))
        return rows

    # -- scalar summaries ----------------------------------------------

    @property
    def total_before(self) -> float:
        return self.before.profile.total_weight()

    @property
    def total_after(self) -> float:
        return self.after.profile.total_weight()

    @property
    def total_delta(self) -> float:
        return self.total_after - self.total_before

    @property
    def total_growth(self) -> float:
        """Sum of positive deltas only — the regression mass that top-K

        "share of growth" attribution divides by.
        """
        return sum(row.delta for row in self.rows if row.delta > 0)

    def confidence(self) -> Tuple[str, List[str]]:
        """``("high" | "low", reasons)`` for this comparison.

        Low confidence means the deltas may reflect *measurement* loss
        (partial stitches, unresolved cross-stage references, an empty
        side) rather than behaviour change, and the reasons say which.
        """
        reasons: List[str] = []
        for name, run in (("before", self.before), ("after", self.after)):
            completeness = run.profile.completeness
            if not run.profile.entries:
                reasons.append(f"{name} profile is empty")
            elif completeness < 1.0:
                reasons.append(
                    f"{name} stitch is partial "
                    f"(completeness {100.0 * completeness:.1f}%)"
                )
        unresolved = sum(1 for row in self.rows if row.unresolved)
        if unresolved:
            reasons.append(
                f"{unresolved} context(s) contain unresolved references "
                "and may be misaligned"
            )
        return ("low" if reasons else "high"), reasons

    # -- derived views -------------------------------------------------

    def top_regressions(self, k: int = 10, by: str = "absolute") -> List[ContextDelta]:
        """The K contexts that got slowest, largest first.

        ``by="absolute"`` ranks on raw delta; ``by="share"`` ranks on
        each context's share of the run's total growth — identical order
        (growth is a constant divisor), but callers use it to report
        "context X explains 61% of the regression".
        """
        if by not in ("absolute", "share"):
            raise ValueError(f"unknown ranking {by!r}")
        worst = [row for row in self.rows if row.delta > 0]
        return worst[:k]

    def top_improvements(self, k: int = 10) -> List[ContextDelta]:
        best = [row for row in self.rows if row.delta < 0]
        best.sort(key=lambda r: (r.delta, r.stage, repr(r.context)))
        return best[:k]

    def appeared(self) -> List[ContextDelta]:
        return [row for row in self.rows if row.status == APPEARED]

    def vanished(self) -> List[ContextDelta]:
        return [row for row in self.rows if row.status == VANISHED]

    def growth_share(self, row: ContextDelta) -> float:
        """Percent of the total positive growth this row explains."""
        growth = self.total_growth
        if growth <= 0 or row.delta <= 0:
            return 0.0
        return 100.0 * row.delta / growth

    def stage_rows(self) -> List[Tuple[str, float, float, float]]:
        """Per-stage ``(stage, before, after, delta)``, sorted by

        absolute delta descending then stage name.
        """
        stages = sorted(
            set(self.before.profile.stages())
            | set(self.after.profile.stages())
        )
        rows = [
            (
                stage,
                self.before.profile.stage_weight(stage),
                self.after.profile.stage_weight(stage),
                self.after.profile.stage_weight(stage)
                - self.before.profile.stage_weight(stage),
            )
            for stage in stages
        ]
        rows.sort(key=lambda r: (-abs(r[3]), r[0]))
        return rows

    def crosstalk_rows(self) -> List[Tuple[str, str, int, float, float]]:
        """Crosstalk pair deltas: ``(waiter, holder, d_count, d_total,

        d_max)`` over the union of both runs' pair tables, sorted by
        absolute total-wait delta descending.
        """
        keys = set(self.before.crosstalk) | set(self.after.crosstalk)
        rows = []
        for key in keys:
            before = self.before.crosstalk.get(key, (0, 0.0, 0.0))
            after = self.after.crosstalk.get(key, (0, 0.0, 0.0))
            rows.append(
                (
                    key[0],
                    key[1],
                    after[0] - before[0],
                    after[1] - before[1],
                    after[2] - before[2],
                )
            )
        rows.sort(key=lambda r: (-abs(r[3]), r[0], r[1]))
        return rows

    # -- gate ----------------------------------------------------------

    def gate(
        self,
        threshold_pct: float = 25.0,
        min_share_pct: float = 1.0,
    ) -> List[GateViolation]:
        """Context-level regression gate.

        A context violates the gate when it grew by more than
        ``threshold_pct`` percent of its baseline weight (or appeared
        from nothing), *and* its delta is material — at least
        ``min_share_pct`` percent of the larger run's total weight, so
        noise-sized contexts can't fail CI.  A self-diff of two
        identical-seed runs yields all-zero deltas and no violations.
        """
        floor = (min_share_pct / 100.0) * max(
            self.total_before, self.total_after
        )
        violations = []
        for row in self.rows:
            if row.delta <= 0 or row.delta < floor:
                continue
            if row.status == APPEARED:
                violations.append(
                    GateViolation(row, "appeared with material weight")
                )
            elif row.before > 0:
                grew_pct = 100.0 * row.delta / row.before
                if grew_pct > threshold_pct:
                    violations.append(
                        GateViolation(row, f"grew {grew_pct:.1f}%")
                    )
        return violations

    # -- serialisation -------------------------------------------------

    def to_dict(self, top: int = 10) -> dict:
        confidence, reasons = self.confidence()
        return {
            "before": _run_summary(self.before),
            "after": _run_summary(self.after),
            "total": {
                "before": self.total_before,
                "after": self.total_after,
                "delta": self.total_delta,
                "growth": self.total_growth,
            },
            "confidence": {"level": confidence, "reasons": reasons},
            "stages": [
                {
                    "stage": stage,
                    "before": before,
                    "after": after,
                    "delta": delta,
                }
                for stage, before, after, delta in self.stage_rows()
            ],
            "regressions": [
                dict(row.to_dict(), growth_share_pct=self.growth_share(row))
                for row in self.top_regressions(top)
            ],
            "improvements": [
                row.to_dict() for row in self.top_improvements(top)
            ],
            "appeared": [row.to_dict() for row in self.appeared()],
            "vanished": [row.to_dict() for row in self.vanished()],
            "crosstalk": [
                {
                    "waiter": waiter,
                    "holder": holder,
                    "delta_count": d_count,
                    "delta_total_wait": d_total,
                    "delta_max_wait": d_max,
                }
                for waiter, holder, d_count, d_total, d_max
                in self.crosstalk_rows()
            ],
        }


def _run_summary(run: RunProfile) -> dict:
    profile = run.profile
    return {
        "source": str(run.source),
        "kind": run.kind,
        "entries": len(profile.entries),
        "stages": profile.stages(),
        "total_weight": profile.total_weight(),
        "completeness": profile.completeness,
        "unresolved_refs": profile.unresolved_refs,
    }


def diff_runs(before: RunProfile, after: RunProfile) -> ProfileDiff:
    """Diff two loaded runs (see :func:`repro.core.persist.load_run`)."""
    return ProfileDiff(before, after)


def diff_stitched(
    before: StitchedProfile, after: StitchedProfile
) -> ProfileDiff:
    """Diff two in-memory stitched profiles (no persistence involved)."""
    return ProfileDiff(
        RunProfile("<memory>", "memory", before, [], {}),
        RunProfile("<memory>", "memory", after, [], {}),
    )


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------

def render_diff(
    diff: ProfileDiff, top: int = 10, min_share: float = 0.0
) -> str:
    """The ``repro diff`` terminal report."""
    lines: List[str] = ["=== differential transactional profile ==="]
    lines.append(f"before: {diff.before.source}  ({diff.before.kind})")
    lines.append(f"after:  {diff.after.source}  ({diff.after.kind})")

    confidence, reasons = diff.confidence()
    lines.append(f"confidence: {confidence}")
    for reason in reasons:
        lines.append(f"  ! {reason}")

    lines.append("")
    lines.append(
        f"total weight: {diff.total_before:.3f} -> {diff.total_after:.3f}  "
        f"({_signed(diff.total_delta)})"
    )

    stage_rows = diff.stage_rows()
    if stage_rows:
        lines.append("")
        lines.append("per-stage:")
        for stage, before, after, delta in stage_rows:
            lines.append(
                f"  {stage:<12} {before:>12.3f} -> {after:>12.3f}  "
                f"({_signed(delta)})"
            )

    floor = (min_share / 100.0) * max(diff.total_before, diff.total_after)
    regressions = [
        row for row in diff.top_regressions(top) if abs(row.delta) >= floor
    ]
    lines.append("")
    if regressions:
        lines.append(f"top {len(regressions)} regressions:")
        for row in regressions:
            ratio = row.ratio
            ratio_text = f" ({ratio:.2f}x)" if ratio is not None else " (new)"
            lines.append(
                f"  +{row.delta:.3f}{ratio_text}  "
                f"[{diff.growth_share(row):.1f}% of growth]  "
                f"{row.stage}: {row.label}"
            )
            if row.unresolved:
                lines.append("      (contains unresolved references)")
    else:
        lines.append("no regressions.")

    improvements = [
        row for row in diff.top_improvements(top) if abs(row.delta) >= floor
    ]
    if improvements:
        lines.append("")
        lines.append(f"top {len(improvements)} improvements:")
        for row in improvements:
            lines.append(
                f"  {row.delta:.3f}  {row.stage}: {row.label}"
            )

    appeared = diff.appeared()
    vanished = diff.vanished()
    if appeared:
        lines.append("")
        lines.append(f"appeared ({len(appeared)}):")
        for row in appeared[:top]:
            lines.append(f"  +{row.after:.3f}  {row.stage}: {row.label}")
    if vanished:
        lines.append("")
        lines.append(f"vanished ({len(vanished)}):")
        for row in vanished[:top]:
            lines.append(f"  -{row.before:.3f}  {row.stage}: {row.label}")

    crosstalk = [r for r in diff.crosstalk_rows() if any(r[2:])]
    if crosstalk:
        lines.append("")
        lines.append("crosstalk deltas:")
        for waiter, holder, d_count, d_total, d_max in crosstalk[:top]:
            lines.append(
                f"  {waiter} waits-on {holder}: count {_signed(d_count)}, "
                f"total {_signed_ms(d_total)}, max {_signed_ms(d_max)}"
            )

    if not diff.rows:
        lines.append("")
        lines.append("(both profiles are empty)")
    return "\n".join(lines)


def render_gate(
    diff: ProfileDiff, violations: List[GateViolation]
) -> str:
    """The CI gate verdict block."""
    if not violations:
        return "diff-gate: OK (no context-level regressions)"
    lines = [f"diff-gate: FAIL ({len(violations)} violation(s))"]
    for violation in violations:
        row = violation.row
        lines.append(
            f"  {row.stage}: {row.label}  "
            f"{row.before:.3f} -> {row.after:.3f} ({violation.reason})"
        )
    return "\n".join(lines)


def _signed(value: float) -> str:
    return f"{value:+.3f}"


def _signed_ms(value: float) -> str:
    return f"{1000.0 * value:+.2f}ms"
