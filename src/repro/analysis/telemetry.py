"""Text summary of a live-telemetry session.

``render_telemetry`` complements the post-mortem profile renderers: a
compact table of span volume by category/stage, trace statistics, and
the headline metrics — what an operator would glance at after (or
during) a run, before loading the full trace into Perfetto.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.telemetry import Telemetry
from repro.telemetry.metrics import Counter, Gauge, Histogram


def _span_table(tele: Telemetry) -> List[str]:
    counts: Dict[Tuple[str, str], int] = {}
    durations: Dict[Tuple[str, str], float] = {}
    for span in tele.spans.spans:
        key = (span.category, span.stage or "<none>")
        counts[key] = counts.get(key, 0) + 1
        durations[key] = durations.get(key, 0.0) + span.duration
    if not counts:
        return ["(no spans recorded)"]
    header = f"{'category':<20} {'stage':<16} {'spans':>8} {'total s':>10}"
    lines = [header, "-" * len(header)]
    for (category, stage), count in sorted(
        counts.items(), key=lambda item: (-item[1], item[0])
    ):
        lines.append(
            f"{category:<20} {stage:<16} {count:>8} "
            f"{durations[(category, stage)]:>10.4f}"
        )
    return lines


def _metric_lines(tele: Telemetry, limit: int) -> List[str]:
    if not tele.wants_metrics or not len(tele.metrics):
        return ["(metrics disabled — telemetry mode 'spans')"]
    lines = []
    shown = 0
    for metric in tele.metrics.collect():
        if shown >= limit:
            lines.append(f"... ({len(tele.metrics) - shown} more instruments)")
            break
        labels = (
            "{" + ",".join(f"{k}={v}" for k, v in metric.labels) + "}"
            if metric.labels
            else ""
        )
        if isinstance(metric, Histogram):
            lines.append(
                f"{metric.name}{labels}  count={metric.count} "
                f"mean={metric.mean:.6g} sum={metric.sum:.6g}"
            )
        elif isinstance(metric, (Counter, Gauge)):
            lines.append(f"{metric.name}{labels}  {metric.value:.6g}")
        shown += 1
    return lines


def render_telemetry(tele: Telemetry, metric_limit: int = 40) -> str:
    """One-page text summary of the session's spans and metrics."""
    recorder = tele.spans
    traces = recorder.traces()
    multi_span = sum(1 for spans in traces.values() if len(spans) > 1)
    blocks = [
        "=== live telemetry summary ===",
        f"spans: {recorder.completed} completed"
        + (f" ({recorder.dropped} dropped by ring buffer)" if recorder.dropped else "")
        + f", {recorder.open_spans()} still open",
        f"traces: {len(traces)} ({multi_span} spanning more than one span)",
        "",
    ]
    blocks.extend(_span_table(tele))
    blocks.append("")
    blocks.append("-- metrics --")
    blocks.extend(_metric_lines(tele, metric_limit))
    return "\n".join(blocks)
