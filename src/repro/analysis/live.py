"""Rendering for the online streaming stitcher's live queries.

The batch renderers in :mod:`repro.analysis.render` draw whole
post-mortem profiles; these draw the rolling view a
:class:`~repro.live.LiveCollector` serves *mid-run* — the top-K
transaction contexts, per-stage weight, resolution completeness and
crosstalk pressure at the collector's current virtual time.
"""

from __future__ import annotations

from typing import List

from repro.analysis.render import _format_context


def render_live_top(collector, k: int = 10, min_share: float = 0.0) -> str:
    """A "top contexts right now" table from a live collector.

    Answers without stopping the simulation: the rows come from the
    collector's scalar index, which never touches evicted trees.
    """
    rows = collector.top_contexts(k)
    weights = collector.stage_weights()
    attempted, unresolved = collector.stitch_stats()
    lines: List[str] = [
        f"=== live profile @ t={collector.now:.3f}s "
        f"({collector.samples} samples, {collector.events_absorbed} events) ==="
    ]
    if attempted:
        pct = 100.0 * (attempted - unresolved) / attempted
        lines.append(
            f"(resolution: {attempted - unresolved}/{attempted} synopsis "
            f"references resolvable right now; completeness {pct:.1f}%)"
        )
    lines.append(
        "(resident CCTs: "
        f"{collector.resident_contexts}, peak {collector.peak_resident}, "
        f"{collector.evictions} evicted / {collector.revivals} revived)"
    )
    if not rows:
        lines.append("(no samples yet)")
        return "\n".join(lines)
    lines.append("")
    lines.append(f"{'rank':>4}  {'stage':<12} {'weight':>12} {'share':>7}  context")
    for rank, (stage, context, weight, share) in enumerate(rows, start=1):
        if 100.0 * share < min_share:
            continue
        lines.append(
            f"{rank:>4}  {stage:<12} {weight:>12.1f} {100.0 * share:>6.1f}%  "
            f"{_format_context(context)}"
        )
    if weights:
        lines.append("")
        lines.append("stage totals: " + ", ".join(
            f"{stage}={weight:.1f}" for stage, weight in sorted(weights.items())
        ))
    return "\n".join(lines)


def render_live_crosstalk(collector, limit: int = 10) -> str:
    """The heaviest live crosstalk pairs, Table-1 style."""
    rows = collector.crosstalk_pairs()[: max(0, limit)]
    if not rows:
        return "(no crosstalk observed)"
    lines = [
        f"{'waiter':<28} {'holder':<28} {'count':>7} {'mean ms':>9} {'max ms':>9}"
    ]
    for waiter, holder, count, _total, mean, peak in rows:
        lines.append(
            f"{str(waiter):<28} {str(holder):<28} {count:>7} "
            f"{1e3 * mean:>9.2f} {1e3 * peak:>9.2f}"
        )
    return "\n".join(lines)
