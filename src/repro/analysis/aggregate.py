"""Aggregation helpers over profiles.

These compute the percentage figures the paper draws in its triangles:
per-transaction-context shares of a stage's CPU (Figures 8–10) and
per-frame shares within a CCT.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.cct import CallingContextTree
from repro.core.context import TransactionContext
from repro.core.profiler import StageRuntime


def context_shares(stage: StageRuntime) -> Dict[TransactionContext, float]:
    """Percentage of the stage's samples per transaction context.

    A stage whose CCTs carry no weight (call counts only, or nothing
    sampled yet) reports 0.0 per context instead of dividing by zero.
    """
    total = stage.total_weight()
    return {
        label: 100.0 * cct.total_weight() / total if total else 0.0
        for label, cct in stage.ccts.items()
    }


def frame_shares(cct: CallingContextTree, total: float = 0.0) -> Dict[str, float]:
    """Percentage per frame name of (by default) the CCT's own weight."""
    denominator = total or cct.total_weight()
    return {
        name: 100.0 * weight / denominator if denominator else 0.0
        for name, weight in cct.by_frame().items()
    }


def top_paths(
    cct: CallingContextTree, count: int = 10
) -> List[Tuple[Tuple[str, ...], float]]:
    """The heaviest call paths by self weight, descending."""
    flat = sorted(cct.flatten().items(), key=lambda item: -item[1])
    return flat[:count]


def diff_profiles(
    before: StageRuntime, after: StageRuntime
) -> List[Tuple[TransactionContext, float, float, float]]:
    """Compare two profiles of the same stage (before/after a change).

    Returns rows ``(context, before_share%, after_share%, delta)``
    sorted by absolute delta, largest first — the performance-debugging
    view of "what did my optimisation actually move?".
    """
    before_shares = context_shares(before)
    after_shares = context_shares(after)
    contexts = set(before_shares) | set(after_shares)
    rows = [
        (
            context,
            before_shares.get(context, 0.0),
            after_shares.get(context, 0.0),
            after_shares.get(context, 0.0) - before_shares.get(context, 0.0),
        )
        for context in contexts
    ]
    rows.sort(key=lambda row: -abs(row[3]))
    return rows


def subtree_share(
    stage: StageRuntime,
    label: TransactionContext,
    path: Tuple[str, ...],
) -> float:
    """Percentage of the whole stage's samples under one subtree of one

    context's CCT — the number the paper writes in a triangle.
    """
    total = stage.total_weight()
    cct = stage.ccts.get(label)
    if cct is None:
        return 0.0
    return 100.0 * cct.inclusive_weight_of(path) / total if total else 0.0
