"""Profile aggregation and presentation (Whodunit's post-mortem phase)."""

from repro.analysis.aggregate import (
    context_shares,
    diff_profiles,
    frame_shares,
    top_paths,
)
from repro.analysis.render import (
    render_cct,
    render_crosstalk,
    render_fault_report,
    render_flow_graph,
    render_stage_profile,
    render_stitched_profile,
)
from repro.analysis.diff import (
    ContextDelta,
    GateViolation,
    ProfileDiff,
    diff_runs,
    diff_stitched,
    render_diff,
    render_gate,
)
from repro.analysis.export import (
    export_crosstalk,
    export_series,
    export_stage_profile,
    write_rows,
)
from repro.analysis.htmlreport import load_history, render_html_report
from repro.analysis.telemetry import render_telemetry
from repro.analysis.live import render_live_crosstalk, render_live_top

__all__ = [
    "render_telemetry",
    "render_live_crosstalk",
    "render_live_top",
    "context_shares",
    "diff_profiles",
    "ContextDelta",
    "GateViolation",
    "ProfileDiff",
    "diff_runs",
    "diff_stitched",
    "render_diff",
    "render_gate",
    "render_html_report",
    "load_history",
    "frame_shares",
    "top_paths",
    "render_cct",
    "render_stage_profile",
    "render_stitched_profile",
    "render_crosstalk",
    "render_fault_report",
    "render_flow_graph",
    "export_stage_profile",
    "export_crosstalk",
    "export_series",
    "write_rows",
]
