"""Deterministic, seeded fault injection for the simulated transport.

A :class:`FaultInjector` is attached to a kernel (``kernel.faults``)
*before* the simulated system is built.  Every
:class:`~repro.channels.socket.Endpoint` constructed on that kernel asks
the injector for per-endpoint fault state at construction time (the same
capture-once pattern the telemetry layer uses, so fault-free runs pay
nothing on the send path).  Message faults are decided by a per-endpoint
:class:`random.Random` stream seeded from ``(seed, rule index, endpoint
attach order)`` — all integers, never ``hash()`` — so a given seed
reproduces the same faults event for event, run after run, regardless of
``PYTHONHASHSEED``.

Stage crashes are scheduled separately with :meth:`FaultInjector.
schedule_crashes` once the stages exist; each target must expose a
``crash(restart_after=None)`` method (both
:class:`~repro.seda.stage.SedaStage` and
:class:`~repro.core.profiler.StageRuntime` do).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from repro.faults.plan import CrashSpec, FaultPlan, FaultRule


class EndpointFaultState:
    """Per-endpoint fault decisions, drawn from a dedicated RNG stream."""

    __slots__ = ("rule", "rng", "injector")

    def __init__(self, rule: FaultRule, rng: random.Random, injector: "FaultInjector"):
        self.rule = rule
        self.rng = rng
        self.injector = injector

    def deliveries(self, message: Any) -> List[float]:
        """Extra delivery delays for one send; an empty list drops it.

        A normal message yields ``[0.0]``; a duplicated one two entries;
        a reordered or delayed one a single positive extra delay.
        """
        rule = self.rule
        rng = self.rng
        injector = self.injector
        injector.messages_seen += 1
        if rule.drop and rng.random() < rule.drop:
            injector.dropped += 1
            return []
        extra = 0.0
        if rule.delay and rng.random() < rule.delay:
            injector.delayed += 1
            extra += rule.delay_amount
        if rule.reorder and rng.random() < rule.reorder:
            injector.reordered += 1
            extra += rng.random() * rule.reorder_window
        out = [extra]
        if rule.duplicate and rng.random() < rule.duplicate:
            injector.duplicated += 1
            out.append(extra + rng.random() * rule.reorder_window)
        return out


class FaultInjector:
    """The active fault plan, its RNG streams, and its injection counters."""

    def __init__(self, plan: "FaultPlan | str | Dict[str, Any]", seed: int = 0):
        self.plan = FaultPlan.parse(plan)
        self.seed = seed
        self._attached = 0
        self.messages_seen = 0
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self.delayed = 0
        self.crashes_fired = 0

    # ------------------------------------------------------------------
    def attach(self, endpoint: Any) -> Optional[EndpointFaultState]:
        """Per-endpoint fault state, or None when no rule matches.

        Called once from ``Endpoint.__init__``; the attach order (which
        is the deterministic construction order of the simulation) keys
        the endpoint's RNG stream, so endpoint *names* — which embed
        process-global connection ids — never influence the draws.
        """
        rule = self.plan.rule_for(endpoint.name)
        if rule is None:
            return None
        index = self._attached
        self._attached += 1
        rule_index = self.plan.rules.index(rule)
        rng = random.Random(
            (self.seed * 1_000_003 + rule_index) * 1_000_003 + index
        )
        return EndpointFaultState(rule, rng, self)

    # ------------------------------------------------------------------
    def schedule_crashes(self, kernel: Any, targets: Dict[str, Any]) -> int:
        """Schedule the plan's stage crashes on ``kernel``.

        ``targets`` maps stage names to objects exposing
        ``crash(restart_after=None)``.  Crash specs naming unknown
        stages raise immediately — a misspelled stage name must not
        silently yield a crash-free run.  Returns the number scheduled.
        """
        scheduled = 0
        for spec in self.plan.crashes:
            target = targets.get(spec.stage)
            if target is None:
                raise KeyError(
                    f"fault plan crashes unknown stage {spec.stage!r}; "
                    f"have {sorted(targets)}"
                )
            kernel.schedule(spec.at - kernel.now if spec.at > kernel.now else 0.0,
                            self._fire_crash, target, spec)
            scheduled += 1
        return scheduled

    def _fire_crash(self, target: Any, spec: CrashSpec) -> None:
        self.crashes_fired += 1
        target.crash(restart_after=spec.restart)

    # ------------------------------------------------------------------
    def report(self) -> Dict[str, int]:
        """Injection totals for the run (deterministic per seed)."""
        return {
            "messages_seen": self.messages_seen,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "delayed": self.delayed,
            "crashes": self.crashes_fired,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultInjector seed={self.seed} {self.report()}>"


def install_faults(
    kernel: Any,
    plan: "FaultPlan | str | Dict[str, Any]",
    seed: int = 0,
) -> FaultInjector:
    """Attach a fault injector to ``kernel`` (before building the system)."""
    injector = FaultInjector(plan, seed=seed)
    kernel.faults = injector
    return injector
