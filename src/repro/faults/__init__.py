"""Deterministic fault injection for the simulated transport and stages.

See :mod:`repro.faults.plan` for the fault-spec grammar and
:mod:`repro.faults.inject` for the injection machinery; the full story
(retry/timeout semantics, partial stitching) is in
``docs/fault-injection.md``.
"""

from repro.faults.inject import EndpointFaultState, FaultInjector, install_faults
from repro.faults.plan import (
    CrashSpec,
    FaultPlan,
    FaultRule,
    FaultSpecError,
)

__all__ = [
    "CrashSpec",
    "EndpointFaultState",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "install_faults",
]
