"""Fault plans: a declarative description of what goes wrong, when.

A :class:`FaultPlan` is a list of message-fault rules plus a list of
stage-crash specs.  Rules apply per :class:`~repro.channels.socket.Endpoint`
(the first rule whose ``match`` substring occurs in the endpoint name
wins; ``match=None`` matches every endpoint) and give the probabilities
with which a sent message is dropped, duplicated, reordered (delayed by
a random amount within ``reorder_window`` so later messages overtake
it), or delayed by a fixed amount.

Plans are written either as a compact spec string::

    drop=0.01,dup=0.01,reorder=0.05:0.02,match=mysql;crash=tomcat@30+1.0

(rules separated by ``;``, items by ``,``; ``crash=<stage>@<t>[+<restart>]``)
or as a JSON file::

    {"rules": [{"match": "mysql", "drop": 0.01, "dup": 0.01}],
     "crashes": [{"stage": "tomcat", "at": 30.0, "restart": 1.0}]}

:func:`FaultPlan.parse` accepts either form — if the spec names an
existing file it is loaded as JSON.  Parsing is strict: unknown keys and
out-of-range probabilities raise :class:`FaultSpecError` so a typo in a
fault spec cannot silently produce a fault-free run.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

DEFAULT_REORDER_WINDOW = 10e-3
DEFAULT_DELAY = 1e-3


class FaultSpecError(ValueError):
    """Raised for malformed fault specs."""


class FaultRule:
    """Message-fault probabilities for endpoints matching ``match``."""

    __slots__ = ("match", "drop", "duplicate", "reorder", "reorder_window",
                 "delay", "delay_amount")

    def __init__(
        self,
        match: Optional[str] = None,
        drop: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        reorder_window: float = DEFAULT_REORDER_WINDOW,
        delay: float = 0.0,
        delay_amount: float = DEFAULT_DELAY,
    ):
        for name, p in (("drop", drop), ("dup", duplicate), ("reorder", reorder),
                        ("delay", delay)):
            if not 0.0 <= p <= 1.0:
                raise FaultSpecError(f"{name} probability {p!r} not in [0, 1]")
        if reorder_window < 0 or delay_amount < 0:
            raise FaultSpecError("reorder window / delay amount must be >= 0")
        self.match = match
        self.drop = drop
        self.duplicate = duplicate
        self.reorder = reorder
        self.reorder_window = reorder_window
        self.delay = delay
        self.delay_amount = delay_amount

    @property
    def is_noop(self) -> bool:
        return not (self.drop or self.duplicate or self.reorder or self.delay)

    def matches(self, endpoint_name: str) -> bool:
        return self.match is None or self.match in endpoint_name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultRule match={self.match!r} drop={self.drop} "
            f"dup={self.duplicate} reorder={self.reorder} delay={self.delay}>"
        )


class CrashSpec:
    """Crash stage ``stage`` at virtual time ``at``; restart after
    ``restart`` seconds (``None`` = the stage's state loss is instant and
    it keeps serving — the amnesia model used for thread-per-connection
    tiers)."""

    __slots__ = ("stage", "at", "restart")

    def __init__(self, stage: str, at: float, restart: Optional[float] = None):
        if at < 0:
            raise FaultSpecError("crash time must be >= 0")
        if restart is not None and restart < 0:
            raise FaultSpecError("restart delay must be >= 0")
        self.stage = stage
        self.at = at
        self.restart = restart

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CrashSpec {self.stage}@{self.at}+{self.restart}>"


class FaultPlan:
    """Parsed fault-injection plan: message-fault rules + stage crashes."""

    def __init__(self, rules: Optional[List[FaultRule]] = None,
                 crashes: Optional[List[CrashSpec]] = None):
        self.rules: List[FaultRule] = list(rules or [])
        self.crashes: List[CrashSpec] = list(crashes or [])

    @property
    def is_noop(self) -> bool:
        return not self.crashes and all(rule.is_noop for rule in self.rules)

    def rule_for(self, endpoint_name: str) -> Optional[FaultRule]:
        """First matching non-noop rule for an endpoint, else None."""
        for rule in self.rules:
            if not rule.is_noop and rule.matches(endpoint_name):
                return rule
        return None

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: "FaultPlan | str | Dict[str, Any]") -> "FaultPlan":
        """Parse a spec string, a JSON file path, or a JSON-shaped dict."""
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, dict):
            return cls._from_dict(spec)
        if not isinstance(spec, str):
            raise FaultSpecError(f"cannot parse fault spec {spec!r}")
        if os.path.isfile(spec):
            with open(spec, "r", encoding="utf-8") as handle:
                return cls._from_dict(json.load(handle))
        return cls._from_string(spec)

    @classmethod
    def _from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        rules = []
        for entry in data.get("rules", []):
            known = {"match", "drop", "dup", "duplicate", "reorder",
                     "reorder_window", "delay", "delay_amount"}
            unknown = set(entry) - known
            if unknown:
                raise FaultSpecError(f"unknown fault rule keys {sorted(unknown)}")
            rules.append(FaultRule(
                match=entry.get("match"),
                drop=float(entry.get("drop", 0.0)),
                duplicate=float(entry.get("dup", entry.get("duplicate", 0.0))),
                reorder=float(entry.get("reorder", 0.0)),
                reorder_window=float(
                    entry.get("reorder_window", DEFAULT_REORDER_WINDOW)
                ),
                delay=float(entry.get("delay", 0.0)),
                delay_amount=float(entry.get("delay_amount", DEFAULT_DELAY)),
            ))
        crashes = []
        for entry in data.get("crashes", []):
            unknown = set(entry) - {"stage", "at", "restart"}
            if unknown:
                raise FaultSpecError(f"unknown crash keys {sorted(unknown)}")
            restart = entry.get("restart")
            crashes.append(CrashSpec(
                entry["stage"],
                float(entry["at"]),
                None if restart is None else float(restart),
            ))
        unknown = set(data) - {"rules", "crashes"}
        if unknown:
            raise FaultSpecError(f"unknown fault plan keys {sorted(unknown)}")
        return cls(rules, crashes)

    @classmethod
    def _from_string(cls, spec: str) -> "FaultPlan":
        rules: List[FaultRule] = []
        crashes: List[CrashSpec] = []
        for rule_text in spec.split(";"):
            rule_text = rule_text.strip()
            if not rule_text:
                continue
            kwargs: Dict[str, Any] = {}
            for item in rule_text.split(","):
                item = item.strip()
                if not item:
                    continue
                if "=" not in item:
                    raise FaultSpecError(f"bad fault item {item!r} (want key=value)")
                key, _, value = item.partition("=")
                key = key.strip()
                value = value.strip()
                if key == "match":
                    kwargs["match"] = value
                elif key == "drop":
                    kwargs["drop"] = _probability(key, value)
                elif key in ("dup", "duplicate"):
                    kwargs["duplicate"] = _probability(key, value)
                elif key == "reorder":
                    p, window = _split_amount(value)
                    kwargs["reorder"] = _probability(key, p)
                    if window is not None:
                        kwargs["reorder_window"] = _seconds(key, window)
                elif key == "delay":
                    p, amount = _split_amount(value)
                    kwargs["delay"] = _probability(key, p)
                    if amount is not None:
                        kwargs["delay_amount"] = _seconds(key, amount)
                elif key == "crash":
                    crashes.append(_parse_crash(value))
                else:
                    raise FaultSpecError(f"unknown fault key {key!r}")
            if kwargs:
                rules.append(FaultRule(**kwargs))
        return cls(rules, crashes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan rules={len(self.rules)} crashes={len(self.crashes)}>"


def _probability(key: str, value: str) -> float:
    try:
        p = float(value)
    except ValueError:
        raise FaultSpecError(f"{key}: bad probability {value!r}") from None
    if not 0.0 <= p <= 1.0:
        raise FaultSpecError(f"{key}: probability {p!r} not in [0, 1]")
    return p


def _seconds(key: str, value: str) -> float:
    try:
        seconds = float(value)
    except ValueError:
        raise FaultSpecError(f"{key}: bad seconds value {value!r}") from None
    if seconds < 0:
        raise FaultSpecError(f"{key}: seconds must be >= 0")
    return seconds


def _split_amount(value: str):
    """Split ``p[:amount]`` items (reorder=0.05:0.02, delay=0.01:0.005)."""
    if ":" in value:
        p, _, amount = value.partition(":")
        return p, amount
    return value, None


def _parse_crash(value: str) -> CrashSpec:
    """Parse ``<stage>@<time>[+<restart>]``."""
    if "@" not in value:
        raise FaultSpecError(f"crash: want <stage>@<time>[+<restart>], got {value!r}")
    stage, _, when = value.partition("@")
    restart: Optional[str] = None
    if "+" in when:
        when, _, restart = when.partition("+")
    return CrashSpec(
        stage.strip(),
        _seconds("crash", when),
        None if restart is None else _seconds("crash", restart),
    )
