"""The libevent analog: an event loop that tracks transaction contexts.

This is Fig 4 of the paper, executable.  Every :class:`Event` carries an
``ev_tran_ctxt`` field, filled in from the loop's current transaction
context when the event is registered (``event_add``, line 12).  Before a
handler is invoked, the loop computes the current context by appending
the handler's name to the event's context (lines 5–6), collapsing
consecutive repeats and pruning loops as described in §4.1.  A program
built on this loop — like the Squid-like proxy in
:mod:`repro.apps.proxy` — needs no modification at all for transactional
profiling.

Events may be *immediate* (ready as soon as added) or tied to a
*waitable* — any object with a ``readable`` property and an
``observers`` list, i.e. the endpoints and listeners of
:mod:`repro.channels.socket`.  Waitable events are one-shot: handlers
re-register interest explicitly, as with ``select()``-style loops.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Iterator, Optional, TYPE_CHECKING

from repro.core.context import TransactionContext
from repro.sim.process import CurrentThread, SimThread, Syscall, frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel


class Event:
    """An event/continuation with its transaction-context field."""

    __slots__ = ("name", "handler", "ev_tran_ctxt", "waitable", "payload")

    def __init__(
        self,
        name: str,
        handler: Callable[["EventLoop", "Event"], Iterator],
        payload: Any = None,
        waitable: Any = None,
    ):
        self.name = name
        self.handler = handler
        self.payload = payload
        self.waitable = waitable
        self.ev_tran_ctxt: TransactionContext = TransactionContext.empty()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Event {self.name} ctxt={self.ev_tran_ctxt!r}>"


class Park(Syscall):
    """Block the loop thread until :meth:`EventLoop.wake` is called."""

    __slots__ = ("loop",)

    def __init__(self, loop: "EventLoop"):
        self.loop = loop

    def execute(self, kernel: "Kernel", thread: SimThread) -> None:
        if self.loop._ready:
            kernel.resume(thread, None)
        else:
            thread.blocked_on = self
            self.loop._parked = thread

    def __repr__(self) -> str:
        return f"Park({self.loop.name})"


class EventLoop:
    """A single-threaded event loop with transaction-context tracking."""

    __slots__ = (
        "kernel",
        "name",
        "loop_frame",
        "prune_loops",
        "collapse_repeats",
        "_ready",
        "_parked",
        "_stopped",
        "curr_tran_ctxt",
        "_in_handler",
        "dispatched",
        "thread",
        "_watches",
    )

    def __init__(
        self,
        kernel: "Kernel",
        name: str = "event_loop",
        loop_frame: str = "event_loop",
        prune_loops: bool = True,
        collapse_repeats: bool = True,
    ):
        self.kernel = kernel
        self.name = name
        self.loop_frame = loop_frame
        self.prune_loops = prune_loops
        self.collapse_repeats = collapse_repeats
        self._ready: Deque[Event] = deque()
        self._parked: Optional[SimThread] = None
        self._stopped = False
        # Fig 4's global current-transaction-context list.
        self.curr_tran_ctxt = TransactionContext.empty()
        self._in_handler = False
        self.dispatched = 0
        # The loop's SimThread, available to handlers once run() starts.
        self.thread: Optional[SimThread] = None
        # Outstanding waitable watches, so stop() can un-register them.
        self._watches: list = []

    # ------------------------------------------------------------------
    # Registration (Fig 4, event_add)
    # ------------------------------------------------------------------
    def event_add(self, event: Event) -> None:
        """Register an event; captures the current transaction context."""
        event.ev_tran_ctxt = self.curr_tran_ctxt
        waitable = event.waitable
        if waitable is None or waitable.readable:
            self._make_ready(event)
        else:
            self._watch(waitable, event)

    def event_add_timer(self, event: Event, delay: float) -> None:
        """Register a timer event: ready after ``delay`` virtual seconds.

        The context is captured now (at registration), like event_add.
        """
        if delay < 0:
            raise ValueError("negative timer delay")
        event.ev_tran_ctxt = self.curr_tran_ctxt
        self.kernel.schedule(delay, self._make_ready, event)

    def _watch(self, waitable: Any, event: Event) -> None:
        if self._stopped:
            # A stopped loop will never dispatch the event; registering
            # the observer would only recreate the leak stop() purges.
            return

        def observer(_source) -> None:
            waitable.observers.remove(observer)
            self._watches.remove(entry)
            self._make_ready(event)

        entry = (waitable, observer)
        self._watches.append(entry)
        waitable.observers.append(observer)

    def _make_ready(self, event: Event) -> None:
        self._ready.append(event)
        self.wake()

    def wake(self) -> None:
        if self._parked is not None:
            parked, self._parked = self._parked, None
            self.kernel.resume(parked, None)

    def stop(self) -> None:
        self._stopped = True
        # Un-register outstanding waitable watches: a stopped loop will
        # never dispatch them, and a still-attached observer pins the
        # loop and its captured events for the waitable's lifetime.
        for waitable, observer in self._watches:
            waitable.observers.remove(observer)
        self._watches.clear()
        self.wake()

    # ------------------------------------------------------------------
    # The loop (Fig 4, event_loop)
    # ------------------------------------------------------------------
    def run(self) -> Iterator:
        """The loop body; spawn it as a thread of the stage's process."""
        thread = yield CurrentThread()
        thread.daemon = True
        self.thread = thread
        ready = self._ready
        collapse = self.collapse_repeats
        prune = self.prune_loops
        with frame(thread, self.loop_frame):
            while not self._stopped:
                while not ready:
                    yield Park(self)
                    if self._stopped:
                        return
                event = ready.popleft()
                # Lines 5-6: current context = concat(event ctxt, handler),
                # with repeat-collapsing and loop pruning (§4.1).
                context = event.ev_tran_ctxt.append(
                    event.name, collapse=collapse, prune=prune
                )
                self.curr_tran_ctxt = context
                thread.tran_ctxt = context
                self._in_handler = True
                self.dispatched += 1
                try:
                    with frame(thread, event.name):
                        yield from event.handler(self, event)
                finally:
                    self._in_handler = False
                    thread.tran_ctxt = None
                    self.curr_tran_ctxt = TransactionContext.empty()
