"""Event-driven programming substrate with transaction tracking (§4.1)."""

from repro.events.libevent import Event, EventLoop, Park

__all__ = ["Event", "EventLoop", "Park"]
