"""Command-line interface: run the paper's case studies from a shell.

::

    python -m repro.cli apache            # §8.1: flow through shared memory
    python -m repro.cli squid             # §8.2: event contexts
    python -m repro.cli haboob            # §8.3: SEDA stage contexts
    python -m repro.cli tpcw --clients 100 --duration 120
    python -m repro.cli tpcw --caching --innodb
    python -m repro.cli table3            # emulation costs

Each subcommand builds the simulated system, runs it for the requested
virtual time, and prints the transactional profile (and, for TPC-W, the
Table-1-style summary).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import telemetry
from repro.analysis import render_crosstalk, render_stage_profile, render_telemetry
from repro.sim import Kernel, Rng
from repro.workloads import HttpClientPool, WebTrace


def _telemetry_setup(args: argparse.Namespace):
    """Install telemetry (before any system is built) per the flags."""
    mode = getattr(args, "telemetry", "off")
    if mode == "off":
        for flag in ("trace_out", "metrics_out"):
            if getattr(args, flag, None):
                print(
                    f"warning: --{flag.replace('_', '-')} ignored (telemetry off)",
                    file=sys.stderr,
                )
        return None
    return telemetry.install(mode)


def _telemetry_finish(args: argparse.Namespace, tele) -> None:
    """Write requested exports and print the live-telemetry summary."""
    if tele is None:
        return
    from repro.telemetry.export import (
        write_chrome_trace,
        write_otlp_trace,
        write_prometheus,
    )

    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        if getattr(args, "trace_format", "chrome") == "otlp":
            write_otlp_trace(trace_out, tele.spans)
        else:
            write_chrome_trace(trace_out, tele.spans)
        print(f"\nwrote {args.trace_format} trace ({len(tele.spans.spans)} spans) "
              f"to {trace_out}")
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        if tele.wants_metrics:
            write_prometheus(metrics_out, tele.metrics)
            print(f"wrote Prometheus metrics to {metrics_out}")
        else:
            print(
                "warning: --metrics-out needs --telemetry full",
                file=sys.stderr,
            )
    print()
    print(render_telemetry(tele))


def _live_setup(args: argparse.Namespace):
    """Attach the online streaming stitcher, if requested.

    Must run *before* the simulated system is built: stage runtimes
    capture the profile-event emitter at construction time.  ``main``
    has already upgraded ``--telemetry off`` to ``spans`` when live
    collection was asked for, so the active telemetry exists here.
    """
    if not (getattr(args, "live", False) or getattr(args, "live_dir", None)):
        return None
    from repro.live import attach_collector

    tele = telemetry.active()
    if tele is None:  # defensive: main() upgrades the mode first
        tele = telemetry.install("spans")
    resident = args.live_resident if args.live_resident > 0 else None
    return attach_collector(
        tele,
        directory=args.live_dir,
        interval=args.live_interval,
        max_resident=resident,
    )


def _live_finish(args: argparse.Namespace, collector) -> None:
    """Print the live view and compact the checkpoint directory."""
    if collector is None:
        return
    from repro.analysis import render_live_crosstalk, render_live_top

    print()
    print(render_live_top(collector, k=args.live_top))
    if collector.crosstalk_pairs():
        print()
        print(render_live_crosstalk(collector))
    profile = collector.compact(strict=False)
    print(
        f"\nlive stitch: {len(profile.entries)} contexts; "
        f"completeness {100.0 * profile.completeness:.2f}%"
    )
    if collector.directory:
        print(
            f"live checkpoints compacted in {collector.directory} "
            f"(query later with: live-report {collector.directory})"
        )


def cmd_apache(args: argparse.Namespace) -> int:
    from repro.apps.httpd import HttpdServer

    kernel = Kernel()
    trace = WebTrace(Rng(args.seed), objects=args.objects)
    server = HttpdServer(kernel, trace)
    server.start()
    HttpClientPool(kernel, server.listener_socket, trace, clients=args.clients).start()
    kernel.run(until=args.seconds)
    print(
        f"served {server.requests_served} requests, "
        f"{server.throughput_mbps():.1f} Mb/s"
    )
    print()
    print("lock classifications:")
    for lock, classification in server.region.detector.classifications().items():
        print(f"  {getattr(lock, 'name', lock):<30} {classification}")
    print()
    print(render_stage_profile(server.stage, min_share=1.0))
    _maybe_dot(args, server.stage)
    return 0


def _install_faults(kernel: Kernel, args: argparse.Namespace):
    """Install the --faults plan on a fresh kernel (before any endpoint)."""
    spec = getattr(args, "faults", None)
    if not spec:
        return None
    from repro.faults import install_faults

    return install_faults(kernel, spec, getattr(args, "fault_seed", 0))


def _maybe_dot(args: argparse.Namespace, stage) -> None:
    """Write a graphviz rendering if --dot was given."""
    path = getattr(args, "dot", None)
    if not path:
        return
    from repro.analysis.dot import stage_profile_dot

    with open(path, "w", encoding="utf-8") as handle:
        handle.write(stage_profile_dot(stage))
    print(f"\nwrote graphviz profile to {path}")


def cmd_squid(args: argparse.Namespace) -> int:
    from repro.apps.proxy import OriginServer, SquidConfig, SquidProxy

    kernel = Kernel()
    trace = WebTrace(Rng(args.seed), objects=args.objects)
    origin = OriginServer(kernel, size_of=lambda key: trace.size_of(key[1]))
    origin.start()
    squid = SquidProxy(
        kernel,
        origin.listener,
        config=SquidConfig(cache_bytes=args.cache_kb * 1024),
    )
    squid.start()
    HttpClientPool(kernel, squid.listener, trace, clients=args.clients).start()
    kernel.run(until=args.seconds)
    print(
        f"served {squid.responses_sent} responses, "
        f"{squid.throughput_mbps():.1f} Mb/s, "
        f"hit ratio {squid.cache.hit_ratio:.0%}"
    )
    print()
    print(render_stage_profile(squid.stage, min_share=1.0))
    _maybe_dot(args, squid.stage)
    return 0


def _cmd_haboob_sharded(args: argparse.Namespace) -> int:
    """Sharded Haboob: each shard serves its own client slice."""
    from repro.parallel import plan_shards, run_shards

    plan = plan_shards(
        "haboob",
        seed=args.seed,
        clients=args.clients,
        shards=args.shards,
        duration=args.seconds,
        params={"objects": args.objects, "cache_kb": args.cache_kb},
        spool_dir=args.spool or args.save_profiles or "",
        profile_format=args.profile_format,
        telemetry_mode=args.telemetry,
        live_dir=_sharded_live_dir(args),
        live_interval=args.live_interval,
        live_resident=args.live_resident,
    )
    run = run_shards(plan, jobs=args.jobs)
    print(
        f"{args.shards} shards x {plan.specs[0].clients} clients, "
        f"{args.jobs} jobs, {run.wall_seconds:.2f}s wall"
    )
    print(
        f"served {run.served()} responses, "
        f"{run.throughput():.1f} Mb/s aggregate"
    )
    if plan.specs[0].spool_dir:
        print(f"spooled {run.dump_bytes()} profile bytes "
              f"({args.profile_format}) to {plan.specs[0].spool_dir}")
    if plan.specs[0].live_dir:
        print(f"live checkpoints in {plan.specs[0].live_dir}/shard-*/ "
              f"(fold with: live-report {plan.specs[0].live_dir})")
    return 0


def _sharded_live_dir(args: argparse.Namespace) -> str:
    """The --live-dir for a sharded run ('' = no live collection).

    Sharded live collection checkpoints per shard under
    ``DIR/shard-NNNN/``; an in-memory ``--live`` without a directory
    has nowhere to surface from a worker process, so it needs the dir.
    """
    live_dir = getattr(args, "live_dir", None) or ""
    if getattr(args, "live", False) and not live_dir:
        print(
            "warning: --live with --shards needs --live-dir; ignored",
            file=sys.stderr,
        )
    return live_dir


def cmd_haboob(args: argparse.Namespace) -> int:
    from repro.apps.haboob import HaboobConfig, HaboobServer

    if args.shards > 1:
        return _cmd_haboob_sharded(args)
    collector = _live_setup(args)
    kernel = Kernel()
    injector = _install_faults(kernel, args)
    trace = WebTrace(Rng(args.seed), objects=args.objects)
    server = HaboobServer(
        kernel, trace, config=HaboobConfig(cache_bytes=args.cache_kb * 1024)
    )
    server.start()
    if injector is not None:
        injector.schedule_crashes(
            kernel, {stage.name: stage for stage in server.stages}
        )
    HttpClientPool(kernel, server.listener, trace, clients=args.clients).start()
    kernel.run(until=args.seconds)
    if injector is not None:
        report = injector.report()
        print("faults: " + ", ".join(f"{k}={report[k]}" for k in sorted(report)))
    print(
        f"served {server.responses_sent} responses, "
        f"{server.throughput_mbps():.1f} Mb/s, "
        f"hit ratio {server.page_cache.hit_ratio:.0%}"
    )
    print()
    print(render_stage_profile(server.stage_runtime, min_share=1.0))
    _maybe_dot(args, server.stage_runtime)
    _live_finish(args, collector)
    if args.save_profiles:
        for path in server.save_profiles(
            args.save_profiles, profile_format=args.profile_format
        ).values():
            print(f"wrote {path}")
    return 0


def _merged_metric_lines(registry, limit: int = 40):
    """Text lines for a post-hoc merged metrics registry."""
    from repro.telemetry.metrics import Histogram

    lines = []
    for shown, metric in enumerate(registry.collect()):
        if shown >= limit:
            lines.append(f"... ({len(registry) - shown} more instruments)")
            break
        labels = (
            "{" + ",".join(f"{k}={v}" for k, v in metric.labels) + "}"
            if metric.labels
            else ""
        )
        if isinstance(metric, Histogram):
            lines.append(
                f"{metric.name}{labels}  count={metric.count} sum={metric.sum:.6g}"
            )
        else:
            lines.append(f"{metric.name}{labels}  {metric.value:.6g}")
    return lines


def _tpcw_shard_params(args: argparse.Namespace) -> dict:
    """The picklable workload parameters one TPC-W shard needs."""
    return {
        "caching": args.caching,
        "innodb": args.innodb,
        "mix": args.mix,
        "fault_plan": args.faults or None,
        "fault_seed": args.fault_seed,
        "retries": args.retries,
        "retry_timeout": args.retry_timeout,
    }


def _cmd_tpcw_sharded(args: argparse.Namespace) -> int:
    """The scale-out path: N shards across a process pool, merged view."""
    import tempfile

    from repro.parallel import plan_shards, run_shards

    spool = args.spool or args.save_profiles
    scratch = None
    if not spool:
        # Stitching needs the spooled dumps even if the user keeps none.
        scratch = tempfile.TemporaryDirectory(prefix="whodunit-spool-")
        spool = scratch.name
    try:
        plan = plan_shards(
            "tpcw",
            seed=args.seed,
            clients=args.clients,
            shards=args.shards,
            duration=args.duration,
            warmup=args.warmup,
            params=_tpcw_shard_params(args),
            spool_dir=spool,
            profile_format=args.profile_format,
            telemetry_mode=args.telemetry,
            live_dir=_sharded_live_dir(args),
            live_interval=args.live_interval,
            live_resident=args.live_resident,
        )
        run = run_shards(plan, jobs=args.jobs)
        print(
            f"{args.shards} shards x {plan.specs[0].clients} clients, "
            f"{args.jobs} jobs, {run.wall_seconds:.2f}s wall"
        )
        print(
            f"throughput {run.throughput():.0f} interactions/min; "
            f"mean response {run.mean_response() * 1000:.0f} ms; "
            f"{run.served()} served"
        )
        print()
        shares = run.db_cpu_share()
        waits = run.crosstalk_wait_ms()
        counts = run.interaction_counts()
        print(f"{'interaction':<22}{'MySQL CPU %':>12}{'crosstalk ms':>14}{'count':>8}")
        for name in sorted(shares, key=lambda n: -shares.get(n, 0)):
            print(
                f"{name:<22}{shares.get(name, 0):>12.2f}"
                f"{waits.get(name, 0):>14.2f}{counts.get(name, 0):>8}"
            )
        print()
        print(f"spooled {run.dump_bytes()} profile bytes "
              f"({args.profile_format}) to {spool}")
        strict = not args.faults
        profile = run.stitch(jobs=args.jobs, strict=strict)
        print(
            f"stitched {len(profile.entries)} contexts; "
            f"completeness {100.0 * profile.completeness:.2f}%"
        )
        if args.telemetry == "full":
            print()
            print("-- merged metrics (all shards) --")
            for line in _merged_metric_lines(run.merged_metrics()):
                print(line)
        if args.telemetry != "off":
            print(f"spans recorded across shards: {run.span_count()}")
        if plan.specs[0].live_dir:
            print(f"live checkpoints in {plan.specs[0].live_dir}/shard-*/ "
                  f"(fold with: live-report {plan.specs[0].live_dir})")
        if args.check_stitch and strict and profile.completeness < 1.0:
            print("error: lossless run stitched below 100%", file=sys.stderr)
            return 1
        return 0
    finally:
        if scratch is not None:
            scratch.cleanup()


def cmd_tpcw(args: argparse.Namespace) -> int:
    from repro.apps.db.locks import INNODB, MYISAM
    from repro.apps.tpcw import TpcwSystem
    from repro.channels.rpc import RetryPolicy

    if args.shards > 1:
        return _cmd_tpcw_sharded(args)
    collector = _live_setup(args)
    retry = None
    if args.faults and args.retries > 0:
        retry = RetryPolicy(timeout=args.retry_timeout, retries=args.retries)
    system = TpcwSystem(
        clients=args.clients,
        caching=args.caching,
        item_engine=INNODB if args.innodb else MYISAM,
        seed=args.seed,
        mix=args.mix,
        fault_plan=args.faults or None,
        fault_seed=args.fault_seed,
        retry=retry,
    )
    results = system.run(duration=args.duration, warmup=args.warmup)
    print(
        f"throughput {results.throughput_tpm():.0f} interactions/min; "
        f"db CPU {system.db.cpu.utilization():.0%} busy; "
        f"mean response {results.mean_response() * 1000:.0f} ms"
    )
    print()
    shares = results.db_cpu_share()
    waits = results.crosstalk_wait_ms()
    print(f"{'interaction':<22}{'MySQL CPU %':>12}{'crosstalk ms':>14}{'mean resp ms':>14}")
    for name in sorted(shares, key=lambda n: -shares.get(n, 0)):
        print(
            f"{name:<22}{shares.get(name, 0):>12.2f}{waits.get(name, 0):>14.2f}"
            f"{results.mean_response(name) * 1000:>14.0f}"
        )
    print()
    print(render_crosstalk(system.db.crosstalk, limit=10))
    if system.faults is not None:
        from repro.analysis import render_fault_report

        print()
        print(render_fault_report(results.fault_report()))
        completeness = results.stitch_completeness()
        print(f"stitch completeness: {100.0 * completeness:.2f}%")
    _live_finish(args, collector)
    if args.save_profiles:
        for path in system.save_profiles(
            args.save_profiles, profile_format=args.profile_format
        ).values():
            print(f"wrote {path}")
    if args.check_stitch:
        completeness = results.stitch_completeness()
        print(f"stitch completeness: {100.0 * completeness:.2f}%")
        if system.faults is None and completeness < 1.0:
            print(
                "error: lossless run stitched below 100%", file=sys.stderr
            )
            return 1
    return 0


def _print_digest(profile) -> int:
    """Print the canonical SHA-256 of a stitched profile (CI proof)."""
    import hashlib

    from repro.parallel import canonical_profile_bytes

    print(hashlib.sha256(canonical_profile_bytes(profile)).hexdigest())
    return 0


def cmd_stitch(args: argparse.Namespace) -> int:
    """Post-mortem presentation phase: stitch stage dumps end to end."""
    import os

    from repro.analysis import render_flow_graph, render_stitched_profile
    from repro.core.stitch import flow_graph, stitch_profiles
    from repro.parallel import parallel_load, stitch_spool

    # Non-strict by default: a dump set missing a tier (it crashed, or
    # its dump was never collected) still yields a partial profile with
    # an explicit completeness ratio instead of an abort.
    strict = bool(getattr(args, "strict", False))
    if len(args.profiles) == 1 and os.path.isdir(args.profiles[0]):
        # A spool directory written by a sharded run: map-reduce the
        # per-shard groups from its manifest — flat, or through the
        # hierarchical reduce tree when --group-size is given (the
        # output bytes are identical either way).
        profile = stitch_spool(
            args.profiles[0],
            jobs=args.jobs,
            strict=strict,
            group_size=args.group_size,
        )
        if args.digest:
            return _print_digest(profile)
        print(render_stitched_profile(profile, min_share=args.min_share))
        print(f"\ncompleteness {100.0 * profile.completeness:.2f}%")
        return 0
    stages = parallel_load(args.profiles, jobs=args.jobs)
    resolve_cache = {}
    profile = stitch_profiles(stages, cache=resolve_cache, strict=strict)
    if args.digest:
        return _print_digest(profile)
    print(render_stitched_profile(profile, min_share=args.min_share))
    print(f"\ncompleteness {100.0 * profile.completeness:.2f}%")
    print()
    print(render_flow_graph(flow_graph(stages, cache=resolve_cache, strict=strict)))
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    """Differential profiling: align two runs, attribute the change.

    Each side loads through :func:`repro.core.persist.load_run`, so any
    mix of dump files, dump/spool directories and live checkpoint
    directories can be compared.  ``--gate`` turns the diff into the CI
    regression gate: exit 1 when any context grew past the threshold.
    """
    import json as json_module

    from repro.analysis import (
        diff_runs,
        load_history,
        render_diff,
        render_gate,
        render_html_report,
    )
    from repro.core.persist import load_run

    strict = bool(args.strict)
    try:
        before = load_run(args.before, strict=strict, jobs=args.jobs)
        after = load_run(args.after, strict=strict, jobs=args.jobs)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    diff = diff_runs(before, after)

    if args.html:
        history = load_history(args.trend_history) if args.trend_history else None
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_html_report(diff, top=args.top, history=history))
        print(f"wrote {args.html}", file=sys.stderr)

    if args.json:
        print(
            json_module.dumps(
                diff.to_dict(top=args.top), indent=2, sort_keys=True
            )
        )
    else:
        print(render_diff(diff, top=args.top, min_share=args.min_share))

    if args.gate:
        violations = diff.gate(
            threshold_pct=args.gate_threshold,
            min_share_pct=args.gate_min_share,
        )
        print()
        print(render_gate(diff, violations))
        if violations:
            return 1
    return 0


def cmd_live_report(args: argparse.Namespace) -> int:
    """Answer queries from live-collector checkpoint directories.

    A single directory recovers one collector (bounded loss: anything
    newer than its last checkpoint is gone, by design) and stitches it;
    a directory holding ``shard-NNNN/`` subdirectories recovers every
    shard and folds the per-shard profiles through the same exact
    accumulator the sharded post-mortem reduce uses, with the same
    ``@shardN`` qualification of unresolved refs — so the digest
    matches ``stitch --digest`` over the equivalent spool.
    """
    import os

    from repro.analysis import (
        render_live_crosstalk,
        render_live_top,
        render_stitched_profile,
    )
    from repro.live import LiveCollector, list_checkpoints

    directory = args.directory
    if not os.path.isdir(directory):
        print(f"error: {directory!r} is not a directory", file=sys.stderr)
        return 2
    strict = bool(args.strict)
    shard_names = sorted(
        name
        for name in os.listdir(directory)
        if name.startswith("shard-")
        and os.path.isdir(os.path.join(directory, name))
    )
    if shard_names:
        from repro.parallel.reduce import ProfileAccumulator
        from repro.parallel.stitching import _tag_unresolved

        accumulator = ProfileAccumulator()
        checkpoint_files = 0
        for name in shard_names:
            shard_dir = os.path.join(directory, name)
            index = int(name.split("-", 1)[1])
            checkpoint_files += len(list_checkpoints(shard_dir))
            collector = LiveCollector.recover(shard_dir)
            shard_profile = (
                collector.compact(strict=strict)
                if args.compact
                else collector.stitched_profile(strict=strict)
            )
            accumulator.add_profile(
                _tag_unresolved(shard_profile, f"@shard{index}")
            )
        profile = accumulator.finalize()
        if args.digest:
            return _print_digest(profile)
        print(
            f"recovered {len(shard_names)} shard collectors "
            f"({checkpoint_files} checkpoint files)"
        )
        print()
    else:
        if not list_checkpoints(directory):
            print(f"error: no checkpoints in {directory!r}", file=sys.stderr)
            return 2
        collector = LiveCollector.recover(directory)
        profile = (
            collector.compact(strict=strict)
            if args.compact
            else collector.stitched_profile(strict=strict)
        )
        if args.digest:
            return _print_digest(profile)
        if args.top:
            print(render_live_top(collector, k=args.top))
            if collector.crosstalk_pairs():
                print()
                print(render_live_crosstalk(collector))
            print()
    print(render_stitched_profile(profile, min_share=args.min_share))
    print(f"\ncompleteness {100.0 * profile.completeness:.2f}%")
    return 0


def _parse_flash_crowds(values) -> list:
    """``start:duration:multiplier`` triples from repeated --flash flags."""
    crowds = []
    for value in values or []:
        parts = value.split(":")
        if len(parts) != 3:
            raise SystemExit(
                f"--flash wants START:DURATION:MULTIPLIER, got {value!r}"
            )
        crowds.append([float(parts[0]), float(parts[1]), float(parts[2])])
    return crowds


def _parse_think(value) -> Optional[dict]:
    """``pareto[:alpha[:min]]``, ``lognormal[:mu[:sigma]]`` or
    ``exp[:mean]`` into ThinkTime keyword arguments."""
    if not value:
        return None
    parts = value.split(":")
    kind, params = parts[0], parts[1:]
    if kind in ("exp", "exponential"):
        return {
            "distribution": "exponential",
            "mean": float(params[0]) if params else 1.0,
        }
    if kind == "pareto":
        return {
            "distribution": "pareto",
            "alpha": float(params[0]) if params else 1.5,
            "minimum": float(params[1]) if len(params) > 1 else 0.1,
        }
    if kind == "lognormal":
        return {
            "distribution": "lognormal",
            "mu": float(params[0]) if params else 0.0,
            "sigma": float(params[1]) if len(params) > 1 else 1.0,
        }
    raise SystemExit(f"unknown think-time distribution {kind!r}")


def cmd_openloop(args: argparse.Namespace) -> int:
    """Open-loop load generation, sharded: N simulated clients arrive
    as a (possibly diurnal/flash-crowd-shaped) Poisson process split
    deterministically across --shards independent deployments."""
    from repro.parallel import plan_shards, run_shards

    params = {
        "arrival_rate": args.rate,
        "total_clients": args.clients,
        "objects": args.objects,
        "cache_kb": args.cache_kb,
        "record_log": args.record_log,
    }
    if args.diurnal_amplitude:
        params["diurnal_amplitude"] = args.diurnal_amplitude
        params["diurnal_period"] = args.diurnal_period
    crowds = _parse_flash_crowds(args.flash)
    if crowds:
        params["flash_crowds"] = crowds
    think = _parse_think(args.think)
    if think:
        params["think"] = think
    plan = plan_shards(
        "openloop",
        seed=args.seed,
        clients=args.clients,
        shards=args.shards,
        duration=args.seconds,
        params=params,
        spool_dir=args.spool or "",
        profile_format=args.profile_format,
        telemetry_mode=args.telemetry,
    )
    run = run_shards(plan, jobs=args.jobs)
    print(
        f"{args.shards} shards, {args.jobs} jobs: "
        f"{run.sessions_started()} sessions started "
        f"({run.sessions_finished()} finished) of {args.clients} planned"
    )
    print(
        f"served {run.served()} responses, {run.throughput():.1f} Mb/s "
        f"aggregate, mean response {run.mean_response() * 1000:.1f} ms"
    )
    print(
        f"wall {run.wall_seconds:.2f}s, shard skew x{run.wall_skew():.2f}"
    )
    if args.spool:
        print(f"spooled {run.dump_bytes()} profile bytes "
              f"({args.profile_format}) to {args.spool}")
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    from repro.vm import Emulator, Machine
    from repro.vm.programs import BoundedQueue

    machine = Machine()
    queue = BoundedQueue(machine.memory)
    emulator = Emulator()
    print(f"{'critical section':<18}{'direct':>10}{'translate+emulate':>20}{'emulate only':>15}")
    for name, program, call_args in [
        ("ap_queue_push", queue.push_program, (1, 2)),
        ("ap_queue_pop", queue.pop_program, ()),
    ]:
        emulator.invalidate_cache()
        machine.registers("t").load_arguments(*call_args)
        direct = emulator.run(program, machine, "t", mode="direct")
        machine.registers("t").load_arguments(*call_args)
        first = emulator.run(program, machine, "t")
        machine.registers("t").load_arguments(*call_args)
        cached = emulator.run(program, machine, "t")
        print(
            f"{name:<18}{direct.cycles:>10.1f}{first.cycles:>20.1f}"
            f"{cached.cycles:>15.1f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="whodunit-repro",
        description="Run the Whodunit (EuroSys'07) case studies.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def telemetry_flags(p):
        p.add_argument(
            "--telemetry",
            choices=list(telemetry.MODES),
            default="off",
            help="live telemetry: spans only, or spans + metrics (full)",
        )
        p.add_argument(
            "--trace-out",
            metavar="FILE",
            help="write the span trace to FILE (requires --telemetry)",
        )
        p.add_argument(
            "--trace-format",
            choices=["chrome", "otlp"],
            default="chrome",
            help="trace file format (chrome = Perfetto-loadable)",
        )
        p.add_argument(
            "--metrics-out",
            metavar="FILE",
            help="write Prometheus text metrics (requires --telemetry full)",
        )

    def live_flags(p):
        p.add_argument(
            "--live",
            action="store_true",
            help="attach the online streaming stitcher for mid-run "
            "queries (implies --telemetry spans when telemetry is off)",
        )
        p.add_argument(
            "--live-dir",
            metavar="DIR",
            help="checkpoint live state into DIR every --live-interval "
            "(implies --live; enables bounded-memory eviction, crash "
            "recovery, and the live-report subcommand)",
        )
        p.add_argument(
            "--live-interval",
            type=float,
            default=5.0,
            metavar="SECONDS",
            help="virtual seconds between live checkpoints",
        )
        p.add_argument(
            "--live-resident",
            type=int,
            default=512,
            metavar="N",
            help="LRU bound on resident live CCTs; colder trees spill "
            "to checkpoints (0 = unbounded; needs --live-dir to bound)",
        )
        p.add_argument(
            "--live-top",
            type=int,
            default=10,
            metavar="K",
            help="rows in the end-of-run live top-contexts table",
        )

    def scale_flags(p):
        from repro.core.persist import PROFILE_FORMATS

        p.add_argument(
            "--shards",
            type=int,
            default=1,
            help="partition the client population into N deterministic "
            "shards, each a complete simulated deployment",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for sharded runs and stitching "
            "(output is identical for any value)",
        )
        p.add_argument(
            "--profile-format",
            choices=list(PROFILE_FORMATS),
            default="v1",
            help="profile dump format: v1 = plain JSON, v2 = compact "
            "interned binary (5-10x smaller)",
        )
        p.add_argument(
            "--spool",
            metavar="DIR",
            help="spool per-shard profile dumps (and manifest) into DIR",
        )

    def fault_flags(p):
        p.add_argument(
            "--faults",
            metavar="SPEC",
            help="fault-injection spec string or JSON file "
            "(see docs/fault-injection.md), e.g. 'drop=0.01,dup=0.01'",
        )
        p.add_argument(
            "--fault-seed",
            type=int,
            default=0,
            help="seed for the fault RNG streams (deterministic per seed)",
        )

    def common(p, clients=6, seconds=3.0):
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--clients", type=int, default=clients)
        p.add_argument("--seconds", type=float, default=seconds)
        p.add_argument("--objects", type=int, default=2000)
        p.add_argument("--dot", metavar="FILE", help="write graphviz profile")
        telemetry_flags(p)

    p = sub.add_parser("apache", help="threaded server, shared-memory flow (§8.1)")
    common(p)
    p.set_defaults(fn=cmd_apache)

    p = sub.add_parser("squid", help="event-driven proxy contexts (§8.2)")
    common(p)
    p.add_argument("--cache-kb", type=int, default=2048)
    p.set_defaults(fn=cmd_squid)

    p = sub.add_parser("haboob", help="SEDA stage contexts (§8.3)")
    common(p)
    p.add_argument("--cache-kb", type=int, default=512)
    p.add_argument(
        "--save-profiles",
        metavar="DIR",
        help="dump the server profile into DIR (see --profile-format)",
    )
    fault_flags(p)
    scale_flags(p)
    live_flags(p)
    p.set_defaults(fn=cmd_haboob)

    p = sub.add_parser("tpcw", help="three-tier bookstore (§8.4)")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--clients", type=int, default=100)
    p.add_argument("--duration", type=float, default=120.0)
    p.add_argument("--warmup", type=float, default=30.0)
    p.add_argument("--caching", action="store_true", help="cache BestSellers/SearchResult")
    p.add_argument("--innodb", action="store_true", help="item table on InnoDB")
    p.add_argument(
        "--mix",
        choices=["browsing", "shopping", "ordering"],
        default="browsing",
        help="TPC-W interaction mix",
    )
    p.add_argument(
        "--save-profiles",
        metavar="DIR",
        help="dump each tier's profile into DIR (see --profile-format)",
    )
    fault_flags(p)
    scale_flags(p)
    p.add_argument(
        "--retries",
        type=int,
        default=3,
        help="RPC/client retry attempts under --faults (0 disables recovery)",
    )
    p.add_argument(
        "--retry-timeout",
        type=float,
        default=0.25,
        help="first-attempt response timeout in virtual seconds "
        "(doubles per retry)",
    )
    p.add_argument(
        "--check-stitch",
        action="store_true",
        help="print the stitch completeness ratio; on a lossless run, "
        "exit non-zero below 100%%",
    )
    telemetry_flags(p)
    live_flags(p)
    p.set_defaults(fn=cmd_tpcw)

    p = sub.add_parser(
        "openloop",
        help="open-loop load: Poisson session arrivals with diurnal "
        "curves, flash crowds and heavy-tailed think times, sharded "
        "across a work-stealing pool",
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--clients",
        type=int,
        default=10000,
        help="total simulated clients (session budget across all shards)",
    )
    p.add_argument(
        "--rate",
        type=float,
        default=500.0,
        help="population-wide base session arrival rate per virtual second",
    )
    p.add_argument("--seconds", type=float, default=30.0)
    p.add_argument("--objects", type=int, default=2000)
    p.add_argument("--cache-kb", type=int, default=512)
    p.add_argument(
        "--diurnal-amplitude",
        type=float,
        default=0.0,
        help="sinusoidal rate swing in [0,1): rate peaks at base*(1+A)",
    )
    p.add_argument(
        "--diurnal-period",
        type=float,
        default=86400.0,
        help="diurnal cycle length in virtual seconds",
    )
    p.add_argument(
        "--flash",
        action="append",
        metavar="START:DUR:MULT",
        help="flash crowd: multiply the rate by MULT for DUR seconds "
        "starting at START (repeatable)",
    )
    p.add_argument(
        "--think",
        metavar="DIST[:ARGS]",
        help="think time between requests: pareto[:alpha[:min]], "
        "lognormal[:mu[:sigma]] or exp[:mean]",
    )
    p.add_argument(
        "--record-log",
        action="store_true",
        help="keep the per-transaction log (off by default: million-"
        "session shards return O(1) aggregates)",
    )
    scale_flags(p)
    telemetry_flags(p)
    p.set_defaults(fn=cmd_openloop)

    p = sub.add_parser("table3", help="critical-section emulation cost")
    telemetry_flags(p)
    p.set_defaults(fn=cmd_table3)

    p = sub.add_parser(
        "stitch", help="stitch saved stage profiles into one end-to-end profile"
    )
    p.add_argument(
        "profiles",
        nargs="+",
        help="stage profile dumps (v1/v2), or one spool directory "
        "holding a sharded run's manifest",
    )
    p.add_argument("--min-share", type=float, default=0.5)
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for loading/stitching dumps",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="abort on unresolvable synopses instead of emitting a "
        "partial profile",
    )
    p.add_argument(
        "--group-size",
        type=int,
        default=None,
        metavar="G",
        help="spool dirs only: hierarchical shard→group→global reduce "
        "with G shards per group (0 = ~sqrt(N)); bytes identical to "
        "the flat reduce",
    )
    p.add_argument(
        "--digest",
        action="store_true",
        help="print only the canonical SHA-256 of the stitched profile "
        "(the determinism proof used by CI)",
    )
    telemetry_flags(p)
    p.set_defaults(fn=cmd_stitch)

    p = sub.add_parser(
        "diff",
        help="differential profile: align two runs on (stage, context) "
        "and attribute the latency change",
    )
    p.add_argument(
        "before",
        help="baseline run: dump file(s)' directory, spool directory, "
        "live checkpoint directory, or a single dump file",
    )
    p.add_argument("after", help="candidate run (same forms as BEFORE)")
    p.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="K",
        help="rows per section (regressions, improvements, ...)",
    )
    p.add_argument(
        "--min-share",
        type=float,
        default=0.0,
        metavar="PCT",
        help="hide rows whose |delta| is below PCT%% of the larger "
        "run's total weight (display only; the gate has its own floor)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the full diff document as JSON instead of text",
    )
    p.add_argument(
        "--html",
        metavar="FILE",
        help="also write a self-contained HTML report (flamegraph "
        "pairs, crosstalk heatmap, trend sparklines)",
    )
    p.add_argument(
        "--trend-history",
        metavar="FILE",
        help="benchmark history JSON from `trend.py --history` to "
        "plot in the HTML report",
    )
    p.add_argument(
        "--gate",
        action="store_true",
        help="CI mode: exit 1 when any context regressed past "
        "--gate-threshold (identical runs always pass)",
    )
    p.add_argument(
        "--gate-threshold",
        type=float,
        default=25.0,
        metavar="PCT",
        help="max tolerated per-context growth, percent of baseline",
    )
    p.add_argument(
        "--gate-min-share",
        type=float,
        default=1.0,
        metavar="PCT",
        help="ignore regressions smaller than PCT%% of total weight "
        "(noise floor)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="abort on unresolvable synopses instead of diffing "
        "partial profiles (which are flagged low-confidence)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes when loading spool directories",
    )
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser(
        "live-report",
        help="stitch/query a live collector's checkpoint directory "
        "(or a sharded run's parent directory of shard-*/ dirs)",
    )
    p.add_argument(
        "directory",
        help="checkpoint directory written by --live-dir",
    )
    p.add_argument("--min-share", type=float, default=0.5)
    p.add_argument(
        "--strict",
        action="store_true",
        help="abort on unresolvable synopses instead of emitting a "
        "partial profile",
    )
    p.add_argument(
        "--digest",
        action="store_true",
        help="print only the canonical SHA-256 of the recovered "
        "profile (byte-comparable against `stitch --digest`)",
    )
    p.add_argument(
        "--top",
        type=int,
        default=0,
        metavar="K",
        help="also print the recovered live top-K view "
        "(single directory only)",
    )
    p.add_argument(
        "--compact",
        action="store_true",
        help="collapse the directory to one superseding full snapshot "
        "after stitching",
    )
    p.set_defaults(fn=cmd_live_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    wants_live = getattr(args, "live", False) or getattr(args, "live_dir", None)
    if wants_live and getattr(args, "telemetry", "off") == "off":
        # The live collector rides the telemetry profile-event stream.
        args.telemetry = "spans"
    tele = _telemetry_setup(args)
    try:
        status = args.fn(args)
        _telemetry_finish(args, tele)
        return status
    finally:
        if tele is not None:
            telemetry.uninstall()


if __name__ == "__main__":
    sys.exit(main())
