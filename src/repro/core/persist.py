"""Profile persistence: dump per-stage profiles to disk, stitch later.

This mirrors Whodunit's actual workflow (§7.1): "When the program exits,
Whodunit finalizes its state and writes the profile data to disk.  In a
final presentation phase, Whodunit stitches together the profiles from
the application stages."  Each stage serialises its CCT dictionary, its
synopsis table and its crosstalk records to JSON; the presentation phase
loads any number of stage dumps and runs the normal stitching.

Only profile *data* is persisted — locks, threads and other live
simulation state are not serialisable and not needed post-mortem.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, TextIO, Union

from repro.core.cct import CCTNode
from repro.core.context import SynopsisRef, TransactionContext
from repro.core.profiler import ProfilerMode, StageRuntime

FORMAT_VERSION = 1

PathOrFile = Union[str, TextIO]


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _encode_element(element: Any) -> Any:
    if isinstance(element, str):
        return element
    if isinstance(element, SynopsisRef):
        return {"$syn": [element.origin, element.value]}
    raise TypeError(f"cannot persist context element {element!r}")


def _decode_element(data: Any) -> Any:
    if isinstance(data, str):
        return data
    if isinstance(data, dict) and "$syn" in data:
        origin, value = data["$syn"]
        return SynopsisRef(origin, value)
    raise ValueError(f"bad context element {data!r}")


def encode_context(context: TransactionContext) -> List[Any]:
    return [_encode_element(e) for e in context.elements]


def decode_context(data: List[Any]) -> TransactionContext:
    return TransactionContext(tuple(_decode_element(e) for e in data))


def _encode_cct_node(node: CCTNode) -> Dict[str, Any]:
    # Iterative: deep call paths must not overflow the encoder's stack
    # (the JSON serialiser bounds nesting separately).
    root: Dict[str, Any] = {}
    stack = [(node, root)]
    while stack:
        current, encoded = stack.pop()
        if current.self_weight:
            encoded["w"] = current.self_weight
        if current.call_count:
            encoded["c"] = current.call_count
        if current.children:
            children: Dict[str, Any] = {}
            encoded["k"] = children
            for name, child in current.children.items():
                child_encoded: Dict[str, Any] = {}
                children[name] = child_encoded
                stack.append((child, child_encoded))
    return root


def _decode_cct_node(node: CCTNode, data: Dict[str, Any]) -> None:
    stack = [(node, data)]
    while stack:
        current, encoded = stack.pop()
        current.self_weight = encoded.get("w", 0.0)
        current.call_count = encoded.get("c", 0)
        for name, child_data in encoded.get("k", {}).items():
            stack.append((current.child(name), child_data))


def _encode_type(value: Any) -> Any:
    """Crosstalk transaction types: strings, None, or contexts."""
    if value is None or isinstance(value, str):
        return value
    if isinstance(value, TransactionContext):
        return {"$ctx": encode_context(value)}
    return {"$repr": repr(value)}


def _decode_type(data: Any) -> Any:
    if data is None or isinstance(data, str):
        return data
    if isinstance(data, dict) and "$ctx" in data:
        return decode_context(data["$ctx"])
    if isinstance(data, dict) and "$repr" in data:
        return data["$repr"]
    raise ValueError(f"bad crosstalk type {data!r}")


def encode_stage(stage: StageRuntime) -> Dict[str, Any]:
    """The JSON-serialisable dump of one stage's profile state."""
    return {
        "version": FORMAT_VERSION,
        "name": stage.name,
        "mode": stage.mode.value,
        "sampling_hz": stage.sampling_hz,
        "ccts": [
            {"label": encode_context(label), "tree": _encode_cct_node(cct.root)}
            for label, cct in stage.ccts.items()
        ],
        "synopses": [
            {"context": encode_context(context), "value": value}
            for context, value in stage.synopses.items()
        ],
        "crosstalk": [
            {
                "waiter": _encode_type(waiter),
                "holder": _encode_type(holder),
                "wait": wait,
            }
            for waiter, holder, wait in stage.crosstalk.events
        ],
        "comm": {
            "data_bytes": stage.comm_data_bytes,
            "context_bytes": stage.comm_context_bytes,
        },
    }


def decode_stage(data: Dict[str, Any]) -> StageRuntime:
    """Rebuild a StageRuntime carrying the persisted profile data.

    The result is for post-mortem analysis (stitching, rendering,
    aggregation); it is not attached to any simulation.
    """
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported profile format {data.get('version')!r}")
    stage = StageRuntime(
        data["name"],
        mode=ProfilerMode(data["mode"]),
        sampling_hz=data["sampling_hz"],
    )
    for entry in data["ccts"]:
        label = decode_context(entry["label"])
        cct = stage.cct_for(label)
        _decode_cct_node(cct.root, entry["tree"])
    for entry in data["synopses"]:
        context = decode_context(entry["context"])
        # Re-register under the original value.
        stage.synopses._by_context[context] = entry["value"]
        stage.synopses._by_value[entry["value"]] = context
    for entry in data["crosstalk"]:
        stage.crosstalk.record(
            _decode_type(entry["waiter"]),
            _decode_type(entry["holder"]),
            entry["wait"],
        )
    stage.comm_data_bytes = data["comm"]["data_bytes"]
    stage.comm_context_bytes = data["comm"]["context_bytes"]
    return stage


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------
def save_stage(stage: StageRuntime, destination: PathOrFile) -> None:
    """Write one stage's profile dump as JSON."""
    data = encode_stage(stage)
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
    else:
        json.dump(data, destination)


def load_stage(source: PathOrFile) -> StageRuntime:
    """Load one stage's profile dump."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    else:
        data = json.load(source)
    return decode_stage(data)


def load_and_stitch(paths: List[str]):
    """The presentation phase: load stage dumps and stitch end to end."""
    from repro.core.stitch import stitch_profiles

    return stitch_profiles([load_stage(path) for path in paths])
