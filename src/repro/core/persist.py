"""Profile persistence: dump per-stage profiles to disk, stitch later.

This mirrors Whodunit's actual workflow (§7.1): "When the program exits,
Whodunit finalizes its state and writes the profile data to disk.  In a
final presentation phase, Whodunit stitches together the profiles from
the application stages."  Each stage serialises its CCT dictionary, its
synopsis table and its crosstalk records; the presentation phase loads
any number of stage dumps and runs the normal stitching.

Two on-disk formats are supported:

- **v1** — human-greppable JSON, one object per stage, compact
  separators.  The original format; kept for interop and debuggability.
- **v2** — the compact interned format (see ``docs/performance.md``):
  every string (frame names, stage names, context elements) is stored
  once in a label table and referenced by integer ID, transaction
  contexts are themselves interned, CCTs are flattened into pre-order
  parent-pointer *columns* (no nesting, so depth is unbounded; columnar
  so gzip sees homogeneous runs), synopsis values are delta-encoded
  (they are base-prefixed sequential integers), and the whole document
  is gzip-compressed behind a tiny length-prefixed binary frame.
  Dumps are typically 5-10x smaller than v1.

``load_stage`` reads either format transparently (v2 is recognised by
its magic bytes; anything else is parsed as v1 JSON).

Both formats persist the stage's salted synopsis base and allocation
cursor: a stitch running in a fresh process must *restore* the base the
run used, never re-derive it, because collision salting in
:mod:`repro.core.synopsis` depends on registration order.

Only profile *data* is persisted — locks, threads and other live
simulation state are not serialisable and not needed post-mortem.
"""

from __future__ import annotations

import gzip
import io
import json
import struct
from typing import Any, Dict, IO, List, Optional, Tuple, Union

from repro.core.cct import CCTNode
from repro.core.context import SynopsisRef, TransactionContext, UnresolvedRef
from repro.core.profiler import ProfilerMode, StageRuntime

FORMAT_VERSION = 1
FORMAT_VERSION_V2 = 2

#: Accepted values for the ``profile_format`` argument of ``save_stage``.
PROFILE_FORMATS = ("v1", "v2")

#: v2 binary frame: magic, big-endian u32 version, u32 payload length,
#: then the gzip-compressed JSON document.
V2_MAGIC = b"WDP2"
_V2_HEADER = struct.Struct(">4sII")

#: Compact separators for every JSON dump (default separators add ~20%
#: whitespace bloat).
JSON_SEPARATORS = (",", ":")

PathOrFile = Union[str, IO]


# ----------------------------------------------------------------------
# v1 encoding (verbose JSON)
# ----------------------------------------------------------------------
def _encode_element(element: Any) -> Any:
    if isinstance(element, str):
        return element
    if isinstance(element, SynopsisRef):
        return {"$syn": [element.origin, element.value]}
    if isinstance(element, UnresolvedRef):
        return {"$unres": [element.origin, element.value]}
    raise TypeError(f"cannot persist context element {element!r}")


def _decode_element(data: Any) -> Any:
    if isinstance(data, str):
        return data
    if isinstance(data, dict) and "$syn" in data:
        origin, value = data["$syn"]
        return SynopsisRef(origin, value)
    if isinstance(data, dict) and "$unres" in data:
        origin, value = data["$unres"]
        return UnresolvedRef(origin, value)
    raise ValueError(f"bad context element {data!r}")


def encode_context(context: TransactionContext) -> List[Any]:
    return [_encode_element(e) for e in context.elements]


def decode_context(data: List[Any]) -> TransactionContext:
    return TransactionContext(tuple(_decode_element(e) for e in data))


def _encode_cct_node(node: CCTNode) -> Dict[str, Any]:
    # Iterative: deep call paths must not overflow the encoder's stack
    # (the JSON serialiser bounds nesting separately).
    root: Dict[str, Any] = {}
    stack = [(node, root)]
    while stack:
        current, encoded = stack.pop()
        if current.self_weight:
            encoded["w"] = current.self_weight
        if current.call_count:
            encoded["c"] = current.call_count
        if current.children:
            children: Dict[str, Any] = {}
            encoded["k"] = children
            for name, child in current.children.items():
                child_encoded: Dict[str, Any] = {}
                children[name] = child_encoded
                stack.append((child, child_encoded))
    return root


def _decode_cct_node(node: CCTNode, data: Dict[str, Any]) -> None:
    stack = [(node, data)]
    while stack:
        current, encoded = stack.pop()
        current.self_weight = encoded.get("w", 0.0)
        current.call_count = encoded.get("c", 0)
        for name, child_data in encoded.get("k", {}).items():
            stack.append((current.child(name), child_data))


def _encode_type(value: Any) -> Any:
    """Crosstalk transaction types: strings, None, or contexts."""
    if value is None or isinstance(value, str):
        return value
    if isinstance(value, TransactionContext):
        return {"$ctx": encode_context(value)}
    return {"$repr": repr(value)}


def _decode_type(data: Any) -> Any:
    if data is None or isinstance(data, str):
        return data
    if isinstance(data, dict) and "$ctx" in data:
        return decode_context(data["$ctx"])
    if isinstance(data, dict) and "$repr" in data:
        return data["$repr"]
    raise ValueError(f"bad crosstalk type {data!r}")


def encode_crosstalk_type(value: Any) -> Any:
    """Public codec for crosstalk transaction types (live checkpoints)."""
    return _encode_type(value)


def decode_crosstalk_type(data: Any) -> Any:
    return _decode_type(data)


def encode_stage(stage: StageRuntime) -> Dict[str, Any]:
    """The JSON-serialisable v1 dump of one stage's profile state."""
    return {
        "version": FORMAT_VERSION,
        "name": stage.name,
        "mode": stage.mode.value,
        "sampling_hz": stage.sampling_hz,
        # The salted synopsis base and allocation cursor: restored, not
        # re-derived, by decode_stage (see module docstring).
        "synopsis_base": stage.synopses.base,
        "synopsis_next": stage.synopses.next_value,
        "ccts": [
            {"label": encode_context(label), "tree": _encode_cct_node(cct.root)}
            for label, cct in stage.ccts.items()
        ],
        "synopses": [
            {"context": encode_context(context), "value": value}
            for context, value in stage.synopses.items()
        ],
        "crosstalk": [
            {
                "waiter": _encode_type(waiter),
                "holder": _encode_type(holder),
                "wait": wait,
            }
            for waiter, holder, wait in stage.crosstalk.events
        ],
        "comm": {
            "data_bytes": stage.comm_data_bytes,
            "context_bytes": stage.comm_context_bytes,
        },
    }


def decode_stage(data: Dict[str, Any]) -> StageRuntime:
    """Rebuild a StageRuntime carrying a persisted v1 profile dump.

    The result is for post-mortem analysis (stitching, rendering,
    aggregation); it is not attached to any simulation.
    """
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported profile format {data.get('version')!r}")
    stage = StageRuntime(
        data["name"],
        mode=ProfilerMode(data["mode"]),
        sampling_hz=data["sampling_hz"],
    )
    for entry in data["ccts"]:
        label = decode_context(entry["label"])
        cct = stage.cct_for(label)
        _decode_cct_node(cct.root, entry["tree"])
    for entry in data["synopses"]:
        context = decode_context(entry["context"])
        # Re-register under the original value.
        stage.synopses._by_context[context] = entry["value"]
        stage.synopses._by_value[entry["value"]] = context
    for entry in data["crosstalk"]:
        stage.crosstalk.record(
            _decode_type(entry["waiter"]),
            _decode_type(entry["holder"]),
            entry["wait"],
        )
    stage.comm_data_bytes = data["comm"]["data_bytes"]
    stage.comm_context_bytes = data["comm"]["context_bytes"]
    # Dumps written before the snapshot keys existed fall back to the
    # constructor-derived base (pre-snapshot behaviour).
    if "synopsis_base" in data:
        stage.synopses.restore_snapshot(
            data["synopsis_base"], data.get("synopsis_next", 1)
        )
    return stage


# ----------------------------------------------------------------------
# v2 encoding (compact interned format)
# ----------------------------------------------------------------------
class _Interner:
    """Assigns dense integer IDs to values, storing each exactly once."""

    __slots__ = ("values", "_index")

    def __init__(self):
        self.values: List[Any] = []
        self._index: Dict[Any, int] = {}

    def intern(self, value: Any) -> int:
        index = self._index.get(value)
        if index is None:
            index = len(self.values)
            self.values.append(value)
            self._index[value] = index
        return index


def _v2_encode_context(
    context: TransactionContext, strings: _Interner
) -> List[Any]:
    """Elements as compact cells: int = interned string, 2-list =
    SynopsisRef ``[origin_id, value]``, 3-list = UnresolvedRef."""
    out: List[Any] = []
    for element in context.elements:
        if isinstance(element, str):
            out.append(strings.intern(element))
        elif isinstance(element, SynopsisRef):
            out.append([strings.intern(element.origin), element.value])
        elif isinstance(element, UnresolvedRef):
            out.append([strings.intern(element.origin), element.value, 1])
        else:
            raise TypeError(f"cannot persist context element {element!r}")
    return out


def _v2_decode_context(cells: List[Any], strings: List[str]) -> TransactionContext:
    elements: List[Any] = []
    for cell in cells:
        if isinstance(cell, int):
            elements.append(strings[cell])
        elif len(cell) == 2:
            elements.append(SynopsisRef(strings[cell[0]], cell[1]))
        elif len(cell) == 3:
            elements.append(UnresolvedRef(strings[cell[0]], cell[1]))
        else:
            raise ValueError(f"bad v2 context cell {cell!r}")
    return TransactionContext(elements)


def _v2_encode_type(value: Any, strings: _Interner, contexts, ctx_ids) -> Any:
    """Crosstalk type cells: null, int = string, 1-list = context ID."""
    if value is None:
        return None
    if isinstance(value, str):
        return strings.intern(value)
    if isinstance(value, TransactionContext):
        return [_v2_intern_context(value, strings, contexts, ctx_ids)]
    return strings.intern(repr(value))


def _v2_decode_type(cell: Any, strings: List[str], contexts) -> Any:
    if cell is None:
        return None
    if isinstance(cell, int):
        return strings[cell]
    if isinstance(cell, list) and len(cell) == 1:
        return contexts[cell[0]]
    raise ValueError(f"bad v2 crosstalk type cell {cell!r}")


def _v2_intern_context(context, strings, contexts: List[List[Any]], ctx_ids: Dict) -> int:
    index = ctx_ids.get(context)
    if index is None:
        index = len(contexts)
        contexts.append(_v2_encode_context(context, strings))
        ctx_ids[context] = index
    return index


def _v2_delta_contexts(contexts: List[List[Any]]) -> List[List[Any]]:
    """Delta-encode synopsis values in the context table, per origin.

    Synopsis values are a 12-bit stage base over a sequential counter,
    so consecutive references to the same origin differ by tiny amounts;
    storing the running difference turns 10-digit integers into one or
    two digits.  Cells are visited in table order — the decoder replays
    the identical walk, so the transform is exactly invertible.
    """
    last: Dict[int, int] = {}
    out: List[List[Any]] = []
    for cells in contexts:
        row: List[Any] = []
        for cell in cells:
            if isinstance(cell, list):
                origin, value = cell[0], cell[1]
                row.append([origin, value - last.get(origin, 0)] + cell[2:])
                last[origin] = value
            else:
                row.append(cell)
        out.append(row)
    return out


def _v2_undelta_contexts(contexts: List[List[Any]]) -> List[List[Any]]:
    last: Dict[int, int] = {}
    out: List[List[Any]] = []
    for cells in contexts:
        row: List[Any] = []
        for cell in cells:
            if isinstance(cell, list):
                origin = cell[0]
                value = cell[1] + last.get(origin, 0)
                last[origin] = value
                row.append([origin, value] + cell[2:])
            else:
                row.append(cell)
        out.append(row)
    return out


def encode_stage_v2(stage: StageRuntime) -> List[Any]:
    """The interned document for one stage: a positional 12-slot array
    ``[version, name, mode, hz, base, next, strings, contexts, ccts,
    synopses, crosstalk, comm]`` (see module docstring)."""
    strings = _Interner()
    contexts: List[List[Any]] = []
    ctx_ids: Dict[TransactionContext, int] = {}

    base = stage.synopses.base
    ccts = []
    for label, cct in stage.ccts.items():
        label_id = _v2_intern_context(label, strings, contexts, ctx_ids)
        rows = cct.root.to_rows()
        # Columnar: homogeneous arrays gzip far better than row tuples.
        ccts.append([
            label_id,
            [row[0] for row in rows],
            [strings.intern(row[1]) for row in rows],
            [row[2] for row in rows],
            [row[3] for row in rows],
        ])
    # The stage's own synopsis values all carry its base in the high
    # bits; store just the sequential remainder.
    synopses = [
        [_v2_intern_context(context, strings, contexts, ctx_ids), value - base]
        for context, value in stage.synopses.items()
    ]
    crosstalk = [
        [
            _v2_encode_type(waiter, strings, contexts, ctx_ids),
            _v2_encode_type(holder, strings, contexts, ctx_ids),
            wait,
        ]
        for waiter, holder, wait in stage.crosstalk.events
    ]
    return [
        FORMAT_VERSION_V2,
        stage.name,
        stage.mode.value,
        stage.sampling_hz,
        base,
        stage.synopses.next_value,
        strings.values,
        _v2_delta_contexts(contexts),
        ccts,
        synopses,
        crosstalk,
        [stage.comm_data_bytes, stage.comm_context_bytes],
    ]


def decode_stage_v2(data: List[Any]) -> StageRuntime:
    """Rebuild a StageRuntime from a v2 interned document."""
    if not isinstance(data, list) or len(data) != 12:
        raise ValueError("malformed v2 profile document")
    (version, name, mode, hz, base, next_value,
     strings, context_cells, ccts, synopses, crosstalk, comm) = data
    if version != FORMAT_VERSION_V2:
        raise ValueError(f"unsupported profile format {version!r}")
    contexts = [
        _v2_decode_context(cells, strings)
        for cells in _v2_undelta_contexts(context_cells)
    ]
    stage = StageRuntime(name, mode=ProfilerMode(mode), sampling_hz=hz)
    for label_id, parents, names, weights, counts in ccts:
        cct = stage.cct_for(contexts[label_id])
        CCTNode.attach_rows(
            cct.root,
            list(zip(
                parents, (strings[name_id] for name_id in names),
                weights, counts,
            )),
        )
    for ctx_id, remainder in synopses:
        context = contexts[ctx_id]
        value = base + remainder
        stage.synopses._by_context[context] = value
        stage.synopses._by_value[value] = context
    for waiter, holder, wait in crosstalk:
        stage.crosstalk.record(
            _v2_decode_type(waiter, strings, contexts),
            _v2_decode_type(holder, strings, contexts),
            wait,
        )
    stage.comm_data_bytes, stage.comm_context_bytes = comm
    stage.synopses.restore_snapshot(base, next_value)
    return stage


# ----------------------------------------------------------------------
# Generic framing (shared by stage dumps and the reduce-tree artifacts)
# ----------------------------------------------------------------------
def write_frame(
    handle: IO,
    document: Any,
    magic: bytes = V2_MAGIC,
    version: int = FORMAT_VERSION_V2,
) -> int:
    """Append one framed, gzipped JSON document to a binary stream.

    ``mtime=0`` keeps gzip output byte-deterministic for identical
    documents, which the shard-determinism proof relies on.  Returns
    the number of bytes written.  Frames are self-delimiting, so any
    number can be concatenated into one spool file and streamed back
    with :func:`read_frame`.
    """
    payload = gzip.compress(
        json.dumps(document, separators=JSON_SEPARATORS).encode("utf-8"),
        compresslevel=9,
        mtime=0,
    )
    handle.write(_V2_HEADER.pack(magic, version, len(payload)))
    handle.write(payload)
    return _V2_HEADER.size + len(payload)


def read_frame(
    handle: IO,
    magic: Optional[bytes] = None,
    version: Optional[int] = None,
) -> Optional[Any]:
    """Read the next frame from a binary stream, or None at clean EOF.

    Reads exactly header + payload bytes — never the rest of the file —
    so arbitrarily long multi-frame spools stream in bounded memory.
    """
    header = handle.read(_V2_HEADER.size)
    if not header:
        return None
    if len(header) < _V2_HEADER.size:
        raise ValueError("truncated frame header")
    got_magic, got_version, length = _V2_HEADER.unpack(header)
    if magic is not None and got_magic != magic:
        raise ValueError(f"bad frame magic {got_magic!r} (wanted {magic!r})")
    if version is not None and got_version != version:
        raise ValueError(f"unsupported frame version {got_version!r}")
    payload = handle.read(length)
    if len(payload) != length:
        raise ValueError("truncated frame payload")
    return json.loads(gzip.decompress(payload))


def dumps_stage_v2(stage: StageRuntime) -> bytes:
    """The complete framed v2 dump as bytes."""
    buffer = io.BytesIO()
    write_frame(buffer, encode_stage_v2(stage))
    return buffer.getvalue()


def loads_stage_v2(blob: bytes) -> StageRuntime:
    """Decode a framed v2 dump produced by :func:`dumps_stage_v2`."""
    document = read_frame(io.BytesIO(blob), magic=V2_MAGIC,
                          version=FORMAT_VERSION_V2)
    if document is None:
        raise ValueError("truncated v2 profile dump")
    return decode_stage_v2(document)


def iter_stage_frames(source: PathOrFile):
    """Stream StageRuntimes from a file of concatenated v2 frames.

    One frame is decoded at a time, so a spool holding hundreds of
    stage dumps never needs to fit in memory at once.
    """
    if isinstance(source, str):
        with open(source, "rb") as handle:
            yield from iter_stage_frames(handle)
        return
    while True:
        document = read_frame(source, magic=V2_MAGIC,
                              version=FORMAT_VERSION_V2)
        if document is None:
            return
        yield decode_stage_v2(document)


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------
def save_stage(
    stage: StageRuntime,
    destination: PathOrFile,
    profile_format: str = "v1",
) -> None:
    """Write one stage's profile dump in the requested format.

    ``destination`` is a path or an open file: text-mode for v1,
    binary-mode for v2 (a path is opened with the right mode either
    way).
    """
    if profile_format not in PROFILE_FORMATS:
        raise ValueError(
            f"unknown profile format {profile_format!r}; one of {PROFILE_FORMATS}"
        )
    if profile_format == "v2":
        blob = dumps_stage_v2(stage)
        if isinstance(destination, str):
            with open(destination, "wb") as handle:
                handle.write(blob)
        else:
            destination.write(blob)
        return
    data = encode_stage(stage)
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(data, handle, separators=JSON_SEPARATORS)
    else:
        json.dump(data, destination, separators=JSON_SEPARATORS)


def _load_blob(blob: bytes) -> StageRuntime:
    if blob[: len(V2_MAGIC)] == V2_MAGIC:
        return loads_stage_v2(blob)
    return decode_stage(json.loads(blob.decode("utf-8")))


def load_stage(source: PathOrFile) -> StageRuntime:
    """Load one stage's profile dump, sniffing the format (v1 or v2).

    v2 files are streamed frame-wise (header, then exactly the payload)
    rather than slurped whole — the same reader the reduce tree uses on
    multi-frame spool files.
    """
    if isinstance(source, str):
        with open(source, "rb") as handle:
            probe = handle.read(len(V2_MAGIC))
            if probe == V2_MAGIC:
                handle.seek(0)
                document = read_frame(handle, magic=V2_MAGIC,
                                      version=FORMAT_VERSION_V2)
                return decode_stage_v2(document)
            return decode_stage(json.loads((probe + handle.read()).decode("utf-8")))
    data = source.read()
    if isinstance(data, bytes):
        return _load_blob(data)
    return decode_stage(json.loads(data))


def dump_size(stage: StageRuntime, profile_format: str = "v1") -> int:
    """The exact on-disk size of ``stage``'s dump in the given format."""
    if profile_format == "v2":
        return len(dumps_stage_v2(stage))
    buffer = io.StringIO()
    save_stage(stage, buffer, profile_format=profile_format)
    return len(buffer.getvalue().encode("utf-8"))


# ----------------------------------------------------------------------
# Run loading (shared by `repro stitch`, `repro diff`, the CI gates)
# ----------------------------------------------------------------------
#: File suffixes recognised as stage profile dumps when loading a plain
#: directory of dumps (no spool manifest, no live checkpoints).
DUMP_SUFFIXES = (".json", ".wdp", ".wdp2", ".profile", ".dump")

#: Kept in sync with repro.parallel.runner.MANIFEST_NAME (no import so
#: loading a single dump file never drags the parallel package in).
SPOOL_MANIFEST = "manifest.json"

#: Pair table value: ``(count, total_wait, max_wait)``.
CrosstalkTable = Dict[Tuple[str, str], Tuple[int, float, float]]


class RunProfile:
    """One run's loaded analysis inputs, however they were persisted.

    ``profile`` is the stitched end-to-end profile.  ``stages`` holds
    the decoded per-stage runtimes when the source kept them (dump
    files, dump directories, spool directories); it is empty for live
    checkpoint directories, whose collectors fold their own state.
    ``crosstalk`` is the run's merged crosstalk pair table in a
    source-independent shape — ``(waiter, holder)`` display strings
    mapping to ``(count, total_wait, max_wait)`` — so two runs align
    regardless of which on-disk format each used.
    """

    __slots__ = ("source", "kind", "profile", "stages", "crosstalk")

    def __init__(self, source, kind: str, profile, stages, crosstalk):
        self.source = source
        self.kind = kind
        self.profile = profile
        self.stages = stages
        self.crosstalk: CrosstalkTable = crosstalk

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RunProfile {self.kind} {self.source!r} "
            f"entries={len(self.profile.entries)}>"
        )


def crosstalk_table(stages) -> CrosstalkTable:
    """Merge per-stage crosstalk pair stats into one aligned table.

    Keys are display strings (transaction types are already strings for
    classified apps like TPC-W; raw contexts stringify via ``repr``), so
    tables from different runs — and different dump formats — align.
    """
    folded: Dict[Tuple[str, str], List[float]] = {}
    for stage in stages:
        for (waiter, holder), stats in stage.crosstalk.pairs.items():
            key = (str(waiter), str(holder))
            acc = folded.get(key)
            if acc is None:
                folded[key] = [stats.count, stats.total, stats.max]
            else:
                acc[0] += stats.count
                acc[1] += stats.total
                if stats.max > acc[2]:
                    acc[2] = stats.max
    return {
        key: (int(count), total, peak)
        for key, (count, total, peak) in folded.items()
    }


def _stages_from_file(path: str) -> List[StageRuntime]:
    """Every stage dump in one file.

    A v2 file may hold any number of concatenated WDP2 frames (one
    stage each); a v1 JSON file holds either a single stage object or a
    list of them.  A whole run can therefore travel as one file.
    """
    with open(path, "rb") as handle:
        probe = handle.read(len(V2_MAGIC))
        if probe == V2_MAGIC:
            handle.seek(0)
            return list(iter_stage_frames(handle))
        data = json.loads((probe + handle.read()).decode("utf-8"))
    if isinstance(data, list):
        return [decode_stage(item) for item in data]
    return [decode_stage(data)]


def _dump_files_in(directory: str) -> List[str]:
    import os

    out = []
    for name in sorted(os.listdir(directory)):
        path = os.path.join(directory, name)
        if (
            os.path.isfile(path)
            and name.endswith(DUMP_SUFFIXES)
            and name != SPOOL_MANIFEST
        ):
            out.append(path)
    return out


def _live_crosstalk(collector) -> CrosstalkTable:
    return {
        (str(waiter), str(holder)): (count, total, peak)
        for waiter, holder, count, total, _mean, peak
        in collector.crosstalk_pairs()
    }


def _load_live_run(directory: str, strict: bool) -> RunProfile:
    """Recover live-collector checkpoints (single or ``shard-NNNN/``)."""
    import os

    from repro.live import LiveCollector

    shard_names = sorted(
        name
        for name in os.listdir(directory)
        if name.startswith("shard-")
        and os.path.isdir(os.path.join(directory, name))
    )
    crosstalk: CrosstalkTable = {}

    def fold(extra: CrosstalkTable) -> None:
        for key, (count, total, peak) in extra.items():
            have = crosstalk.get(key)
            if have is None:
                crosstalk[key] = (count, total, peak)
            else:
                crosstalk[key] = (
                    have[0] + count,
                    have[1] + total,
                    max(have[2], peak),
                )

    if shard_names:
        # The same fold as the sharded post-mortem reduce: per-shard
        # profiles through the exact accumulator, UnresolvedRefs
        # qualified with their shard so they can never spuriously merge.
        from repro.parallel.reduce import ProfileAccumulator
        from repro.parallel.stitching import _tag_unresolved

        accumulator = ProfileAccumulator()
        for name in shard_names:
            collector = LiveCollector.recover(os.path.join(directory, name))
            index = int(name.split("-", 1)[1])
            accumulator.add_profile(
                _tag_unresolved(
                    collector.stitched_profile(strict=strict), f"@shard{index}"
                )
            )
            fold(_live_crosstalk(collector))
        profile = accumulator.finalize()
    else:
        collector = LiveCollector.recover(directory)
        profile = collector.stitched_profile(strict=strict)
        fold(_live_crosstalk(collector))
    return RunProfile(directory, "live", profile, [], crosstalk)


def load_run(source, strict: bool = False, jobs: int = 1) -> RunProfile:
    """Load one run's profile from any persisted shape.

    ``source`` may be:

    - a single stage dump file (v1 JSON or framed v2; a v2 file may
      hold a whole run as concatenated frames, a v1 file a list of
      stage objects),
    - a list/tuple of dump files (one run's tiers),
    - a spool directory written by a sharded run (``manifest.json``),
    - a live checkpoint directory (``ckpt-*.wdr2``, or a parent of
      ``shard-NNNN/`` collector directories), or
    - any other directory holding stage dump files.

    Loading is non-strict by default: partial runs yield a partial
    profile with an explicit completeness ratio, and a run that kept
    nothing at all yields a valid empty profile (completeness 0.0)
    instead of a traceback — the contract `repro diff` relies on.
    """
    import os

    from repro.core.stitch import stitch_profiles

    if isinstance(source, (list, tuple)):
        stages = [
            stage for path in source for stage in _stages_from_file(path)
        ]
        profile = stitch_profiles(stages, strict=strict)
        return RunProfile(
            list(source), "dumps", profile, stages, crosstalk_table(stages)
        )
    if os.path.isdir(source):
        if os.path.isfile(os.path.join(source, SPOOL_MANIFEST)):
            from repro.parallel.stitching import spool_groups, stitch_spool

            profile = stitch_spool(source, jobs=jobs, strict=strict)
            stages = [
                stage
                for group in spool_groups(source)
                for path in group
                for stage in _stages_from_file(path)
            ]
            return RunProfile(
                source, "spool", profile, stages, crosstalk_table(stages)
            )
        from repro.live import list_checkpoints

        has_shards = any(
            name.startswith("shard-")
            and os.path.isdir(os.path.join(source, name))
            for name in os.listdir(source)
        )
        if has_shards or list_checkpoints(source):
            return _load_live_run(source, strict)
        files = _dump_files_in(source)
        if not files:
            raise ValueError(f"no profile dumps found in {source!r}")
        stages = [
            stage for path in files for stage in _stages_from_file(path)
        ]
        profile = stitch_profiles(stages, strict=strict)
        return RunProfile(
            source, "dumps", profile, stages, crosstalk_table(stages)
        )
    return load_run([source], strict=strict, jobs=jobs)


def load_and_stitch(paths: List[str], jobs: int = 1, strict: bool = True):
    """The presentation phase: load stage dumps and stitch end to end.

    ``jobs > 1`` decodes the dumps in a process pool before the serial
    resolve+merge (see :mod:`repro.parallel.stitching` for the sharded
    map-reduce variant).
    """
    from repro.core.stitch import stitch_profiles

    if jobs > 1 and len(paths) > 1:
        from repro.parallel.stitching import parallel_load

        stages = parallel_load(paths, jobs=jobs)
    else:
        stages = [load_stage(path) for path in paths]
    return stitch_profiles(stages, strict=strict)
