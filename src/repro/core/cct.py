"""Calling Context Trees — the call-path profiler core (csprof analog).

A CCT (Ammons/Ball/Larus, PLDI'97) stores one node per distinct call
path; profile samples accumulate on the node for the sampled path.
Whodunit labels each CCT's root with a transaction context, keeping one
CCT per context (§7.1), and stitches CCTs from different stages together
post-mortem.

Samples carry float weights: in deterministic sampling mode a slice of
CPU time contributes its expected sample count ``time * frequency``
directly, which makes profiles exact and tests stable; stochastic mode
records integer sample hits.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple


class CCTNode:
    """One calling context (call path) in the tree."""

    __slots__ = ("name", "parent", "children", "self_weight", "call_count")

    def __init__(self, name: str, parent: Optional["CCTNode"] = None):
        self.name = name
        self.parent = parent
        self.children: Dict[str, CCTNode] = {}
        self.self_weight = 0.0
        self.call_count = 0

    def child(self, name: str) -> "CCTNode":
        """Get or create the child for ``name``."""
        node = self.children.get(name)
        if node is None:
            node = CCTNode(name, self)
            self.children[name] = node
        return node

    def subtree_weight(self) -> float:
        """Inclusive weight: this node plus all descendants.

        Iterative so pathologically deep call paths cannot overflow the
        interpreter stack.
        """
        total = 0.0
        stack = [self]
        while stack:
            node = stack.pop()
            total += node.self_weight
            stack.extend(node.children.values())
        return total

    def path(self) -> Tuple[str, ...]:
        """The call path from the root to this node (root excluded)."""
        frames: List[str] = []
        node: Optional[CCTNode] = self
        while node is not None and node.parent is not None:
            frames.append(node.name)
            node = node.parent
        return tuple(reversed(frames))

    def walk(self) -> Iterator["CCTNode"]:
        """Pre-order traversal of this subtree (children in name order).

        Uses an explicit stack: deep trees neither recurse nor pay the
        per-level generator-delegation cost of ``yield from`` chains.
        """
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            children = node.children
            if children:
                for name in sorted(children, reverse=True):
                    stack.append(children[name])

    def to_rows(self) -> List[Tuple[int, str, float, int]]:
        """Flatten the subtree into pre-order ``(parent, name, w, c)`` rows.

        Row 0 is this node with parent index -1; children are emitted in
        sorted name order, so the row list is canonical for a given tree.
        The flat form nests nothing, which is what lets the compact
        profile format serialise arbitrarily deep call paths without
        hitting the JSON encoder's nesting limit.
        """
        rows: List[Tuple[int, str, float, int]] = []
        stack: List[Tuple["CCTNode", int]] = [(self, -1)]
        while stack:
            node, parent = stack.pop()
            index = len(rows)
            rows.append((parent, node.name, node.self_weight, node.call_count))
            children = node.children
            if children:
                for name in sorted(children, reverse=True):
                    stack.append((children[name], index))
        return rows

    @staticmethod
    def attach_rows(root: "CCTNode", rows: Sequence[Sequence]) -> None:
        """Rebuild a subtree flattened by :meth:`to_rows` onto ``root``.

        Row 0 (parent -1) maps onto ``root`` itself; its persisted name
        is ignored in favour of the existing root's.
        """
        nodes: List[CCTNode] = []
        for parent, name, weight, count in rows:
            if parent < 0:
                node = root
            else:
                node = nodes[parent].child(name)
            node.self_weight = float(weight)
            node.call_count = int(count)
            nodes.append(node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CCTNode {self.name} self={self.self_weight:.3f}>"


class CallingContextTree:
    """A CCT whose root is annotated with a transaction-context label."""

    def __init__(self, label: Any = None):
        self.label = label
        self.root = CCTNode("<root>")

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_sample(self, path: Sequence[str], weight: float = 1.0) -> CCTNode:
        """Accumulate ``weight`` samples on the node for ``path``."""
        if weight < 0:
            raise ValueError("negative sample weight")
        node = self.root
        for frame_name in path:
            node = node.child(frame_name)
        node.self_weight += weight
        return node

    def record_call(self, path: Sequence[str]) -> CCTNode:
        """Count one invocation of the path's leaf procedure (gprof-style)."""
        node = self.root
        for frame_name in path:
            node = node.child(frame_name)
        node.call_count += 1
        return node

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def total_weight(self) -> float:
        return self.root.subtree_weight()

    def lookup(self, path: Sequence[str]) -> Optional[CCTNode]:
        """The node for an exact call path, or None."""
        node = self.root
        for frame_name in path:
            node = node.children.get(frame_name)
            if node is None:
                return None
        return node

    def weight_of(self, path: Sequence[str]) -> float:
        """Self weight accumulated exactly at ``path`` (0 if absent)."""
        node = self.lookup(path)
        return node.self_weight if node else 0.0

    def inclusive_weight_of(self, path: Sequence[str]) -> float:
        """Inclusive weight of the subtree rooted at ``path``."""
        node = self.lookup(path)
        return node.subtree_weight() if node else 0.0

    def flatten(self) -> Dict[Tuple[str, ...], float]:
        """Map of call path -> self weight for all sampled paths."""
        out: Dict[Tuple[str, ...], float] = {}
        for node in self.root.walk():
            if node is self.root:
                continue
            if node.self_weight:
                out[node.path()] = node.self_weight
        return out

    def by_frame(self) -> Dict[str, float]:
        """Self weight aggregated per frame name, regardless of path."""
        out: Dict[str, float] = {}
        for node in self.root.walk():
            if node is self.root or not node.self_weight:
                continue
            out[node.name] = out.get(node.name, 0.0) + node.self_weight
        return out

    def node_count(self) -> int:
        return sum(1 for _ in self.root.walk()) - 1

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    def merge(self, other: "CallingContextTree") -> None:
        """Accumulate another CCT's weights and call counts into this one.

        Iterative (explicit worklist) so merging trees with very deep
        call paths cannot raise ``RecursionError``.
        """
        stack = [(self.root, other.root)]
        while stack:
            dst, src = stack.pop()
            dst.self_weight += src.self_weight
            dst.call_count += src.call_count
            for name, src_child in src.children.items():
                stack.append((dst.child(name), src_child))

    def copy(self) -> "CallingContextTree":
        clone = CallingContextTree(self.label)
        clone.merge(self)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CCT label={self.label!r} nodes={self.node_count()} "
            f"weight={self.total_weight():.3f}>"
        )
