"""The transaction-flow detection algorithm of §3.2, as emulator hooks.

Protocol (driven by :class:`repro.channels.shared_queue.SharedMemoryRegion`
or directly by tests)::

    cs = detector.enter_cs(lock, thread_key, producer_context)
    emulator.run(program, machine, thread_key, hooks=cs)
    window = detector.exit_cs(cs)
    emulator.run(use_program, machine, thread_key, hooks=window)
    for event in window.consumed:        # ConsumeEvents
        thread.tran_ctxt = event.context # §3.5 context hand-off

Rules implemented, with their paper sources:

- MOV with a tracked source propagates the source's entry — context,
  valid or invalid, and the original producing thread (§3.2).
- MOV with an untracked source associates the executing thread's
  transaction context with the destination; if the destination is a
  *memory* word, the thread is recorded as a producer for the lock
  (§3.2; registers are thread-private, so producing into one can never
  convey inter-thread flow — a deviation documented in DESIGN.md).
- Non-MOV writes (arithmetic, immediates, LEA) associate ``invlctxt``
  (§3.2, §3.4's counter).
- Any access under a different lock than the one that last updated a
  location flushes its entry (§3.2).
- After the critical section, for a window of at most ``max_window``
  instructions, a read of a location holding a *valid* context written
  by a *different* thread is a consumption: the producer's context is
  handed to the consumer and the consumer joins the lock's consumer
  list (§3.2, §7.2).
- Producer/consumer list overlap and never-any-valid-produce classify
  the lock as no-flow; its critical sections then run natively (§3.4,
  §7.2).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.core.flow.dictionary import INVALID, FlowDictionary
from repro.core.flow.roles import RoleTable
from repro.vm.emulator import DIRECT, EMULATE, EmulationHooks

MAX_WINDOW = 128


class ProduceEvent:
    """A thread stored transaction-carrying data into shared memory."""

    __slots__ = ("lock", "thread", "loc", "context")

    def __init__(self, lock: Any, thread: Any, loc, context):
        self.lock = lock
        self.thread = thread
        self.loc = loc
        self.context = context

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Produce({self.thread!r} -> {self.loc!r}: {self.context!r})"


class ConsumeEvent:
    """A thread used data carrying another thread's transaction context."""

    __slots__ = ("lock", "thread", "loc", "context", "producer")

    def __init__(self, lock: Any, thread: Any, loc, context, producer: Any):
        self.lock = lock
        self.thread = thread
        self.loc = loc
        self.context = context
        self.producer = producer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Consume({self.thread!r} <- {self.loc!r}: {self.context!r} "
            f"from {self.producer!r})"
        )


class CriticalSectionHooks(EmulationHooks):
    """Hooks active while emulating one critical section.

    ``depth`` supports nested locks: §3.3.2 says all instructions in
    the critical section protected by the *outermost* lock are
    analysed, so a nested ``enter_cs`` by the same thread returns the
    outer hooks and everything is attributed to the outer lock.
    """

    def __init__(self, detector: "FlowDetector", lock: Any, thread: Any, context):
        self.detector = detector
        self.lock = lock
        self.thread = thread
        self.context = context
        self.closed = False
        self.depth = 1

    # -- EmulationHooks ------------------------------------------------
    def read(self, loc) -> None:
        self.detector.dictionary.flush_if_foreign_lock(loc, self.lock)

    def mov(self, dst, src) -> None:
        dictionary = self.detector.dictionary
        dictionary.flush_if_foreign_lock(src, self.lock)
        dictionary.flush_if_foreign_lock(dst, self.lock)
        entry = dictionary.get(src)
        if entry is not None:
            # Propagation: the context (valid or invalid) travels with
            # the value; the original producer identity is preserved.
            dictionary.set(dst, entry.context, self.lock, entry.writer)
        else:
            dictionary.set(dst, self.context, self.lock, self.thread)
            if dst[0] == "mem":
                self.detector.record_produce(self.lock, self.thread, dst, self.context)

    def write_invalid(self, dst) -> None:
        dictionary = self.detector.dictionary
        dictionary.flush_if_foreign_lock(dst, self.lock)
        dictionary.set(dst, INVALID, self.lock, self.thread)


class WindowHooks(EmulationHooks):
    """Hooks for the post-critical-section consumption window."""

    def __init__(self, detector: "FlowDetector", lock: Any, thread: Any):
        self.detector = detector
        self.lock = lock
        self.thread = thread
        self.consumed: List[ConsumeEvent] = []
        self._seen_locs = set()
        self._budget = detector.max_window

    def read(self, loc) -> None:
        if self._budget <= 0:
            return
        self._budget -= 1
        if loc in self._seen_locs:
            return
        entry = self.detector.dictionary.get(loc)
        if entry is None or not entry.valid:
            return
        if entry.writer == self.thread:
            return
        self._seen_locs.add(loc)
        event = self.detector.record_consume(
            entry.lock, self.thread, loc, entry.context, entry.writer
        )
        self.consumed.append(event)

    def mov(self, dst, src) -> None:
        # Outside any critical section a write overwrites the location
        # with untracked data.
        self.detector.dictionary.remove(dst)

    def write_invalid(self, dst) -> None:
        self.detector.dictionary.remove(dst)


class FlowDetector:
    """Per-process flow-detection state (dictionary + role lists)."""

    def __init__(
        self,
        max_window: int = MAX_WINDOW,
        stateful_threshold: int = 32,
        clear_registers_on_entry: bool = True,
    ):
        self.dictionary = FlowDictionary()
        self.roles = RoleTable()
        self.max_window = max_window
        self.stateful_threshold = stateful_threshold
        self.clear_registers_on_entry = clear_registers_on_entry
        self.produce_events: List[ProduceEvent] = []
        self.consume_events: List[ConsumeEvent] = []
        # Outermost open critical section per thread (nested locking).
        self._active: dict = {}

    # ------------------------------------------------------------------
    # Critical-section protocol
    # ------------------------------------------------------------------
    def enter_cs(self, lock: Any, thread: Any, context) -> CriticalSectionHooks:
        """Begin analysing a critical section of ``lock`` run by ``thread``.

        ``context`` is the thread's transaction context at entry (its
        inherited context plus current call path) — the value associated
        with anything the thread produces.

        If the thread is already inside a critical section, the nested
        acquisition is folded into the outer one (§3.3.2): the same
        hooks are returned and everything is attributed to the
        outermost lock.
        """
        active = self._active.get(thread)
        if active is not None and not active.closed:
            active.depth += 1
            return active
        if self.clear_registers_on_entry:
            self.dictionary.clear_registers(thread)
        cs = CriticalSectionHooks(self, lock, thread, context)
        self._active[thread] = cs
        return cs

    def exit_cs(self, cs: CriticalSectionHooks) -> Optional[WindowHooks]:
        """End the critical section; returns hooks for the use window.

        Exiting a nested acquisition returns ``None`` — the thread is
        still inside the outermost critical section and no consumption
        window opens yet.
        """
        if cs.closed:
            raise RuntimeError("critical section already exited")
        cs.depth -= 1
        if cs.depth > 0:
            return None
        cs.closed = True
        self._active.pop(cs.thread, None)
        self.roles.for_lock(cs.lock).note_execution(self.stateful_threshold)
        return WindowHooks(self, cs.lock, cs.thread)

    def mode_for(self, lock: Any) -> str:
        """Execution mode for a lock's critical sections.

        No-flow locks run natively (§7.2's optimisation); everything
        else is emulated so contexts keep propagating.
        """
        roles = self.roles.for_lock(lock)
        return DIRECT if roles.is_no_flow else EMULATE

    # ------------------------------------------------------------------
    # Event recording
    # ------------------------------------------------------------------
    def record_produce(self, lock: Any, thread: Any, loc, context) -> ProduceEvent:
        roles = self.roles.for_lock(lock)
        roles.add_producer(thread)
        if context is not INVALID and context is not None:
            roles.valid_produced = True
        event = ProduceEvent(lock, thread, loc, context)
        self.produce_events.append(event)
        return event

    def record_consume(self, lock: Any, thread: Any, loc, context, producer) -> ConsumeEvent:
        roles = self.roles.for_lock(lock)
        roles.add_consumer(thread)
        if not roles.is_no_flow:
            roles.note_flow()
        event = ConsumeEvent(lock, thread, loc, context, producer)
        self.consume_events.append(event)
        return event

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def flow_edges(self):
        """(producer context, consumer thread) pairs for real flows —

        consumption events on locks not later classified as no-flow.
        """
        return [
            (event.context, event.thread)
            for event in self.consume_events
            if not self.roles.for_lock(event.lock).is_no_flow
        ]

    def classifications(self):
        """Mapping lock -> classification (None while undecided)."""
        return {lock: roles.classification for lock, roles in self.roles.items()}
