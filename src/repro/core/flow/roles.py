"""Per-lock producer/consumer role lists and lock classification (§3.2–3.4).

Each lock object guards one resource (§3.1).  The detector keeps, per
lock, the set of threads seen producing into it and the set seen
consuming from it.  The first time the two sets intersect the resource
is classified as *not* conveying transaction flow — this is what rules
out memory allocators (Fig 3), whose free/alloc pattern is isomorphic to
produce/consume but performed by the same threads on both sides.

A second classification catches Fig 2's shared-state pattern: a lock
whose critical sections have run many times without a single valid
context ever being produced (every write was arithmetic or an
immediate) is classified no-flow-stateful.  Both classifications let the
profiler stop emulating the lock's critical sections and run them
natively (§7.2's performance optimisation).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

FLOW = "flow"
NO_FLOW_ALLOCATOR = "no-flow-allocator"
NO_FLOW_STATEFUL = "no-flow-stateful"


class LockRoles:
    """Role and classification state for one lock."""

    __slots__ = (
        "producers",
        "consumers",
        "classification",
        "cs_executions",
        "valid_produced",
        "flows_detected",
    )

    def __init__(self):
        self.producers: Set[Any] = set()
        self.consumers: Set[Any] = set()
        self.classification: Optional[str] = None
        self.cs_executions = 0
        self.valid_produced = False
        self.flows_detected = 0

    # ------------------------------------------------------------------
    def add_producer(self, thread_key: Any) -> None:
        self.producers.add(thread_key)
        self._check_overlap()

    def add_consumer(self, thread_key: Any) -> None:
        self.consumers.add(thread_key)
        self._check_overlap()

    def _check_overlap(self) -> None:
        # The overlap rule dominates an earlier (possibly premature)
        # flow inference: before the lists first intersect, an allocator
        # recycling blocks across threads looks exactly like flow.
        if self.classification in (None, FLOW) and (
            self.producers & self.consumers
        ):
            self.classification = NO_FLOW_ALLOCATOR

    def note_flow(self) -> None:
        if self.classification is None:
            self.classification = FLOW
        self.flows_detected += 1

    def note_execution(self, stateful_threshold: int) -> None:
        self.cs_executions += 1
        if (
            self.classification is None
            and not self.valid_produced
            and self.cs_executions >= stateful_threshold
        ):
            self.classification = NO_FLOW_STATEFUL

    @property
    def is_no_flow(self) -> bool:
        return self.classification in (NO_FLOW_ALLOCATOR, NO_FLOW_STATEFUL)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LockRoles class={self.classification} "
            f"producers={len(self.producers)} consumers={len(self.consumers)} "
            f"execs={self.cs_executions}>"
        )


class RoleTable:
    """All locks' role state, keyed by lock object."""

    def __init__(self):
        self._locks: Dict[Any, LockRoles] = {}

    def for_lock(self, lock: Any) -> LockRoles:
        roles = self._locks.get(lock)
        if roles is None:
            roles = LockRoles()
            self._locks[lock] = roles
        return roles

    def classification(self, lock: Any) -> Optional[str]:
        roles = self._locks.get(lock)
        return roles.classification if roles else None

    def items(self):
        return self._locks.items()

    def __len__(self) -> int:
        return len(self._locks)
