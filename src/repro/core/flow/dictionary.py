"""The location-to-context dictionary of §3.2.

Every location — a memory word ``("mem", addr)`` or an annotated
register ``("reg", thread, index)`` — may be associated with a
transaction context, the special *invalid* context, or nothing at all.
Each entry remembers the lock whose critical section last wrote it (the
flush rule) and the thread that originally produced the value (so
consumption can be told apart from re-reading one's own data).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple


class _Invalid:
    """Singleton ``invlctxt`` marker."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "invlctxt"


INVALID = _Invalid()

Location = Tuple


class Entry:
    """Dictionary value: (context, guarding lock, producing thread)."""

    __slots__ = ("context", "lock", "writer")

    def __init__(self, context: Any, lock: Any, writer: Any):
        self.context = context
        self.lock = lock
        self.writer = writer

    @property
    def valid(self) -> bool:
        return self.context is not INVALID

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Entry({self.context!r}, lock={self.lock!r}, writer={self.writer!r})"


class FlowDictionary:
    """Mapping of locations to :class:`Entry` values."""

    def __init__(self):
        self._entries: Dict[Location, Entry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, loc: Location) -> Optional[Entry]:
        return self._entries.get(loc)

    def set(self, loc: Location, context: Any, lock: Any, writer: Any) -> Entry:
        entry = Entry(context, lock, writer)
        self._entries[loc] = entry
        return entry

    def remove(self, loc: Location) -> None:
        self._entries.pop(loc, None)

    def flush_if_foreign_lock(self, loc: Location, current_lock: Any) -> bool:
        """§3.2's flush rule: drop the entry if ``loc`` is being accessed

        under a different lock than the one that last updated it.
        Returns True if an entry was flushed.
        """
        entry = self._entries.get(loc)
        if entry is not None and entry.lock is not current_lock:
            del self._entries[loc]
            return True
        return False

    def clear_registers(self, thread_key: Any) -> int:
        """Drop all register entries of one thread.

        Called at critical-section entry: the producer computes its data
        *before* entering the critical section (§3.1), so its registers
        carry no tracked context on entry; stale associations from
        earlier critical sections would otherwise leak across.
        Returns the number of entries dropped.
        """
        stale = [
            loc
            for loc in self._entries
            if loc[0] == "reg" and loc[1] == thread_key
        ]
        for loc in stale:
            del self._entries[loc]
        return len(stale)

    def items(self):
        return self._entries.items()
