"""Shared-memory transaction-flow detection (§3 of the paper).

The detector watches the instruction stream of critical sections (via
the :mod:`repro.vm` emulator's hooks) and maintains the paper's
dictionary from locations — memory words and per-thread registers — to
transaction contexts.  MOV operations propagate contexts; every other
write poisons its destination with the invalid context; per-lock
producer/consumer role lists expose allocator-like patterns; and uses of
context-carrying locations just after a critical section exits are
consumption events that hand the producer's transaction context to the
consuming thread.
"""

from repro.core.flow.dictionary import INVALID, Entry, FlowDictionary
from repro.core.flow.roles import (
    FLOW,
    NO_FLOW_ALLOCATOR,
    NO_FLOW_STATEFUL,
    LockRoles,
    RoleTable,
)
from repro.core.flow.detector import (
    ConsumeEvent,
    CriticalSectionHooks,
    FlowDetector,
    ProduceEvent,
    WindowHooks,
)

__all__ = [
    "INVALID",
    "Entry",
    "FlowDictionary",
    "FLOW",
    "NO_FLOW_ALLOCATOR",
    "NO_FLOW_STATEFUL",
    "LockRoles",
    "RoleTable",
    "FlowDetector",
    "CriticalSectionHooks",
    "WindowHooks",
    "ProduceEvent",
    "ConsumeEvent",
]
