"""Call paths: the execution-path model for a single stage.

A call path is "the sequence of procedure calls leading to a point of
execution" (Hall, 1992).  We represent it as an immutable tuple of frame
names, which is exactly what :meth:`repro.sim.process.SimThread.call_path`
returns.  This module collects the small amount of structure the rest of
the system needs on top of plain tuples.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

CallPath = Tuple[str, ...]

EMPTY_PATH: CallPath = ()


def make_path(*frames: str) -> CallPath:
    """Build a call path from frame names, validating each."""
    for name in frames:
        if not isinstance(name, str) or not name:
            raise ValueError(f"frame names must be non-empty strings, got {name!r}")
    return tuple(frames)


def is_prefix(prefix: Sequence[str], path: Sequence[str]) -> bool:
    """True if ``prefix`` is a (possibly equal) prefix of ``path``."""
    if len(prefix) > len(path):
        return False
    return tuple(path[: len(prefix)]) == tuple(prefix)


def common_prefix(a: Sequence[str], b: Sequence[str]) -> CallPath:
    """The longest common prefix of two call paths."""
    out = []
    for frame_a, frame_b in zip(a, b):
        if frame_a != frame_b:
            break
        out.append(frame_a)
    return tuple(out)


def format_path(path: Iterable[str], sep: str = " > ") -> str:
    """Human-readable rendering, e.g. ``main > foo > rpc_call > send``."""
    return sep.join(path) or "<empty>"
